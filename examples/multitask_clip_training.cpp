/**
 * @file
 * Domain example: training a 7-task Multitask-CLIP (ImageBind-style)
 * model on 2 nodes x 8 GPUs. Runs every system of the paper's
 * evaluation on the same workload, prints iteration time, speedup,
 * time breakdown, cluster utilization and peak memory — the
 * quantities a practitioner would use to pick a training system.
 *
 * Run: ./build/examples/multitask_clip_training
 */

#include <cstdio>
#include <memory>

#include "spindle/spindle.h"

using namespace spindle;

int
main()
{
    ComputationGraph graph = buildMultitaskClip({.numTasks = 7});
    MetaGraph meta = contractGraph(graph);
    std::printf("Multitask-CLIP, 7 tasks: %zu operators -> %zu MetaOps "
                "in %zu MetaLevels, %.2fB parameters\n\n",
                graph.numOps(), meta.numMetaOps(), meta.numLevels(),
                graph.totalUniqueParamBytes() / kBytesFp16 / 1e9);

    ClusterConfig cfg;
    cfg.numNodes = 2;
    cfg.gpusPerNode = 8;
    ClusterTopology topo(cfg);
    HardwareModel hw(topo);

    std::vector<std::unique_ptr<System>> systems;
    systems.push_back(std::make_unique<SpindleSystem>(hw));
    systems.push_back(std::make_unique<SpindleOptimusSystem>(hw));
    systems.push_back(std::make_unique<DistMMMTSystem>(hw));
    systems.push_back(
        std::make_unique<SequentialSystem>(hw, SequentialMode::Megatron));
    systems.push_back(
        std::make_unique<SequentialSystem>(hw, SequentialMode::DeepSpeed));

    std::vector<SystemResult> results;
    for (const auto &sys : systems)
        results.push_back(sys->runIteration(meta));
    const double ds = results.back().iterationSeconds;

    std::printf("%-16s %9s %8s %9s %7s %10s %9s %8s\n", "system",
                "iter_ms", "speedup", "fwdbwd_ms", "sync_ms", "sendrecv_ms",
                "tflops/s", "mem_GB");
    for (const SystemResult &r : results) {
        double peak_mem = 0;
        for (double b : r.peakMemoryBytes)
            peak_mem = std::max(peak_mem, b);
        std::printf("%-16s %9.1f %7.2fx %9.1f %7.1f %10.1f %9.1f %8.2f\n",
                    r.system.c_str(), toMs(r.iterationSeconds),
                    ds / r.iterationSeconds, toMs(r.breakdown.fwdBwd),
                    toMs(r.breakdown.sync), toMs(r.breakdown.sendRecv),
                    toTflops(r.timeline.totalFlops() /
                             r.timeline.makespan()),
                    peak_mem / GiB);
    }

    std::printf("\nSpindle plan quality: compute span %.1f ms vs "
                "theoretical optimum %.1f ms (%.1f%% gap)\n",
                toMs(results[0].breakdown.fwdBwd),
                toMs(results[0].theoreticalOptimum),
                100 * (results[0].breakdown.fwdBwd /
                           results[0].theoreticalOptimum -
                       1.0));
    return 0;
}
