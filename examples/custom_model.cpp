/**
 * @file
 * Domain example: bringing a *custom* MT MM model to Spindle with
 * the SpindleTask / addFlow API (paper §4) — here, a three-task
 * robotics foundation model mixing proprioception, vision and
 * language around a shared decoder, a structure not shipped in the
 * model zoo. Shows scaling-curve inspection (which modules scale,
 * which saturate) and the resulting wavefront plan.
 *
 * Run: ./build/examples/custom_model
 */

#include <cstdio>
#include <iostream>

#include "spindle/spindle.h"

using namespace spindle;

int
main()
{
    // ------------------------------------------------------------------
    // 1. Describe the model: a shared 1.3B decoder, a shared ViT,
    //    and per-task sensor adaptors.
    // ------------------------------------------------------------------
    WorkloadBuilder b;
    SharedModule decoder = b.declareShared(
        transformerStack("decoder", OpType::LM, 64, 512, 2048, 24));
    SharedModule vit = b.declareShared(
        transformerStack("vit", OpType::Vision, 64, 256, 1024, 24));

    auto add_task = [&](const char *name, bool vision, bool proprio) {
        std::int32_t t = b.addTask(name);
        NodeRange dec = b.addModule(
            t, transformerStack(strCat(name, ".decoder"), OpType::LM,
                                64, 512, 2048, 24),
            &decoder);
        if (vision) {
            NodeRange v = b.addModule(
                t, transformerStack(strCat(name, ".vit"), OpType::Vision,
                                    64, 256, 1024, 24),
                &vit);
            b.addFlow(v, dec);
        }
        if (proprio) {
            NodeRange p = b.addModule(
                t, transformerStack(strCat(name, ".proprio"),
                                    OpType::Motion, 64, 128, 256, 4));
            b.addFlow(p, dec);
        }
    };
    add_task("manipulation", /*vision=*/true, /*proprio=*/true);
    add_task("navigation", /*vision=*/true, /*proprio=*/false);
    add_task("instruction-following", /*vision=*/false, /*proprio=*/true);

    ComputationGraph graph = b.build();
    MetaGraph meta = contractGraph(graph);
    std::printf("custom robotics model: %zu ops -> %zu MetaOps, "
                "%.2fB params\n\n",
                graph.numOps(), meta.numMetaOps(),
                graph.totalUniqueParamBytes() / kBytesFp16 / 1e9);

    // ------------------------------------------------------------------
    // 2. Inspect scaling curves: which MetaOps are worth scaling?
    // ------------------------------------------------------------------
    ClusterConfig cfg;
    cfg.numNodes = 2;
    cfg.gpusPerNode = 8;
    ClusterTopology topo(cfg);
    HardwareModel hw(topo);
    ScalabilityEstimator estimator(hw);

    std::printf("%-36s %10s %10s %12s\n", "MetaOp", "T(1) ms",
                "T(16) ms", "sigma(16)");
    for (const MetaOp &m : meta.metaOps()) {
        ScalingCurve curve = estimator.estimate(m, 16);
        if (!curve.isValid(16))
            continue;
        std::printf("%-36s %10.3f %10.3f %12.2f\n", m.name.c_str(),
                    toMs(curve.timeAt(1)), toMs(curve.timeAt(16)),
                    curve.scalability(16));
    }

    // ------------------------------------------------------------------
    // 3. Plan and execute one iteration; compare to DeepSpeed.
    // ------------------------------------------------------------------
    ExecutionPlanner planner(hw);
    PlannerOutput out = planner.plan(meta);
    std::printf("\n%s\n", out.plan.str(meta).c_str());

    SpindleSystem spindle(hw);
    SequentialSystem ds(hw, SequentialMode::DeepSpeed);
    SystemResult rs = spindle.runIteration(meta);
    SystemResult rd = ds.runIteration(meta);
    std::printf("Spindle %.1f ms vs DeepSpeed %.1f ms -> %.2fx\n",
                toMs(rs.iterationSeconds), toMs(rd.iterationSeconds),
                rd.iterationSeconds / rs.iterationSeconds);
    return 0;
}
