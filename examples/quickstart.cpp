/**
 * @file
 * Quickstart: define a small two-task multi-modal workload with the
 * SpindleTask/addFlow API (mirroring the paper's Fig. 3 example),
 * plan it with the Spindle execution planner, inspect the wave
 * schedule, and simulate one training iteration against the
 * DeepSpeed-style sequential baseline.
 *
 * Run: ./build/examples/quickstart
 */

#include <cstdio>
#include <iostream>

#include "spindle/spindle.h"

using namespace spindle;

int
main()
{
    // ------------------------------------------------------------------
    // 1. Define the workload: an audio-language task and a
    //    vision-language task sharing a text encoder and an LM, the
    //    structure of the paper's Fig. 3.
    // ------------------------------------------------------------------
    WorkloadBuilder builder;

    SharedModule text_params = builder.declareShared(
        transformerStack("text-enc", OpType::Text, 64, 77, 768, 8));
    SharedModule lm_params = builder.declareShared(
        transformerStack("lm", OpType::LM, 64, 512, 1024, 12));

    std::int32_t audio_task = builder.addTask("audio-language");
    NodeRange audio_enc = builder.addModule(
        audio_task,
        transformerStack("t0.audio", OpType::Audio, 64, 229, 768, 10));
    NodeRange text0 = builder.addModule(
        audio_task,
        transformerStack("t0.text", OpType::Text, 64, 77, 768, 8),
        &text_params);
    NodeRange lm0 = builder.addModule(
        audio_task,
        transformerStack("t0.lm", OpType::LM, 64, 512, 1024, 12),
        &lm_params);
    builder.addFlow(audio_enc, lm0);
    builder.addFlow(text0, lm0);

    std::int32_t vision_task = builder.addTask("vision-language");
    NodeRange vision_enc = builder.addModule(
        vision_task,
        transformerStack("t1.vision", OpType::Vision, 32, 257, 1024, 16));
    NodeRange text1 = builder.addModule(
        vision_task,
        transformerStack("t1.text", OpType::Text, 32, 77, 768, 8),
        &text_params);
    NodeRange lm1 = builder.addModule(
        vision_task,
        transformerStack("t1.lm", OpType::LM, 32, 512, 1024, 12),
        &lm_params);
    builder.addFlow(vision_enc, lm1);
    builder.addFlow(text1, lm1);

    ComputationGraph graph = builder.build();
    std::printf("workload: %zu operators, %zu edges, %.2fB params\n",
                graph.numOps(), graph.numEdges(),
                graph.totalUniqueParamBytes() / 2 / 1e9);

    // ------------------------------------------------------------------
    // 2. Contract to the MetaGraph (§3.1).
    // ------------------------------------------------------------------
    MetaGraph meta = contractGraph(graph);
    std::printf("contracted: %zu MetaOps in %zu MetaLevels\n",
                meta.numMetaOps(), meta.numLevels());
    for (const MetaOp &m : meta.metaOps()) {
        std::printf("  MetaOp %d: %-28s L=%2lld level=%d\n", m.id,
                    m.name.c_str(),
                    static_cast<long long>(m.numOps()), m.level);
    }

    // ------------------------------------------------------------------
    // 3. Plan on a 2-node x 8-GPU cluster (§3.2-§3.5).
    // ------------------------------------------------------------------
    ClusterConfig cluster;
    cluster.numNodes = 2;
    cluster.gpusPerNode = 8;
    ClusterTopology topo(cluster);
    HardwareModel hw(topo);
    ExecutionPlanner planner(hw);
    PlannerOutput out = planner.plan(meta);
    std::printf("\nplanning took %.1f ms; theoretical optimum %.2f ms\n",
                out.planningSeconds * 1e3,
                toMs(out.plan.theoreticalOptimum));
    std::cout << out.plan.str(meta);

    // ------------------------------------------------------------------
    // 4. Run one simulated training iteration, Spindle vs DeepSpeed.
    // ------------------------------------------------------------------
    SpindleSystem spindle_sys(hw);
    SequentialSystem deepspeed(hw, SequentialMode::DeepSpeed);
    SystemResult rs = spindle_sys.runIteration(meta);
    SystemResult rd = deepspeed.runIteration(meta);

    std::printf("\n%-12s iter %7.2f ms (fwd+bwd %6.2f, sync %5.2f, "
                "send/recv %5.2f)\n",
                rs.system.c_str(), toMs(rs.iterationSeconds),
                toMs(rs.breakdown.fwdBwd), toMs(rs.breakdown.sync),
                toMs(rs.breakdown.sendRecv));
    std::printf("%-12s iter %7.2f ms (fwd+bwd %6.2f, sync %5.2f, "
                "send/recv %5.2f)\n",
                rd.system.c_str(), toMs(rd.iterationSeconds),
                toMs(rd.breakdown.fwdBwd), toMs(rd.breakdown.sync),
                toMs(rd.breakdown.sendRecv));
    std::printf("speedup: %.2fx\n",
                rd.iterationSeconds / rs.iterationSeconds);
    return 0;
}
