/**
 * @file
 * Domain example: dynamic multi-task training (paper Appendix D).
 * Tasks join and exit during a long OFASys training run; Spindle
 * re-plans at every workload change (the plan is regenerated only
 * when the task set changes, which is rare relative to training).
 * Compares cumulative training time against the DeepSpeed-style
 * sequential baseline and reports the amortized planning overhead.
 *
 * Run: ./build/examples/dynamic_tasks
 */

#include <cstdio>

#include "spindle/spindle.h"

using namespace spindle;

int
main()
{
    ClusterConfig cfg;
    cfg.numNodes = 2;
    cfg.gpusPerNode = 8;
    ClusterTopology topo(cfg);
    HardwareModel hw(topo);

    SpindleSystem spindle(hw);
    SequentialSystem deepspeed(hw, SequentialMode::DeepSpeed);

    struct Phase
    {
        std::uint32_t tasks;
        long iterations;
    };
    // Tasks join (4 -> 7) as new data arrives, then some complete
    // and exit (7 -> 5 -> 3).
    const Phase schedule[] = {{4, 40000}, {7, 60000}, {5, 40000},
                              {3, 20000}};

    std::printf("dynamic OFASys training on 16 GPUs\n");
    std::printf("%-7s %6s %10s | %14s %14s | %9s\n", "phase", "tasks",
                "iters", "Spindle_tot_s", "DeepSpeed_tot_s", "replan_ms");

    double spindle_total = 0, ds_total = 0, replan_total = 0;
    int phase = 0;
    for (const Phase &p : schedule) {
        ComputationGraph graph = buildOfasys({.numTasks = p.tasks});
        MetaGraph meta = contractGraph(graph);

        SystemResult rs = spindle.runIteration(meta);
        SystemResult rd = deepspeed.runIteration(meta);

        // One re-plan per phase; iterations reuse the cached plan.
        replan_total += rs.planningSeconds;
        spindle_total += rs.planningSeconds +
                         rs.iterationSeconds * p.iterations;
        ds_total += rd.iterationSeconds * p.iterations;

        std::printf("%-7d %6u %10ld | %14.0f %14.0f | %9.1f\n", ++phase,
                    p.tasks, p.iterations, spindle_total, ds_total,
                    rs.planningSeconds * 1e3);
    }

    std::printf("\ntotal: Spindle %.0f s vs DeepSpeed %.0f s "
                "(%.2fx faster); planning overhead %.3f s "
                "(%.5f%% of training)\n",
                spindle_total, ds_total, ds_total / spindle_total,
                replan_total, 100 * replan_total / spindle_total);
    return 0;
}
