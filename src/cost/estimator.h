/**
 * @file
 * Scalability estimator (paper §3.2): profile each MetaOp at a few
 * discrete device counts, fit a piecewise alpha-beta curve, and emit
 * the scaling curve the resource allocator optimizes against.
 *
 * In the paper the profiling source is the physical cluster; here it
 * is the analytical HardwareModel oracle (see DESIGN.md §1 for why
 * the substitution preserves behaviour). Optional multiplicative
 * measurement noise exercises fit robustness deterministically.
 */

#ifndef SPINDLE_COST_ESTIMATOR_H
#define SPINDLE_COST_ESTIMATOR_H

#include <atomic>
#include <vector>

#include "cost/scaling_curve.h"
#include "hardware/hardware_model.h"

namespace spindle {
class ThreadPool;
}

namespace spindle {

/** Estimator configuration. */
struct EstimatorOptions
{
    /**
     * Fit one alpha-beta piece per adjacent profiled pair (paper's
     * piecewise model) or a single least-squares piece over all
     * samples (the homogeneous baseline of Appendix A).
     */
    bool piecewise = true;

    /**
     * Profile every valid allocation instead of only the power-of-
     * two subset. More samples, exact knots, slower "profiling".
     */
    bool profileAllValid = false;

    /** Std-dev of multiplicative measurement noise (0 = exact). */
    double noiseStdFrac = 0.0;

    /** Seed for the deterministic noise stream. */
    std::uint64_t seed = 0x5eed;
};

/**
 * Produces scaling curves for MetaOps by profiling the hardware
 * oracle and fitting the Appendix A model.
 */
class ScalabilityEstimator
{
  public:
    ScalabilityEstimator(const HardwareModel &hw,
                         EstimatorOptions options = {});

    /**
     * Estimate the scaling curve of MetaOp @p m for allocations up
     * to @p max_devices: profile, fit, then evaluate the fit on the
     * full valid-allocation grid.
     */
    ScalingCurve estimate(const MetaOp &m, std::uint32_t max_devices) const;

    /**
     * Curves for every MetaOp of @p graph, indexed by MetaOpId.
     * When @p pool is non-null, MetaOps are profiled and fitted in
     * parallel (curves are mutually independent; each lands at its
     * own index, so the result is identical at any thread count).
     */
    std::vector<ScalingCurve> estimateAll(const MetaGraph &graph,
                                          std::uint32_t max_devices,
                                          ThreadPool *pool = nullptr) const;

    /**
     * The device counts that estimate() would profile for @p m:
     * the power-of-two valid allocations, the extremes, and any
     * valid allocation equal to an island size (the TP cap — and
     * hence the invoked kernels — changes where an allocation first
     * outgrows an island, so those knots are profiled exactly).
     */
    std::vector<std::uint32_t> profilePoints(const MetaOp &m,
                                             std::uint32_t max_devices) const;

    /** Number of oracle probes issued so far (profiling cost proxy). */
    std::uint64_t numProbes() const { return num_probes_.load(); }

    const HardwareModel &hardware() const { return hw_; }
    const EstimatorOptions &options() const { return options_; }

  private:
    double probe(const MetaOp &m, std::uint32_t n) const;

    const HardwareModel &hw_;
    EstimatorOptions options_;

    /** Atomic: parallel estimateAll() probes from several lanes. */
    mutable std::atomic<std::uint64_t> num_probes_{0};
};

} // namespace spindle

#endif // SPINDLE_COST_ESTIMATOR_H
