#include "cost/alpha_beta.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace spindle {

void
PiecewiseAlphaBeta::addPiece(AlphaBetaPiece piece)
{
    panicIf(piece.nLo <= 0 || piece.nHi < piece.nLo,
            "addPiece: bad piece range");
    if (!pieces_.empty())
        panicIf(!nearlyEqual(pieces_.back().nHi, piece.nLo, 1e-9, 1e-9),
                "addPiece: pieces must be contiguous");
    pieces_.push_back(piece);
}

double
PiecewiseAlphaBeta::nMin() const
{
    panicIf(pieces_.empty(), "nMin: empty curve");
    return pieces_.front().nLo;
}

double
PiecewiseAlphaBeta::nMax() const
{
    panicIf(pieces_.empty(), "nMax: empty curve");
    return pieces_.back().nHi;
}

double
PiecewiseAlphaBeta::eval(double n) const
{
    panicIf(pieces_.empty(), "eval: empty curve");
    panicIf(n <= 0, "eval: n must be positive");
    const AlphaBetaPiece &first = pieces_.front();
    if (n < first.nLo) {
        // Hyperbolic extension below the first knot: time scales as
        // workload / n relative to the first knot's value.
        return first.eval(first.nLo) * first.nLo / n;
    }
    for (const AlphaBetaPiece &p : pieces_) {
        if (n <= p.nHi)
            return p.eval(n);
    }
    return pieces_.back().eval(n); // clamp above the last knot
}

PiecewiseAlphaBeta
PiecewiseAlphaBeta::fit(const std::vector<double> &ns,
                        const std::vector<double> &times,
                        bool single_piece)
{
    panicIf(ns.size() != times.size() || ns.empty(),
            "fit: mismatched or empty samples");
    for (std::size_t i = 1; i < ns.size(); ++i)
        panicIf(ns[i] <= ns[i - 1], "fit: samples must ascend in n");

    PiecewiseAlphaBeta curve;
    if (ns.size() == 1) {
        curve.addPiece({ns[0], ns[0], times[0], 0.0});
        return curve;
    }

    if (single_piece) {
        // Least squares on t = a + b * (1/n) over all samples.
        std::vector<double> inv(ns.size());
        for (std::size_t i = 0; i < ns.size(); ++i)
            inv[i] = 1.0 / ns[i];
        auto [a, b] = linearFit(inv, times);
        curve.addPiece({ns.front(), ns.back(), a, b});
        return curve;
    }

    // One exact piece per adjacent sample pair:
    //   b = (t_i - t_{i+1}) / (1/n_i - 1/n_{i+1}),  a = t_i - b/n_i.
    for (std::size_t i = 0; i + 1 < ns.size(); ++i) {
        const double inv0 = 1.0 / ns[i];
        const double inv1 = 1.0 / ns[i + 1];
        const double b = (times[i] - times[i + 1]) / (inv0 - inv1);
        const double a = times[i] - b * inv0;
        curve.addPiece({ns[i], ns[i + 1], a, b});
    }
    return curve;
}

} // namespace spindle
