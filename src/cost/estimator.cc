#include "cost/estimator.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <random>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/thread_pool.h"

namespace spindle {

ScalabilityEstimator::ScalabilityEstimator(const HardwareModel &hw,
                                           EstimatorOptions options)
    : hw_(hw), options_(options)
{
    fatalIf(options_.noiseStdFrac < 0, "Estimator: negative noise");
}

std::vector<std::uint32_t>
ScalabilityEstimator::profilePoints(const MetaOp &m,
                                    std::uint32_t max_devices) const
{
    std::vector<std::uint32_t> valid = hw_.validAllocations(m, max_devices);
    if (options_.profileAllValid)
        return valid;

    // Island-size boundaries: the TP cap (and hence the invoked
    // kernels) changes where an allocation first outgrows an island,
    // so valid n equal to an island size are profiled exactly. On
    // homogeneous power-of-two islands these coincide with the
    // power-of-two knots below.
    std::vector<std::uint32_t> island_sizes;
    const ClusterTopology &topo = hw_.topology();
    for (std::uint32_t k = 0; k < topo.numIslands(); ++k)
        island_sizes.push_back(topo.islandSizeOf(k));
    std::sort(island_sizes.begin(), island_sizes.end());

    // Power-of-two valid allocations, always including the extremes,
    // mirroring the paper's "several discrete data points".
    std::vector<std::uint32_t> points;
    for (std::uint32_t n : valid) {
        if (isPowerOfTwo(n) || n == valid.front() || n == valid.back() ||
            std::binary_search(island_sizes.begin(), island_sizes.end(),
                               n))
            points.push_back(n);
    }
    return points;
}

double
ScalabilityEstimator::probe(const MetaOp &m, std::uint32_t n) const
{
    num_probes_.fetch_add(1, std::memory_order_relaxed);
    double t = hw_.metaOpTime(m, n);
    if (options_.noiseStdFrac > 0) {
        // Deterministic per-(MetaOp, n) noise stream so repeated
        // estimation is reproducible.
        std::seed_seq seq{options_.seed,
                          static_cast<std::uint64_t>(m.id),
                          static_cast<std::uint64_t>(n)};
        std::mt19937_64 rng(seq);
        std::normal_distribution<double> dist(0.0, options_.noiseStdFrac);
        t *= std::max(0.05, 1.0 + dist(rng));
    }
    return t;
}

ScalingCurve
ScalabilityEstimator::estimate(const MetaOp &m,
                               std::uint32_t max_devices) const
{
    const std::vector<std::uint32_t> points =
        profilePoints(m, max_devices);
    panicIf(points.empty(), "estimate: no profile points");

    std::vector<double> ns, times;
    ns.reserve(points.size());
    times.reserve(points.size());
    for (std::uint32_t n : points) {
        ns.push_back(static_cast<double>(n));
        times.push_back(probe(m, n));
    }

    PiecewiseAlphaBeta fitted =
        PiecewiseAlphaBeta::fit(ns, times, !options_.piecewise);

    // Evaluate the fitted model on the full valid grid: profiled
    // knots reproduce their samples; unprofiled valid allocations
    // get the model's interpolation.
    std::vector<std::uint32_t> valid = hw_.validAllocations(m, max_devices);
    std::vector<double> grid_times;
    grid_times.reserve(valid.size());
    for (std::uint32_t n : valid)
        grid_times.push_back(fitted.eval(static_cast<double>(n)));

    return ScalingCurve(std::move(valid), std::move(grid_times));
}

std::vector<ScalingCurve>
ScalabilityEstimator::estimateAll(const MetaGraph &graph,
                                  std::uint32_t max_devices,
                                  ThreadPool *pool) const
{
    const std::vector<MetaOp> &ops = graph.metaOps();
    const std::size_t count = ops.size();

    // Each MetaOp's curve is a pure function of (oracle, options,
    // MetaOp, max_devices) — including the noisy variant, whose
    // noise stream is seeded per (MetaOp, n) — so curves can be
    // estimated on any lane and land at their own index.
    std::vector<std::optional<ScalingCurve>> slots(count);
    maybeParallelFor(pool, /*parallel=*/true, 0, count, 1,
                     [&](std::size_t i) {
                         slots[i].emplace(estimate(ops[i], max_devices));
                     });

    std::vector<ScalingCurve> curves;
    curves.reserve(count);
    for (std::optional<ScalingCurve> &slot : slots)
        curves.push_back(std::move(*slot));
    return curves;
}

} // namespace spindle
