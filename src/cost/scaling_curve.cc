#include "cost/scaling_curve.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace spindle {

ScalingCurve::ScalingCurve(std::vector<std::uint32_t> valid_ns,
                           std::vector<double> times)
    : ns_(std::move(valid_ns)), times_(std::move(times))
{
    fatalIf(ns_.empty() || ns_.size() != times_.size(),
            "ScalingCurve: mismatched or empty grid");
    fatalIf(ns_.front() < 1, "ScalingCurve: allocations start at 1");
    for (std::size_t i = 1; i < ns_.size(); ++i)
        fatalIf(ns_[i] <= ns_[i - 1], "ScalingCurve: grid must ascend");
    for (double t : times_)
        fatalIf(t <= 0, "ScalingCurve: times must be positive");

    // Theorem 1 requires T positive and non-increasing; clamp any
    // estimation wiggle (e.g. a kernel-regime penalty) downward.
    for (std::size_t i = 1; i < times_.size(); ++i)
        times_[i] = std::min(times_[i], times_[i - 1]);
}

bool
ScalingCurve::isValid(std::uint32_t n) const
{
    return std::binary_search(ns_.begin(), ns_.end(), n);
}

double
ScalingCurve::timeAt(std::uint32_t n) const
{
    auto it = std::lower_bound(ns_.begin(), ns_.end(), n);
    fatalIf(it == ns_.end() || *it != n,
            strCat("timeAt: n=", n, " is not a valid allocation"));
    return times_[static_cast<std::size_t>(it - ns_.begin())];
}

double
ScalingCurve::eval(double n) const
{
    panicIf(n <= 0, "eval: n must be positive");
    const double n1 = static_cast<double>(ns_.front());
    if (n <= n1)
        return times_.front() * n1 / n; // hyperbolic extension
    if (n >= static_cast<double>(ns_.back()))
        return times_.back();

    // Linear interpolation in n between bracketing grid points.
    std::size_t hi = 1;
    while (static_cast<double>(ns_[hi]) < n)
        ++hi;
    const double n_lo = ns_[hi - 1], n_hi = ns_[hi];
    const double t_lo = times_[hi - 1], t_hi = times_[hi];
    const double w = (n - n_lo) / (n_hi - n_lo);
    return t_lo + w * (t_hi - t_lo);
}

double
ScalingCurve::inverse(double t) const
{
    panicIf(t <= 0, "inverse: t must be positive");
    if (t >= times_.front()) {
        // Slower than the smallest valid allocation: hyperbolic
        // region, n = n_1 * T(n_1) / t (possibly < 1).
        return static_cast<double>(ns_.front()) * times_.front() / t;
    }
    if (t <= times_.back())
        return static_cast<double>(ns_.back());

    // Find the grid segment with T(n_lo) >= t >= T(n_hi) and apply
    // the linear combination of Eq. (11).
    for (std::size_t i = 1; i < ns_.size(); ++i) {
        if (times_[i] <= t) {
            const double n_lo = ns_[i - 1], n_hi = ns_[i];
            const double t_lo = times_[i - 1], t_hi = times_[i];
            if (t_lo == t_hi)
                return n_lo;
            return ((t_lo - t) * n_hi + (t - t_hi) * n_lo) /
                   (t_lo - t_hi);
        }
    }
    panic("inverse: unreachable");
}

double
ScalingCurve::scalability(std::uint32_t n) const
{
    return times_.front() / timeAt(n);
}

std::pair<std::uint32_t, std::uint32_t>
ScalingCurve::bracketValid(double n_star) const
{
    panicIf(n_star <= 0, "bracketValid: n* must be positive");
    if (n_star < static_cast<double>(ns_.front()))
        return {0u, ns_.front()}; // dummy lower allocation (§3.3)
    if (n_star >= static_cast<double>(ns_.back()))
        return {ns_.back(), ns_.back()};
    std::size_t hi = 1;
    while (static_cast<double>(ns_[hi]) < n_star)
        ++hi;
    if (static_cast<double>(ns_[hi]) == n_star)
        return {ns_[hi], ns_[hi]}; // exactly on the grid
    return {ns_[hi - 1], ns_[hi]};
}

} // namespace spindle
