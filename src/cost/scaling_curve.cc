#include "cost/scaling_curve.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"

namespace spindle {

ScalingCurve::ScalingCurve(std::vector<std::uint32_t> valid_ns,
                           std::vector<double> times)
    : ns_(std::move(valid_ns)), times_(std::move(times))
{
    fatalIf(ns_.empty() || ns_.size() != times_.size(),
            "ScalingCurve: mismatched or empty grid");
    fatalIf(ns_.front() < 1, "ScalingCurve: allocations start at 1");
    for (std::size_t i = 1; i < ns_.size(); ++i)
        fatalIf(ns_[i] <= ns_[i - 1], "ScalingCurve: grid must ascend");
    for (double t : times_)
        fatalIf(t <= 0, "ScalingCurve: times must be positive");

    // Theorem 1 requires T positive and non-increasing; clamp any
    // estimation wiggle (e.g. a kernel-regime penalty) downward.
    for (std::size_t i = 1; i < times_.size(); ++i)
        times_[i] = std::min(times_[i], times_[i - 1]);

    index_of_.assign(ns_.back() + 1, -1);
    for (std::size_t i = 0; i < ns_.size(); ++i)
        index_of_[ns_[i]] = static_cast<std::int32_t>(i);
}

bool
ScalingCurve::isValid(std::uint32_t n) const
{
    return n < index_of_.size() && index_of_[n] >= 0;
}

double
ScalingCurve::timeAt(std::uint32_t n) const
{
    if (!isValid(n))
        fatal(strCat("timeAt: n=", n, " is not a valid allocation"));
    return times_[static_cast<std::size_t>(index_of_[n])];
}

std::uint32_t
ScalingCurve::nextValidAbove(std::uint32_t n) const
{
    auto it = std::upper_bound(ns_.begin(), ns_.end(), n);
    return it == ns_.end() ? 0 : *it;
}

double
ScalingCurve::eval(double n) const
{
    panicIf(n <= 0, "eval: n must be positive");
    const double n1 = static_cast<double>(ns_.front());
    if (n <= n1)
        return times_.front() * n1 / n; // hyperbolic extension
    if (n >= static_cast<double>(ns_.back()))
        return times_.back();

    // Linear interpolation in n between bracketing grid points.
    std::size_t hi = 1;
    while (static_cast<double>(ns_[hi]) < n)
        ++hi;
    const double n_lo = ns_[hi - 1], n_hi = ns_[hi];
    const double t_lo = times_[hi - 1], t_hi = times_[hi];
    const double w = (n - n_lo) / (n_hi - n_lo);
    return t_lo + w * (t_hi - t_lo);
}

double
ScalingCurve::inverse(double t) const
{
    // Negated form so NaN is rejected too (the former linear scan
    // ended in panic("unreachable") for NaN; the binary search would
    // silently interpolate with it).
    panicIf(!(t > 0), "inverse: t must be positive");
    const std::uint64_t key = std::bit_cast<std::uint64_t>(t);
    return inverse_memo_.getOrCompute(key, [&] {
        if (t >= times_.front()) {
            // Slower than the smallest valid allocation: hyperbolic
            // region, n = n_1 * T(n_1) / t (possibly < 1).
            return static_cast<double>(ns_.front()) * times_.front() /
                   t;
        }
        if (t <= times_.back())
            return static_cast<double>(ns_.back());
        // Find the grid segment with T(n_lo) >= t >= T(n_hi) and
        // apply the linear combination of Eq. (11). times_ is
        // non-increasing, so the first grid point with time <= t is
        // a binary search (partition_point over "time > t").
        auto seg = std::partition_point(
            times_.begin() + 1, times_.end(),
            [&](double grid_t) { return grid_t > t; });
        panicIf(seg == times_.end(), "inverse: unreachable");
        const std::size_t i =
            static_cast<std::size_t>(seg - times_.begin());
        const double n_lo = ns_[i - 1], n_hi = ns_[i];
        const double t_lo = times_[i - 1], t_hi = times_[i];
        if (t_lo == t_hi)
            return n_lo;
        return ((t_lo - t) * n_hi + (t - t_hi) * n_lo) /
               (t_lo - t_hi);
    });
}

double
ScalingCurve::scalability(std::uint32_t n) const
{
    return times_.front() / timeAt(n);
}

std::pair<std::uint32_t, std::uint32_t>
ScalingCurve::bracketValid(double n_star) const
{
    panicIf(n_star <= 0, "bracketValid: n* must be positive");
    if (n_star < static_cast<double>(ns_.front()))
        return {0u, ns_.front()}; // dummy lower allocation (§3.3)
    if (n_star >= static_cast<double>(ns_.back()))
        return {ns_.back(), ns_.back()};
    std::size_t hi = 1;
    while (static_cast<double>(ns_[hi]) < n_star)
        ++hi;
    if (static_cast<double>(ns_[hi]) == n_star)
        return {ns_[hi], ns_[hi]}; // exactly on the grid
    return {ns_[hi - 1], ns_[hi]};
}

} // namespace spindle
