/**
 * @file
 * Generalized piecewise alpha-beta execution-time model (Appendix A).
 *
 * The paper models the per-operator time of MetaOp m on n devices as
 *
 *   T_m(n) = alpha_{m,i} + beta_{m,i} c_m + beta'_{m,i} w_m / n
 *            for n in [n_{i-1}, n_i],
 *
 * i.e. within each piece the time is affine in 1/n: the alpha term
 * captures fixed overheads (kernel launches), the beta terms capture
 * non-scaling and scaling workload. Since c_m and w_m are constants
 * of the MetaOp, each piece folds to T(n) = a + b / n; pieces exist
 * because different per-device workloads invoke different kernels.
 */

#ifndef SPINDLE_COST_ALPHA_BETA_H
#define SPINDLE_COST_ALPHA_BETA_H

#include <cstdint>
#include <vector>

namespace spindle {

/** One affine-in-1/n piece covering device counts [nLo, nHi]. */
struct AlphaBetaPiece
{
    double nLo = 1;
    double nHi = 1;
    double a = 0; ///< folded alpha + beta * c term
    double b = 0; ///< folded beta' * w term

    /** Evaluate the piece at (possibly fractional) n > 0. */
    double eval(double n) const { return a + b / n; }
};

/**
 * A fitted piecewise alpha-beta curve. Pieces are contiguous and
 * ascending in n; evaluation clamps into [nLo of first, nHi of last]
 * except below the first knot, where the curve extrapolates
 * hyperbolically (workload / n with no fixed-cost change), which is
 * what the continuous MPSP relaxation needs for n < 1.
 */
class PiecewiseAlphaBeta
{
  public:
    /** Append a piece; must continue the previous piece's range. */
    void addPiece(AlphaBetaPiece piece);

    bool empty() const { return pieces_.empty(); }
    std::size_t numPieces() const { return pieces_.size(); }
    const std::vector<AlphaBetaPiece> &pieces() const { return pieces_; }

    double nMin() const;
    double nMax() const;

    /** Evaluate at fractional n > 0 (see class comment for range). */
    double eval(double n) const;

    /**
     * Fit a curve through profiled samples (n_i, t_i), n ascending:
     * one piece per adjacent sample pair, solved exactly for (a, b).
     * With @p single_piece, fit one least-squares piece over all
     * samples instead (the non-piecewise baseline the paper compares
     * against in Appendix A).
     */
    static PiecewiseAlphaBeta fit(const std::vector<double> &ns,
                                  const std::vector<double> &times,
                                  bool single_piece = false);

  private:
    std::vector<AlphaBetaPiece> pieces_;
};

} // namespace spindle

#endif // SPINDLE_COST_ALPHA_BETA_H
