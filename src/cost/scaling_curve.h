/**
 * @file
 * Scaling curve of one MetaOp (paper §3.2, Fig. 4): the estimated
 * per-operator execution time T_m(n) over the *valid* allocation
 * grid, with the continuous evaluation and inversion operations the
 * resource allocator's bisection search consumes (Appendix B).
 */

#ifndef SPINDLE_COST_SCALING_CURVE_H
#define SPINDLE_COST_SCALING_CURVE_H

#include <cstdint>
#include <vector>

#include "common/sharded_memo.h"
#include "cost/alpha_beta.h"

namespace spindle {

/**
 * Per-MetaOp scaling curve.
 *
 * The curve is represented on the MetaOp's valid allocations
 * n_1 < n_2 < ... < n_k with per-operator times t_1 >= ... >= t_k
 * (enforced non-increasing, as Theorem 1 requires). Between grid
 * points, evaluation and inversion are linear in n — exactly the
 * Find_Inverse_Value interpolation of Appendix B, Eq. (11). Below
 * n_1 the curve extends hyperbolically (t = t_1 * n_1 / n), which
 * gives the continuous MPSP relaxation meaning for fractional
 * allocations smaller than one device.
 *
 * Lookups are planner hot-path operations (placement and scheduling
 * query the same (MetaOp, n) pairs hundreds of times per plan), so
 * grid queries go through a dense n -> grid-index table and inverse()
 * keeps a small memo of recently inverted times. All caches are
 * value-transparent: a cached query returns the bit-identical double
 * the uncached code path would. Thread-safe for concurrent const
 * lookups: timeAt()/nextValidAbove()/eval() read only immutable
 * grids, and the inverse() memo is a striped-lock StripedMemo — the
 * parallel allocator bisects several MetaLevels at once against the
 * same curves.
 */
class ScalingCurve
{
  public:
    /**
     * @param valid_ns ascending valid allocations (n_1 >= 1)
     * @param times per-operator time at each valid allocation; values
     *        are clamped to be non-increasing (running minimum)
     */
    ScalingCurve(std::vector<std::uint32_t> valid_ns,
                 std::vector<double> times);

    const std::vector<std::uint32_t> &validNs() const { return ns_; }

    std::uint32_t minValid() const { return ns_.front(); }
    std::uint32_t maxValid() const { return ns_.back(); }

    /** True iff @p n is on the valid-allocation grid. */
    bool isValid(std::uint32_t n) const;

    /** Grid time at a valid allocation; fatal if @p n is not valid. */
    double timeAt(std::uint32_t n) const;

    /**
     * Smallest valid allocation strictly greater than @p n, or 0
     * when @p n is already at or above maxValid() (the scheduler's
     * resource-extension query, O(log k) instead of a grid scan).
     */
    std::uint32_t nextValidAbove(std::uint32_t n) const;

    /** Continuous T(n) for fractional n > 0 (see class comment). */
    double eval(double n) const;

    /**
     * T^{-1}(t): the fractional allocation at which the curve
     * reaches time @p t (Appendix B, Find_Inverse_Value).
     * Clamps to maxValid() when @p t is below the fastest time.
     */
    double inverse(double t) const;

    /** Resource scalability sigma(n) = T(n_1) / T(n) (Fig. 4). */
    double scalability(std::uint32_t n) const;

    /**
     * Closest valid allocations bracketing a fractional n*:
     * returns {floor, ceil} on the valid grid; floor is 0 (dummy,
     * §3.3) when n* lies below the smallest valid allocation.
     */
    std::pair<std::uint32_t, std::uint32_t>
    bracketValid(double n_star) const;

  private:
    std::vector<std::uint32_t> ns_;
    std::vector<double> times_;

    /** Dense n -> index into ns_/times_ (-1 = not valid). */
    std::vector<std::int32_t> index_of_;

    /** Memo of inverse() results keyed by the bit pattern of t
     *  (striped-lock: concurrent planner lookups are safe). */
    StripedMemo<std::uint64_t, double> inverse_memo_{1 << 13};
};

} // namespace spindle

#endif // SPINDLE_COST_SCALING_CURVE_H
