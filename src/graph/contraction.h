/**
 * @file
 * Graph contraction (paper §3.1): fuse runs of identical consecutive
 * operators into MetaOps, producing the MetaGraph the planner
 * optimizes over.
 */

#ifndef SPINDLE_GRAPH_CONTRACTION_H
#define SPINDLE_GRAPH_CONTRACTION_H

#include "graph/meta_graph.h"

namespace spindle {

/**
 * Contract @p graph into a MetaGraph.
 *
 * Operators i and j merge into one MetaOp iff (paper §3.1):
 *  1. <i, j> is an edge, out-degree(i) == 1 and in-degree(j) == 1,
 *     so they are direct predecessor/successor of each other; and
 *  2. they share the same operator type and input data size
 *     (we additionally require equal FLOPs and activation bytes,
 *     which "identical workload" implies).
 *
 * The traversal follows topological order and contracts until no
 * further pair qualifies, yielding maximal chains. MetaLevels are
 * assigned by dependency depth inside the MetaGraph constructor.
 *
 * @param graph finalized computation graph (must outlive the result)
 * @return contracted MetaGraph with MetaLevels assigned
 */
MetaGraph contractGraph(const ComputationGraph &graph);

/**
 * Deleted: the MetaGraph keeps a reference to @p graph, so feeding
 * a temporary (e.g. contractGraph(buildMultitaskClip({}))) would
 * dangle. Bind the graph to a variable first.
 */
MetaGraph contractGraph(ComputationGraph &&graph) = delete;

} // namespace spindle

#endif // SPINDLE_GRAPH_CONTRACTION_H
