#include "graph/operator.h"

#include "common/logging.h"

namespace spindle {

const char *
opTypeName(OpType type)
{
    switch (type) {
      case OpType::Text: return "Text";
      case OpType::Vision: return "Vision";
      case OpType::Audio: return "Audio";
      case OpType::Depth: return "Depth";
      case OpType::Thermal: return "Thermal";
      case OpType::Motion: return "Motion";
      case OpType::Box: return "Box";
      case OpType::LM: return "LM";
      case OpType::Adaptor: return "Adaptor";
      case OpType::Contrastive: return "Contrastive";
      case OpType::Custom: return "Custom";
    }
    panic("opTypeName: unknown OpType");
}

std::string
TensorShape::str() const
{
    return strCat("[", batch, ", ", seq, ", ", hidden, "]");
}

} // namespace spindle
