/**
 * @file
 * The contracted MetaGraph G_M = (V_M, E_M) of paper §3.1.
 *
 * Each MetaOp m groups L_m consecutive operators of identical
 * workload (same operator type and input data size, linked by a
 * straight-line data flow). MetaOps are further decoupled into
 * MetaLevels: MetaOps of the same level have no dependencies among
 * each other, so the planner can allocate and schedule each level
 * individually (§3.3, §3.4).
 */

#ifndef SPINDLE_GRAPH_META_GRAPH_H
#define SPINDLE_GRAPH_META_GRAPH_H

#include <vector>

#include "graph/computation_graph.h"

namespace spindle {

/** Dense integer id of a MetaOp within one MetaGraph. */
using MetaOpId = std::int32_t;

/**
 * A fused run of L_m identical operators.
 *
 * Per-operator workload quantities (flopsFwdPerOp etc.) are shared by
 * all members; the paper's execution-time function T_m(n) is the time
 * of *one* member operator on n devices.
 */
struct MetaOp
{
    MetaOpId id = -1;
    std::string name;
    OpType type = OpType::Custom;
    TensorShape input;

    /** Member operator ids, in chain (execution) order. */
    std::vector<OpId> ops;

    std::int32_t taskId = 0;

    /** MetaLevel (BFS depth); assigned by contraction. */
    std::int32_t level = -1;

    /** Forward FLOPs of one member operator. */
    double flopsFwdPerOp = 0;

    /** Parameter bytes of one member operator. */
    double paramBytesPerOp = 0;

    /** Output activation bytes of one member operator. */
    double activationBytes = 0;

    /** Number of member operators, L_m. */
    std::int64_t numOps() const
    {
        return static_cast<std::int64_t>(ops.size());
    }
};

/**
 * Synthesize an OperatorDesc describing one member operator of
 * @p m (the workload the hardware model prices as T_m(n)).
 */
OperatorDesc memberDesc(const MetaOp &m);

/** Data flow between MetaOps with aggregated volume in bytes. */
struct MetaEdge
{
    MetaOpId src = -1;
    MetaOpId dst = -1;
    double flowBytes = 0;
};

/**
 * Frozen contracted graph. Produced by contractGraph() (§3.1); holds
 * a non-owning pointer to the base graph, which must outlive it.
 */
class MetaGraph
{
  public:
    MetaGraph(const ComputationGraph *base, std::vector<MetaOp> nodes,
              std::vector<MetaEdge> edges);

    const ComputationGraph &base() const { return *base_; }

    std::size_t numMetaOps() const { return nodes_.size(); }
    const MetaOp &metaOp(MetaOpId id) const;
    const std::vector<MetaOp> &metaOps() const { return nodes_; }
    const std::vector<MetaEdge> &edges() const { return edges_; }

    /** MetaOp id that contains base operator @p op. */
    MetaOpId metaOf(OpId op) const;

    const std::vector<MetaOpId> &successors(MetaOpId id) const;
    const std::vector<MetaOpId> &predecessors(MetaOpId id) const;

    /** Number of MetaLevels. */
    std::size_t numLevels() const { return levels_.size(); }

    /** MetaOp ids at level @p k (0-based, dependency depth order). */
    const std::vector<MetaOpId> &level(std::size_t k) const;

  private:
    const ComputationGraph *base_;
    std::vector<MetaOp> nodes_;
    std::vector<MetaEdge> edges_;
    std::vector<std::vector<MetaOpId>> succ_;
    std::vector<std::vector<MetaOpId>> pred_;
    std::vector<MetaOpId> op_to_meta_;
    std::vector<std::vector<MetaOpId>> levels_;
};

} // namespace spindle

#endif // SPINDLE_GRAPH_META_GRAPH_H
