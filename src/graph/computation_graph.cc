#include "graph/computation_graph.h"

#include <algorithm>
#include <map>
#include <queue>

#include "common/logging.h"

namespace spindle {

OpId
ComputationGraph::addOperator(OperatorDesc desc)
{
    checkFinalized(false);
    desc.id = static_cast<OpId>(ops_.size());
    ops_.push_back(std::move(desc));
    return ops_.back().id;
}

void
ComputationGraph::addEdge(OpId src, OpId dst)
{
    checkFinalized(false);
    fatalIf(src < 0 || static_cast<std::size_t>(src) >= ops_.size(),
            strCat("addEdge: bad src ", src));
    fatalIf(dst < 0 || static_cast<std::size_t>(dst) >= ops_.size(),
            strCat("addEdge: bad dst ", dst));
    fatalIf(src == dst, "addEdge: self-loop is not a DAG edge");
    edges_.push_back({src, dst});
}

void
ComputationGraph::finalize()
{
    checkFinalized(false);
    succ_.assign(ops_.size(), {});
    pred_.assign(ops_.size(), {});
    for (const Edge &e : edges_) {
        succ_[e.src].push_back(e.dst);
        pred_[e.dst].push_back(e.src);
    }

    // Kahn's algorithm both validates acyclicity and yields the
    // topological order used by graph contraction (§3.1).
    std::vector<std::size_t> in_deg(ops_.size());
    std::queue<OpId> ready;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
        in_deg[i] = pred_[i].size();
        if (in_deg[i] == 0)
            ready.push(static_cast<OpId>(i));
    }
    topo_.clear();
    topo_.reserve(ops_.size());
    while (!ready.empty()) {
        OpId id = ready.front();
        ready.pop();
        topo_.push_back(id);
        for (OpId nxt : succ_[id]) {
            if (--in_deg[nxt] == 0)
                ready.push(nxt);
        }
    }
    fatalIf(topo_.size() != ops_.size(),
            "ComputationGraph::finalize: graph contains a cycle");
    finalized_ = true;
}

const OperatorDesc &
ComputationGraph::op(OpId id) const
{
    // Guard-then-panic: keep the strCat off the happy path (this is
    // a planner hot-path accessor).
    if (id < 0 || static_cast<std::size_t>(id) >= ops_.size())
        panic(strCat("op: bad id ", id));
    return ops_[id];
}

const std::vector<OpId> &
ComputationGraph::successors(OpId id) const
{
    checkFinalized(true);
    panicIf(id < 0 || static_cast<std::size_t>(id) >= succ_.size(),
            strCat("successors: bad id ", id));
    return succ_[id];
}

const std::vector<OpId> &
ComputationGraph::predecessors(OpId id) const
{
    checkFinalized(true);
    panicIf(id < 0 || static_cast<std::size_t>(id) >= pred_.size(),
            strCat("predecessors: bad id ", id));
    return pred_[id];
}

const std::vector<OpId> &
ComputationGraph::topoOrder() const
{
    checkFinalized(true);
    return topo_;
}

double
ComputationGraph::totalFlopsFwd() const
{
    double total = 0;
    for (const auto &o : ops_)
        total += o.flopsFwd;
    return total;
}

double
ComputationGraph::totalUniqueParamBytes() const
{
    double total = 0;
    std::map<ParamKey, double> shared;
    for (const auto &o : ops_) {
        if (o.paramKey == kNoParam) {
            total += o.paramBytes;
        } else {
            // Count each shared parameter set once, at its largest
            // reported size (they should all agree).
            auto [it, inserted] = shared.emplace(o.paramKey, o.paramBytes);
            if (!inserted)
                it->second = std::max(it->second, o.paramBytes);
        }
    }
    for (const auto &[key, bytes] : shared)
        total += bytes;
    return total;
}

void
ComputationGraph::checkFinalized(bool expect) const
{
    if (expect)
        panicIf(!finalized_, "graph must be finalized first");
    else
        panicIf(finalized_, "graph is already finalized");
}

} // namespace spindle
