/**
 * @file
 * The unified directed acyclic computation graph G = (V, E) of an MT
 * MM training workload (paper §3, problem formulation).
 *
 * Nodes are operators; a directed edge <i, j> denotes the data flow
 * from operator i to operator j. The graph is built incrementally
 * (addOperator / addEdge) and then finalized, which validates
 * acyclicity and computes a topological order.
 */

#ifndef SPINDLE_GRAPH_COMPUTATION_GRAPH_H
#define SPINDLE_GRAPH_COMPUTATION_GRAPH_H

#include <vector>

#include "graph/operator.h"

namespace spindle {

/** Directed data-flow edge between two operators. */
struct Edge
{
    OpId src = -1;
    OpId dst = -1;

    bool operator==(const Edge &other) const = default;
};

/**
 * Mutable-then-frozen DAG of operators.
 *
 * After finalize() the structure is immutable and exposes adjacency
 * and a topological order; all later pipeline stages (§3.1 onwards)
 * consume the frozen form.
 */
class ComputationGraph
{
  public:
    /**
     * Add an operator; its id is assigned densely in insertion order.
     *
     * @param desc operator description (desc.id is overwritten)
     * @return the assigned id
     */
    OpId addOperator(OperatorDesc desc);

    /** Add a data-flow edge; both endpoints must already exist. */
    void addEdge(OpId src, OpId dst);

    /**
     * Freeze the graph: validate acyclicity and precompute adjacency
     * plus a topological order. fatal() on a cyclic graph.
     */
    void finalize();

    bool finalized() const { return finalized_; }

    std::size_t numOps() const { return ops_.size(); }
    std::size_t numEdges() const { return edges_.size(); }

    const OperatorDesc &op(OpId id) const;
    const std::vector<OperatorDesc> &ops() const { return ops_; }
    const std::vector<Edge> &edges() const { return edges_; }

    /** Successor op ids of @p id (requires finalized()). */
    const std::vector<OpId> &successors(OpId id) const;

    /** Predecessor op ids of @p id (requires finalized()). */
    const std::vector<OpId> &predecessors(OpId id) const;

    /** Out-degree / in-degree (requires finalized()). */
    std::size_t outDegree(OpId id) const { return successors(id).size(); }
    std::size_t inDegree(OpId id) const { return predecessors(id).size(); }

    /** Operator ids in a valid topological order (requires finalized()). */
    const std::vector<OpId> &topoOrder() const;

    /** Total forward FLOPs over all operators. */
    double totalFlopsFwd() const;

    /** Total parameter bytes, counting each shared ParamKey once. */
    double totalUniqueParamBytes() const;

  private:
    void checkFinalized(bool expect) const;

    std::vector<OperatorDesc> ops_;
    std::vector<Edge> edges_;
    std::vector<std::vector<OpId>> succ_;
    std::vector<std::vector<OpId>> pred_;
    std::vector<OpId> topo_;
    bool finalized_ = false;
};

} // namespace spindle

#endif // SPINDLE_GRAPH_COMPUTATION_GRAPH_H
