#include "graph/contraction.h"

#include <map>
#include <utility>

#include "common/logging.h"
#include "common/math_util.h"

namespace spindle {

namespace {

/** Contraction criterion for appending op j to the chain ending at i. */
bool
contractible(const ComputationGraph &g, OpId i, OpId j)
{
    if (g.outDegree(i) != 1 || g.inDegree(j) != 1)
        return false;
    const OperatorDesc &a = g.op(i);
    const OperatorDesc &b = g.op(j);
    return a.type == b.type && a.input == b.input &&
           nearlyEqual(a.flopsFwd, b.flopsFwd) &&
           nearlyEqual(a.activationBytes, b.activationBytes);
}

} // namespace

MetaGraph
contractGraph(const ComputationGraph &graph)
{
    fatalIf(!graph.finalized(), "contractGraph: graph must be finalized");

    // chain_of[op] = id of the chain the operator belongs to.
    std::vector<std::int32_t> chain_of(graph.numOps(), -1);
    std::vector<std::vector<OpId>> chains;

    for (OpId id : graph.topoOrder()) {
        // Extend the predecessor's chain when the criterion holds;
        // topological order guarantees the predecessor was visited.
        bool extended = false;
        if (graph.inDegree(id) == 1) {
            OpId p = graph.predecessors(id)[0];
            if (contractible(graph, p, id)) {
                std::int32_t c = chain_of[p];
                chains[c].push_back(id);
                chain_of[id] = c;
                extended = true;
            }
        }
        if (!extended) {
            chain_of[id] = static_cast<std::int32_t>(chains.size());
            chains.push_back({id});
        }
    }

    std::vector<MetaOp> nodes;
    nodes.reserve(chains.size());
    for (std::size_t c = 0; c < chains.size(); ++c) {
        const OperatorDesc &head = graph.op(chains[c][0]);
        MetaOp m;
        m.id = static_cast<MetaOpId>(c);
        m.name = strCat(opTypeName(head.type), head.input.str(),
                        "@task", head.taskId);
        m.type = head.type;
        m.input = head.input;
        m.ops = chains[c];
        m.taskId = head.taskId;
        m.flopsFwdPerOp = head.flopsFwd;
        m.paramBytesPerOp = head.paramBytes;
        m.activationBytes = head.activationBytes;
        nodes.push_back(std::move(m));
    }

    // Lift base edges to meta edges, accumulating parallel flows.
    std::map<std::pair<MetaOpId, MetaOpId>, double> flow;
    for (const Edge &e : graph.edges()) {
        MetaOpId ms = chain_of[e.src];
        MetaOpId md = chain_of[e.dst];
        if (ms == md)
            continue; // intra-MetaOp flow
        flow[{ms, md}] += graph.op(e.src).activationBytes;
    }
    std::vector<MetaEdge> edges;
    edges.reserve(flow.size());
    for (const auto &[key, bytes] : flow)
        edges.push_back({key.first, key.second, bytes});

    return MetaGraph(&graph, std::move(nodes), std::move(edges));
}

} // namespace spindle
