/**
 * @file
 * Operator-level description of an MT MM computation graph node
 * (paper §3, problem formulation).
 *
 * Each node i in the unified computation graph G = (V, E) is a
 * computational operator: typically one Transformer layer of a
 * modality encoder or of the cross-modal module. The description
 * carries everything the planner and runtime need — workload type and
 * input data size (the contraction criteria of §3.1), forward FLOPs,
 * parameter and activation footprints, the owning task, and the
 * identity of the (possibly shared) parameter set for inter-task
 * gradient synchronization (§3.6 step 3).
 */

#ifndef SPINDLE_GRAPH_OPERATOR_H
#define SPINDLE_GRAPH_OPERATOR_H

#include <cstdint>
#include <string>

namespace spindle {

/** Dense integer id of an operator within one ComputationGraph. */
using OpId = std::int32_t;

/** Identity of a parameter set; ops sharing it share weights. */
using ParamKey = std::int32_t;

/** Sentinel: operator holds no shared parameter set. */
constexpr ParamKey kNoParam = -1;

/**
 * Workload category of an operator. Two operators contract into the
 * same MetaOp only if their type and input size match (§3.1 crit. 2).
 */
enum class OpType : std::uint8_t
{
    Text,
    Vision,
    Audio,
    Depth,
    Thermal,
    Motion,
    Box,
    LM,          ///< unified language-model (cross-modal) layer
    Adaptor,     ///< lightweight modality adaptor (OFASys-style)
    Contrastive, ///< contrastive-loss cross-modal module (CLIP-style)
    Custom,
};

/** Human-readable name of an OpType. */
const char *opTypeName(OpType type);

/**
 * Input data size of an operator, [batch, sequence, hidden] as in the
 * paper's Fig. 3 (e.g. audio op [8, 229, 768]).
 */
struct TensorShape
{
    std::int64_t batch = 0;
    std::int64_t seq = 0;
    std::int64_t hidden = 0;

    /** Total number of elements. */
    std::int64_t numel() const { return batch * seq * hidden; }

    bool operator==(const TensorShape &other) const = default;

    /** Render as "[b, s, h]". */
    std::string str() const;
};

/**
 * Full description of one computation-graph operator.
 *
 * Workload quantities are for the *forward* pass of this single
 * operator at full (un-partitioned) batch; the hardware model derives
 * backward cost (~2x) and per-device shares from these.
 */
struct OperatorDesc
{
    OpId id = -1;
    std::string name;
    OpType type = OpType::Custom;
    TensorShape input;

    /** Forward FLOPs for one execution of this operator. */
    double flopsFwd = 0;

    /** Bytes of parameters held by this operator. */
    double paramBytes = 0;

    /** Bytes of output activation (the data-flow volume out). */
    double activationBytes = 0;

    /** Owning task (index into the workload's task list). */
    std::int32_t taskId = 0;

    /**
     * Identity of the parameter set. Operators in different tasks
     * carrying the same key share weights and must have gradients
     * synchronized across the devices hosting them (§3.6).
     */
    ParamKey paramKey = kNoParam;
};

} // namespace spindle

#endif // SPINDLE_GRAPH_OPERATOR_H
