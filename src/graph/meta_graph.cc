#include "graph/meta_graph.h"

#include <algorithm>

#include "common/logging.h"

namespace spindle {

MetaGraph::MetaGraph(const ComputationGraph *base, std::vector<MetaOp> nodes,
                     std::vector<MetaEdge> edges)
    : base_(base), nodes_(std::move(nodes)), edges_(std::move(edges))
{
    panicIf(base_ == nullptr, "MetaGraph: null base graph");
    succ_.assign(nodes_.size(), {});
    pred_.assign(nodes_.size(), {});
    for (const MetaEdge &e : edges_) {
        succ_[e.src].push_back(e.dst);
        pred_[e.dst].push_back(e.src);
    }

    op_to_meta_.assign(base_->numOps(), -1);
    for (const MetaOp &m : nodes_)
        for (OpId op : m.ops)
            op_to_meta_[op] = m.id;
    for (std::size_t i = 0; i < op_to_meta_.size(); ++i)
        panicIf(op_to_meta_[i] < 0,
                strCat("MetaGraph: base op ", i, " not covered"));

    // Dependency depth: level(m) = 1 + max level over predecessors.
    // MetaOps sharing a level are therefore guaranteed independent
    // (§3.1 "Disentangling MetaOp Dependency with MetaLevels").
    std::int32_t max_level = -1;
    std::vector<std::size_t> in_deg(nodes_.size());
    std::vector<MetaOpId> order;
    order.reserve(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        in_deg[i] = pred_[i].size();
        if (in_deg[i] == 0)
            order.push_back(static_cast<MetaOpId>(i));
    }
    for (std::size_t head = 0; head < order.size(); ++head) {
        MetaOpId id = order[head];
        std::int32_t lvl = 0;
        for (MetaOpId p : pred_[id])
            lvl = std::max(lvl, nodes_[p].level + 1);
        nodes_[id].level = lvl;
        max_level = std::max(max_level, lvl);
        for (MetaOpId nxt : succ_[id]) {
            if (--in_deg[nxt] == 0)
                order.push_back(nxt);
        }
    }
    panicIf(order.size() != nodes_.size(), "MetaGraph: cyclic meta edges");

    levels_.assign(static_cast<std::size_t>(max_level + 1), {});
    for (const MetaOp &m : nodes_)
        levels_[m.level].push_back(m.id);
}

OperatorDesc
memberDesc(const MetaOp &m)
{
    OperatorDesc d;
    d.name = m.name;
    d.type = m.type;
    d.input = m.input;
    d.flopsFwd = m.flopsFwdPerOp;
    d.paramBytes = m.paramBytesPerOp;
    d.activationBytes = m.activationBytes;
    d.taskId = m.taskId;
    return d;
}

const MetaOp &
MetaGraph::metaOp(MetaOpId id) const
{
    // Guard-then-panic: keep the strCat off the happy path (this is
    // a planner hot-path accessor).
    if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size())
        panic(strCat("metaOp: bad id ", id));
    return nodes_[id];
}

MetaOpId
MetaGraph::metaOf(OpId op) const
{
    panicIf(op < 0 || static_cast<std::size_t>(op) >= op_to_meta_.size(),
            strCat("metaOf: bad op id ", op));
    return op_to_meta_[op];
}

const std::vector<MetaOpId> &
MetaGraph::successors(MetaOpId id) const
{
    panicIf(id < 0 || static_cast<std::size_t>(id) >= succ_.size(),
            strCat("successors: bad id ", id));
    return succ_[id];
}

const std::vector<MetaOpId> &
MetaGraph::predecessors(MetaOpId id) const
{
    panicIf(id < 0 || static_cast<std::size_t>(id) >= pred_.size(),
            strCat("predecessors: bad id ", id));
    return pred_[id];
}

const std::vector<MetaOpId> &
MetaGraph::level(std::size_t k) const
{
    panicIf(k >= levels_.size(), strCat("level: bad index ", k));
    return levels_[k];
}

} // namespace spindle
