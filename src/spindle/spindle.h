/**
 * @file
 * Umbrella header: the full public API of the Spindle library.
 *
 * Typical usage (see examples/quickstart.cc):
 * @code
 *   using namespace spindle;
 *   ComputationGraph graph = buildMultitaskClip({.numTasks = 4});
 *   MetaGraph meta = contractGraph(graph);
 *   ClusterTopology topo({.numNodes = 2, .gpusPerNode = 8});
 *   HardwareModel hw(topo);
 *   SpindleSystem spindle_sys(hw);
 *   SystemResult r = spindle_sys.runIteration(meta);
 * @endcode
 */

#ifndef SPINDLE_SPINDLE_H
#define SPINDLE_SPINDLE_H

#include "baselines/distmm_mt.h"
#include "baselines/optimus.h"
#include "baselines/sequential.h"
#include "baselines/spindle_system.h"
#include "baselines/system.h"
#include "common/csv.h"
#include "common/logging.h"
#include "common/units.h"
#include "cost/estimator.h"
#include "graph/contraction.h"
#include "hardware/hardware_model.h"
#include "models/multitask_clip.h"
#include "models/ofasys.h"
#include "models/qwen_val.h"
#include "models/task.h"
#include "planner/planner.h"
#include "runtime/engine.h"
#include "runtime/recovery.h"
#include "service/plan_service.h"
#include "sim/fault.h"

#endif // SPINDLE_SPINDLE_H
