/**
 * @file
 * Inter-wave transmission operators (paper §3.6 step 2).
 *
 * The runtime inserts transmissions to carry data flows across wave
 * boundaries: a MetaOp's first slice consumes the outputs of its
 * predecessor MetaOps' final slices, and every later slice consumes
 * the output of the same MetaOp's previous slice. Depending on the
 * device sets involved this is an on-device copy, an intra-island
 * NVLink transfer, or an inter-island P2P transfer; the collective
 * model prices each case.
 */

#ifndef SPINDLE_RUNTIME_TRANSMISSION_H
#define SPINDLE_RUNTIME_TRANSMISSION_H

#include <vector>

#include "hardware/collective.h"
#include "planner/execution_plan.h"

namespace spindle {

/** One inter-wave data movement. */
struct TransmissionOp
{
    /** Producing / consuming wave indices (src < dst in fwd order). */
    std::int32_t srcWave = -1;
    std::int32_t dstWave = -1;

    /** MetaOp whose input this transmission feeds. */
    MetaOpId dstMeta = -1;

    double bytes = 0;
    DeviceSet srcDevices;
    DeviceSet dstDevices;

    /** Transfer time, seconds (0 when resident). */
    double seconds = 0;
};

/**
 * Derive every transmission a plan requires. Entries must be placed
 * (devices filled in). Transmissions whose source and destination
 * device sets coincide cost nothing and are omitted.
 */
std::vector<TransmissionOp>
buildTransmissions(const MetaGraph &graph, const ExecutionPlan &plan,
                   const CollectiveModel &coll);

/** Total bytes moved (ablation metric for Fig. 10). */
double totalTransmissionBytes(const std::vector<TransmissionOp> &ops);

} // namespace spindle

#endif // SPINDLE_RUNTIME_TRANSMISSION_H
