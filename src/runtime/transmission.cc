#include "runtime/transmission.h"

#include <map>

#include "common/logging.h"

namespace spindle {

std::vector<TransmissionOp>
buildTransmissions(const MetaGraph &graph, const ExecutionPlan &plan,
                   const CollectiveModel &coll)
{
    // Locate, for each (MetaOp, ops-completed) prefix, the wave and
    // devices that produced it.
    struct Producer
    {
        std::int32_t wave;
        const DeviceSet *devices;
    };
    std::map<std::pair<MetaOpId, std::int64_t>, Producer> producer;
    for (const Wave &w : plan.waves) {
        for (const WaveEntry &e : w.entries) {
            panicIf(e.devices.empty(),
                    "buildTransmissions: plan is not placed");
            producer[{e.metaOp, e.opBegin + e.numOps}] =
                Producer{w.index, &e.devices};
        }
    }

    std::vector<TransmissionOp> out;
    auto emit = [&](const Producer &src, const Wave &dst_wave,
                    const WaveEntry &dst, double bytes) {
        if (*src.devices == dst.devices)
            return; // resident: no transmission operator needed
        TransmissionOp t;
        t.srcWave = src.wave;
        t.dstWave = dst_wave.index;
        t.dstMeta = dst.metaOp;
        t.bytes = bytes;
        t.srcDevices = *src.devices;
        t.dstDevices = dst.devices;
        t.seconds = coll.flowTime(bytes, t.srcDevices, t.dstDevices);
        out.push_back(std::move(t));
    };

    for (const Wave &w : plan.waves) {
        for (const WaveEntry &e : w.entries) {
            const MetaOp &m = graph.metaOp(e.metaOp);
            if (e.opBegin == 0) {
                // First slice: pull each predecessor's final output.
                for (const MetaEdge &edge : graph.edges()) {
                    if (edge.dst != e.metaOp)
                        continue;
                    auto it = producer.find(
                        {edge.src, graph.metaOp(edge.src).numOps()});
                    panicIf(it == producer.end(),
                            "buildTransmissions: predecessor output "
                            "missing (invalid plan)");
                    emit(it->second, w, e, edge.flowBytes);
                }
            } else {
                // Later slice: pull the previous slice's output.
                auto it = producer.find({e.metaOp, e.opBegin});
                panicIf(it == producer.end(),
                        "buildTransmissions: missing previous slice");
                emit(it->second, w, e, m.activationBytes);
            }
        }
    }
    return out;
}

double
totalTransmissionBytes(const std::vector<TransmissionOp> &ops)
{
    double total = 0;
    for (const TransmissionOp &t : ops)
        total += t.bytes;
    return total;
}

} // namespace spindle
