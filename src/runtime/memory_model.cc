#include "runtime/memory_model.h"

#include "common/logging.h"

namespace spindle {

MemoryModel::MemoryModel(MemoryParams params)
    : params_(params)
{
    fatalIf(params_.optimizerFactor < 0 || params_.activationFactor < 0,
            "MemoryModel: negative factors");
}

double
MemoryModel::paramStateBytesPerDevice(const MetaOp &m, std::int64_t l,
                                      ParallelConfig cfg) const
{
    panicIf(l < 0, "paramStateBytesPerDevice: negative slice");
    const double tp = cfg.tp;
    const double dp = cfg.dp;
    const double param_shard = m.paramBytesPerOp / tp /
                               (params_.zeroShardParams ? dp : 1.0);
    const double opt_shard = m.paramBytesPerOp / tp *
                             params_.optimizerFactor /
                             (params_.zeroShardOptimizer ? dp : 1.0);
    return static_cast<double>(l) * (param_shard + opt_shard);
}

double
MemoryModel::activationBytesPerDevice(const MetaOp &m, std::int64_t l,
                                      ParallelConfig cfg) const
{
    panicIf(l < 0, "activationBytesPerDevice: negative slice");
    const double n = cfg.devices();
    return static_cast<double>(l) * m.activationBytes *
           params_.activationFactor / n;
}

double
MemoryModel::sliceBytesPerDevice(const MetaOp &m, std::int64_t l,
                                 ParallelConfig cfg) const
{
    return paramStateBytesPerDevice(m, l, cfg) +
           activationBytesPerDevice(m, l, cfg);
}

} // namespace spindle
