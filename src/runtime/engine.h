/**
 * @file
 * Spindle runtime engine (paper §3.6).
 *
 * Executes a placed plan on the cluster simulator, one training
 * iteration at a time: wave-by-wave forward, wave-by-wave backward
 * in reverse, transmission operators at wave boundaries, and
 * group-wise parameter synchronization after the backward phase.
 * Wave dispatch is driven through the discrete-event queue; every
 * busy interval lands in the timeline, from which iteration time,
 * the Fig. 10 breakdown, and all utilization figures derive.
 */

#ifndef SPINDLE_RUNTIME_ENGINE_H
#define SPINDLE_RUNTIME_ENGINE_H

#include "hardware/hardware_model.h"
#include "planner/execution_plan.h"
#include "runtime/memory_model.h"
#include "runtime/param_groups.h"
#include "runtime/transmission.h"
#include "sim/simulator.h"

namespace spindle {

/** Iteration-time decomposition (Fig. 10). */
struct TimeBreakdown
{
    double fwdBwd = 0;   ///< forward + backward propagation
    double sync = 0;     ///< group-wise parameter synchronization
    double sendRecv = 0; ///< inter-wave transmissions

    double total() const { return fwdBwd + sync + sendRecv; }
};

/** Everything one simulated training iteration yields. */
struct IterationResult
{
    double iterationSeconds = 0;
    TimeBreakdown breakdown;

    /** Peak memory per device (params + optimizer + activations). */
    std::vector<double> peakMemoryBytes;

    /** Full execution trace for utilization analysis. */
    Timeline timeline;

    /** Parameter bytes synchronized across devices. */
    double syncBytes = 0;

    /** Bytes moved by inter-wave transmissions. */
    double transmissionBytes = 0;
};

/** Engine tunables. */
struct EngineOptions
{
    /** Fixed overhead charged at each wave boundary (host-side
     *  dispatch of the next wave's kernels). */
    double waveBarrier = 5 * kMicro;

    /**
     * Fraction of the backward span that can hide gradient
     * synchronization (bucketed all-reduce overlapped with backward
     * compute, as PyTorch DDP / Megatron do). The residual sync
     * cost is what the iteration pays after the backward finishes.
     */
    double syncOverlapFraction = 0.5;

    /** Floor on the exposed sync cost as a fraction of the raw
     *  collective time (the unoverlappable tail). */
    double minSyncFraction = 0.25;
};

/**
 * The runtime engine: localizes a plan (implicitly, via the placed
 * device sets), inserts transmissions, builds the parameter
 * device-group pool, and runs the iteration on the simulator.
 */
class Engine
{
  public:
    explicit Engine(const HardwareModel &hw, MemoryParams mem_params = {},
                    EngineOptions options = {});

    /** Simulate one training iteration of a placed plan. */
    IterationResult run(const MetaGraph &graph,
                        const ExecutionPlan &plan) const;

    const HardwareModel &hardware() const { return hw_; }
    const MemoryModel &memory() const { return mem_; }

  private:
    const HardwareModel &hw_;
    MemoryModel mem_;
    EngineOptions options_;
};

/**
 * Peak memory per device of a placed plan: parameters deduplicated
 * by ParamKey per device, plus optimizer state and stashed
 * activations (Appendix G accounting).
 */
std::vector<double> peakMemoryPerDevice(const MetaGraph &graph,
                                        const ExecutionPlan &plan,
                                        const HardwareModel &hw,
                                        const MemoryModel &mem);

} // namespace spindle

#endif // SPINDLE_RUNTIME_ENGINE_H
