/**
 * @file
 * Spindle runtime engine (paper §3.6), event-driven since the
 * dependency-dispatch refactor.
 *
 * One training iteration is dispatched as a dependency graph of
 * events on the cluster simulator rather than a sequence of global
 * barriers: the engine builds transmissions and the parameter
 * device-group pool, then hands the placed plan to a WaveDispatcher
 * that registers wave events on the discrete-event queue. A
 * DispatchPolicy decides admission order — StrictBarrier (default)
 * reproduces lockstep wave-by-wave execution bit for bit, Overlap
 * releases each device group as soon as its own readiness
 * predecessors finish so transmissions and exposed sync overlap
 * compute where dependencies allow. A SyncExecutor runs group-wise
 * parameter synchronization after the backward phase. Every busy
 * interval lands in the timeline, from which iteration time, the
 * Fig. 10 breakdown, and all utilization figures derive.
 *
 * runDynamic() additionally injects tasks mid-iteration through
 * scheduled events (the Fig. 13 dynamic-arrival scenario) instead
 * of requiring a full replan.
 *
 * runWithFaults() layers fault injection on top: scheduled device
 * failures fire as events, an affected iteration halts with its
 * lost work accounted (clipped timeline, aborted reservations), and
 * arrivals placed on dead devices are refused with a structured
 * ArrivalError instead of a panic. The RecoveryCoordinator
 * (runtime/recovery.h) drives replanning on the survivors;
 * EngineOptions::recovery carries the detection/restart/retry
 * knobs.
 */

#ifndef SPINDLE_RUNTIME_ENGINE_H
#define SPINDLE_RUNTIME_ENGINE_H

#include <optional>
#include <string>

#include "hardware/hardware_model.h"
#include "planner/execution_plan.h"
#include "runtime/memory_model.h"
#include "runtime/param_groups.h"
#include "runtime/transmission.h"
#include "sim/dispatch_policy.h"
#include "sim/fault.h"
#include "sim/simulator.h"

namespace spindle {

/** Iteration-time decomposition (Fig. 10). */
struct TimeBreakdown
{
    double fwdBwd = 0;   ///< forward + backward propagation
    double sync = 0;     ///< group-wise parameter synchronization
    double sendRecv = 0; ///< inter-wave transmissions

    double total() const { return fwdBwd + sync + sendRecv; }
};

/** Everything one simulated training iteration yields. */
struct IterationResult
{
    double iterationSeconds = 0;
    TimeBreakdown breakdown;

    /** Peak memory per device (params + optimizer + activations). */
    std::vector<double> peakMemoryBytes;

    /** Full execution trace for utilization analysis. */
    Timeline timeline;

    /** Parameter bytes synchronized across devices. */
    double syncBytes = 0;

    /** Bytes moved by inter-wave transmissions. */
    double transmissionBytes = 0;
};

/**
 * Failure-recovery tunables: what a fault costs beyond the lost
 * work, and how hard the recovery path tries before accepting a
 * degraded plan. Consumed by RecoveryCoordinator (runtime/recovery.h)
 * and validated by the Engine constructor (negative times and a zero
 * attempt budget warn and clamp, like the sync fractions below).
 */
struct RecoveryOptions
{
    /**
     * Seconds between a device dying and the runtime noticing
     * (heartbeat / NCCL timeout). Charged once per failure episode.
     * Negative values are clamped to 0 with a warning.
     */
    double detectionSeconds = 0.5;

    /**
     * Seconds to tear down and relaunch the affected processes
     * before the replanned iteration starts. Charged per replan
     * attempt, scaled by retryBackoff^attempt. Negative values are
     * clamped to 0 with a warning.
     */
    double restartSeconds = 2.0;

    /**
     * Attempts in the replan cascade (prefix-reusing replan -> cold
     * replan -> memory-first replan) before the best feasible plan
     * so far is accepted. Zero is clamped to 1 with a warning.
     */
    std::uint32_t maxReplanAttempts = 3;

    /**
     * Multiplier on restartSeconds per extra attempt (exponential
     * backoff). Values below 1 are clamped to 1 with a warning.
     */
    double retryBackoff = 2.0;
};

/** Engine tunables. */
struct EngineOptions
{
    /** Fixed overhead charged at each wave boundary (host-side
     *  dispatch of the next wave's kernels). */
    double waveBarrier = 5 * kMicro;

    /**
     * Fraction of the backward span that can hide gradient
     * synchronization (bucketed all-reduce overlapped with backward
     * compute, as PyTorch DDP / Megatron do). The residual sync
     * cost is what the iteration pays after the backward finishes.
     * Out-of-range values are clamped to [0, 1] with a warning.
     */
    double syncOverlapFraction = 0.5;

    /** Floor on the exposed sync cost as a fraction of the raw
     *  collective time (the unoverlappable tail). Clamped to [0, 1]
     *  with a warning when out of range. */
    double minSyncFraction = 0.25;

    /** Admission-order policy of the event-driven dispatcher. */
    DispatchPolicyKind dispatch = DispatchPolicyKind::StrictBarrier;

    /**
     * Collective algorithm for group-wise parameter sync. FlatRing
     * (default) keeps the legacy single-ring schedule bit for bit;
     * Hierarchical splits each cross-island group into intra-island
     * reduce-scatter / leader-ring / intra-island all-gather phases
     * dispatched as separate simulator reservations;
     * ShardedHierarchical additionally fans the inter-island phase
     * out into min(smallest island slice, rail count) concurrent
     * per-rail rings (rails come from the fabric's LinkParams); Auto
     * picks the cheapest algorithm per group.
     */
    CollectiveKind collective = CollectiveKind::FlatRing;

    /**
     * Planner worker threads for systems that build plans behind the
     * common System interface. Unset (default) defers to the
     * system's own planner options; set, it overrides them with
     * PlannerOptions::threads semantics (1 = serial, 0 = auto,
     * absurd values warn + clamp) — the same system-level override
     * shape as the collective selector above. Plans are
     * byte-identical at every thread count, so this is purely a
     * wall-clock knob.
     */
    std::optional<std::uint32_t> plannerThreads;

    /** Failure-recovery knobs (see RecoveryOptions). */
    RecoveryOptions recovery;
};

/** One task (graph + placed plan) arriving mid-iteration. */
struct TaskArrival
{
    /** Simulated arrival time; dispatch begins no earlier. */
    double time = 0;

    const MetaGraph *graph = nullptr;
    const ExecutionPlan *plan = nullptr;
};

/**
 * Structured refusal of one mid-iteration arrival: its placement
 * needs a device that failed earlier in the iteration, so injecting
 * it would reserve a dead device. The caller replans the task on the
 * surviving topology instead; nothing panics.
 */
struct ArrivalError
{
    /** Index into the arrivals vector passed to runWithFaults(). */
    std::size_t index = 0;

    /** Actionable description naming the dead devices. */
    std::string message;
};

/**
 * What one iteration under fault injection yields. When no fault
 * strikes running work, `completed` is true and `result` matches
 * runDynamic() exactly. When a fault kills a device some started
 * execution depends on, the iteration halts: `result.timeline` is
 * truncated at the failure instant, the work performed so far is
 * accounted as lost (the recovery path restarts the iteration on
 * the survivors), and `result.iterationSeconds` is the failure time.
 */
struct FaultedIterationResult
{
    IterationResult result;

    /** False iff a fault halted the iteration. */
    bool completed = true;

    /** Time of the halting fault batch (0 when completed). */
    double failureTime = 0;

    /** All devices that failed during the run, ascending. */
    DeviceSet failedDevices;

    /** Device-seconds of started work invalidated by the halt. */
    double lostWorkSeconds = 0;

    /** Reservations still in flight at the halt instant. */
    std::uint32_t abortedReservations = 0;

    /** Arrivals refused because their placement needs a dead device. */
    std::vector<ArrivalError> arrivalErrors;
};

/**
 * The runtime engine: localizes a plan (implicitly, via the placed
 * device sets), inserts transmissions, builds the parameter
 * device-group pool, and dispatches the iteration on the simulator
 * through the event queue.
 */
class Engine
{
  public:
    explicit Engine(const HardwareModel &hw, MemoryParams mem_params = {},
                    EngineOptions options = {});

    /** Simulate one training iteration of a placed plan. */
    IterationResult run(const MetaGraph &graph,
                        const ExecutionPlan &plan) const;

    /**
     * Simulate one iteration of @p plan while additional tasks
     * arrive mid-iteration via events scheduled at their arrival
     * times, all sharing one simulator (and hence contending for
     * the same devices). Every plan must target the same cluster.
     * Arrivals may be listed in any time order — dispatch stably
     * sorts them by arrival time, so a permutation of the arrival
     * list cannot change the simulated outcome.
     *
     * The returned result carries the base plan's breakdown and
     * peak memory; iterationSeconds and the timeline cover
     * everything, including the injected tasks. When
     * @p arrival_end is non-null it receives each arrival's
     * completion time (sync included), in input order.
     */
    IterationResult runDynamic(const MetaGraph &graph,
                               const ExecutionPlan &plan,
                               const std::vector<TaskArrival> &arrivals,
                               std::vector<double> *arrival_end =
                                   nullptr) const;

    /**
     * runDynamic() under fault injection: @p faults are armed on the
     * shared simulator and fire as events. A fault that kills a
     * device no *started* execution touches lets the iteration keep
     * running — only future work must avoid the dead device, and an
     * arrival whose placement needs one is refused with a structured
     * ArrivalError (its arrival_end slot reads -1) instead of
     * panicking. A fault that hits started work halts the iteration:
     * in-flight reservations abort, the timeline is truncated at the
     * failure instant, and the partial work is reported as lost so
     * the recovery path (runtime/recovery.h) can charge it and
     * replan on the surviving topology.
     */
    FaultedIterationResult runWithFaults(
        const MetaGraph &graph, const ExecutionPlan &plan,
        const std::vector<InjectedFault> &faults,
        const std::vector<TaskArrival> &arrivals = {},
        std::vector<double> *arrival_end = nullptr) const;

    const HardwareModel &hardware() const { return hw_; }
    const MemoryModel &memory() const { return mem_; }
    const EngineOptions &options() const { return options_; }

  private:
    const HardwareModel &hw_;
    MemoryModel mem_;
    EngineOptions options_;
};

/**
 * Peak memory per device of a placed plan: parameters deduplicated
 * by ParamKey per device, plus optimizer state and stashed
 * activations (Appendix G accounting).
 */
std::vector<double> peakMemoryPerDevice(const MetaGraph &graph,
                                        const ExecutionPlan &plan,
                                        const HardwareModel &hw,
                                        const MemoryModel &mem);

} // namespace spindle

#endif // SPINDLE_RUNTIME_ENGINE_H
