#include "runtime/recovery.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/logging.h"

namespace spindle {

RecoveryCoordinator::RecoveryCoordinator(const HardwareModel &hw,
                                         const MetaGraph &graph,
                                         PlannerOptions planner_options,
                                         MemoryParams mem_params,
                                         EngineOptions engine_options)
    : base_hw_(hw), graph_(graph),
      planner_options_(std::move(planner_options)),
      mem_params_(mem_params), engine_options_(engine_options)
{
    if (planner_options_.cache) {
        cache_ = planner_options_.cache;
    } else {
        owned_cache_ = std::make_unique<PlanCache>();
        cache_ = owned_cache_.get();
    }
}

DeviceSet
RecoveryCoordinator::eventDevices(const FaultEvent &ev) const
{
    const ClusterTopology &topo = base_hw_.topology();
    if (ev.kind == FaultKind::IslandFail) {
        fatalIf(ev.id >= topo.numIslands(),
                strCat("FaultPlan: island ", ev.id,
                       " out of range (cluster has ", topo.numIslands(),
                       " islands)"));
        return topo.islandDevices(ev.id);
    }
    fatalIf(ev.id >= topo.numDevices(),
            strCat("FaultPlan: device ", ev.id,
                   " out of range (cluster has ", topo.numDevices(),
                   " devices)"));
    return {ev.id};
}

RecoveryCoordinator::ShapeState &
RecoveryCoordinator::shapeFor(const DeviceSet &dead, bool ensure_plan)
{
    auto it = shapes_.find(dead);
    if (it == shapes_.end()) {
        const ClusterTopology &base = base_hw_.topology();
        DegradedTopology deg;
        if (dead.empty()) {
            // The healthy cluster is just the identity shape.
            deg.config = base.config();
            deg.newToOld.resize(base.numDevices());
            std::iota(deg.newToOld.begin(), deg.newToOld.end(),
                      DeviceId{0});
            deg.oldToNew = deg.newToOld;
        } else {
            deg = base.withoutDevices(dead);
        }
        PlannerOptions popts = planner_options_;
        popts.cache = cache_;
        it = shapes_
                 .emplace(dead, std::make_unique<ShapeState>(
                                    std::move(deg), base_hw_.params(),
                                    popts, mem_params_,
                                    engine_options_))
                 .first;
    }
    ShapeState &st = *it->second;
    if (ensure_plan && !st.hasPlan) {
        // Boundary (re)plan: the topology changed without aborting
        // work (initial plan, idle-device death, rejoin). replan()
        // makes a recurring shape one cache probe.
        st.planned = st.planner.replan(graph_);
        st.hasPlan = true;
        stats_.boundaryReplanSeconds += st.planned.planningSeconds;
    }
    return st;
}

double
RecoveryCoordinator::faultFreeSeconds(ShapeState &st)
{
    if (st.faultFreeSeconds < 0)
        st.faultFreeSeconds =
            st.engine.run(graph_, st.planned.plan).iterationSeconds;
    return st.faultFreeSeconds;
}

bool
RecoveryCoordinator::fitsMemory(const ShapeState &st,
                                const PlannerOutput &out) const
{
    const std::vector<double> peak = peakMemoryPerDevice(
        graph_, out.plan, st.hw, st.engine.memory());
    const double hbm = st.topo.device().memoryBytes;
    for (double p : peak)
        if (p > hbm)
            return false;
    return true;
}

FaultedRunResult
RecoveryCoordinator::run(const FaultPlan &faults,
                         std::uint32_t iterations)
{
    fatalIf(iterations == 0,
            "RecoveryCoordinator::run: zero iterations");
    stats_ = RecoveryStats{};
    FaultedRunResult out;
    DeviceSet dead; // base-topology ids, ascending

    for (std::uint32_t it = 0; it < iterations; ++it) {
        const std::vector<FaultEvent> evs = faults.forIteration(it);

        // Boundary rejoins first: the surviving set grows before this
        // iteration's plan is chosen.
        for (const FaultEvent &ev : evs) {
            if (ev.kind != FaultKind::DeviceJoin)
                continue;
            eventDevices(ev); // range validation
            auto pos = std::find(dead.begin(), dead.end(), ev.id);
            if (pos == dead.end()) {
                warn(strCat("recovery: join event for device ", ev.id,
                            " at iteration ", it,
                            " but it is not down; ignoring"));
                continue;
            }
            dead.erase(pos);
            ++stats_.rejoinedDevices;
        }

        std::vector<FaultEvent> kills;
        for (const FaultEvent &ev : evs)
            if (ev.kind != FaultKind::DeviceJoin)
                kills.push_back(ev);

        ShapeState &st = shapeFor(dead, /*ensure_plan=*/true);

        if (kills.empty()) {
            IterationResult r = st.engine.run(graph_, st.planned.plan);
            out.totalSeconds += r.iterationSeconds;
            out.iterations.push_back(std::move(r));
            continue;
        }

        // Convert the iteration's kills to absolute-time batches
        // against the current plan's fault-free makespan.
        const double before = faultFreeSeconds(st);
        std::vector<InjectedFault> inj;
        for (const FaultEvent &ev : kills) {
            DeviceSet mapped;
            for (DeviceId d : eventDevices(ev)) {
                const DeviceId nd = st.degraded.oldToNew[d];
                if (nd != DegradedTopology::kDead)
                    mapped.push_back(nd);
            }
            if (mapped.empty())
                continue; // every target already dead
            canonicalize(mapped);
            const double frac = std::clamp(ev.fraction, 0.0, 1.0);
            inj.push_back({frac * before, std::move(mapped)});
        }

        const FaultedIterationResult fr =
            st.engine.runWithFaults(graph_, st.planned.plan, inj);

        if (fr.completed) {
            // Only idle devices died: the iteration drained on the
            // old plan; the next boundary replans on the survivors.
            DeviceSet fired;
            for (DeviceId nd : fr.failedDevices)
                fired.push_back(st.degraded.newToOld[nd]);
            canonicalize(fired);
            dead = unionOf(dead, fired);
            out.totalSeconds += fr.result.iterationSeconds;
            out.iterations.push_back(fr.result);
            continue;
        }

        // The iteration aborted. Fold every kill of this iteration —
        // fired or not — into one recovery batch: near-coincident
        // failures get one detection charge and one replan, not a
        // cascade of partial recoveries.
        DeviceSet episode;
        for (const FaultEvent &ev : kills)
            for (DeviceId d : eventDevices(ev))
                if (!std::binary_search(dead.begin(), dead.end(), d))
                    episode.push_back(d);
        canonicalize(episode);
        dead = unionOf(dead, episode);

        ShapeState &ns = shapeFor(dead, /*ensure_plan=*/false);
        const RecoveryOptions &rec = ns.engine.options().recovery;

        RecoveryOutcome ep;
        ep.iteration = it;
        ep.failureTime = fr.failureTime;
        ep.failedDevices = std::move(episode);
        ep.cumulativeDead = dead;
        ep.survivingDevices = ns.topo.numDevices();
        ep.lostWorkSeconds = fr.lostWorkSeconds;
        ep.iterationSecondsBefore = before;
        ep.detectionSeconds = rec.detectionSeconds;

        // Bounded retry cascade: prefix-reusing replan() -> cold
        // plan() -> memory-first plan(). First candidate that fits
        // device memory wins; an exhausted cascade accepts the final
        // candidate with a warning (degraded training beats none).
        PlannerOutput candidate;
        bool accepted = false;
        const std::uint32_t rungs =
            std::min(rec.maxReplanAttempts, std::uint32_t{3});
        for (std::uint32_t a = 0; a < rungs && !accepted; ++a) {
            ep.restartSeconds +=
                rec.restartSeconds * std::pow(rec.retryBackoff, a);
            if (a == 0) {
                candidate = ns.planner.replan(graph_);
            } else if (a == 1) {
                ep.usedColdPlan = true;
                candidate = ns.planner.plan(graph_);
            } else {
                ep.usedMemoryFallback = true;
                PlannerOptions mopts = planner_options_;
                mopts.cache = nullptr;
                mopts.placement.memoryWeight *= 1000;
                const ExecutionPlanner memory_first(ns.hw, mopts);
                candidate = memory_first.plan(graph_);
            }
            ep.replanSeconds += candidate.planningSeconds;
            ep.attempts = a + 1;
            accepted = fitsMemory(ns, candidate);
        }
        if (!accepted) {
            ep.fit = false;
            ++stats_.degradedAccepts;
            warn(strCat("recovery: no replan attempt fit device "
                        "memory on ",
                        ns.topo.numDevices(),
                        " surviving devices after ", ep.attempts,
                        " attempts; accepting the degraded plan"));
        }
        ns.planned = std::move(candidate);
        ns.hasPlan = true;
        ns.faultFreeSeconds = -1;

        const IterationResult rr =
            ns.engine.run(graph_, ns.planned.plan);
        ep.iterationSecondsAfter = rr.iterationSeconds;
        ep.downtimeSeconds =
            ep.detectionSeconds + ep.restartSeconds + ep.replanSeconds;
        ep.replan = ns.planned.replan;

        stats_.episodes += 1;
        stats_.totalAttempts += ep.attempts;
        stats_.coldReplans += ep.usedColdPlan ? 1 : 0;
        stats_.memoryFallbacks += ep.usedMemoryFallback ? 1 : 0;
        stats_.totalDetectionSeconds += ep.detectionSeconds;
        stats_.totalRestartSeconds += ep.restartSeconds;
        stats_.totalReplanSeconds += ep.replanSeconds;
        stats_.totalLostWorkSeconds += ep.lostWorkSeconds;
        stats_.totalDowntimeSeconds += ep.downtimeSeconds;

        // Wall clock: the aborted fraction, the stall, the rerun.
        out.totalSeconds += fr.result.iterationSeconds +
                            ep.downtimeSeconds + rr.iterationSeconds;
        out.iterations.push_back(rr);

        if (observer_)
            observer_(ep, ns.planned, ns.topo, ns.degraded);
        stats_.outcomes.push_back(std::move(ep));
    }

    out.recovery = stats_;
    return out;
}

} // namespace spindle
