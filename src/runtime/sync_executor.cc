#include "runtime/sync_executor.h"

#include <algorithm>

namespace spindle {

SyncExecutor::SyncExecutor(Simulator &sim, const CollectiveModel &coll,
                           const ParameterGroupPool &pool,
                           const EngineOptions &options)
    : sim_(sim), coll_(coll), pool_(pool), options_(options)
{
}

SyncStats
SyncExecutor::execute(double fwd_end, double bwd_end, bool overlap)
{
    const double bwd_span = bwd_end - fwd_end;
    double sync_end = bwd_end;
    // Slowest group's whole (analytic) collective: the base of the
    // unoverlappable-tail floor under the overlap policy.
    double whole_max = 0;
    for (const ParamGroup &g : pool_.groups()) {
        if (g.devices.size() < 2)
            continue;
        const CollectiveSchedule sched = coll_.allReduceSchedule(
            g.bytes, g.devices, options_.collective, "param_sync",
            g.decomposition());
        whole_max = std::max(whole_max, sched.seconds());
        // Strict: every group waits for the global backward barrier.
        // Overlap: the group starts at its own devices' free time —
        // as soon as its own backward predecessors finished.
        // Stages are barriers within the group: a stage starts when
        // every step of the previous stage ended; steps of one stage
        // touch disjoint devices (distinct islands' intra phases, or
        // the sharded algorithm's concurrent per-rail inter rings)
        // and overlap as separate same-start reservations.
        double stage_start = overlap ? 0.0 : bwd_end;
        for (const auto &stage : sched.stages) {
            double stage_end = stage_start;
            for (const CollectiveStep &step : stage) {
                const double end =
                    sim_.occupy(step.devices, stage_start, step.seconds,
                                ExecKind::Sync, 0, -1, step.label);
                stage_end = std::max(stage_end, end);
            }
            stage_start = stage_end;
        }
        sync_end = std::max(sync_end, stage_start);
    }

    // Bucketed all-reduce hides part of the exposed cost under the
    // backward compute (syncOverlapFraction), down to the
    // unoverlappable tail (minSyncFraction).
    const double sync_raw = sync_end - bwd_end;
    double sync_eff;
    if (!overlap) {
        // Historical strict-barrier charge, frozen bit for bit: all
        // groups start at the barrier, so the whole collective makespan
        // is the exposed tail and the floor is a fraction of it.
        sync_eff = std::clamp(
            sync_raw - options_.syncOverlapFraction * bwd_span,
            options_.minSyncFraction * sync_raw, sync_raw);
    } else {
        // The event schedule already hid part of the slowest group's
        // collective under backward compute (early release). Charge
        // order: that hidden share consumes the bucketed credit first,
        // only the remainder may reduce the residual tail, and the
        // unoverlappable floor is minSyncFraction of the *whole*
        // slowest all-reduce — not of the residual tail (charging the
        // bucket against the whole collective once more undercharged
        // the clamped exposed sync).
        const double hidden = std::max(0.0, whole_max - sync_raw);
        const double credit = std::max(
            0.0, options_.syncOverlapFraction * bwd_span - hidden);
        sync_eff = std::min(
            sync_raw, std::max(options_.minSyncFraction * whole_max,
                               sync_raw - credit));
    }

    SyncStats stats;
    stats.exposedSync = sync_eff;
    stats.iterationEnd = bwd_end + sync_eff;
    return stats;
}

} // namespace spindle
