#include "runtime/sync_executor.h"

#include <algorithm>

namespace spindle {

SyncExecutor::SyncExecutor(Simulator &sim, const CollectiveModel &coll,
                           const ParameterGroupPool &pool,
                           const EngineOptions &options)
    : sim_(sim), coll_(coll), pool_(pool), options_(options)
{
}

SyncStats
SyncExecutor::execute(double fwd_end, double bwd_end, bool overlap)
{
    const double bwd_span = bwd_end - fwd_end;
    double sync_end = bwd_end;
    for (const ParamGroup &g : pool_.groups()) {
        if (g.devices.size() < 2)
            continue;
        const double dur = coll_.allReduceTime(g.bytes, g.devices);
        // Strict: every group waits for the global backward barrier.
        // Overlap: the group starts at its own devices' free time —
        // as soon as its own backward predecessors finished.
        const double earliest = overlap ? 0.0 : bwd_end;
        const double end = sim_.occupy(g.devices, earliest, dur,
                                       ExecKind::Sync, 0, -1,
                                       "param_sync");
        sync_end = std::max(sync_end, end);
    }

    // Bucketed all-reduce hides part of the exposed cost under the
    // backward compute (syncOverlapFraction), down to the
    // unoverlappable tail (minSyncFraction).
    const double sync_raw = sync_end - bwd_end;
    const double sync_eff = std::clamp(
        sync_raw - options_.syncOverlapFraction * bwd_span,
        options_.minSyncFraction * sync_raw, sync_raw);

    SyncStats stats;
    stats.exposedSync = sync_eff;
    stats.iterationEnd = bwd_end + sync_eff;
    return stats;
}

} // namespace spindle
