#include "runtime/wave_dispatcher.h"

#include <algorithm>

#include "common/logging.h"

namespace spindle {

WaveDispatcher::WaveDispatcher(Simulator &sim, const HardwareModel &hw,
                               const MetaGraph &graph,
                               const ExecutionPlan &plan,
                               const EngineOptions &options,
                               TransmissionExecutor &trans,
                               const DispatchPolicy &policy)
    : sim_(sim), hw_(hw), graph_(graph), plan_(plan), options_(options),
      trans_(trans), policy_(policy)
{
    if (hasWaveReadiness(plan_.waves)) {
        preds_.reserve(plan_.waves.size());
        for (const Wave &w : plan_.waves)
            preds_.push_back(w.predecessors);
    } else {
        preds_ = computeWaveReadiness(graph_, plan_.waves);
    }

    for (const Wave &w : plan_.waves)
        streams_[w.stream].push_back(&w);
    for (const auto &[stream_id, waves] : streams_)
        stream_ids_.push_back(stream_id);
}

void
WaveDispatcher::start(double earliest, DoneFn on_done)
{
    panicIf(plan_.waves.empty(), "WaveDispatcher: empty plan");
    panicIf(!on_done, "WaveDispatcher: null completion");
    start_time_ = earliest;
    on_done_ = std::move(on_done);
    stats_ = DispatchStats{};
    send_acc_.clear();
    exposed_waits_.clear();
    runPhase(/*forward=*/true);
}

void
WaveDispatcher::runPhase(bool forward)
{
    phase_max_end_ = start_time_;
    if (policy_.kind() == DispatchPolicyKind::StrictBarrier)
        startStrictStream(forward, 0);
    else
        startEventPhase(forward);
}

void
WaveDispatcher::phaseDone(bool forward)
{
    if (forward) {
        stats_.fwdEnd = phase_max_end_;
        runPhase(/*forward=*/false);
        return;
    }
    stats_.bwdEnd = std::max(stats_.fwdEnd, phase_max_end_);
    if (policy_.kind() == DispatchPolicyKind::StrictBarrier) {
        for (const auto &[stream_id, acc] : send_acc_)
            stats_.exposedSendRecv =
                std::max(stats_.exposedSendRecv, acc);
    } else {
        // Union length of the flow-wait intervals: concurrent waves
        // waiting at the same time count once.
        std::sort(exposed_waits_.begin(), exposed_waits_.end());
        double covered_to = start_time_;
        for (const auto &[from, to] : exposed_waits_) {
            stats_.exposedSendRecv +=
                std::max(0.0, to - std::max(from, covered_to));
            covered_to = std::max(covered_to, to);
        }
    }
    on_done_(stats_);
}

double
WaveDispatcher::executeEntries(const Wave &w, bool forward,
                               double t_start)
{
    double wave_end = t_start;
    for (const WaveEntry &e : w.entries) {
        const MetaOp &m = graph_.metaOp(e.metaOp);
        const OperatorDesc desc = memberDesc(m);
        const ParallelConfig cfg = hw_.bestConfig(desc, e.n);
        const double per_op = forward ? hw_.opTimeFwd(desc, cfg)
                                      : hw_.opTimeBwd(desc, cfg);
        const double dur = per_op * static_cast<double>(e.numOps);
        const double flops =
            m.flopsFwdPerOp *
            (forward ? 1.0 : hw_.params().bwdFlopsFactor) *
            static_cast<double>(e.numOps);
        const double end =
            sim_.occupy(e.devices, t_start, dur, ExecKind::Compute,
                        flops, e.metaOp, forward ? "fwd" : "bwd");
        wave_end = std::max(wave_end, end);
    }
    return wave_end;
}

// ---------------------------------------------------------------------
// Strict-barrier lockstep path.

void
WaveDispatcher::startStrictStream(bool forward, std::size_t s)
{
    if (s == stream_ids_.size()) {
        phaseDone(forward);
        return;
    }
    // The stream resumes where its devices became free.
    const auto &waves = streams_[stream_ids_[s]];
    strict_clock_ = start_time_;
    for (const Wave *w : waves)
        for (const WaveEntry &e : w->entries)
            strict_clock_ =
                std::max(strict_clock_, sim_.groupFree(e.devices));
    strict_next_ = 0;
    sim_.notifyAt(strict_clock_,
                  [this, forward, s] { strictDispatch(forward, s); });
}

void
WaveDispatcher::strictDispatch(bool forward, std::size_t s)
{
    const auto &waves = streams_[stream_ids_[s]];
    if (strict_next_ >= waves.size()) {
        startStrictStream(forward, s + 1);
        return;
    }
    const Wave &w = forward
        ? *waves[strict_next_]
        : *waves[waves.size() - 1 - strict_next_];
    ++strict_next_;
    processStrict(w, forward, stream_ids_[s]);
    // Each wave event schedules its successor at the wave's
    // completion; semantic times come from the stream clock and
    // device availability inside occupy(), so dispatch times are
    // only clamped to the queue's monotone clock.
    sim_.notifyAt(strict_clock_,
                  [this, forward, s] { strictDispatch(forward, s); });
}

void
WaveDispatcher::processStrict(const Wave &w, bool forward,
                              std::int32_t stream_id)
{
    // Boundary transmissions feeding this wave's phase execute at
    // the barrier: fully exposed to the stream.
    double t_start = strict_clock_;
    for (const TransmissionOp *t : trans_.flowsInto(w.index, forward)) {
        const double end = trans_.execute(*t, strict_clock_);
        t_start = std::max(t_start, end);
    }
    send_acc_[stream_id] += t_start - strict_clock_;

    const double wave_end = executeEntries(w, forward, t_start);
    phase_max_end_ = std::max(phase_max_end_, wave_end);
    strict_clock_ = wave_end + options_.waveBarrier;
}

// ---------------------------------------------------------------------
// Generic dependency-driven path.

void
WaveDispatcher::startEventPhase(bool forward)
{
    const std::size_t n = plan_.waves.size();
    // Phase adjacency: the forward phase dispatches on the plan's
    // readiness edges; the backward phase reverses them (a wave's
    // backward waits for the backward of its consumers).
    phase_preds_.assign(n, {});
    if (forward) {
        phase_preds_ = preds_;
    } else {
        for (std::size_t i = 0; i < n; ++i)
            for (std::int32_t p : preds_[i])
                phase_preds_[static_cast<std::size_t>(p)].push_back(
                    static_cast<std::int32_t>(i));
        for (auto &p : phase_preds_)
            std::sort(p.begin(), p.end());
    }
    admitted_.assign(n, false);
    done_.assign(n, false);
    wave_end_.assign(n, start_time_);
    remaining_ = n;
    tryAdmit(forward);
}

void
WaveDispatcher::tryAdmit(bool forward)
{
    const std::size_t n = plan_.waves.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (admitted_[i] || !policy_.admits(i, phase_preds_[i], done_))
            continue;
        admitted_[i] = true;
        // Ready once every predecessor's completion (barrier
        // included) has passed.
        double t_ready = start_time_;
        for (std::int32_t p : phase_preds_[i])
            t_ready = std::max(t_ready,
                               wave_end_[static_cast<std::size_t>(p)]);
        sim_.notifyAt(t_ready, [this, forward, i, t_ready] {
            processEventWave(forward, i, t_ready);
        });
    }
}

void
WaveDispatcher::processEventWave(bool forward, std::size_t i,
                                 double t_ready)
{
    const Wave &w = plan_.waves[i];

    // Each boundary flow starts as soon as its producer finished —
    // potentially well before this wave's other dependencies — so
    // transfers hide under unrelated compute where possible. Only
    // the delay beyond compute readiness is exposed.
    double t_start = t_ready;
    for (const TransmissionOp *t : trans_.flowsInto(w.index, forward)) {
        const std::int32_t producer = forward ? t->srcWave : t->dstWave;
        const double end = trans_.execute(
            *t, wave_end_[static_cast<std::size_t>(producer)]);
        t_start = std::max(t_start, end);
    }
    if (t_start > t_ready)
        exposed_waits_.emplace_back(t_ready, t_start);

    const double wave_end = executeEntries(w, forward, t_start);
    phase_max_end_ = std::max(phase_max_end_, wave_end);
    wave_end_[i] = wave_end + options_.waveBarrier;

    // Device-group availability fires the completion through the
    // event queue: consumers are released when the wave's end time
    // is reached, in deterministic completion order.
    sim_.notifyAt(wave_end_[i], [this, forward, i] {
        done_[i] = true;
        if (--remaining_ == 0) {
            phaseDone(forward);
            return;
        }
        tryAdmit(forward);
    });
}

} // namespace spindle
