#include "runtime/transmission_executor.h"

namespace spindle {

namespace {

const std::vector<const TransmissionOp *> kNoFlows;

} // namespace

TransmissionExecutor::TransmissionExecutor(Simulator &sim,
                                           const CollectiveModel &coll,
                                           const MetaGraph &graph,
                                           const ExecutionPlan &plan)
    : sim_(sim), ops_(buildTransmissions(graph, plan, coll)),
      total_bytes_(totalTransmissionBytes(ops_))
{
    for (const TransmissionOp &t : ops_) {
        by_dst_[t.dstWave].push_back(&t);
        by_src_[t.srcWave].push_back(&t);
    }
}

const std::vector<const TransmissionOp *> &
TransmissionExecutor::flowsInto(std::int32_t wave, bool forward) const
{
    const auto &map = forward ? by_dst_ : by_src_;
    auto it = map.find(wave);
    return it == map.end() ? kNoFlows : it->second;
}

double
TransmissionExecutor::execute(const TransmissionOp &t, double earliest)
{
    const DeviceSet devs = unionOf(t.srcDevices, t.dstDevices);
    return sim_.occupy(devs, earliest, t.seconds, ExecKind::Transmission,
                       0, t.dstMeta, "send_recv");
}

} // namespace spindle
