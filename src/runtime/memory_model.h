/**
 * @file
 * Per-device memory accounting (paper §3.5 "Device Memory Balance",
 * Appendix G).
 *
 * A device hosting a MetaOp slice holds, for each member operator:
 * its parameter shard (divided by the TP degree), the attached
 * gradient/optimizer state, and the activations stashed for the
 * backward pass (divided across all devices of the slice). Optimizer
 * state may be sharded across DP ranks (ZeRO-1 style), which is how
 * the decoupled baselines survive whole-cluster replication.
 */

#ifndef SPINDLE_RUNTIME_MEMORY_MODEL_H
#define SPINDLE_RUNTIME_MEMORY_MODEL_H

#include "graph/meta_graph.h"
#include "hardware/hardware_model.h"

namespace spindle {

/** Memory model tunables. */
struct MemoryParams
{
    /**
     * Gradient + optimizer + master-weight bytes per parameter
     * byte (fp16 params with Adam: 2B grad + 4B master + 8B moments
     * over a 2B parameter = 7x).
     */
    double optimizerFactor = 7.0;

    /** Shard optimizer state across DP ranks (ZeRO-1). */
    bool zeroShardOptimizer = true;

    /**
     * Also shard parameters (and gradients) across DP ranks
     * (ZeRO-3 / FSDP). Off by default; required for >= 30B models
     * whose layers would otherwise replicate per DP rank.
     */
    bool zeroShardParams = false;

    /** Fraction of activations stashed for backward (activation
     *  checkpointing would lower this below 1). */
    double activationFactor = 1.0;
};

/** Memory cost oracle for MetaOp slices. */
class MemoryModel
{
  public:
    explicit MemoryModel(MemoryParams params = {});

    /**
     * Parameter + optimizer bytes per device for hosting @p l member
     * operators of @p m under @p cfg. Persistent for the iteration.
     */
    double paramStateBytesPerDevice(const MetaOp &m, std::int64_t l,
                                    ParallelConfig cfg) const;

    /**
     * Activation bytes per device stashed by executing @p l member
     * operators of @p m on cfg.devices() devices (freed after the
     * backward pass, so they accumulate until then).
     */
    double activationBytesPerDevice(const MetaOp &m, std::int64_t l,
                                    ParallelConfig cfg) const;

    /** Sum of the two components above. */
    double sliceBytesPerDevice(const MetaOp &m, std::int64_t l,
                               ParallelConfig cfg) const;

    const MemoryParams &params() const { return params_; }

  private:
    MemoryParams params_;
};

} // namespace spindle

#endif // SPINDLE_RUNTIME_MEMORY_MODEL_H
