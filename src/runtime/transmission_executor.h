/**
 * @file
 * Transmission execution unit of the event-driven runtime (§3.6
 * step 2). Builds the plan's inter-wave transmission operators once
 * and executes them on the simulator when the dispatcher asks —
 * keyed by the consuming (forward) or producing (backward) wave, in
 * deterministic build order.
 */

#ifndef SPINDLE_RUNTIME_TRANSMISSION_EXECUTOR_H
#define SPINDLE_RUNTIME_TRANSMISSION_EXECUTOR_H

#include <map>

#include "runtime/transmission.h"
#include "sim/simulator.h"

namespace spindle {

/**
 * Owns a plan's transmissions and runs them as occupy() intervals.
 */
class TransmissionExecutor
{
  public:
    TransmissionExecutor(Simulator &sim, const CollectiveModel &coll,
                         const MetaGraph &graph,
                         const ExecutionPlan &plan);

    /**
     * Flows that must complete before @p wave executes in the given
     * phase: forward pulls the wave's inputs (dstWave == wave),
     * backward pushes gradients back (srcWave == wave). Build order
     * is preserved so dispatch is deterministic.
     */
    const std::vector<const TransmissionOp *> &
    flowsInto(std::int32_t wave, bool forward) const;

    /**
     * Execute one flow: occupy the union of source and destination
     * devices starting no earlier than @p earliest.
     *
     * @return the flow's completion time
     */
    double execute(const TransmissionOp &t, double earliest);

    /** Total bytes moved by all transmissions (Fig. 10 metric). */
    double totalBytes() const { return total_bytes_; }

  private:
    Simulator &sim_;
    std::vector<TransmissionOp> ops_;
    std::map<std::int32_t, std::vector<const TransmissionOp *>> by_dst_;
    std::map<std::int32_t, std::vector<const TransmissionOp *>> by_src_;
    double total_bytes_ = 0;
};

} // namespace spindle

#endif // SPINDLE_RUNTIME_TRANSMISSION_EXECUTOR_H
