/**
 * @file
 * Parameter-synchronization unit of the event-driven runtime (§3.6
 * step 4). After the backward phase, every parameter device group
 * all-reduces its gradients; groups on disjoint devices overlap
 * each other. Under the strict-barrier policy all groups wait for
 * the global backward end (legacy semantics, bit-reproducible);
 * under the overlap policy each group starts as soon as its own
 * devices finish their backward work, so sync hides under the
 * compute of slower groups.
 *
 * Each group's all-reduce is scheduled through the collective
 * algorithm selected in EngineOptions::collective. The flat ring is
 * one reservation of the whole group (legacy, bit-reproducible);
 * the hierarchical algorithm dispatches its phases as *separate*
 * simulator reservations — intra-island reduce-scatter steps of
 * disjoint islands overlap each other, the cross-island leader ring
 * is the only reservation spanning islands, and the closing
 * intra-island all-gathers overlap again — so non-leader devices
 * are free for other work during the inter-island phase.
 *
 * Exposed-cost accounting: the bucketed all-reduce model hides
 * syncOverlapFraction of the backward span, down to the
 * unoverlappable minSyncFraction tail. Under the strict barrier the
 * historical formula is kept bit for bit. Under the overlap policy
 * the event schedule itself already hid part of the slowest group's
 * collective (groups start at their own devices' free time), so the
 * bucketed credit is charged only against what the schedule did NOT
 * hide, and the unoverlappable floor is a fraction of the slowest
 * group's whole all-reduce — not of the residual tail.
 */

#ifndef SPINDLE_RUNTIME_SYNC_EXECUTOR_H
#define SPINDLE_RUNTIME_SYNC_EXECUTOR_H

#include "hardware/collective.h"
#include "runtime/engine.h"
#include "runtime/param_groups.h"
#include "sim/simulator.h"

namespace spindle {

/** What one sync pass yields. */
struct SyncStats
{
    /** Iteration end after the exposed sync cost. */
    double iterationEnd = 0;

    /** Exposed (un-hidden) sync cost charged to the iteration. */
    double exposedSync = 0;
};

/**
 * Executes the group-wise parameter synchronization on the
 * simulator: schedules each group's collective phases
 * (EngineOptions::collective) and models bucketed all-reduce overlap
 * with backward compute (EngineOptions::syncOverlapFraction /
 * minSyncFraction; see the file comment for the charge order).
 */
class SyncExecutor
{
  public:
    SyncExecutor(Simulator &sim, const CollectiveModel &coll,
                 const ParameterGroupPool &pool,
                 const EngineOptions &options);

    /**
     * Run the sync tail.
     *
     * @param fwd_end end of the forward phase (backward span start)
     * @param bwd_end end of the backward phase
     * @param overlap release each group at its own devices' free
     *                time instead of the global backward barrier
     */
    SyncStats execute(double fwd_end, double bwd_end, bool overlap);

  private:
    Simulator &sim_;
    const CollectiveModel &coll_;
    const ParameterGroupPool &pool_;
    const EngineOptions &options_;
};

} // namespace spindle

#endif // SPINDLE_RUNTIME_SYNC_EXECUTOR_H
