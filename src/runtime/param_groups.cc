#include "runtime/param_groups.h"

#include <algorithm>

#include "common/logging.h"

namespace spindle {

ParameterGroupPool
ParameterGroupPool::build(const MetaGraph &graph,
                          const ExecutionPlan &plan,
                          const ClusterTopology *topo)
{
    // Parameter identity: shared keys map to themselves, private
    // operator parameters get a unique negative id.
    struct ParamInfo
    {
        DeviceSet devices;
        double bytes = 0;
    };
    std::map<std::int64_t, ParamInfo> params;

    for (const Wave &w : plan.waves) {
        for (const WaveEntry &e : w.entries) {
            panicIf(e.devices.empty(),
                    "ParameterGroupPool: plan is not placed");
            const MetaOp &m = graph.metaOp(e.metaOp);
            for (std::int64_t i = 0; i < e.numOps; ++i) {
                const OperatorDesc &op =
                    graph.base().op(m.ops[e.opBegin + i]);
                if (op.paramBytes <= 0)
                    continue;
                const std::int64_t key =
                    op.paramKey != kNoParam
                        ? static_cast<std::int64_t>(op.paramKey)
                        : -(static_cast<std::int64_t>(op.id) + 2);
                ParamInfo &info = params[key];
                info.devices = unionOf(info.devices, e.devices);
                info.bytes = std::max(info.bytes, op.paramBytes);
            }
        }
    }

    // Manage parameters with identical device groups collectively;
    // additionally, bucket-fuse any group whose device set is a
    // subset of another group into the superset (the extra ranks
    // contribute zero gradient — a ring over g devices moves the
    // same bytes, and fusing removes a serialized collective).
    std::map<DeviceSet, ParamGroup> pool;
    for (const auto &[key, info] : params) {
        ParamGroup &g = pool[info.devices];
        g.devices = info.devices;
        g.bytes += info.bytes;
        g.numParams += 1;
    }

    std::vector<ParamGroup> groups;
    groups.reserve(pool.size());
    for (auto &[devices, group] : pool)
        groups.push_back(std::move(group));
    // Largest sets first; fold each group into the first earlier
    // group that contains it.
    std::sort(groups.begin(), groups.end(),
              [](const ParamGroup &a, const ParamGroup &b) {
                  if (a.devices.size() != b.devices.size())
                      return a.devices.size() > b.devices.size();
                  return a.devices < b.devices;
              });
    std::vector<ParamGroup> fused;
    for (ParamGroup &g : groups) {
        bool folded = false;
        for (ParamGroup &host : fused) {
            if (std::includes(host.devices.begin(), host.devices.end(),
                              g.devices.begin(), g.devices.end())) {
                host.bytes += g.bytes;
                host.numParams += g.numParams;
                folded = true;
                break;
            }
        }
        if (!folded)
            fused.push_back(std::move(g));
    }

    if (topo != nullptr) {
        for (ParamGroup &g : fused) {
            g.decomp = decomposeByIsland(*topo, g.devices);
            g.has_decomp = true;
        }
    }

    ParameterGroupPool out;
    out.groups_ = std::move(fused);
    return out;
}

double
ParameterGroupPool::totalSyncBytes() const
{
    double total = 0;
    for (const ParamGroup &g : groups_)
        if (g.devices.size() > 1)
            total += g.bytes;
    return total;
}

} // namespace spindle
