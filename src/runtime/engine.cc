#include "runtime/engine.h"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <unordered_map>

#include "common/logging.h"
#include "runtime/sync_executor.h"
#include "runtime/transmission_executor.h"
#include "runtime/wave_dispatcher.h"

namespace spindle {

namespace {

/** Warn about and clamp an out-of-range option fraction. */
void
clampFraction(double &value, const char *name)
{
    if (value >= 0 && value <= 1)
        return;
    const double clamped = std::clamp(value, 0.0, 1.0);
    warn(strCat("Engine: ", name, " = ", value,
                " is outside [0, 1]; clamping to ", clamped));
    value = clamped;
}

/**
 * Everything one plan needs to execute on a shared simulator. The
 * same bundle serves the base iteration and every mid-iteration
 * arrival, so all plans dispatch on an identical substrate.
 */
struct PlanExecution
{
    PlanExecution(Simulator &sim, const HardwareModel &hw,
                  const MetaGraph &graph, const ExecutionPlan &plan,
                  const EngineOptions &options,
                  const DispatchPolicy &policy)
        : trans(sim, hw.collectives(), graph, plan),
          pool(ParameterGroupPool::build(graph, plan, &hw.topology())),
          dispatcher(sim, hw, graph, plan, options, trans, policy),
          syncer(sim, hw.collectives(), pool, options)
    {
    }

    TransmissionExecutor trans;
    ParameterGroupPool pool;
    WaveDispatcher dispatcher;
    SyncExecutor syncer;

    DispatchStats stats;
    SyncStats sync;
    bool finished = false;
};

/** Dispatch fwd + bwd + sync of one plan, starting at @p earliest. */
void
startExecution(PlanExecution &exec, double earliest, bool overlap)
{
    exec.dispatcher.start(earliest, [&exec,
                                     overlap](const DispatchStats &st) {
        exec.stats = st;
        exec.sync = exec.syncer.execute(st.fwdEnd, st.bwdEnd, overlap);
        exec.finished = true;
    });
}

/** Every device a placed plan reserves, ascending. */
DeviceSet
planDevices(const ExecutionPlan &plan)
{
    std::vector<bool> used(plan.numDevices, false);
    for (const Wave &w : plan.waves)
        for (const WaveEntry &e : w.entries)
            for (DeviceId d : e.devices)
                used[d] = true;
    DeviceSet out;
    for (DeviceId d = 0; d < plan.numDevices; ++d)
        if (used[d])
            out.push_back(d);
    return out;
}

} // namespace

Engine::Engine(const HardwareModel &hw, MemoryParams mem_params,
               EngineOptions options)
    : hw_(hw), mem_(mem_params), options_(options)
{
    clampFraction(options_.syncOverlapFraction, "syncOverlapFraction");
    clampFraction(options_.minSyncFraction, "minSyncFraction");

    RecoveryOptions &rec = options_.recovery;
    if (rec.detectionSeconds < 0) {
        warn(strCat("Engine: recovery.detectionSeconds = ",
                    rec.detectionSeconds,
                    " is negative; clamping to 0"));
        rec.detectionSeconds = 0;
    }
    if (rec.restartSeconds < 0) {
        warn(strCat("Engine: recovery.restartSeconds = ",
                    rec.restartSeconds, " is negative; clamping to 0"));
        rec.restartSeconds = 0;
    }
    if (rec.maxReplanAttempts == 0) {
        warn("Engine: recovery.maxReplanAttempts = 0 — recovery needs "
             "at least one attempt; raising to 1");
        rec.maxReplanAttempts = 1;
    }
    if (rec.retryBackoff < 1) {
        warn(strCat("Engine: recovery.retryBackoff = ", rec.retryBackoff,
                    " is below 1 (backoff must not shrink delays); "
                    "clamping to 1"));
        rec.retryBackoff = 1;
    }
}

IterationResult
Engine::run(const MetaGraph &graph, const ExecutionPlan &plan) const
{
    return runDynamic(graph, plan, {});
}

IterationResult
Engine::runDynamic(const MetaGraph &graph, const ExecutionPlan &plan,
                   const std::vector<TaskArrival> &arrivals,
                   std::vector<double> *arrival_end) const
{
    // Fault-free runs take the same path as faulted ones; with no
    // faults armed the injector never fires, so the result is
    // bit-identical to the pre-fault-injection dispatcher.
    return runWithFaults(graph, plan, {}, arrivals, arrival_end).result;
}

FaultedIterationResult
Engine::runWithFaults(const MetaGraph &graph, const ExecutionPlan &plan,
                      const std::vector<InjectedFault> &faults,
                      const std::vector<TaskArrival> &arrivals,
                      std::vector<double> *arrival_end) const
{
    FaultedIterationResult out;
    IterationResult &result = out.result;
    if (arrival_end)
        arrival_end->clear();
    if (plan.waves.empty()) {
        // Refuse to silently drop injected work: an empty base plan
        // has no simulator to dispatch the arrivals on.
        panicIf(!arrivals.empty(),
                "runDynamic: arrivals with an empty base plan");
        panicIf(!faults.empty(),
                "runWithFaults: faults with an empty base plan");
        return out;
    }

    Simulator sim(plan.numDevices);
    const std::unique_ptr<DispatchPolicy> policy =
        makeDispatchPolicy(options_.dispatch);
    const bool overlap =
        policy->kind() != DispatchPolicyKind::StrictBarrier;

    // The base iteration registers its events immediately...
    PlanExecution base(sim, hw_, graph, plan, options_, *policy);
    startExecution(base, 0.0, overlap);
    const DeviceSet base_devices = planDevices(plan);

    // Fault batches arm before the arrival events so that a fault
    // and an arrival at the same instant resolve deterministically
    // as fault-first: the arrival sees the dead devices and is
    // refused instead of starting on hardware that is already gone.
    std::vector<char> started(arrivals.size(), 0);
    std::vector<DeviceSet> arrival_devices(arrivals.size());
    std::vector<std::unique_ptr<PlanExecution>> injected(arrivals.size());
    FaultInjector injector(sim, faults);
    injector.arm([&](double time, const DeviceSet &dead) {
        // Halt only when in-flight work depends on a dead device;
        // work that already drained survives the failure, and an
        // idle-device loss lets the iteration keep running — only
        // future injections must route around it. `finished` alone
        // is not "drained": the dispatcher reserves the sync tail
        // synchronously when the last wave completes, so a fault can
        // land inside reserved-but-unfinished sync intervals — the
        // execution is in flight until its iteration end.
        const auto in_flight = [time](const PlanExecution &e) {
            return !e.finished || time < e.sync.iterationEnd;
        };
        bool hit = in_flight(base) && intersects(base_devices, dead);
        for (std::size_t i = 0; i < arrivals.size() && !hit; ++i)
            hit = started[i] && in_flight(*injected[i]) &&
                  intersects(arrival_devices[i], dead);
        if (hit && out.completed) {
            out.completed = false;
            out.failureTime = time;
        }
        return hit;
    });

    // ... and each arriving task is injected through the event
    // queue at its arrival time, contending for the same devices.
    // Arrivals may be supplied in any order: dispatch processes them
    // by arrival time (stable — equal-time arrivals keep their input
    // order), so event registration, and with it every equal-time
    // tie-break in the simulator, is independent of the caller's
    // ordering. Results are still reported in input order.
    std::vector<std::size_t> order(arrivals.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&arrivals](std::size_t a, std::size_t b) {
                         return arrivals[a].time < arrivals[b].time;
                     });

    for (std::size_t idx : order) {
        const TaskArrival &a = arrivals[idx];
        panicIf(a.graph == nullptr || a.plan == nullptr,
                "runDynamic: null arrival");
        panicIf(a.time < 0, "runDynamic: negative arrival time");
        panicIf(a.plan->numDevices != plan.numDevices,
                "runDynamic: arrival targets a different cluster");
        panicIf(a.plan->waves.empty(), "runDynamic: empty arrival plan");
        arrival_devices[idx] = planDevices(*a.plan);
        injected[idx] = std::make_unique<PlanExecution>(
            sim, hw_, *a.graph, *a.plan, options_, *policy);
        PlanExecution *exec = injected[idx].get();
        const double at = a.time;
        sim.queue().schedule(at, [&out, &sim, &started, &arrival_devices,
                                  exec, idx, at, overlap] {
            if (sim.anyFailed(arrival_devices[idx])) {
                // The task's placement predates the failure; refuse
                // injection with a structured error the caller can
                // act on (replan the task on the survivors) instead
                // of tripping the simulator's dead-device panic.
                DeviceSet lost;
                for (DeviceId d : arrival_devices[idx])
                    if (sim.isFailed(d))
                        lost.push_back(d);
                out.arrivalErrors.push_back(
                    {idx, strCat("arrival ", idx, " at t=", at,
                                 " is placed on failed device(s) ",
                                 deviceSetStr(lost),
                                 "; replan it on the surviving "
                                 "topology before injecting")});
                return;
            }
            started[idx] = 1;
            startExecution(*exec, at, overlap);
        });
    }

    sim.queue().run();
    out.failedDevices = sim.failedDevices();
    result.peakMemoryBytes = peakMemoryPerDevice(graph, plan, hw_, mem_);

    if (!out.completed) {
        // A fault aborted the iteration: every started interval is
        // invalidated (the recovery path restarts the iteration from
        // scratch on the survivors), so all progress before the
        // failure counts as lost work. The reported timeline is
        // truncated at the failure instant — what the cluster
        // actually executed, not what the plan promised.
        const double t_f = out.failureTime;
        Timeline clipped;
        for (const ExecRecord &r : sim.timeline().records()) {
            out.lostWorkSeconds +=
                std::min(r.end, t_f) - std::min(r.start, t_f);
            if (r.end > t_f)
                ++out.abortedReservations;
            ExecRecord c = r;
            c.start = std::min(r.start, t_f);
            c.end = std::min(r.end, t_f);
            if (c.end > c.start)
                clipped.record(std::move(c));
        }
        result.timeline = std::move(clipped);
        result.iterationSeconds = t_f;
        return out;
    }

    panicIf(!base.finished, "runDynamic: base iteration never drained");
    result.iterationSeconds = base.sync.iterationEnd;
    result.breakdown.sync = base.sync.exposedSync;
    result.breakdown.sendRecv = base.stats.exposedSendRecv;
    result.breakdown.fwdBwd = result.iterationSeconds -
                              result.breakdown.sync -
                              result.breakdown.sendRecv;
    result.transmissionBytes = base.trans.totalBytes();
    result.syncBytes = base.pool.totalSyncBytes();
    for (std::size_t idx = 0; idx < injected.size(); ++idx) {
        const auto &exec = injected[idx];
        if (!started[idx]) {
            // Refused above (queue drained, so every arrival event
            // fired); its error is in arrivalErrors and its end slot
            // reads -1 to keep input-order alignment.
            if (arrival_end)
                arrival_end->push_back(-1.0);
            continue;
        }
        panicIf(!exec->finished, "runDynamic: arrival never drained");
        result.iterationSeconds =
            std::max(result.iterationSeconds, exec->sync.iterationEnd);
        result.transmissionBytes += exec->trans.totalBytes();
        result.syncBytes += exec->pool.totalSyncBytes();
        if (arrival_end)
            arrival_end->push_back(exec->sync.iterationEnd);
    }

    // Runtime memory validation: a placed plan promising more bytes
    // than a device's HBM would OOM on real hardware. The planner's
    // placement never commits such a plan, but hand-built and
    // baseline plans (whole-cluster replication) can; surface the
    // worst offender once instead of failing the simulation.
    const double hbm = hw_.topology().device().memoryBytes;
    std::size_t worst = result.peakMemoryBytes.size();
    for (std::size_t d = 0; d < result.peakMemoryBytes.size(); ++d) {
        if (result.peakMemoryBytes[d] > hbm &&
            (worst == result.peakMemoryBytes.size() ||
             result.peakMemoryBytes[d] > result.peakMemoryBytes[worst]))
            worst = d;
    }
    if (worst != result.peakMemoryBytes.size())
        warn(strCat("Engine: placed plan oversubscribes device ", worst,
                    " (", result.peakMemoryBytes[worst] / GiB,
                    " GiB peak vs ", hbm / GiB, " GiB HBM)"));

    result.timeline = sim.timeline();
    return out;
}

std::vector<double>
peakMemoryPerDevice(const MetaGraph &graph, const ExecutionPlan &plan,
                    const HardwareModel &hw, const MemoryModel &mem)
{
    // Pass 1: the parameter device group of every key (the union of
    // devices hosting it, §3.6 step 3) — ZeRO shards optimizer state
    // across the *group*, not just one entry's DP width.
    std::map<std::int64_t, DeviceSet> group_of;
    for (const Wave &w : plan.waves) {
        for (const WaveEntry &e : w.entries) {
            panicIf(e.devices.empty(),
                    "peakMemoryPerDevice: plan is not placed");
            const MetaOp &m = graph.metaOp(e.metaOp);
            for (std::int64_t i = 0; i < e.numOps; ++i) {
                const OperatorDesc &op =
                    graph.base().op(m.ops[e.opBegin + i]);
                if (op.paramBytes <= 0)
                    continue;
                const std::int64_t key =
                    op.paramKey != kNoParam
                        ? static_cast<std::int64_t>(op.paramKey)
                        : -(static_cast<std::int64_t>(op.id) + 2);
                group_of[key] = unionOf(group_of[key], e.devices);
            }
        }
    }

    // Pass 2: per device, parameter state deduplicated by key plus
    // all activations stashed until the backward pass.
    std::vector<std::unordered_map<std::int64_t, double>> params(
        plan.numDevices);
    std::vector<double> act(plan.numDevices, 0.0);
    for (const Wave &w : plan.waves) {
        for (const WaveEntry &e : w.entries) {
            const MetaOp &m = graph.metaOp(e.metaOp);
            const ParallelConfig cfg = hw.bestConfig(memberDesc(m), e.n);
            const double act_share =
                mem.activationBytesPerDevice(m, e.numOps, cfg);
            for (DeviceId d : e.devices) {
                act[d] += act_share;
                for (std::int64_t i = 0; i < e.numOps; ++i) {
                    const OperatorDesc &op =
                        graph.base().op(m.ops[e.opBegin + i]);
                    if (op.paramBytes <= 0)
                        continue;
                    const std::int64_t key =
                        op.paramKey != kNoParam
                            ? static_cast<std::int64_t>(op.paramKey)
                            : -(static_cast<std::int64_t>(op.id) + 2);
                    const double group_size =
                        static_cast<double>(group_of[key].size());
                    const double shard =
                        op.paramBytes / cfg.tp /
                        (mem.params().zeroShardParams ? cfg.dp : 1.0);
                    const double share =
                        shard + op.paramBytes *
                                    mem.params().optimizerFactor /
                                    (mem.params().zeroShardOptimizer
                                         ? group_size
                                         : cfg.tp);
                    auto [it, inserted] = params[d].emplace(key, share);
                    if (!inserted && share > it->second)
                        it->second = share;
                }
            }
        }
    }

    std::vector<double> peak(plan.numDevices, 0.0);
    for (std::uint32_t d = 0; d < plan.numDevices; ++d) {
        peak[d] = act[d];
        for (const auto &[key, bytes] : params[d])
            peak[d] += bytes;
    }
    return peak;
}

} // namespace spindle
