#include "runtime/engine.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/logging.h"

namespace spindle {

Engine::Engine(const HardwareModel &hw, MemoryParams mem_params,
               EngineOptions options)
    : hw_(hw), mem_(mem_params), options_(options)
{
}

IterationResult
Engine::run(const MetaGraph &graph, const ExecutionPlan &plan) const
{
    IterationResult result;
    if (plan.waves.empty())
        return result;

    // §3.6 step 2: insert transmission operators.
    const CollectiveModel &coll = hw_.collectives();
    std::vector<TransmissionOp> trans =
        buildTransmissions(graph, plan, coll);
    result.transmissionBytes = totalTransmissionBytes(trans);
    std::map<std::int32_t, std::vector<const TransmissionOp *>> by_dst;
    std::map<std::int32_t, std::vector<const TransmissionOp *>> by_src;
    for (const TransmissionOp &t : trans) {
        by_dst[t.dstWave].push_back(&t);
        by_src[t.srcWave].push_back(&t);
    }

    // §3.6 step 3: parameter device-group pool.
    ParameterGroupPool pool = ParameterGroupPool::build(graph, plan);
    result.syncBytes = pool.totalSyncBytes();

    // Group waves per execution stream (order preserved).
    std::map<std::int32_t, std::vector<const Wave *>> streams;
    for (const Wave &w : plan.waves)
        streams[w.stream].push_back(&w);

    Simulator sim(plan.numDevices);
    std::map<std::int32_t, double> send_acc; // per-stream boundary time

    // One phase = forward (waves in order) or backward (reverse,
    // with gradient flows mirroring the forward transmissions).
    auto run_phase = [&](bool forward) {
        for (auto &[stream_id, waves] : streams) {
            // The stream resumes where its devices became free.
            double clock = 0;
            for (const Wave *w : waves)
                for (const WaveEntry &e : w->entries)
                    clock = std::max(clock, sim.groupFree(e.devices));

            auto process = [&](const Wave &w) {
                // Boundary transmissions feeding this wave's phase.
                double t_start = clock;
                const auto &flows =
                    forward ? by_dst[w.index] : by_src[w.index];
                for (const TransmissionOp *t : flows) {
                    DeviceSet devs =
                        unionOf(t->srcDevices, t->dstDevices);
                    double end = sim.occupy(devs, clock, t->seconds,
                                            ExecKind::Transmission, 0,
                                            t->dstMeta, "send_recv");
                    t_start = std::max(t_start, end);
                }
                send_acc[stream_id] += t_start - clock;

                double wave_end = t_start;
                for (const WaveEntry &e : w.entries) {
                    const MetaOp &m = graph.metaOp(e.metaOp);
                    const OperatorDesc desc = memberDesc(m);
                    const ParallelConfig cfg = hw_.bestConfig(desc, e.n);
                    const double per_op = forward
                        ? hw_.opTimeFwd(desc, cfg)
                        : hw_.opTimeBwd(desc, cfg);
                    const double dur =
                        per_op * static_cast<double>(e.numOps);
                    const double flops =
                        m.flopsFwdPerOp *
                        (forward ? 1.0 : hw_.params().bwdFlopsFactor) *
                        static_cast<double>(e.numOps);
                    double end = sim.occupy(e.devices, t_start, dur,
                                            ExecKind::Compute, flops,
                                            e.metaOp,
                                            forward ? "fwd" : "bwd");
                    wave_end = std::max(wave_end, end);
                }
                clock = wave_end + options_.waveBarrier;
            };

            // Dispatch through the event queue: each wave event
            // schedules its successor at the wave's completion.
            // Semantic times come from the per-stream clock and the
            // device availability inside occupy(); the queue's own
            // clock is monotone across streams, so dispatch times
            // are clamped to it.
            std::size_t next = 0;
            std::function<void()> dispatch = [&]() {
                if (next >= waves.size())
                    return;
                const Wave &w = forward
                    ? *waves[next]
                    : *waves[waves.size() - 1 - next];
                ++next;
                process(w);
                sim.queue().schedule(
                    std::max(clock, sim.queue().now()), dispatch);
            };
            sim.queue().schedule(std::max(clock, sim.queue().now()),
                                 dispatch);
            sim.queue().run();
        }
    };

    run_phase(/*forward=*/true);
    const double t_bwd = sim.timeline().makespan();
    run_phase(/*forward=*/false);

    // §3.6 step 4 tail: group-wise parameter synchronization after
    // the backward phase; groups on disjoint devices overlap with
    // each other, and bucketed all-reduce hides part of the cost
    // under the backward compute (syncOverlapFraction).
    const double t_sync = sim.timeline().makespan();
    const double bwd_span = t_sync - t_bwd;
    double sync_end = t_sync;
    for (const ParamGroup &g : pool.groups()) {
        if (g.devices.size() < 2)
            continue;
        const double dur = coll.allReduceTime(g.bytes, g.devices);
        double end = sim.occupy(g.devices, t_sync, dur, ExecKind::Sync,
                                0, -1, "param_sync");
        sync_end = std::max(sync_end, end);
    }
    const double sync_raw = sync_end - t_sync;
    const double sync_eff = std::clamp(
        sync_raw - options_.syncOverlapFraction * bwd_span,
        options_.minSyncFraction * sync_raw, sync_raw);

    result.iterationSeconds = t_sync + sync_eff;
    result.breakdown.sync = sync_eff;
    double send = 0;
    for (const auto &[stream_id, acc] : send_acc)
        send = std::max(send, acc);
    result.breakdown.sendRecv = send;
    result.breakdown.fwdBwd = result.iterationSeconds -
                              result.breakdown.sync -
                              result.breakdown.sendRecv;
    result.peakMemoryBytes = peakMemoryPerDevice(graph, plan, hw_, mem_);
    result.timeline = sim.timeline();
    return result;
}

std::vector<double>
peakMemoryPerDevice(const MetaGraph &graph, const ExecutionPlan &plan,
                    const HardwareModel &hw, const MemoryModel &mem)
{
    // Pass 1: the parameter device group of every key (the union of
    // devices hosting it, §3.6 step 3) — ZeRO shards optimizer state
    // across the *group*, not just one entry's DP width.
    std::map<std::int64_t, DeviceSet> group_of;
    for (const Wave &w : plan.waves) {
        for (const WaveEntry &e : w.entries) {
            panicIf(e.devices.empty(),
                    "peakMemoryPerDevice: plan is not placed");
            const MetaOp &m = graph.metaOp(e.metaOp);
            for (std::int64_t i = 0; i < e.numOps; ++i) {
                const OperatorDesc &op =
                    graph.base().op(m.ops[e.opBegin + i]);
                if (op.paramBytes <= 0)
                    continue;
                const std::int64_t key =
                    op.paramKey != kNoParam
                        ? static_cast<std::int64_t>(op.paramKey)
                        : -(static_cast<std::int64_t>(op.id) + 2);
                group_of[key] = unionOf(group_of[key], e.devices);
            }
        }
    }

    // Pass 2: per device, parameter state deduplicated by key plus
    // all activations stashed until the backward pass.
    std::vector<std::unordered_map<std::int64_t, double>> params(
        plan.numDevices);
    std::vector<double> act(plan.numDevices, 0.0);
    for (const Wave &w : plan.waves) {
        for (const WaveEntry &e : w.entries) {
            const MetaOp &m = graph.metaOp(e.metaOp);
            const ParallelConfig cfg = hw.bestConfig(memberDesc(m), e.n);
            const double act_share =
                mem.activationBytesPerDevice(m, e.numOps, cfg);
            for (DeviceId d : e.devices) {
                act[d] += act_share;
                for (std::int64_t i = 0; i < e.numOps; ++i) {
                    const OperatorDesc &op =
                        graph.base().op(m.ops[e.opBegin + i]);
                    if (op.paramBytes <= 0)
                        continue;
                    const std::int64_t key =
                        op.paramKey != kNoParam
                            ? static_cast<std::int64_t>(op.paramKey)
                            : -(static_cast<std::int64_t>(op.id) + 2);
                    const double group_size =
                        static_cast<double>(group_of[key].size());
                    const double shard =
                        op.paramBytes / cfg.tp /
                        (mem.params().zeroShardParams ? cfg.dp : 1.0);
                    const double share =
                        shard + op.paramBytes *
                                    mem.params().optimizerFactor /
                                    (mem.params().zeroShardOptimizer
                                         ? group_size
                                         : cfg.tp);
                    auto [it, inserted] = params[d].emplace(key, share);
                    if (!inserted && share > it->second)
                        it->second = share;
                }
            }
        }
    }

    std::vector<double> peak(plan.numDevices, 0.0);
    for (std::uint32_t d = 0; d < plan.numDevices; ++d) {
        peak[d] = act[d];
        for (const auto &[key, bytes] : params[d])
            peak[d] += bytes;
    }
    return peak;
}

} // namespace spindle
