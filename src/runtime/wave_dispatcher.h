/**
 * @file
 * Wave dispatch unit of the event-driven runtime (§3.6).
 *
 * Dispatches the forward and backward phases of a placed plan as
 * events on the simulator's discrete-event queue. Admission order
 * is delegated to a DispatchPolicy:
 *
 *  - StrictBarrier runs the dedicated lockstep path: streams are
 *    processed in order, waves chain wave-by-wave with a barrier at
 *    each boundary, and transmissions execute at the boundary. This
 *    reproduces the pre-event-core engine's timelines bit for bit.
 *  - Every other policy (Overlap today) runs the generic
 *    dependency-driven path: each wave becomes an event admitted
 *    when the policy approves it against the plan's readiness
 *    edges; its input transmissions start as early as their
 *    producers allow (hiding under unrelated compute), and its
 *    completion event releases its consumers.
 */

#ifndef SPINDLE_RUNTIME_WAVE_DISPATCHER_H
#define SPINDLE_RUNTIME_WAVE_DISPATCHER_H

#include <functional>
#include <map>

#include "runtime/engine.h"
#include "runtime/transmission_executor.h"
#include "sim/dispatch_policy.h"
#include "sim/simulator.h"

namespace spindle {

/** What one forward+backward dispatch yields. */
struct DispatchStats
{
    /** End of the forward phase within this dispatch. */
    double fwdEnd = 0;

    /** End of the backward phase within this dispatch. */
    double bwdEnd = 0;

    /**
     * Exposed transmission delay. Strict path: the maximum over
     * streams of the accumulated wait on boundary flows (legacy
     * sendRecv accounting — valid wall-clock because a stream's
     * waves serialize). Event path: the wall-clock union of the
     * intervals in which some wave waited on its flows beyond its
     * compute readiness — waves overlap in time there, so summing
     * per-wave waits would double-count.
     */
    double exposedSendRecv = 0;
};

/**
 * Registers the wave events of one plan on the event queue and
 * reports phase statistics when the backward phase drains.
 */
class WaveDispatcher
{
  public:
    using DoneFn = std::function<void(const DispatchStats &)>;

    WaveDispatcher(Simulator &sim, const HardwareModel &hw,
                   const MetaGraph &graph, const ExecutionPlan &plan,
                   const EngineOptions &options,
                   TransmissionExecutor &trans,
                   const DispatchPolicy &policy);

    /**
     * Register the iteration's initial events; dispatch begins no
     * earlier than @p earliest (mid-iteration task arrivals pass
     * their arrival time). @p on_done fires — as part of the last
     * completion event — once both phases drained. The caller runs
     * the queue.
     */
    void start(double earliest, DoneFn on_done);

  private:
    // Shared by both paths.
    void runPhase(bool forward);
    void phaseDone(bool forward);
    double executeEntries(const Wave &w, bool forward, double t_start);

    // Strict-barrier lockstep path (bit-identical legacy semantics).
    void startStrictStream(bool forward, std::size_t s);
    void strictDispatch(bool forward, std::size_t s);
    void processStrict(const Wave &w, bool forward,
                       std::int32_t stream_id);

    // Generic dependency-driven path.
    void startEventPhase(bool forward);
    void tryAdmit(bool forward);
    void processEventWave(bool forward, std::size_t i, double t_ready);

    Simulator &sim_;
    const HardwareModel &hw_;
    const MetaGraph &graph_;
    const ExecutionPlan &plan_;
    const EngineOptions &options_;
    TransmissionExecutor &trans_;
    const DispatchPolicy &policy_;

    /** Readiness adjacency (stored on the plan, or derived). */
    std::vector<std::vector<std::int32_t>> preds_;

    double start_time_ = 0;
    DoneFn on_done_;
    DispatchStats stats_;

    /** Per-stream waves in plan order (strict path grouping). */
    std::map<std::int32_t, std::vector<const Wave *>> streams_;
    std::vector<std::int32_t> stream_ids_;

    /** Per-stream exposed transmission delay, fwd + bwd (strict
     *  path accounting). */
    std::map<std::int32_t, double> send_acc_;

    /** [t_ready, t_start) flow-wait intervals, fwd + bwd (event
     *  path accounting; reported as their union length). */
    std::vector<std::pair<double, double>> exposed_waits_;

    /** Max wave end (barrier excluded) of the running phase. */
    double phase_max_end_ = 0;

    // Strict path per-stream cursor.
    double strict_clock_ = 0;
    std::size_t strict_next_ = 0;

    // Event path per-phase state.
    std::vector<std::vector<std::int32_t>> phase_preds_;
    std::vector<bool> admitted_;
    std::vector<bool> done_;
    std::vector<double> wave_end_;
    std::size_t remaining_ = 0;
};

} // namespace spindle

#endif // SPINDLE_RUNTIME_WAVE_DISPATCHER_H
