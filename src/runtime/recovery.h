/**
 * @file
 * Elastic failure recovery: drive multi-iteration training through
 * device/island failures, replanning on the surviving topology
 * (ROADMAP "Failure and elasticity scenarios").
 *
 * The RecoveryCoordinator owns the failure loop the Engine and the
 * planner deliberately stay out of:
 *
 *  - it converts a FaultPlan (iteration-relative fault events, base
 *    device ids) into absolute-time injections against the current
 *    plan, using the plan's fault-free makespan;
 *  - when a fault halts an iteration (Engine::runWithFaults), it
 *    derives the surviving island graph with
 *    ClusterTopology::withoutDevices(), charges the configured
 *    detection + restart penalties, and replans the workload through
 *    a bounded retry cascade: prefix-reusing replan() first, a cold
 *    plan() second, a memory-first plan() (placement memory weight
 *    boosted) last — accepting the first candidate that fits device
 *    memory, or the final candidate with a warning when the cascade
 *    exhausts (graceful degradation beats stopping training);
 *  - all shapes share one PlanCache: contexts are keyed by topology
 *    fingerprint, so a recurring degraded shape (flapping device,
 *    symmetric failure) is served as a cache full hit instead of a
 *    fresh planning pass — the core of the recovery-latency win
 *    (bench_failure_recovery);
 *  - rejoin events grow the surviving set back at iteration
 *    boundaries (a device cannot rejoin mid-iteration without a plan
 *    that uses it), where the next plan is again one cache probe.
 *
 * Failed work accounting: an aborted iteration's partial progress is
 * lost — the iteration restarts from scratch on the survivors — so
 * wall-clock totals charge the failed fraction, the downtime
 * (detection + restart backoff + measured replan time), and the full
 * replanned iteration.
 */

#ifndef SPINDLE_RUNTIME_RECOVERY_H
#define SPINDLE_RUNTIME_RECOVERY_H

#include <functional>
#include <map>
#include <memory>

#include "planner/planner.h"
#include "runtime/engine.h"
#include "sim/fault.h"

namespace spindle {

/** Accounting of one failure episode (one aborted iteration). */
struct RecoveryOutcome
{
    /** Iteration the halting fault struck. */
    std::uint32_t iteration = 0;

    /** Within-iteration failure instant (simulated seconds). */
    double failureTime = 0;

    /** Devices this episode killed (base-topology ids). */
    DeviceSet failedDevices;

    /** All dead devices after the episode (base-topology ids). */
    DeviceSet cumulativeDead;

    /** Devices the replanned iteration runs on. */
    std::uint32_t survivingDevices = 0;

    /** Replan attempts consumed (1 = first replan() fit). */
    std::uint32_t attempts = 0;

    /** Cascade reached the cold plan() rung. */
    bool usedColdPlan = false;

    /** Cascade reached the memory-first rung. */
    bool usedMemoryFallback = false;

    /** False iff the cascade exhausted and the final candidate was
     *  accepted despite oversubscribing device memory. */
    bool fit = true;

    double detectionSeconds = 0; ///< configured detection charge
    double restartSeconds = 0;   ///< restart charges incl. backoff
    double replanSeconds = 0;    ///< measured planner wall-clock

    /** detection + restart + replan: training stalled this long. */
    double downtimeSeconds = 0;

    /** Device-seconds of started work the abort invalidated. */
    double lostWorkSeconds = 0;

    /** Fault-free makespan of the aborted plan (throughput before). */
    double iterationSecondsBefore = 0;

    /** Makespan of the replanned iteration (throughput after). */
    double iterationSecondsAfter = 0;

    /** Cache reuse of the accepted attempt (all-zero off the
     *  replan() rung). */
    ReplanStats replan;

    /** Iterations/s after the failure relative to before (<= 1 when
     *  the shrunken cluster is slower, as expected). */
    double
    throughputRatio() const
    {
        return iterationSecondsAfter > 0
                   ? iterationSecondsBefore / iterationSecondsAfter
                   : 0;
    }
};

/** Aggregated recovery accounting across a faulted run. */
struct RecoveryStats
{
    std::uint32_t episodes = 0;
    std::uint32_t totalAttempts = 0;
    std::uint32_t coldReplans = 0;      ///< episodes past the replan() rung
    std::uint32_t memoryFallbacks = 0;  ///< episodes on the last rung
    std::uint32_t degradedAccepts = 0;  ///< cascade exhausted, accepted anyway
    std::uint32_t rejoinedDevices = 0;  ///< boundary rejoin events applied

    double totalDetectionSeconds = 0;
    double totalRestartSeconds = 0;
    double totalReplanSeconds = 0;
    double totalLostWorkSeconds = 0;
    double totalDowntimeSeconds = 0;

    /** Planner wall-clock of boundary replans (idle-device deaths
     *  and rejoins — topology changed without aborting work). */
    double boundaryReplanSeconds = 0;

    /** Per-episode detail, in episode order. */
    std::vector<RecoveryOutcome> outcomes;
};

/** What a faulted multi-iteration run yields. */
struct FaultedRunResult
{
    /** One completed result per iteration (replanned reruns
     *  included); aborted partial attempts are not listed — their
     *  cost lands in `recovery` and `totalSeconds`. */
    std::vector<IterationResult> iterations;

    RecoveryStats recovery;

    /** Wall-clock total: completed iterations + aborted fractions +
     *  recovery downtime. */
    double totalSeconds = 0;
};

/**
 * Drives a workload through a fault schedule with elastic recovery
 * (see file comment). One coordinator serves one workload on one
 * base cluster; run() may be called repeatedly (fresh runs, shared
 * plan cache — a recurring failure shape re-hits across runs).
 */
class RecoveryCoordinator
{
  public:
    /**
     * Observes each accepted recovery: the episode accounting, the
     * accepted planner output (new-id space), the surviving topology
     * it targets, and the id mapping back to the base cluster. The
     * chaos suite uses this to validate plans and pin byte-identity
     * against a from-scratch plan().
     */
    using EpisodeObserver = std::function<void(
        const RecoveryOutcome &, const PlannerOutput &,
        const ClusterTopology &, const DegradedTopology &)>;

    /**
     * @p hw is the healthy-cluster oracle (its topology is the base
     * id space every FaultEvent refers to; its HardwareParams carry
     * over to degraded oracles). Planner options apply to every
     * shape's planner; `planner_options.cache` may share an external
     * cache, otherwise the coordinator's own cache is shared across
     * shapes.
     */
    RecoveryCoordinator(const HardwareModel &hw, const MetaGraph &graph,
                        PlannerOptions planner_options = {},
                        MemoryParams mem_params = {},
                        EngineOptions engine_options = {});

    /** Run @p iterations iterations under @p faults. */
    FaultedRunResult run(const FaultPlan &faults,
                         std::uint32_t iterations);

    void setEpisodeObserver(EpisodeObserver obs)
    {
        observer_ = std::move(obs);
    }

    /** The cache shared by every shape's planner. */
    PlanCache &planCache() { return *cache_; }

  private:
    /** Everything one surviving shape needs: topology, oracle,
     *  planner, engine, and the current accepted plan. */
    struct ShapeState
    {
        ShapeState(DegradedTopology deg, const HardwareParams &hw_params,
                   const PlannerOptions &popts,
                   const MemoryParams &mem, const EngineOptions &eopts)
            : degraded(std::move(deg)), topo(degraded.config),
              hw(topo, hw_params), planner(hw, popts),
              engine(hw, mem, eopts)
        {
        }

        DegradedTopology degraded; ///< id maps from the base cluster
        ClusterTopology topo;
        HardwareModel hw;
        ExecutionPlanner planner;
        Engine engine;

        PlannerOutput planned;
        bool hasPlan = false;

        /** Memoized fault-free makespan of `planned` (< 0: unknown). */
        double faultFreeSeconds = -1;
    };

    ShapeState &shapeFor(const DeviceSet &dead, bool ensure_plan);
    double faultFreeSeconds(ShapeState &st);
    bool fitsMemory(const ShapeState &st, const PlannerOutput &out) const;

    /** Base-topology devices a fault event kills. */
    DeviceSet eventDevices(const FaultEvent &ev) const;

    const HardwareModel &base_hw_;
    const MetaGraph &graph_;
    PlannerOptions planner_options_;
    MemoryParams mem_params_;
    EngineOptions engine_options_;

    std::unique_ptr<PlanCache> owned_cache_;
    PlanCache *cache_ = nullptr;

    /** Shape cache keyed by the dead set (base ids, ascending): two
     *  dead sets with identical surviving *shapes* still need their
     *  own id maps, but their planners share one cache context. */
    std::map<DeviceSet, std::unique_ptr<ShapeState>> shapes_;

    RecoveryStats stats_;
    EpisodeObserver observer_;
};

} // namespace spindle

#endif // SPINDLE_RUNTIME_RECOVERY_H
