/**
 * @file
 * Parameter device-group pool (paper §3.6 step 3).
 *
 * Every parameter set W_j is activated by one or more wave entries,
 * possibly from different tasks (sub-model sharing). Before training,
 * Spindle scans the plan to determine the device group D_i on which
 * each W_j must be gradient-synchronized, then manages parameters
 * with identical groups collectively: the pool maps each distinct
 * device group to the total parameter bytes synchronized within it.
 */

#ifndef SPINDLE_RUNTIME_PARAM_GROUPS_H
#define SPINDLE_RUNTIME_PARAM_GROUPS_H

#include <map>
#include <vector>

#include "hardware/collective.h"
#include "planner/execution_plan.h"

namespace spindle {

/** One device group and the parameter bytes it synchronizes. */
struct ParamGroup
{
    DeviceSet devices;
    double bytes = 0;

    /** Number of distinct parameter sets managed by this group. */
    std::uint32_t numParams = 0;

    /**
     * Island decomposition of `devices`, cached at pool build when a
     * topology was supplied (the group set is frozen for the whole
     * training run, so the runtime's per-iteration collective
     * scheduling must not re-derive it). Carries everything the
     * sharded-hierarchical algorithm needs too — the smallest-slice
     * size capping its concurrent inter-island rings is a
     * GroupDecomposition query (minSliceSize()). Null without a
     * topology.
     */
    const GroupDecomposition *decomposition() const
    {
        return has_decomp ? &decomp : nullptr;
    }

    GroupDecomposition decomp;
    bool has_decomp = false;
};

/**
 * The global parameter device-group pool {D_i -> {W_j}}.
 */
class ParameterGroupPool
{
  public:
    /**
     * Scan a placed plan: for every parameter set (shared ParamKey
     * or per-operator private parameters), the group is the union of
     * the devices of every wave entry hosting it. When @p topo is
     * given, each fused group's island decomposition is computed
     * once and cached on the group.
     */
    static ParameterGroupPool build(const MetaGraph &graph,
                                    const ExecutionPlan &plan,
                                    const ClusterTopology *topo = nullptr);

    const std::vector<ParamGroup> &groups() const { return groups_; }

    /** Bytes needing cross-device sync (groups of size > 1). */
    double totalSyncBytes() const;

  private:
    std::vector<ParamGroup> groups_;
};

} // namespace spindle

#endif // SPINDLE_RUNTIME_PARAM_GROUPS_H
