#include "sim/dispatch_policy.h"

#include "common/logging.h"

namespace spindle {

namespace {

class StrictBarrierPolicy final : public DispatchPolicy
{
  public:
    DispatchPolicyKind
    kind() const override
    {
        return DispatchPolicyKind::StrictBarrier;
    }

    std::string
    name() const override
    {
        return "strict-barrier";
    }

    bool
    admits(std::size_t slot, const std::vector<std::int32_t> &,
           const std::vector<bool> &done) const override
    {
        // Lockstep: every earlier slot of the phase has completed.
        for (std::size_t i = 0; i < slot; ++i)
            if (!done[i])
                return false;
        return true;
    }
};

class OverlapPolicy final : public DispatchPolicy
{
  public:
    DispatchPolicyKind
    kind() const override
    {
        return DispatchPolicyKind::Overlap;
    }

    std::string
    name() const override
    {
        return "overlap";
    }

    bool
    admits(std::size_t, const std::vector<std::int32_t> &preds,
           const std::vector<bool> &done) const override
    {
        for (std::int32_t p : preds)
            if (!done[static_cast<std::size_t>(p)])
                return false;
        return true;
    }
};

} // namespace

std::unique_ptr<DispatchPolicy>
makeDispatchPolicy(DispatchPolicyKind kind)
{
    switch (kind) {
      case DispatchPolicyKind::StrictBarrier:
        return std::make_unique<StrictBarrierPolicy>();
      case DispatchPolicyKind::Overlap:
        return std::make_unique<OverlapPolicy>();
    }
    panic("makeDispatchPolicy: unknown policy kind");
}

} // namespace spindle
