/**
 * @file
 * Deterministic discrete-event queue — the kernel of the cluster
 * simulator that stands in for the paper's physical testbed.
 *
 * Events at equal timestamps run in scheduling order (a monotone
 * sequence number breaks ties), so simulations are bit-reproducible.
 */

#ifndef SPINDLE_SIM_EVENT_QUEUE_H
#define SPINDLE_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace spindle {

/** Simulated time in seconds. */
using SimTime = double;

/**
 * Time-ordered event queue with deterministic tie-breaking.
 */
class EventQueue
{
  public:
    using Action = std::function<void()>;

    /** Current simulated time (time of the last dispatched event). */
    SimTime now() const { return now_; }

    /** Schedule @p action at absolute time @p when (>= now). */
    void schedule(SimTime when, Action action);

    /** Schedule @p action @p delay seconds from now (delay >= 0). */
    void scheduleAfter(SimTime delay, Action action);

    bool empty() const { return heap_.empty(); }
    std::size_t numPending() const { return heap_.size(); }

    /** Advance to the earliest event and dispatch it. */
    void step();

    /** Dispatch events until the queue drains or halt() fires. */
    void run();

    /**
     * Stop dispatching: run() returns before the next event. Called
     * from inside an event handler (the fault-injection path aborts
     * an iteration this way); pending events stay queued so the
     * caller can inspect what was abandoned. reset() clears the
     * halt.
     */
    void halt() { halted_ = true; }

    /** True after halt() until the next reset(). */
    bool halted() const { return halted_; }

    /** Drop all pending events and rewind the clock to zero. */
    void reset();

  private:
    struct Item
    {
        SimTime time;
        std::uint64_t seq;
        Action action;
    };

    struct Later
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Item, std::vector<Item>, Later> heap_;
    SimTime now_ = 0;
    std::uint64_t next_seq_ = 0;
    bool halted_ = false;
};

} // namespace spindle

#endif // SPINDLE_SIM_EVENT_QUEUE_H
