#include "sim/simulator.h"

#include <algorithm>

#include "common/logging.h"

namespace spindle {

Simulator::Simulator(std::uint32_t num_devices)
    : num_devices_(num_devices), free_at_(num_devices, 0.0),
      failed_(num_devices, false)
{
    fatalIf(num_devices == 0, "Simulator: empty cluster");
}

void
Simulator::failDevices(const DeviceSet &devices)
{
    for (DeviceId d : devices)
        panicIf(d >= num_devices_,
                strCat("failDevices: bad device ", d));
    for (DeviceId d : devices) {
        if (!failed_[d]) {
            failed_[d] = true;
            ++num_failed_;
        }
    }
}

bool
Simulator::isFailed(DeviceId dev) const
{
    panicIf(dev >= num_devices_, strCat("isFailed: bad device ", dev));
    return failed_[dev];
}

bool
Simulator::anyFailed(const DeviceSet &group) const
{
    if (num_failed_ == 0)
        return false;
    for (DeviceId d : group)
        if (isFailed(d))
            return true;
    return false;
}

DeviceSet
Simulator::failedDevices() const
{
    DeviceSet out;
    out.reserve(num_failed_);
    for (DeviceId d = 0; d < num_devices_; ++d)
        if (failed_[d])
            out.push_back(d);
    return out;
}

double
Simulator::deviceFree(DeviceId dev) const
{
    panicIf(dev >= num_devices_, strCat("deviceFree: bad device ", dev));
    return free_at_[dev];
}

double
Simulator::groupFree(const DeviceSet &group) const
{
    panicIf(group.empty(), "groupFree: empty group");
    double t = 0;
    for (DeviceId d : group)
        t = std::max(t, deviceFree(d));
    return t;
}

double
Simulator::occupy(const DeviceSet &group, double earliest,
                  double duration, ExecKind kind, double flops,
                  std::int32_t meta_op, const std::string &label)
{
    panicIf(group.empty(), "occupy: empty group");
    panicIf(duration < 0, "occupy: negative duration");
    // Validate the whole group before touching any state, so a bad
    // device id mid-group cannot leave the timeline and free_at_
    // inconsistent.
    for (DeviceId d : group)
        panicIf(d >= num_devices_, strCat("occupy: bad device ", d));
    if (num_failed_ > 0) {
        for (DeviceId d : group)
            panicIf(failed_[d],
                    strCat("occupy: device ", d, " failed at t=",
                           queue_.now(), " but \"", label,
                           "\" still reserves it — the dispatcher "
                           "must abort or replan after a fault"));
    }
    const double start = std::max(earliest, groupFree(group));
    const double end = start + duration;
    const double flops_each = flops / static_cast<double>(group.size());
    for (DeviceId d : group) {
        timeline_.record({d, start, end, kind, flops_each, meta_op, label});
        free_at_[d] = end;
    }
    return end;
}

double
Simulator::request(const DeviceSet &group, double earliest,
                   double duration, ExecKind kind, double flops,
                   std::int32_t meta_op, const std::string &label,
                   Completion on_done)
{
    panicIf(!on_done, "request: null completion");
    const double end =
        occupy(group, earliest, duration, kind, flops, meta_op, label);
    notifyAt(end, [on_done = std::move(on_done), end] { on_done(end); });
    return end;
}

void
Simulator::notifyAt(double when, EventQueue::Action action)
{
    queue_.schedule(std::max(when, queue_.now()), std::move(action));
}

void
Simulator::reset()
{
    queue_.reset();
    timeline_ = Timeline();
    std::fill(free_at_.begin(), free_at_.end(), 0.0);
    std::fill(failed_.begin(), failed_.end(), false);
    num_failed_ = 0;
}

} // namespace spindle
