/**
 * @file
 * Execution timeline: the per-device busy-interval record every
 * utilization figure of the paper is computed from (Fig. 1 lower,
 * Fig. 9a cluster utilization, Fig. 9b per-device / per-MetaOp
 * utilization).
 */

#ifndef SPINDLE_SIM_TRACE_H
#define SPINDLE_SIM_TRACE_H

#include <string>
#include <vector>

#include "hardware/device.h"

namespace spindle {

/** What a device was doing during a recorded interval. */
enum class ExecKind : std::uint8_t
{
    Compute,      ///< forward/backward MetaOp execution
    Transmission, ///< inter-wave send/recv or copy
    Sync,         ///< parameter (gradient) synchronization
};

/** One busy interval of one device. */
struct ExecRecord
{
    DeviceId device = 0;
    double start = 0;
    double end = 0;
    ExecKind kind = ExecKind::Compute;

    /** Useful FLOPs this device retires in the interval (0 for comm). */
    double flops = 0;

    /** MetaOp id this interval belongs to; -1 if not applicable. */
    std::int32_t metaOp = -1;

    std::string label;
};

/**
 * Append-only execution trace with the aggregations the paper plots.
 */
class Timeline
{
  public:
    void record(ExecRecord rec);

    const std::vector<ExecRecord> &records() const { return records_; }
    bool empty() const { return records_.empty(); }

    /** Latest interval end (0 when empty). */
    double makespan() const { return makespan_; }

    /** Total useful FLOPs across all records. */
    double totalFlops() const { return total_flops_; }

    /**
     * Cluster-wide achieved FLOPs/s sampled into @p num_bins equal
     * bins over [0, makespan] (Fig. 1 lower / Fig. 9a series).
     */
    std::vector<double> clusterFlopsSeries(std::size_t num_bins) const;

    /**
     * Per-device busy fraction over the makespan, counting intervals
     * of any kind (Fig. 9b left; size = @p num_devices).
     */
    std::vector<double> deviceBusyFraction(std::uint32_t num_devices) const;

    /** Per-device achieved FLOPs/s over the makespan. */
    std::vector<double> deviceFlopsRate(std::uint32_t num_devices) const;

    /**
     * Achieved compute utilization of one MetaOp: its FLOPs divided
     * by (device-seconds it occupied x peak FLOPs/s) (Fig. 9b right).
     */
    double metaOpUtilization(std::int32_t meta_op, double peak_flops) const;

    /** Sum of interval durations of a given kind (device-seconds). */
    double totalDeviceSeconds(ExecKind kind) const;

  private:
    std::vector<ExecRecord> records_;
    double makespan_ = 0;
    double total_flops_ = 0;
};

} // namespace spindle

#endif // SPINDLE_SIM_TRACE_H
