#include "sim/trace.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace spindle {

void
Timeline::record(ExecRecord rec)
{
    panicIf(rec.end < rec.start, "Timeline: negative interval");
    makespan_ = std::max(makespan_, rec.end);
    total_flops_ += rec.flops;
    records_.push_back(std::move(rec));
}

std::vector<double>
Timeline::clusterFlopsSeries(std::size_t num_bins) const
{
    panicIf(num_bins == 0, "clusterFlopsSeries: zero bins");
    std::vector<double> bins(num_bins, 0.0);
    if (records_.empty() || makespan_ <= 0)
        return bins;
    const double bin_w = makespan_ / static_cast<double>(num_bins);
    for (const ExecRecord &r : records_) {
        if (r.flops <= 0 || r.end <= r.start)
            continue;
        const double rate = r.flops / (r.end - r.start);
        // Spread the record's FLOPs across the bins it overlaps.
        auto first = static_cast<std::size_t>(r.start / bin_w);
        auto last = static_cast<std::size_t>(r.end / bin_w);
        last = std::min(last, num_bins - 1);
        for (std::size_t b = first; b <= last; ++b) {
            const double lo = std::max(r.start, b * bin_w);
            const double hi = std::min(r.end, (b + 1) * bin_w);
            if (hi > lo)
                bins[b] += rate * (hi - lo) / bin_w;
        }
    }
    return bins;
}

std::vector<double>
Timeline::deviceBusyFraction(std::uint32_t num_devices) const
{
    std::vector<double> busy(num_devices, 0.0);
    if (makespan_ <= 0)
        return busy;
    for (const ExecRecord &r : records_) {
        panicIf(r.device >= num_devices,
                strCat("deviceBusyFraction: device ", r.device,
                       " out of range"));
        busy[r.device] += r.end - r.start;
    }
    for (double &b : busy)
        b /= makespan_;
    return busy;
}

std::vector<double>
Timeline::deviceFlopsRate(std::uint32_t num_devices) const
{
    std::vector<double> rate(num_devices, 0.0);
    if (makespan_ <= 0)
        return rate;
    for (const ExecRecord &r : records_) {
        panicIf(r.device >= num_devices, "deviceFlopsRate: bad device");
        rate[r.device] += r.flops;
    }
    for (double &v : rate)
        v /= makespan_;
    return rate;
}

double
Timeline::metaOpUtilization(std::int32_t meta_op, double peak_flops) const
{
    panicIf(peak_flops <= 0, "metaOpUtilization: bad peak");
    double flops = 0, device_seconds = 0;
    for (const ExecRecord &r : records_) {
        if (r.metaOp != meta_op)
            continue;
        flops += r.flops;
        device_seconds += r.end - r.start;
    }
    if (device_seconds <= 0)
        return 0.0;
    return flops / (device_seconds * peak_flops);
}

double
Timeline::totalDeviceSeconds(ExecKind kind) const
{
    double total = 0;
    for (const ExecRecord &r : records_)
        if (r.kind == kind)
            total += r.end - r.start;
    return total;
}

} // namespace spindle
