#include "sim/event_queue.h"

#include "common/logging.h"

namespace spindle {

void
EventQueue::schedule(SimTime when, Action action)
{
    panicIf(when < now_, "EventQueue: scheduling into the past");
    panicIf(!action, "EventQueue: null action");
    heap_.push({when, next_seq_++, std::move(action)});
}

void
EventQueue::scheduleAfter(SimTime delay, Action action)
{
    panicIf(delay < 0, "EventQueue: negative delay");
    schedule(now_ + delay, std::move(action));
}

void
EventQueue::step()
{
    panicIf(heap_.empty(), "EventQueue: step on empty queue");
    // priority_queue::top() is const; move out via const_cast-free
    // copy of the handle then pop.
    Item item = heap_.top();
    heap_.pop();
    now_ = item.time;
    item.action();
}

void
EventQueue::run()
{
    while (!heap_.empty() && !halted_)
        step();
}

void
EventQueue::reset()
{
    while (!heap_.empty())
        heap_.pop();
    now_ = 0;
    next_seq_ = 0;
    halted_ = false;
}

} // namespace spindle
