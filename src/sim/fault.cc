#include "sim/fault.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "hardware/topology.h"

namespace spindle {

std::vector<FaultEvent>
FaultPlan::forIteration(std::uint32_t iteration) const
{
    std::vector<FaultEvent> out;
    for (const FaultEvent &ev : events)
        if (ev.iteration == iteration)
            out.push_back(ev);
    std::stable_sort(out.begin(), out.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.fraction < b.fraction;
                     });
    return out;
}

std::uint32_t
FaultPlan::lastIteration() const
{
    std::uint32_t last = 0;
    for (const FaultEvent &ev : events)
        last = std::max(last, ev.iteration);
    return last;
}

FaultInjector::FaultInjector(Simulator &sim,
                             std::vector<InjectedFault> faults)
    : sim_(sim), faults_(std::move(faults))
{
    for (const InjectedFault &f : faults_) {
        fatalIf(f.devices.empty(),
                "FaultInjector: fault batch with no devices");
        fatalIf(f.time < 0,
                strCat("FaultInjector: fault at negative time ",
                       f.time));
        for (DeviceId d : f.devices)
            fatalIf(d >= sim.numDevices(),
                    strCat("FaultInjector: device ", d,
                           " out of range (cluster has ",
                           sim.numDevices(), " devices)"));
    }
}

void
FaultInjector::arm(OnFailure on_failure)
{
    panicIf(!on_failure, "FaultInjector::arm: null callback");
    for (const InjectedFault &f : faults_) {
        sim_.queue().schedule(
            f.time, [this, &f, on_failure] {
                DeviceSet fresh;
                for (DeviceId d : f.devices)
                    if (!sim_.isFailed(d))
                        fresh.push_back(d);
                if (fresh.empty())
                    return; // every device already down
                sim_.failDevices(fresh);
                if (on_failure(f.time, fresh))
                    sim_.queue().halt();
            });
    }
}

ChaosInjector::ChaosInjector(ChaosOptions opts)
    : opts_(opts),
      // Scramble the seed once so seed 0 and seed 1 diverge
      // immediately (the raw LCG maps nearby seeds to nearby first
      // draws).
      state_(opts.seed * 6364136223846793005ull +
             1442695040888963407ull)
{
    fatalIf(opts_.iterations == 0, "ChaosInjector: zero iterations");
}

std::uint32_t
ChaosInjector::draw(std::uint32_t bound)
{
    panicIf(bound == 0, "ChaosInjector::draw: zero bound");
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>((state_ >> 33) % bound);
}

FaultPlan
ChaosInjector::generate(const ClusterTopology &topo)
{
    FaultPlan plan;
    std::vector<bool> dead(topo.numDevices(), false);
    std::uint32_t alive = topo.numDevices();
    // (rejoin iteration, device) pairs pending from earlier kills.
    std::vector<std::pair<std::uint32_t, DeviceId>> joins;

    for (std::uint32_t it = 0; it < opts_.iterations; ++it) {
        for (const auto &[join_it, dev] : joins) {
            if (join_it != it)
                continue;
            plan.events.push_back(
                {it, 0.0, FaultKind::DeviceJoin, dev});
            dead[dev] = false;
            ++alive;
        }
        for (std::uint32_t k = 0; k < opts_.killsPerIteration; ++k) {
            if (opts_.wholeIslands) {
                // Surviving islands: at least one member alive.
                std::vector<std::uint32_t> up;
                DeviceSet up_members;
                for (std::uint32_t isl = 0; isl < topo.numIslands();
                     ++isl) {
                    std::uint32_t members = 0;
                    for (DeviceId d : topo.islandDevices(isl))
                        if (!dead[d])
                            ++members;
                    if (members > 0 && members < alive)
                        up.push_back(isl);
                }
                if (up.empty())
                    break; // killing any island wipes the cluster
                const std::uint32_t isl =
                    up[draw(static_cast<std::uint32_t>(up.size()))];
                const double frac = 0.1 + 0.8 * (draw(1000) / 1000.0);
                plan.events.push_back(
                    {it, frac, FaultKind::IslandFail, isl});
                for (DeviceId d : topo.islandDevices(isl)) {
                    if (dead[d])
                        continue;
                    dead[d] = true;
                    --alive;
                    if (opts_.rejoinAfter > 0 &&
                        it + opts_.rejoinAfter < opts_.iterations)
                        joins.emplace_back(it + opts_.rejoinAfter, d);
                }
            } else {
                if (alive <= 1)
                    break; // never kill the last survivor
                std::uint32_t pick = draw(alive - 1);
                DeviceId victim = DegradedTopology::kDead;
                for (DeviceId d = 0; d < topo.numDevices(); ++d) {
                    if (dead[d])
                        continue;
                    if (pick == 0) {
                        victim = d;
                        break;
                    }
                    --pick;
                }
                panicIf(victim == DegradedTopology::kDead,
                        "ChaosInjector: victim scan overran");
                const double frac = 0.1 + 0.8 * (draw(1000) / 1000.0);
                plan.events.push_back(
                    {it, frac, FaultKind::DeviceFail, victim});
                dead[victim] = true;
                --alive;
                if (opts_.rejoinAfter > 0 &&
                    it + opts_.rejoinAfter < opts_.iterations)
                    joins.emplace_back(it + opts_.rejoinAfter, victim);
            }
        }
    }
    return plan;
}

} // namespace spindle
