/**
 * @file
 * Dispatch policies for the event-driven execution core (§3.6).
 *
 * The runtime dispatches one training iteration as a dependency
 * graph of wave events. A DispatchPolicy decides the admission
 * order: when a wave may start relative to the completion of the
 * other waves of its phase. Two policies ship:
 *
 *  - StrictBarrier (default): lockstep wave barriers — a wave is
 *    admitted only once every wave before it in phase order has
 *    completed. This reproduces the pre-event-core engine timelines
 *    bit for bit.
 *  - Overlap: dependency-driven — a device group is released as
 *    soon as its own readiness predecessors finish, so transmissions
 *    and exposed sync overlap compute where dependencies allow.
 */

#ifndef SPINDLE_SIM_DISPATCH_POLICY_H
#define SPINDLE_SIM_DISPATCH_POLICY_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace spindle {

/** Selectable admission-order policies. */
enum class DispatchPolicyKind : std::uint8_t
{
    StrictBarrier, ///< lockstep global barriers (legacy semantics)
    Overlap,       ///< release a group once its predecessors finish
};

/**
 * Admission-order hook of the event-driven dispatcher.
 *
 * On the generic event path, slots are wave indices in plan order
 * for both phases; the phase direction is encoded entirely in
 * @p preds (forward: the plan's readiness edges; backward: those
 * edges reversed). Whenever a wave completes, the dispatcher asks
 * the policy which not-yet-admitted waves may now start.
 *
 * StrictBarrier is special-cased onto a dedicated lockstep path
 * that reproduces legacy barrier semantics (per-stream clocks,
 * boundary transmissions) bit for bit; its admits() describes the
 * same total order for reference. Custom policies run on the
 * generic path and should gate on @p preds, not on slot order.
 */
class DispatchPolicy
{
  public:
    virtual ~DispatchPolicy() = default;

    virtual DispatchPolicyKind kind() const = 0;
    virtual std::string name() const = 0;

    /**
     * May the wave at position @p slot of the phase's dispatch order
     * be admitted?
     *
     * @param slot position in the phase dispatch order
     * @param preds readiness predecessors of the slot (positions in
     *              the same dispatch order)
     * @param done per-slot completion flags
     */
    virtual bool admits(std::size_t slot,
                        const std::vector<std::int32_t> &preds,
                        const std::vector<bool> &done) const = 0;
};

/** Construct the policy implementing @p kind. */
std::unique_ptr<DispatchPolicy> makeDispatchPolicy(DispatchPolicyKind kind);

} // namespace spindle

#endif // SPINDLE_SIM_DISPATCH_POLICY_H
