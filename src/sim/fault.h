/**
 * @file
 * Fault injection for the cluster simulator (failure recovery /
 * elasticity, ROADMAP "Failure and elasticity scenarios").
 *
 * Two layers:
 *  - a *schedule* (FaultPlan): fault events expressed in
 *    iteration-relative time — "kill device 13 at 40% of iteration
 *    2" — which is how chaos suites and benchmarks describe failure
 *    scenarios independent of any particular plan's makespan;
 *  - an *injector* (FaultInjector): absolute-time failure batches
 *    armed as events on a simulator's queue. When one fires it marks
 *    the devices failed in the resource ledger and asks a callback
 *    whether the iteration must abort (it must whenever in-flight
 *    work touches the dead devices); on abort the event queue halts
 *    with the abandoned events still pending, so the engine can
 *    account lost work before replanning on the survivors.
 *
 * The Engine converts a FaultPlan to InjectedFaults per iteration
 * using the executed plan's fault-free makespan (runtime/recovery.h);
 * ChaosInjector generates seeded random FaultPlans for the chaos
 * suite and the recovery benchmark.
 */

#ifndef SPINDLE_SIM_FAULT_H
#define SPINDLE_SIM_FAULT_H

#include <cstdint>
#include <functional>
#include <vector>

#include "hardware/device.h"
#include "sim/simulator.h"

namespace spindle {

class ClusterTopology;

/** What a scheduled fault event does. */
enum class FaultKind : std::uint8_t
{
    DeviceFail, ///< one device drops out
    IslandFail, ///< a whole island (switch / node loss) drops out
    DeviceJoin, ///< a previously failed device rejoins (elastic grow)
};

/**
 * One scheduled fault in iteration-relative time: the iteration it
 * strikes and the position within that iteration as a fraction of
 * the iteration's fault-free makespan. Joins always take effect at
 * the iteration boundary (fraction ignored): a device cannot rejoin
 * mid-iteration without a plan that uses it.
 */
struct FaultEvent
{
    std::uint32_t iteration = 0;
    double fraction = 0.5; ///< in [0, 1), position within the iteration
    FaultKind kind = FaultKind::DeviceFail;
    std::uint32_t id = 0; ///< device id; island index for IslandFail
};

/** A full fault schedule, in schedule order. */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /** Events striking @p iteration, ordered by fraction (stable). */
    std::vector<FaultEvent> forIteration(std::uint32_t iteration) const;

    /** Largest iteration index referenced, 0 when empty. */
    std::uint32_t lastIteration() const;
};

/**
 * One absolute-time failure batch: every device of @p devices
 * (original-topology ids) dies at simulated time @p time. Same-time
 * events are batched so one replan covers a correlated failure
 * (island loss kills all members at one instant).
 */
struct InjectedFault
{
    double time = 0;
    DeviceSet devices;
};

/**
 * Arms failure batches on a simulator's event queue.
 *
 * Each batch fires as an ordinary event: it marks the devices failed
 * (Simulator::failDevices — from then on any reservation touching
 * them is rejected) and invokes the OnFailure callback. If the
 * callback returns true the queue halts: dispatch stops, pending
 * events stay queued, and the caller inspects the timeline to
 * account lost work. If it returns false — no started execution
 * touches the dead devices — dispatch continues and only *future*
 * work must avoid them.
 */
class FaultInjector
{
  public:
    /**
     * Fault-firing callback: @p devices just failed at @p time.
     * Return true to halt the iteration, false to keep dispatching.
     */
    using OnFailure =
        std::function<bool(double time, const DeviceSet &devices)>;

    FaultInjector(Simulator &sim, std::vector<InjectedFault> faults);

    /**
     * Schedule every batch on the simulator's queue. Call after the
     * simulator is reset and before run(); batches whose devices are
     * all already failed are skipped.
     */
    void arm(OnFailure on_failure);

    std::uint32_t numFaults() const
    {
        return static_cast<std::uint32_t>(faults_.size());
    }

  private:
    Simulator &sim_;
    std::vector<InjectedFault> faults_;
};

/** Knobs of the seeded random fault-schedule generator. */
struct ChaosOptions
{
    /** Iterations the schedule spans. */
    std::uint32_t iterations = 1;

    /** Devices (or islands, see wholeIslands) killed per iteration. */
    std::uint32_t killsPerIteration = 1;

    /** Kill whole islands instead of individual devices. */
    bool wholeIslands = false;

    /**
     * Iterations after which a killed device rejoins (0 = never).
     * Joins land at iteration boundaries.
     */
    std::uint32_t rejoinAfter = 0;

    /** RNG seed; equal seeds give identical schedules. */
    std::uint64_t seed = 1;
};

/**
 * Seeded random fault-schedule generator for the chaos suite.
 *
 * Deterministic across platforms: draws come from a fixed 64-bit
 * LCG, not std::uniform_int_distribution (whose mapping is
 * implementation-defined). Each iteration kills killsPerIteration
 * random distinct survivors at random fractions, never killing the
 * last surviving device; with rejoinAfter set, the dead rejoin that
 * many iterations later.
 */
class ChaosInjector
{
  public:
    explicit ChaosInjector(ChaosOptions opts);

    /** Generate a fresh schedule for @p topo (advances the RNG). */
    FaultPlan generate(const ClusterTopology &topo);

  private:
    std::uint32_t draw(std::uint32_t bound);

    ChaosOptions opts_;
    std::uint64_t state_;
};

} // namespace spindle

#endif // SPINDLE_SIM_FAULT_H
