/**
 * @file
 * Cluster simulator: couples the event queue, the execution
 * timeline, and per-device availability. The runtime engine and all
 * baseline systems execute their schedules through this facade, so
 * every system is measured on an identical substrate.
 */

#ifndef SPINDLE_SIM_SIMULATOR_H
#define SPINDLE_SIM_SIMULATOR_H

#include "hardware/device.h"
#include "sim/event_queue.h"
#include "sim/trace.h"

namespace spindle {

/**
 * Per-device occupancy simulator.
 *
 * occupy() is the single primitive: it reserves a device group for a
 * duration no earlier than a requested start, records the interval
 * in the timeline, and returns the completion time. Wave barriers,
 * sequential task execution, and parameter sync all reduce to
 * sequences of occupy() calls.
 */
class Simulator
{
  public:
    explicit Simulator(std::uint32_t num_devices);

    std::uint32_t numDevices() const { return num_devices_; }
    EventQueue &queue() { return queue_; }
    Timeline &timeline() { return timeline_; }
    const Timeline &timeline() const { return timeline_; }

    /** Earliest time device @p dev is free. */
    double deviceFree(DeviceId dev) const;

    /** Earliest time every device of @p group is free. */
    double groupFree(const DeviceSet &group) const;

    /**
     * Reserve @p group for @p duration seconds, starting at the
     * later of @p earliest and the group's free time. Total
     * @p flops are split evenly across the group for the trace.
     *
     * @return the completion time of the interval
     */
    double occupy(const DeviceSet &group, double earliest,
                  double duration, ExecKind kind, double flops,
                  std::int32_t meta_op, const std::string &label);

    /** Reset clock, queue, timeline and availability to zero. */
    void reset();

  private:
    std::uint32_t num_devices_;
    EventQueue queue_;
    Timeline timeline_;
    std::vector<double> free_at_;
};

} // namespace spindle

#endif // SPINDLE_SIM_SIMULATOR_H
