/**
 * @file
 * Cluster simulator: the event-driven core that couples the
 * discrete-event queue, the execution timeline, and per-device
 * availability. The runtime engine and all baseline systems execute
 * their schedules through this facade, so every system is measured
 * on an identical substrate.
 *
 * Two styles of use coexist:
 *  - occupy() reserves a device group synchronously and returns the
 *    completion time (the resource ledger primitive); the runtime's
 *    WaveDispatcher builds its wave events from occupy() plus
 *    notifyAt() completions, since a wave completes at the max over
 *    several reservations;
 *  - request() is the single-reservation composite: the same
 *    occupy(), with the completion delivered via notifyAt() — for
 *    handlers driven by one reservation's end.
 */

#ifndef SPINDLE_SIM_SIMULATOR_H
#define SPINDLE_SIM_SIMULATOR_H

#include <functional>

#include "hardware/device.h"
#include "sim/event_queue.h"
#include "sim/trace.h"

namespace spindle {

/**
 * Per-device occupancy simulator.
 *
 * occupy() is the single resource primitive: it reserves a device
 * group for a duration no earlier than a requested start, records
 * the interval in the timeline, and returns the completion time.
 * Wave dispatch, transmissions, and parameter sync all reduce to
 * sequences of occupy()/request() calls; the event queue orders the
 * dispatch deterministically.
 */
class Simulator
{
  public:
    /** Completion callback of request(): receives the end time. */
    using Completion = std::function<void(double end)>;

    explicit Simulator(std::uint32_t num_devices);

    std::uint32_t numDevices() const { return num_devices_; }
    EventQueue &queue() { return queue_; }
    Timeline &timeline() { return timeline_; }
    const Timeline &timeline() const { return timeline_; }

    /** Earliest time device @p dev is free. */
    double deviceFree(DeviceId dev) const;

    /** Earliest time every device of @p group is free. */
    double groupFree(const DeviceSet &group) const;

    /**
     * Mark every device of @p devices as failed (idempotent): from
     * now on, occupy()/request() reject any reservation touching
     * them (the FaultInjector calls this when a fault event fires,
     * then decides whether the iteration must abort). Device ids
     * must be in range.
     */
    void failDevices(const DeviceSet &devices);

    /** True iff @p dev was marked failed. */
    bool isFailed(DeviceId dev) const;

    /** True iff any device of @p group was marked failed. */
    bool anyFailed(const DeviceSet &group) const;

    /** All failed device ids, ascending. */
    DeviceSet failedDevices() const;

    /** Number of failed devices. */
    std::uint32_t numFailed() const { return num_failed_; }

    /**
     * Reserve @p group for @p duration seconds, starting at the
     * later of @p earliest and the group's free time. Total
     * @p flops are split evenly across the group for the trace.
     *
     * The whole group is validated before any state is touched, so
     * a bad device id can never leave the timeline and the
     * availability ledger inconsistent. Reservations touching a
     * failed device are rejected the same way: after a fault event
     * the dispatcher must have been halted (or replanned around the
     * dead devices), so reaching occupy() with one is an internal
     * error.
     *
     * @return the completion time of the interval
     */
    double occupy(const DeviceSet &group, double earliest,
                  double duration, ExecKind kind, double flops,
                  std::int32_t meta_op, const std::string &label);

    /**
     * Event-driven occupy: reserve like occupy(), then deliver the
     * completion through the event queue — @p on_done fires as an
     * event at the interval's end time (never earlier than the
     * queue's current time), so handlers chain deterministically.
     *
     * @return the completion time of the interval
     */
    double request(const DeviceSet &group, double earliest,
                   double duration, ExecKind kind, double flops,
                   std::int32_t meta_op, const std::string &label,
                   Completion on_done);

    /**
     * Schedule @p action at the later of @p when and the queue's
     * current time — the monotone-clamped scheduling every event
     * handler (wave completions, chained dispatch, request()
     * deliveries) is built on.
     */
    void notifyAt(double when, EventQueue::Action action);

    /** Reset clock, queue, timeline and availability to zero. */
    void reset();

  private:
    std::uint32_t num_devices_;
    EventQueue queue_;
    Timeline timeline_;
    std::vector<double> free_at_;
    std::vector<bool> failed_;
    std::uint32_t num_failed_ = 0;
};

} // namespace spindle

#endif // SPINDLE_SIM_SIMULATOR_H
