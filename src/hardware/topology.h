/**
 * @file
 * Cluster topology as an explicit island graph (paper §3.5).
 *
 * A device island is a set of devices connected by high-bandwidth
 * interconnects (NVLink within a node); islands talk over the slower
 * inter-node fabric (InfiniBand). Spindle's device placement is built
 * around this structure.
 *
 * Two ways to describe a cluster:
 *  - the homogeneous shorthand (`numNodes` x `gpusPerNode`): islands
 *    are equal-size contiguous id ranges, all links use the three
 *    default classes — the paper's testbed;
 *  - an explicit island graph (`ClusterConfig::islands`): islands of
 *    individual sizes whose device-id membership is arbitrary
 *    (non-contiguous, permuted), each optionally with its own
 *    intra-island link class, plus per-island-pair overrides of the
 *    point-to-point and collective inter-island classes
 *    (`ClusterConfig::islandLinks`).
 *
 * Either way, device ids must form the dense range [0, numDevices):
 * every per-device table in the planner and runtime (placement
 * state, peak-memory vectors, the simulator's device array) indexes
 * by id. Consumers never assume islands are contiguous id ranges —
 * they ask `islandOf` / `withinOneIsland` / `linkBetween` /
 * `islandDevices` instead.
 */

#ifndef SPINDLE_HARDWARE_TOPOLOGY_H
#define SPINDLE_HARDWARE_TOPOLOGY_H

#include "hardware/device.h"

namespace spindle {

/**
 * One point-to-point link class: bandwidth plus per-message latency,
 * plus the number of independent physical rails behind the class.
 *
 * `rails` models rail-optimized fabrics (one HCA per intra-island
 * rank): each rail sustains `bandwidth` independently, so up to
 * `rails` concurrent rings can each run at the full class bandwidth.
 * Single-ring algorithms (flat ring, the hierarchical leader ring,
 * point-to-point flows) use one rail and are unaffected; only
 * CollectiveKind::ShardedHierarchical exploits rails > 1. Default 1
 * keeps every pre-rails fabric bit-identical; 0 is rejected at
 * topology construction.
 */
struct LinkParams
{
    double bandwidth = 0;     ///< bytes per second, per rail
    double latency = 0;       ///< seconds per message
    std::uint32_t rails = 1;  ///< independent physical rails (>= 1)
};

/**
 * One explicit device island: its member device ids (arbitrary —
 * non-contiguous and permuted memberships are fine) and an optional
 * intra-island link override. A bandwidth of 0 inherits
 * ClusterConfig::intraIsland's bandwidth (latency-only overrides
 * are allowed); a link with zero bandwidth, zero latency and the
 * default rail count inherits the class wholesale.
 */
struct IslandSpec
{
    DeviceSet devices;
    LinkParams intra{0, 0};
};

/**
 * Link-class override for one island pair. Unordered: (a, b) also
 * covers (b, a). A bandwidth of 0 inherits the corresponding
 * ClusterConfig default class's bandwidth (latency/rails-only
 * overrides are allowed); a link with zero bandwidth, zero latency
 * and the default rail count inherits that class wholesale.
 */
struct IslandLinkSpec
{
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    LinkParams p2p{0, 0};        ///< point-to-point transfers
    LinkParams collective{0, 0}; ///< rail-aggregated collectives
};

/** Static description of a GPU cluster (see file comment). */
struct ClusterConfig
{
    /** Homogeneous shorthand, used when `islands` is empty. */
    std::uint32_t numNodes = 1;
    std::uint32_t gpusPerNode = 8;
    DeviceSpec device;

    /** NVLink class (A800: ~200 GB/s effective per direction). */
    LinkParams intraIsland{200 * kGiga, 3 * kMicro};

    /**
     * Inter-node point-to-point transfer: one 400 Gb/s InfiniBand
     * rail ~= 50 GB/s.
     */
    LinkParams interIsland{50 * kGiga, 10 * kMicro};

    /**
     * Inter-node *collectives*: rail-optimized rings use one HCA per
     * GPU, aggregating to ~400 GB/s per node pair. The default keeps
     * the aggregate folded into a single bandwidth figure with
     * rails = 1 (bit-identical to the pre-rails model); fabrics that
     * instead expose per-rail bandwidth set `rails` to the HCA count
     * so ShardedHierarchical can run that many concurrent rings.
     */
    LinkParams interIslandCollective{400 * kGiga, 10 * kMicro};

    /**
     * Explicit island graph. When non-empty it defines the cluster
     * and the homogeneous shorthand above is ignored; the union of
     * all island device ids must be exactly [0, total).
     */
    std::vector<IslandSpec> islands;

    /** Per-island-pair link overrides (explicit graph or shorthand). */
    std::vector<IslandLinkSpec> islandLinks;
};

/**
 * A degraded cluster derived by ClusterTopology::withoutDevices():
 * the surviving island graph (dead devices removed, emptied islands
 * dropped, link overrides remapped) plus the id maps between the
 * original and the surviving — dense, renumbered — device id spaces.
 *
 * `config` constructs a valid ClusterTopology whose fingerprint()
 * identifies the surviving *shape*: two failure episodes that leave
 * the same surviving island graph hash equal (so a PlanCache re-hits
 * when a degraded state recurs), while any difference in the
 * surviving set hashes apart.
 */
struct DegradedTopology
{
    /** Marker for a dead device in oldToNew. */
    static constexpr DeviceId kDead = ~DeviceId{0};

    /** Surviving cluster as an explicit island graph, ids dense. */
    ClusterConfig config;

    /** Surviving-space id -> original id (ascending originals). */
    std::vector<DeviceId> newToOld;

    /** Original id -> surviving-space id, kDead for dead devices. */
    std::vector<DeviceId> oldToNew;

    /** Original island indices that lost every member device. */
    std::vector<std::uint32_t> droppedIslands;
};

/**
 * Frozen cluster topology: the island graph the planner queries.
 * Validated exhaustively at construction (empty islands, duplicate
 * or non-dense device ids, non-positive bandwidths and malformed
 * overrides all fatal() with a pointed message) so downstream layers
 * can index and divide without re-checking.
 */
class ClusterTopology
{
  public:
    explicit ClusterTopology(ClusterConfig config);

    std::uint32_t numDevices() const { return num_devices_; }
    std::uint32_t numIslands() const
    {
        return static_cast<std::uint32_t>(islands_.size());
    }
    const DeviceSpec &device() const { return config_.device; }
    const ClusterConfig &config() const { return config_; }

    /** Island index owning device @p dev. */
    std::uint32_t islandOf(DeviceId dev) const
    {
        // Guard-then-panic: this accessor runs tens of millions of
        // times inside placement scoring, so the message must not be
        // built on the happy path.
        if (dev >= num_devices_)
            badDevice(dev);
        return island_of_[dev];
    }

    /** True iff both devices sit in the same island. */
    bool sameIsland(DeviceId a, DeviceId b) const;

    /** True iff all devices of the (non-empty) set share one island. */
    bool withinOneIsland(const DeviceSet &devices) const;

    /** Device ids of island @p island, ascending. */
    const DeviceSet &islandDevices(std::uint32_t island) const;

    /** Number of devices in island @p island. */
    std::uint32_t islandSizeOf(std::uint32_t island) const;

    /** Largest island size (bounds intra-island TP groups). */
    std::uint32_t maxIslandSize() const { return max_island_size_; }

    /** Smallest island size. */
    std::uint32_t minIslandSize() const { return min_island_size_; }

    /** All device ids of the cluster, ascending. */
    DeviceSet allDevices() const;

    /** Intra-island link class of island @p island. */
    const LinkParams &intraLink(std::uint32_t island) const;

    /** Point-to-point link class between two distinct islands. */
    const LinkParams &interLink(std::uint32_t a, std::uint32_t b) const;

    /** Collective link class between two distinct islands. */
    const LinkParams &collectiveLink(std::uint32_t a,
                                     std::uint32_t b) const;

    /**
     * True iff every island uses the default intra class and no
     * island-pair override is configured — i.e. the three default
     * link classes describe the whole fabric. Placement's
     * class-indexed fast path requires this; non-uniform fabrics
     * drop to exact per-pair scoring.
     */
    bool uniformLinks() const { return uniform_links_; }

    /**
     * Link class between two devices: same device -> on-device copy,
     * same island -> that island's intra class, otherwise the island
     * pair's point-to-point class.
     */
    LinkParams linkBetween(DeviceId a, DeviceId b) const;

    /**
     * 64-bit structural fingerprint of the *resolved* topology:
     * device spec, per-island device memberships, resolved intra
     * classes, the three default link classes (placement reads them
     * directly; bandwidth, latency and rail count alike), and the
     * resolved island-pair overrides. Two
     * topologies with equal fingerprints answer every planner query
     * identically, so the fingerprint keys cached planning results
     * (planner/plan_cache.h). Shorthand and explicit-island configs
     * that resolve to the same island graph hash equal.
     */
    std::uint64_t fingerprint() const { return fingerprint_; }

    /**
     * The slowest link class spanned by a device group: the
     * bottleneck of a ring collective over the group. Groups
     * spanning islands are bottlenecked by the lowest-bandwidth
     * collective class among the island pairs they span.
     *
     * @see DegradedTopology
     */
    LinkParams groupLink(const DeviceSet &devices) const;

    /**
     * Derive the surviving topology after the devices of @p dead
     * fail (failure recovery / elastic shrink): dead devices are
     * removed from their islands, islands left empty are dropped
     * (their island-pair link overrides with them — a warn(), not an
     * error), surviving islands keep their resolved intra link
     * classes, and overrides between two surviving islands are
     * remapped onto the new island indices. Surviving device ids are
     * renumbered dense in ascending original-id order; the returned
     * maps translate between the two id spaces.
     *
     * User errors are fatal() with actionable messages: an empty
     * dead set, a dead id out of range, a duplicate dead id, and a
     * dead set that kills the whole cluster (nothing to replan on —
     * the caller must surface total loss, not plan around it).
     */
    DegradedTopology withoutDevices(const DeviceSet &dead) const;

  private:
    [[noreturn]] void badDevice(DeviceId dev) const;

    void validateAndBuild();

    ClusterConfig config_;
    std::uint32_t num_devices_ = 0;
    std::uint64_t fingerprint_ = 0;
    std::uint32_t max_island_size_ = 0;
    std::uint32_t min_island_size_ = 0;
    bool uniform_links_ = true;

    /** Member ids per island, ascending. */
    std::vector<DeviceSet> islands_;

    /** Dense device id -> island index lookup. */
    std::vector<std::uint32_t> island_of_;

    /** Resolved intra class per island (defaults applied). */
    std::vector<LinkParams> intra_links_;

    /** Resolved pair overrides, keyed (min(a,b) * numIslands + max). */
    struct PairLinks
    {
        std::uint64_t key = 0;
        LinkParams p2p;
        LinkParams collective;
    };
    std::vector<PairLinks> pair_links_; ///< sorted by key
    const PairLinks *findPair(std::uint32_t a, std::uint32_t b) const;
};

} // namespace spindle

#endif // SPINDLE_HARDWARE_TOPOLOGY_H
