/**
 * @file
 * Cluster topology with device islands (paper §3.5).
 *
 * A device island is a set of devices connected by high-bandwidth
 * interconnects (NVLink within a node); islands talk over the slower
 * inter-node fabric (InfiniBand). Spindle's device placement is built
 * around this two-tier structure.
 */

#ifndef SPINDLE_HARDWARE_TOPOLOGY_H
#define SPINDLE_HARDWARE_TOPOLOGY_H

#include "hardware/device.h"

namespace spindle {

/** One point-to-point link class: bandwidth plus per-message latency. */
struct LinkParams
{
    double bandwidth = 0; ///< bytes per second
    double latency = 0;   ///< seconds per message
};

/** Static description of a homogeneous two-tier GPU cluster. */
struct ClusterConfig
{
    std::uint32_t numNodes = 1;
    std::uint32_t gpusPerNode = 8;
    DeviceSpec device;

    /** NVLink class (A800: ~200 GB/s effective per direction). */
    LinkParams intraIsland{200 * kGiga, 3 * kMicro};

    /**
     * Inter-node point-to-point transfer: one 400 Gb/s InfiniBand
     * rail ~= 50 GB/s.
     */
    LinkParams interIsland{50 * kGiga, 10 * kMicro};

    /**
     * Inter-node *collectives*: rail-optimized rings use one HCA per
     * GPU, aggregating to ~400 GB/s per node pair.
     */
    LinkParams interIslandCollective{400 * kGiga, 10 * kMicro};
};

/**
 * Frozen cluster topology. One island per node; devices are numbered
 * densely, island k owning ids [k*gpusPerNode, (k+1)*gpusPerNode).
 */
class ClusterTopology
{
  public:
    explicit ClusterTopology(ClusterConfig config);

    std::uint32_t numDevices() const { return num_devices_; }
    std::uint32_t numIslands() const { return config_.numNodes; }
    std::uint32_t islandSize() const { return config_.gpusPerNode; }
    const DeviceSpec &device() const { return config_.device; }
    const ClusterConfig &config() const { return config_; }

    /** Island (node) index owning device @p dev. */
    std::uint32_t islandOf(DeviceId dev) const;

    /** True iff both devices sit in the same island. */
    bool sameIsland(DeviceId a, DeviceId b) const;

    /** True iff all devices of the (non-empty) set share one island. */
    bool withinOneIsland(const DeviceSet &devices) const;

    /** All device ids of island @p island, ascending. */
    DeviceSet islandDevices(std::uint32_t island) const;

    /** All device ids of the cluster, ascending. */
    DeviceSet allDevices() const;

    /**
     * Link class between two devices: same device -> on-device copy,
     * same island -> NVLink, otherwise inter-island fabric.
     */
    LinkParams linkBetween(DeviceId a, DeviceId b) const;

    /**
     * The slowest link class spanned by a device group: the
     * bottleneck of a ring collective over the group. Groups
     * spanning islands use the rail-aggregated collective class.
     */
    LinkParams groupLink(const DeviceSet &devices) const;

  private:
    ClusterConfig config_;
    std::uint32_t num_devices_;
};

} // namespace spindle

#endif // SPINDLE_HARDWARE_TOPOLOGY_H
