/**
 * @file
 * Device identity and per-GPU capability description.
 *
 * This substrate stands in for the paper's physical testbed (8-GPU
 * NVIDIA A800 nodes); the defaults follow that hardware.
 */

#ifndef SPINDLE_HARDWARE_DEVICE_H
#define SPINDLE_HARDWARE_DEVICE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace spindle {

/** Global, dense device (GPU) index within the cluster. */
using DeviceId = std::uint32_t;

/** A sorted set of device ids; the planner's unit of assignment. */
using DeviceSet = std::vector<DeviceId>;

/** Capability of one accelerator. */
struct DeviceSpec
{
    /** Peak dense throughput in FLOPs/s (A800 fp16 tensor core). */
    double peakFlops = 312 * kTera;

    /** HBM capacity in bytes (A800 80 GB). */
    double memoryBytes = 80 * GiB;

    /** On-device memcpy bandwidth in bytes/s (HBM-to-HBM). */
    double copyBandwidth = 1200 * kGiga;
};

/** Render a device set as "{0,1,2}" for logs and tests. */
std::string deviceSetStr(const DeviceSet &devices);

/** True iff @p devices is sorted ascending with no duplicates. */
bool isCanonicalDeviceSet(const DeviceSet &devices);

/** Sort and deduplicate @p devices in place. */
void canonicalize(DeviceSet &devices);

/** True iff the two sorted sets intersect. */
bool intersects(const DeviceSet &a, const DeviceSet &b);

/** Set union of two sorted device sets. */
DeviceSet unionOf(const DeviceSet &a, const DeviceSet &b);

} // namespace spindle

#endif // SPINDLE_HARDWARE_DEVICE_H
