#include "hardware/topology.h"

#include <numeric>

#include "common/logging.h"

namespace spindle {

ClusterTopology::ClusterTopology(ClusterConfig config)
    : config_(config),
      num_devices_(config.numNodes * config.gpusPerNode)
{
    fatalIf(config_.numNodes == 0 || config_.gpusPerNode == 0,
            "ClusterTopology: empty cluster");
    fatalIf(config_.intraIsland.bandwidth <= 0 ||
            config_.interIsland.bandwidth <= 0,
            "ClusterTopology: bandwidths must be positive");
}

std::uint32_t
ClusterTopology::islandOf(DeviceId dev) const
{
    // Guard-then-panic: panicIf(cond, strCat(...)) builds the message
    // even on the happy path, and this accessor runs tens of millions
    // of times inside placement scoring.
    if (dev >= num_devices_)
        panic(strCat("islandOf: bad device ", dev));
    return dev / config_.gpusPerNode;
}

bool
ClusterTopology::sameIsland(DeviceId a, DeviceId b) const
{
    return islandOf(a) == islandOf(b);
}

bool
ClusterTopology::withinOneIsland(const DeviceSet &devices) const
{
    panicIf(devices.empty(), "withinOneIsland: empty set");
    std::uint32_t island = islandOf(devices.front());
    for (DeviceId d : devices)
        if (islandOf(d) != island)
            return false;
    return true;
}

DeviceSet
ClusterTopology::islandDevices(std::uint32_t island) const
{
    panicIf(island >= numIslands(), strCat("islandDevices: bad ", island));
    DeviceSet out(config_.gpusPerNode);
    std::iota(out.begin(), out.end(), island * config_.gpusPerNode);
    return out;
}

DeviceSet
ClusterTopology::allDevices() const
{
    DeviceSet out(num_devices_);
    std::iota(out.begin(), out.end(), 0u);
    return out;
}

LinkParams
ClusterTopology::linkBetween(DeviceId a, DeviceId b) const
{
    if (a == b)
        return {config_.device.copyBandwidth, 0.0};
    if (sameIsland(a, b))
        return config_.intraIsland;
    return config_.interIsland;
}

LinkParams
ClusterTopology::groupLink(const DeviceSet &devices) const
{
    panicIf(devices.empty(), "groupLink: empty group");
    if (devices.size() == 1)
        return {config_.device.copyBandwidth, 0.0};
    if (withinOneIsland(devices))
        return config_.intraIsland;
    return config_.interIslandCollective;
}

} // namespace spindle
