#include "hardware/topology.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/logging.h"

namespace spindle {

namespace {

/** Reject non-positive bandwidths / negative latencies / zero rails. */
void
checkLink(const LinkParams &link, const char *what)
{
    fatalIf(link.bandwidth <= 0,
            strCat("ClusterTopology: ", what,
                   " bandwidth must be positive (got ", link.bandwidth,
                   ")"));
    fatalIf(link.latency < 0,
            strCat("ClusterTopology: ", what, " latency must be >= 0"));
    fatalIf(link.rails == 0,
            strCat("ClusterTopology: ", what,
                   " rails must be >= 1 (got 0; default-construct for 1)"));
}

/**
 * Resolve an override against its default class: bandwidth 0
 * inherits the default's bandwidth (so a latency-only or rails-only
 * override is expressible); with latency also 0 the default's
 * latency is inherited too, and a rail count of 1 there means
 * "unspecified" and inherits the default's rails (so an all-default
 * link inherits the class wholesale). Negative values / zero rails
 * are rejected.
 */
LinkParams
resolveLink(const LinkParams &link, const LinkParams &fallback,
            const char *what)
{
    fatalIf(link.bandwidth < 0,
            strCat("ClusterTopology: ", what,
                   " bandwidth must be >= 0 (0 inherits the default)"));
    fatalIf(link.latency < 0,
            strCat("ClusterTopology: ", what, " latency must be >= 0"));
    fatalIf(link.rails == 0,
            strCat("ClusterTopology: ", what,
                   " rails must be >= 1 (got 0; default-construct for 1)"));
    if (link.bandwidth == 0 && link.latency == 0)
        return {fallback.bandwidth, fallback.latency,
                link.rails == 1 ? fallback.rails : link.rails};
    if (link.bandwidth == 0)
        return {fallback.bandwidth, link.latency, link.rails};
    return link;
}

/** Order-sensitive 64-bit hash combiner (FNV-1a over words). */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v;
    return h * 0x100000001b3ull;
}

std::uint64_t
mix(std::uint64_t h, double v)
{
    return mix(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t
mix(std::uint64_t h, const LinkParams &link)
{
    h = mix(mix(h, link.bandwidth), link.latency);
    return mix(h, static_cast<std::uint64_t>(link.rails));
}

} // namespace

ClusterTopology::ClusterTopology(ClusterConfig config)
    : config_(std::move(config))
{
    validateAndBuild();
}

void
ClusterTopology::validateAndBuild()
{
    checkLink(config_.intraIsland, "intraIsland");
    checkLink(config_.interIsland, "interIsland");
    checkLink(config_.interIslandCollective, "interIslandCollective");
    fatalIf(config_.device.copyBandwidth <= 0,
            "ClusterTopology: device copyBandwidth must be positive");
    fatalIf(config_.device.memoryBytes <= 0,
            "ClusterTopology: device memoryBytes must be positive");

    if (config_.islands.empty()) {
        // Homogeneous shorthand: contiguous equal-size islands.
        fatalIf(config_.numNodes == 0 || config_.gpusPerNode == 0,
                "ClusterTopology: empty cluster");
        num_devices_ = config_.numNodes * config_.gpusPerNode;
        islands_.resize(config_.numNodes);
        for (std::uint32_t k = 0; k < config_.numNodes; ++k) {
            islands_[k].resize(config_.gpusPerNode);
            std::iota(islands_[k].begin(), islands_[k].end(),
                      k * config_.gpusPerNode);
        }
    } else {
        std::size_t total = 0;
        for (const IslandSpec &spec : config_.islands) {
            fatalIf(spec.devices.empty(),
                    strCat("ClusterTopology: island ", islands_.size(),
                           " has no devices"));
            total += spec.devices.size();
            DeviceSet members = spec.devices;
            canonicalize(members);
            fatalIf(members.size() != spec.devices.size(),
                    strCat("ClusterTopology: island ", islands_.size(),
                           " lists a device id twice"));
            islands_.push_back(std::move(members));
        }
        num_devices_ = static_cast<std::uint32_t>(total);
    }

    // Dense membership map; doubles as the duplicate / coverage check
    // across islands (ids must be exactly [0, numDevices)).
    island_of_.assign(num_devices_, num_devices_);
    for (std::size_t k = 0; k < islands_.size(); ++k) {
        for (DeviceId d : islands_[k]) {
            fatalIf(d >= num_devices_,
                    strCat("ClusterTopology: device id ", d,
                           " out of range [0, ", num_devices_,
                           ") — ids must be dense"));
            fatalIf(island_of_[d] != num_devices_,
                    strCat("ClusterTopology: device id ", d,
                           " belongs to islands ", island_of_[d],
                           " and ", k));
            island_of_[d] = static_cast<std::uint32_t>(k);
        }
    }
    // Sizes summed to num_devices_ and no id appeared twice, so every
    // id in [0, num_devices_) is covered; no separate scan needed.

    max_island_size_ = 0;
    min_island_size_ = num_devices_;
    for (const DeviceSet &island : islands_) {
        const auto size = static_cast<std::uint32_t>(island.size());
        max_island_size_ = std::max(max_island_size_, size);
        min_island_size_ = std::min(min_island_size_, size);
    }

    // Resolve per-island intra classes (0-bandwidth inherits).
    intra_links_.reserve(islands_.size());
    uniform_links_ = true;
    for (std::size_t k = 0; k < config_.islands.size(); ++k) {
        const LinkParams &ovr = config_.islands[k].intra;
        intra_links_.push_back(resolveLink(ovr, config_.intraIsland,
                                           "island intra"));
        if (ovr.bandwidth != 0 || ovr.latency != 0)
            uniform_links_ = false;
    }
    intra_links_.resize(islands_.size(), config_.intraIsland);

    // Resolve island-pair overrides.
    for (const IslandLinkSpec &spec : config_.islandLinks) {
        fatalIf(spec.a >= numIslands() || spec.b >= numIslands(),
                strCat("ClusterTopology: islandLinks names island ",
                       std::max(spec.a, spec.b), " but there are only ",
                       numIslands()));
        fatalIf(spec.a == spec.b,
                strCat("ClusterTopology: islandLinks pair (", spec.a,
                       ", ", spec.b,
                       ") is not a pair; use IslandSpec::intra"));
        PairLinks pair;
        const std::uint64_t lo = std::min(spec.a, spec.b);
        const std::uint64_t hi = std::max(spec.a, spec.b);
        pair.key = lo * numIslands() + hi;
        pair.p2p = resolveLink(spec.p2p, config_.interIsland,
                               "islandLinks p2p");
        pair.collective = resolveLink(spec.collective,
                                      config_.interIslandCollective,
                                      "islandLinks collective");
        for (const PairLinks &existing : pair_links_)
            fatalIf(existing.key == pair.key,
                    strCat("ClusterTopology: duplicate islandLinks "
                           "entry for pair (",
                           lo, ", ", hi, ")"));
        pair_links_.push_back(pair);
        uniform_links_ = false;
    }
    std::sort(pair_links_.begin(), pair_links_.end(),
              [](const PairLinks &x, const PairLinks &y) {
                  return x.key < y.key;
              });

    // Fingerprint the *resolved* state, never the raw config: the
    // shorthand and an explicit island list that denote the same
    // cluster must hash equal, and 0-bandwidth inherit markers must
    // not leak through. Every ingredient a planner query can read is
    // covered: device spec, memberships, resolved links, and the
    // three config defaults (placement's class tables and the
    // uniform-fabric fast path read those directly).
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = mix(h, static_cast<std::uint64_t>(num_devices_));
    h = mix(h, config_.device.peakFlops);
    h = mix(h, config_.device.memoryBytes);
    h = mix(h, config_.device.copyBandwidth);
    h = mix(h, config_.intraIsland);
    h = mix(h, config_.interIsland);
    h = mix(h, config_.interIslandCollective);
    h = mix(h, static_cast<std::uint64_t>(islands_.size()));
    for (std::size_t k = 0; k < islands_.size(); ++k) {
        h = mix(h, static_cast<std::uint64_t>(islands_[k].size()));
        for (DeviceId d : islands_[k])
            h = mix(h, static_cast<std::uint64_t>(d));
        h = mix(h, intra_links_[k]);
    }
    h = mix(h, static_cast<std::uint64_t>(pair_links_.size()));
    for (const PairLinks &pair : pair_links_) {
        h = mix(h, pair.key);
        h = mix(h, pair.p2p);
        h = mix(h, pair.collective);
    }
    fingerprint_ = h;
}

void
ClusterTopology::badDevice(DeviceId dev) const
{
    panic(strCat("islandOf: bad device ", dev));
}

bool
ClusterTopology::sameIsland(DeviceId a, DeviceId b) const
{
    return islandOf(a) == islandOf(b);
}

bool
ClusterTopology::withinOneIsland(const DeviceSet &devices) const
{
    panicIf(devices.empty(), "withinOneIsland: empty set");
    std::uint32_t island = islandOf(devices.front());
    for (DeviceId d : devices)
        if (islandOf(d) != island)
            return false;
    return true;
}

const DeviceSet &
ClusterTopology::islandDevices(std::uint32_t island) const
{
    panicIf(island >= numIslands(), strCat("islandDevices: bad ", island));
    return islands_[island];
}

std::uint32_t
ClusterTopology::islandSizeOf(std::uint32_t island) const
{
    panicIf(island >= numIslands(), strCat("islandSizeOf: bad ", island));
    return static_cast<std::uint32_t>(islands_[island].size());
}

DeviceSet
ClusterTopology::allDevices() const
{
    DeviceSet out(num_devices_);
    std::iota(out.begin(), out.end(), 0u);
    return out;
}

const LinkParams &
ClusterTopology::intraLink(std::uint32_t island) const
{
    panicIf(island >= numIslands(), strCat("intraLink: bad ", island));
    return intra_links_[island];
}

const ClusterTopology::PairLinks *
ClusterTopology::findPair(std::uint32_t a, std::uint32_t b) const
{
    if (pair_links_.empty())
        return nullptr;
    const std::uint64_t lo = std::min(a, b);
    const std::uint64_t hi = std::max(a, b);
    const std::uint64_t key = lo * numIslands() + hi;
    auto it = std::lower_bound(
        pair_links_.begin(), pair_links_.end(), key,
        [](const PairLinks &p, std::uint64_t k) { return p.key < k; });
    if (it != pair_links_.end() && it->key == key)
        return &*it;
    return nullptr;
}

const LinkParams &
ClusterTopology::interLink(std::uint32_t a, std::uint32_t b) const
{
    panicIf(a >= numIslands() || b >= numIslands() || a == b,
            strCat("interLink: bad island pair (", a, ", ", b, ")"));
    if (const PairLinks *pair = findPair(a, b))
        return pair->p2p;
    return config_.interIsland;
}

const LinkParams &
ClusterTopology::collectiveLink(std::uint32_t a, std::uint32_t b) const
{
    panicIf(a >= numIslands() || b >= numIslands() || a == b,
            strCat("collectiveLink: bad island pair (", a, ", ", b, ")"));
    if (const PairLinks *pair = findPair(a, b))
        return pair->collective;
    return config_.interIslandCollective;
}

LinkParams
ClusterTopology::linkBetween(DeviceId a, DeviceId b) const
{
    if (a == b)
        return {config_.device.copyBandwidth, 0.0};
    const std::uint32_t ia = islandOf(a);
    const std::uint32_t ib = islandOf(b);
    if (ia == ib)
        return intra_links_[ia];
    if (const PairLinks *pair = findPair(ia, ib))
        return pair->p2p;
    return config_.interIsland;
}

DegradedTopology
ClusterTopology::withoutDevices(const DeviceSet &dead) const
{
    fatalIf(dead.empty(),
            "withoutDevices: empty dead set — nothing failed, keep "
            "using this topology");
    std::vector<bool> is_dead(num_devices_, false);
    for (DeviceId d : dead) {
        fatalIf(d >= num_devices_,
                strCat("withoutDevices: dead device id ", d,
                       " out of range [0, ", num_devices_,
                       ") — ids are in the original numbering"));
        fatalIf(is_dead[d],
                strCat("withoutDevices: device ", d,
                       " listed dead twice"));
        is_dead[d] = true;
    }
    fatalIf(dead.size() == num_devices_,
            strCat("withoutDevices: all ", num_devices_,
                   " devices are dead — no surviving topology to "
                   "replan on; report total cluster loss instead"));

    DegradedTopology out;
    out.oldToNew.assign(num_devices_, DegradedTopology::kDead);
    out.newToOld.reserve(num_devices_ - dead.size());
    for (DeviceId d = 0; d < num_devices_; ++d) {
        if (is_dead[d])
            continue;
        out.oldToNew[d] = static_cast<DeviceId>(out.newToOld.size());
        out.newToOld.push_back(d);
    }

    // Surviving islands, in original island order, with membership
    // mapped into the renumbered space. The resolved intra class is
    // re-emitted as an explicit override only where the original
    // config overrode it, so a uniform fabric stays uniform (the
    // placement fast path keys on uniformLinks()).
    out.config.device = config_.device;
    out.config.intraIsland = config_.intraIsland;
    out.config.interIsland = config_.interIsland;
    out.config.interIslandCollective = config_.interIslandCollective;
    std::vector<std::uint32_t> island_remap(islands_.size(),
                                            ~std::uint32_t{0});
    for (std::size_t k = 0; k < islands_.size(); ++k) {
        IslandSpec spec;
        for (DeviceId d : islands_[k])
            if (!is_dead[d])
                spec.devices.push_back(out.oldToNew[d]);
        if (spec.devices.empty()) {
            out.droppedIslands.push_back(static_cast<std::uint32_t>(k));
            continue;
        }
        const bool overridden =
            k < config_.islands.size() &&
            (config_.islands[k].intra.bandwidth != 0 ||
             config_.islands[k].intra.latency != 0 ||
             config_.islands[k].intra.rails != 1);
        if (overridden)
            spec.intra = intra_links_[k];
        island_remap[k] =
            static_cast<std::uint32_t>(out.config.islands.size());
        out.config.islands.push_back(std::move(spec));
    }

    // Island-pair link overrides: remapped where both islands
    // survive, dropped (with a warning — the fabric they priced no
    // longer exists) where either end emptied.
    for (const PairLinks &pair : pair_links_) {
        const auto a = static_cast<std::uint32_t>(pair.key / numIslands());
        const auto b = static_cast<std::uint32_t>(pair.key % numIslands());
        if (island_remap[a] == ~std::uint32_t{0} ||
            island_remap[b] == ~std::uint32_t{0}) {
            warn(strCat("withoutDevices: dropping link override for "
                        "island pair (", a, ", ", b, ") — island ",
                        island_remap[a] == ~std::uint32_t{0} ? a : b,
                        " lost all its devices"));
            continue;
        }
        IslandLinkSpec spec;
        spec.a = island_remap[a];
        spec.b = island_remap[b];
        spec.p2p = pair.p2p;
        spec.collective = pair.collective;
        out.config.islandLinks.push_back(spec);
    }
    return out;
}

LinkParams
ClusterTopology::groupLink(const DeviceSet &devices) const
{
    panicIf(devices.empty(), "groupLink: empty group");
    if (devices.size() == 1)
        return {config_.device.copyBandwidth, 0.0};
    const std::uint32_t first = islandOf(devices.front());
    bool spans = false;
    for (DeviceId d : devices) {
        if (islandOf(d) != first) {
            spans = true;
            break;
        }
    }
    if (!spans)
        return intra_links_[first];
    if (uniform_links_)
        return config_.interIslandCollective;

    // Ring bottleneck: the lowest-bandwidth collective class among
    // the island pairs the group spans.
    std::vector<std::uint32_t> seen;
    for (DeviceId d : devices) {
        const std::uint32_t island = islandOf(d);
        if (std::find(seen.begin(), seen.end(), island) == seen.end())
            seen.push_back(island);
    }
    const LinkParams *worst = nullptr;
    for (std::size_t i = 0; i < seen.size(); ++i) {
        for (std::size_t j = i + 1; j < seen.size(); ++j) {
            const LinkParams &link = collectiveLink(seen[i], seen[j]);
            if (worst == nullptr || link.bandwidth < worst->bandwidth)
                worst = &link;
        }
    }
    return *worst;
}

} // namespace spindle
