#include "hardware/device.h"

#include <algorithm>

#include "common/logging.h"

namespace spindle {

std::string
deviceSetStr(const DeviceSet &devices)
{
    std::string out = "{";
    for (std::size_t i = 0; i < devices.size(); ++i) {
        if (i)
            out += ",";
        out += std::to_string(devices[i]);
    }
    out += "}";
    return out;
}

bool
isCanonicalDeviceSet(const DeviceSet &devices)
{
    for (std::size_t i = 1; i < devices.size(); ++i)
        if (devices[i - 1] >= devices[i])
            return false;
    return true;
}

void
canonicalize(DeviceSet &devices)
{
    std::sort(devices.begin(), devices.end());
    devices.erase(std::unique(devices.begin(), devices.end()),
                  devices.end());
}

bool
intersects(const DeviceSet &a, const DeviceSet &b)
{
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] == b[j])
            return true;
        if (a[i] < b[j])
            ++i;
        else
            ++j;
    }
    return false;
}

DeviceSet
unionOf(const DeviceSet &a, const DeviceSet &b)
{
    DeviceSet out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out));
    return out;
}

} // namespace spindle
