#include "hardware/collective.h"

#include <algorithm>

#include "common/logging.h"

namespace spindle {

const char *
collectiveKindName(CollectiveKind kind)
{
    switch (kind) {
    case CollectiveKind::FlatRing:
        return "FlatRing";
    case CollectiveKind::Hierarchical:
        return "Hierarchical";
    case CollectiveKind::Auto:
        return "Auto";
    case CollectiveKind::ShardedHierarchical:
        return "ShardedHierarchical";
    }
    panic("collectiveKindName: bad kind");
}

GroupDecomposition
decomposeByIsland(const ClusterTopology &topo, const DeviceSet &group)
{
    GroupDecomposition out;
    // Bucket members by island. Groups are canonical (ascending), so
    // each bucket's devices come out ascending and the first member
    // appended to a bucket is its lowest id — the elected leader.
    for (DeviceId d : group) {
        const std::uint32_t island = topo.islandOf(d);
        auto it = std::find_if(out.islands.begin(), out.islands.end(),
                               [island](const IslandGroup &g) {
                                   return g.island == island;
                               });
        if (it == out.islands.end()) {
            out.islands.push_back({island, {d}, d});
        } else {
            it->devices.push_back(d);
        }
    }
    std::sort(out.islands.begin(), out.islands.end(),
              [](const IslandGroup &a, const IslandGroup &b) {
                  return a.island < b.island;
              });
    out.leaders.reserve(out.islands.size());
    for (const IslandGroup &g : out.islands)
        out.leaders.push_back(g.leader);
    canonicalize(out.leaders);
    return out;
}

double
CollectiveSchedule::seconds() const
{
    double total = 0;
    for (const auto &stage : stages) {
        double slowest = 0;
        for (const CollectiveStep &step : stage)
            slowest = std::max(slowest, step.seconds);
        total += slowest;
    }
    return total;
}

// ---------------------------------------------------------------------
// Stateless ring formulas.

double
CollectiveModel::ringAllReduce(double bytes, std::uint32_t group_size,
                               const LinkParams &link)
{
    if (group_size <= 1 || bytes <= 0)
        return 0.0;
    const double g = static_cast<double>(group_size);
    return 2.0 * (g - 1.0) / g * bytes / link.bandwidth +
           2.0 * (g - 1.0) * link.latency;
}

double
CollectiveModel::ringAllGather(double bytes, std::uint32_t group_size,
                               const LinkParams &link)
{
    if (group_size <= 1 || bytes <= 0)
        return 0.0;
    const double g = static_cast<double>(group_size);
    return (g - 1.0) / g * bytes / link.bandwidth +
           (g - 1.0) * link.latency;
}

double
CollectiveModel::ringReduceScatter(double bytes, std::uint32_t group_size,
                                   const LinkParams &link)
{
    // Same (g-1)-step alpha-beta shape as the all-gather: each rank
    // forwards its running partial once around the ring and ends up
    // owning 1/g of the fully reduced vector.
    return ringAllGather(bytes, group_size, link);
}

namespace {

/** The historical single-ring model over groupLink's bottleneck. */
class FlatRingAlgorithm final : public CollectiveAlgorithm
{
  public:
    using CollectiveAlgorithm::CollectiveAlgorithm;

    CollectiveKind kind() const override
    {
        return CollectiveKind::FlatRing;
    }

    double
    allReduce(double bytes, const DeviceSet &group,
              const GroupDecomposition &) const override
    {
        if (group.size() <= 1)
            return 0.0;
        return CollectiveModel::ringAllReduce(
            bytes, static_cast<std::uint32_t>(group.size()),
            topo_.groupLink(group));
    }

    double
    allGather(double bytes, const DeviceSet &group,
              const GroupDecomposition &) const override
    {
        if (group.size() <= 1)
            return 0.0;
        return CollectiveModel::ringAllGather(
            bytes, static_cast<std::uint32_t>(group.size()),
            topo_.groupLink(group));
    }

    CollectiveSchedule
    allReduceSchedule(double bytes, const DeviceSet &group,
                      const GroupDecomposition &decomp,
                      const std::string &label) const override
    {
        CollectiveSchedule sched;
        sched.stages.push_back(
            {{group, allReduce(bytes, group, decomp), label}});
        return sched;
    }
};

/**
 * Bottleneck collective class among the island pairs the group
 * spans — the same bottleneck rule ClusterTopology::groupLink
 * applies, so per-island-pair overrides are respected. Shared by the
 * hierarchical and sharded-hierarchical algorithms.
 */
LinkParams
interBottleneck(const ClusterTopology &topo,
                const GroupDecomposition &decomp)
{
    if (topo.uniformLinks())
        return topo.config().interIslandCollective;
    const LinkParams *worst = nullptr;
    for (std::size_t i = 0; i < decomp.islands.size(); ++i) {
        for (std::size_t j = i + 1; j < decomp.islands.size(); ++j) {
            const LinkParams &link = topo.collectiveLink(
                decomp.islands[i].island, decomp.islands[j].island);
            if (worst == nullptr || link.bandwidth < worst->bandwidth)
                worst = &link;
        }
    }
    panicIf(worst == nullptr, "interBottleneck: single island");
    return *worst;
}

/**
 * Three-phase island-aware schedule: ring reduce-scatter within each
 * island (intra class), ring all-reduce across per-island leaders
 * (bottleneck inter-island collective class), ring all-gather back
 * within each island. Single-island groups degenerate exactly to
 * the flat ring (identical formula over the identical link class).
 */
class HierarchicalAlgorithm final : public CollectiveAlgorithm
{
  public:
    using CollectiveAlgorithm::CollectiveAlgorithm;

    CollectiveKind kind() const override
    {
        return CollectiveKind::Hierarchical;
    }

    double
    allReduce(double bytes, const DeviceSet &group,
              const GroupDecomposition &decomp) const override
    {
        if (group.size() <= 1)
            return 0.0;
        if (!decomp.spansIslands())
            return CollectiveModel::ringAllReduce(
                bytes, static_cast<std::uint32_t>(group.size()),
                topo_.groupLink(group));
        double rs_max = 0, ag_max = 0;
        for (const IslandGroup &g : decomp.islands) {
            const LinkParams &intra = topo_.intraLink(g.island);
            rs_max = std::max(rs_max, CollectiveModel::ringReduceScatter(
                                          bytes, g.size(), intra));
            ag_max = std::max(ag_max, CollectiveModel::ringAllGather(
                                          bytes, g.size(), intra));
        }
        const double inter = CollectiveModel::ringAllReduce(
            bytes, decomp.numIslands(), interBottleneck(topo_, decomp));
        return rs_max + inter + ag_max;
    }

    double
    allGather(double bytes, const DeviceSet &group,
              const GroupDecomposition &decomp) const override
    {
        if (group.size() <= 1)
            return 0.0;
        if (!decomp.spansIslands())
            return CollectiveModel::ringAllGather(
                bytes, static_cast<std::uint32_t>(group.size()),
                topo_.groupLink(group));
        // Leaders all-gather across islands, then every island
        // broadcasts inward via its intra all-gather.
        double ag_max = 0;
        for (const IslandGroup &g : decomp.islands)
            ag_max = std::max(ag_max,
                              CollectiveModel::ringAllGather(
                                  bytes, g.size(),
                                  topo_.intraLink(g.island)));
        return CollectiveModel::ringAllGather(
                   bytes, decomp.numIslands(), interBottleneck(topo_, decomp)) +
               ag_max;
    }

    CollectiveSchedule
    allReduceSchedule(double bytes, const DeviceSet &group,
                      const GroupDecomposition &decomp,
                      const std::string &label) const override
    {
        CollectiveSchedule sched;
        if (group.size() <= 1)
            return sched;
        if (!decomp.spansIslands()) {
            // Exact flat-ring degeneration, single step included.
            sched.stages.push_back(
                {{group, allReduce(bytes, group, decomp), label}});
            return sched;
        }

        std::vector<CollectiveStep> rs, ag;
        for (const IslandGroup &g : decomp.islands) {
            if (g.size() <= 1)
                continue; // singleton island slices have no intra phase
            const LinkParams &intra = topo_.intraLink(g.island);
            rs.push_back({g.devices,
                          CollectiveModel::ringReduceScatter(
                              bytes, g.size(), intra),
                          label + "_rs"});
            ag.push_back({g.devices,
                          CollectiveModel::ringAllGather(bytes, g.size(),
                                                         intra),
                          label + "_ag"});
        }
        if (!rs.empty())
            sched.stages.push_back(std::move(rs));
        sched.stages.push_back({{decomp.leaders,
                                 CollectiveModel::ringAllReduce(
                                     bytes, decomp.numIslands(),
                                     interBottleneck(topo_, decomp)),
                                 label + "_xr"}});
        if (!ag.empty())
            sched.stages.push_back(std::move(ag));
        return sched;
    }
};

/**
 * Rail-optimized hierarchical schedule: identical intra phases, but
 * the inter-island stage runs S = min(smallest island slice,
 * bottleneck rail count) concurrent rings, ring r threading the r-th
 * member of every island slice and carrying bytes/S over its own
 * rail. S == 1 (any rails == 1 fabric, or a singleton slice capping
 * the rings) reproduces the hierarchical algorithm bit for bit —
 * bytes/1 is exact in IEEE — and single-island groups degenerate to
 * the flat ring like every algorithm here.
 */
class ShardedHierarchicalAlgorithm final : public CollectiveAlgorithm
{
  public:
    using CollectiveAlgorithm::CollectiveAlgorithm;

    CollectiveKind kind() const override
    {
        return CollectiveKind::ShardedHierarchical;
    }

    /** Concurrent inter-island rings this group can sustain. */
    std::uint32_t
    shardCount(const GroupDecomposition &decomp,
               const LinkParams &inter) const
    {
        return std::min(decomp.minSliceSize(), inter.rails);
    }

    double
    allReduce(double bytes, const DeviceSet &group,
              const GroupDecomposition &decomp) const override
    {
        if (group.size() <= 1)
            return 0.0;
        if (!decomp.spansIslands())
            return CollectiveModel::ringAllReduce(
                bytes, static_cast<std::uint32_t>(group.size()),
                topo_.groupLink(group));
        double rs_max = 0, ag_max = 0;
        for (const IslandGroup &g : decomp.islands) {
            const LinkParams &intra = topo_.intraLink(g.island);
            rs_max = std::max(rs_max, CollectiveModel::ringReduceScatter(
                                          bytes, g.size(), intra));
            ag_max = std::max(ag_max, CollectiveModel::ringAllGather(
                                          bytes, g.size(), intra));
        }
        const LinkParams inter_link = interBottleneck(topo_, decomp);
        const double shards =
            static_cast<double>(shardCount(decomp, inter_link));
        const double inter = CollectiveModel::ringAllReduce(
            bytes / shards, decomp.numIslands(), inter_link);
        return rs_max + inter + ag_max;
    }

    double
    allGather(double bytes, const DeviceSet &group,
              const GroupDecomposition &decomp) const override
    {
        if (group.size() <= 1)
            return 0.0;
        if (!decomp.spansIslands())
            return CollectiveModel::ringAllGather(
                bytes, static_cast<std::uint32_t>(group.size()),
                topo_.groupLink(group));
        double ag_max = 0;
        for (const IslandGroup &g : decomp.islands)
            ag_max = std::max(ag_max,
                              CollectiveModel::ringAllGather(
                                  bytes, g.size(),
                                  topo_.intraLink(g.island)));
        const LinkParams inter_link = interBottleneck(topo_, decomp);
        const double shards =
            static_cast<double>(shardCount(decomp, inter_link));
        return CollectiveModel::ringAllGather(
                   bytes / shards, decomp.numIslands(), inter_link) +
               ag_max;
    }

    CollectiveSchedule
    allReduceSchedule(double bytes, const DeviceSet &group,
                      const GroupDecomposition &decomp,
                      const std::string &label) const override
    {
        CollectiveSchedule sched;
        if (group.size() <= 1)
            return sched;
        if (!decomp.spansIslands()) {
            sched.stages.push_back(
                {{group, allReduce(bytes, group, decomp), label}});
            return sched;
        }

        std::vector<CollectiveStep> rs, ag;
        for (const IslandGroup &g : decomp.islands) {
            if (g.size() <= 1)
                continue; // singleton island slices have no intra phase
            const LinkParams &intra = topo_.intraLink(g.island);
            rs.push_back({g.devices,
                          CollectiveModel::ringReduceScatter(
                              bytes, g.size(), intra),
                          label + "_rs"});
            ag.push_back({g.devices,
                          CollectiveModel::ringAllGather(bytes, g.size(),
                                                         intra),
                          label + "_ag"});
        }
        if (!rs.empty())
            sched.stages.push_back(std::move(rs));

        // One stage of S disjoint per-rail rings: ring r threads the
        // r-th member of every island slice (valid because S never
        // exceeds the smallest slice), so ring 0 is exactly the
        // leader set and S == 1 reproduces the hierarchical stage
        // byte for byte. Disjoint steps of one stage overlap in the
        // SyncExecutor, which is what makes the rings concurrent.
        const LinkParams inter_link = interBottleneck(topo_, decomp);
        const std::uint32_t shards = shardCount(decomp, inter_link);
        const double ring_seconds = CollectiveModel::ringAllReduce(
            bytes / static_cast<double>(shards), decomp.numIslands(),
            inter_link);
        std::vector<CollectiveStep> inter;
        for (std::uint32_t r = 0; r < shards; ++r) {
            DeviceSet ring;
            ring.reserve(decomp.islands.size());
            for (const IslandGroup &g : decomp.islands)
                ring.push_back(g.devices[r]);
            canonicalize(ring);
            inter.push_back({std::move(ring), ring_seconds,
                             label + "_xr"});
        }
        sched.stages.push_back(std::move(inter));

        if (!ag.empty())
            sched.stages.push_back(std::move(ag));
        return sched;
    }
};

} // namespace

// ---------------------------------------------------------------------
// CollectiveModel.

CollectiveModel::CollectiveModel(const ClusterTopology &topo)
    : topo_(topo), flat_(std::make_unique<FlatRingAlgorithm>(topo)),
      hierarchical_(std::make_unique<HierarchicalAlgorithm>(topo)),
      sharded_(std::make_unique<ShardedHierarchicalAlgorithm>(topo))
{
}

CollectiveModel::~CollectiveModel() = default;

const CollectiveAlgorithm &
CollectiveModel::algorithm(CollectiveKind kind) const
{
    switch (kind) {
    case CollectiveKind::FlatRing:
        return *flat_;
    case CollectiveKind::Hierarchical:
        return *hierarchical_;
    case CollectiveKind::ShardedHierarchical:
        return *sharded_;
    case CollectiveKind::Auto:
        break;
    }
    panic("CollectiveModel::algorithm: Auto has no fixed algorithm; "
          "resolve it per call with resolveAuto()");
}

GroupDecomposition
CollectiveModel::decompose(const DeviceSet &group) const
{
    return decomposeByIsland(topo_, group);
}

double
CollectiveModel::allReduceTime(double bytes, const DeviceSet &group) const
{
    if (group.size() <= 1)
        return 0.0;
    return ringAllReduce(bytes, static_cast<std::uint32_t>(group.size()),
                         topo_.groupLink(group));
}

double
CollectiveModel::allGatherTime(double bytes, const DeviceSet &group) const
{
    if (group.size() <= 1)
        return 0.0;
    return ringAllGather(bytes, static_cast<std::uint32_t>(group.size()),
                         topo_.groupLink(group));
}

double
CollectiveModel::allReduceTime(double bytes, const DeviceSet &group,
                               CollectiveKind kind,
                               const GroupDecomposition *decomp) const
{
    if (group.size() <= 1)
        return 0.0;
    GroupDecomposition local;
    if (decomp == nullptr) {
        local = decompose(group);
        decomp = &local;
    }
    if (kind == CollectiveKind::Auto)
        kind = resolveAuto(bytes, group, kind, decomp);
    return algorithm(kind).allReduce(bytes, group, *decomp);
}

double
CollectiveModel::allGatherTime(double bytes, const DeviceSet &group,
                               CollectiveKind kind,
                               const GroupDecomposition *decomp) const
{
    if (group.size() <= 1)
        return 0.0;
    GroupDecomposition local;
    if (decomp == nullptr) {
        local = decompose(group);
        decomp = &local;
    }
    if (kind == CollectiveKind::Auto) {
        const double flat = flat_->allGather(bytes, group, *decomp);
        const double hier =
            hierarchical_->allGather(bytes, group, *decomp);
        const double sharded = sharded_->allGather(bytes, group, *decomp);
        return std::min(std::min(flat, hier), sharded);
    }
    return algorithm(kind).allGather(bytes, group, *decomp);
}

CollectiveKind
CollectiveModel::resolveAuto(double bytes, const DeviceSet &group,
                             CollectiveKind kind,
                             const GroupDecomposition *decomp) const
{
    if (kind != CollectiveKind::Auto)
        return kind;
    if (group.size() <= 1)
        return CollectiveKind::FlatRing;
    GroupDecomposition local;
    if (decomp == nullptr) {
        local = decompose(group);
        decomp = &local;
    }
    const double flat = flat_->allReduce(bytes, group, *decomp);
    const double hier = hierarchical_->allReduce(bytes, group, *decomp);
    const double sharded = sharded_->allReduce(bytes, group, *decomp);
    // Tie order: the sharded schedule must beat *both* others
    // strictly (on rails == 1 fabrics it always ties hierarchical,
    // which keeps the pre-rails resolution), and the flat ring keeps
    // winning plain ties as it always has.
    if (sharded < hier && sharded < flat)
        return CollectiveKind::ShardedHierarchical;
    return hier < flat ? CollectiveKind::Hierarchical
                       : CollectiveKind::FlatRing;
}

CollectiveSchedule
CollectiveModel::allReduceSchedule(double bytes, const DeviceSet &group,
                                   CollectiveKind kind,
                                   const std::string &label,
                                   const GroupDecomposition *decomp) const
{
    CollectiveSchedule empty;
    if (group.size() <= 1)
        return empty;
    GroupDecomposition local;
    if (decomp == nullptr) {
        local = decompose(group);
        decomp = &local;
    }
    kind = resolveAuto(bytes, group, kind, decomp);
    return algorithm(kind).allReduceSchedule(bytes, group, *decomp,
                                             label);
}

double
CollectiveModel::tpAllReduceTime(double bytes, std::uint32_t tp) const
{
    // TP collectives stay within one island (placement enforces the
    // preference), so they are charged at the default intra-island
    // class — where flat and hierarchical rings coincide.
    return ringAllReduce(bytes, tp, topo_.config().intraIsland);
}

double
CollectiveModel::p2pTime(double bytes, DeviceId src, DeviceId dst) const
{
    if (bytes <= 0)
        return 0.0;
    LinkParams link = topo_.linkBetween(src, dst);
    return bytes / link.bandwidth + link.latency;
}

double
CollectiveModel::flowTime(double bytes, const DeviceSet &src,
                          const DeviceSet &dst) const
{
    panicIf(src.empty() || dst.empty(), "flowTime: empty device set");
    if (bytes <= 0)
        return 0.0;
    if (src == dst)
        return 0.0; // data already resident where it is consumed

    // Best pairwise link class available between the two sets:
    // highest bandwidth, ties broken toward the lower latency so the
    // winner is independent of pair iteration order (a pure function
    // of the *set* of spanned link classes, pinned by property_test's
    // stripe-relabel invariance case).
    LinkParams best{0.0, 0.0};
    for (DeviceId s : src) {
        for (DeviceId d : dst) {
            LinkParams l = topo_.linkBetween(s, d);
            if (l.bandwidth > best.bandwidth ||
                (l.bandwidth == best.bandwidth &&
                 l.latency < best.latency))
                best = l;
        }
    }
    // Sharded across parallel streams: each stream moves a slice.
    const double streams =
        static_cast<double>(std::min(src.size(), dst.size()));
    return bytes / streams / best.bandwidth + best.latency;
}

double
CollectiveModel::pairedFlowTime(double bytes, const DeviceSet &src,
                                const DeviceSet &dst) const
{
    panicIf(src.empty() || dst.empty(),
            "pairedFlowTime: empty device set");
    if (bytes <= 0)
        return 0.0;
    if (src == dst)
        return 0.0; // data already resident where it is consumed

    // The legacy best-pair bound, surcharged by the attributed
    // inter-island share: destinations whose island holds no source
    // device receive their shard over the inter-island fabric, so
    // the flow is charged its own cost once more for that fraction
    // of its shards — the identical shard-by-shard attribution
    // PlacementResult.interIslandCommSeconds applies. Miss-free
    // flows price exactly like flowTime, so enabling the pairing-
    // aware oracle only separates windows the attribution metric
    // itself distinguishes.
    const double t = flowTime(bytes, src, dst);
    if (t <= 0)
        return t;
    std::size_t miss = 0;
    for (DeviceId d : dst) {
        const std::uint32_t island = topo_.islandOf(d);
        bool covered = false;
        for (DeviceId s : src) {
            if (topo_.islandOf(s) == island) {
                covered = true;
                break;
            }
        }
        if (!covered)
            ++miss;
    }
    return t * (1.0 + static_cast<double>(miss) /
                          static_cast<double>(dst.size()));
}

} // namespace spindle
