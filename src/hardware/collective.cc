#include "hardware/collective.h"

#include <algorithm>

#include "common/logging.h"

namespace spindle {

CollectiveModel::CollectiveModel(const ClusterTopology &topo)
    : topo_(topo)
{
}

double
CollectiveModel::ringAllReduce(double bytes, std::uint32_t group_size,
                               const LinkParams &link)
{
    if (group_size <= 1 || bytes <= 0)
        return 0.0;
    const double g = static_cast<double>(group_size);
    return 2.0 * (g - 1.0) / g * bytes / link.bandwidth +
           2.0 * (g - 1.0) * link.latency;
}

double
CollectiveModel::ringAllGather(double bytes, std::uint32_t group_size,
                               const LinkParams &link)
{
    if (group_size <= 1 || bytes <= 0)
        return 0.0;
    const double g = static_cast<double>(group_size);
    return (g - 1.0) / g * bytes / link.bandwidth +
           (g - 1.0) * link.latency;
}

double
CollectiveModel::allReduceTime(double bytes, const DeviceSet &group) const
{
    if (group.size() <= 1)
        return 0.0;
    return ringAllReduce(bytes, static_cast<std::uint32_t>(group.size()),
                         topo_.groupLink(group));
}

double
CollectiveModel::allGatherTime(double bytes, const DeviceSet &group) const
{
    if (group.size() <= 1)
        return 0.0;
    return ringAllGather(bytes, static_cast<std::uint32_t>(group.size()),
                         topo_.groupLink(group));
}

double
CollectiveModel::p2pTime(double bytes, DeviceId src, DeviceId dst) const
{
    if (bytes <= 0)
        return 0.0;
    LinkParams link = topo_.linkBetween(src, dst);
    return bytes / link.bandwidth + link.latency;
}

double
CollectiveModel::flowTime(double bytes, const DeviceSet &src,
                          const DeviceSet &dst) const
{
    panicIf(src.empty() || dst.empty(), "flowTime: empty device set");
    if (bytes <= 0)
        return 0.0;
    if (src == dst)
        return 0.0; // data already resident where it is consumed

    // Best pairwise link class available between the two sets.
    LinkParams best{0.0, 0.0};
    for (DeviceId s : src) {
        for (DeviceId d : dst) {
            LinkParams l = topo_.linkBetween(s, d);
            if (l.bandwidth > best.bandwidth)
                best = l;
        }
    }
    // Sharded across parallel streams: each stream moves a slice.
    const double streams =
        static_cast<double>(std::min(src.size(), dst.size()));
    return bytes / streams / best.bandwidth + best.latency;
}

} // namespace spindle
