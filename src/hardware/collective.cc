#include "hardware/collective.h"

#include <algorithm>

#include "common/logging.h"

namespace spindle {

const char *
collectiveKindName(CollectiveKind kind)
{
    switch (kind) {
    case CollectiveKind::FlatRing:
        return "FlatRing";
    case CollectiveKind::Hierarchical:
        return "Hierarchical";
    case CollectiveKind::Auto:
        return "Auto";
    }
    panic("collectiveKindName: bad kind");
}

GroupDecomposition
decomposeByIsland(const ClusterTopology &topo, const DeviceSet &group)
{
    GroupDecomposition out;
    // Bucket members by island. Groups are canonical (ascending), so
    // each bucket's devices come out ascending and the first member
    // appended to a bucket is its lowest id — the elected leader.
    for (DeviceId d : group) {
        const std::uint32_t island = topo.islandOf(d);
        auto it = std::find_if(out.islands.begin(), out.islands.end(),
                               [island](const IslandGroup &g) {
                                   return g.island == island;
                               });
        if (it == out.islands.end()) {
            out.islands.push_back({island, {d}, d});
        } else {
            it->devices.push_back(d);
        }
    }
    std::sort(out.islands.begin(), out.islands.end(),
              [](const IslandGroup &a, const IslandGroup &b) {
                  return a.island < b.island;
              });
    out.leaders.reserve(out.islands.size());
    for (const IslandGroup &g : out.islands)
        out.leaders.push_back(g.leader);
    canonicalize(out.leaders);
    return out;
}

double
CollectiveSchedule::seconds() const
{
    double total = 0;
    for (const auto &stage : stages) {
        double slowest = 0;
        for (const CollectiveStep &step : stage)
            slowest = std::max(slowest, step.seconds);
        total += slowest;
    }
    return total;
}

// ---------------------------------------------------------------------
// Stateless ring formulas.

double
CollectiveModel::ringAllReduce(double bytes, std::uint32_t group_size,
                               const LinkParams &link)
{
    if (group_size <= 1 || bytes <= 0)
        return 0.0;
    const double g = static_cast<double>(group_size);
    return 2.0 * (g - 1.0) / g * bytes / link.bandwidth +
           2.0 * (g - 1.0) * link.latency;
}

double
CollectiveModel::ringAllGather(double bytes, std::uint32_t group_size,
                               const LinkParams &link)
{
    if (group_size <= 1 || bytes <= 0)
        return 0.0;
    const double g = static_cast<double>(group_size);
    return (g - 1.0) / g * bytes / link.bandwidth +
           (g - 1.0) * link.latency;
}

double
CollectiveModel::ringReduceScatter(double bytes, std::uint32_t group_size,
                                   const LinkParams &link)
{
    // Same (g-1)-step alpha-beta shape as the all-gather: each rank
    // forwards its running partial once around the ring and ends up
    // owning 1/g of the fully reduced vector.
    return ringAllGather(bytes, group_size, link);
}

namespace {

/** The historical single-ring model over groupLink's bottleneck. */
class FlatRingAlgorithm final : public CollectiveAlgorithm
{
  public:
    using CollectiveAlgorithm::CollectiveAlgorithm;

    CollectiveKind kind() const override
    {
        return CollectiveKind::FlatRing;
    }

    double
    allReduce(double bytes, const DeviceSet &group,
              const GroupDecomposition &) const override
    {
        if (group.size() <= 1)
            return 0.0;
        return CollectiveModel::ringAllReduce(
            bytes, static_cast<std::uint32_t>(group.size()),
            topo_.groupLink(group));
    }

    double
    allGather(double bytes, const DeviceSet &group,
              const GroupDecomposition &) const override
    {
        if (group.size() <= 1)
            return 0.0;
        return CollectiveModel::ringAllGather(
            bytes, static_cast<std::uint32_t>(group.size()),
            topo_.groupLink(group));
    }

    CollectiveSchedule
    allReduceSchedule(double bytes, const DeviceSet &group,
                      const GroupDecomposition &decomp,
                      const std::string &label) const override
    {
        CollectiveSchedule sched;
        sched.stages.push_back(
            {{group, allReduce(bytes, group, decomp), label}});
        return sched;
    }
};

/**
 * Three-phase island-aware schedule: ring reduce-scatter within each
 * island (intra class), ring all-reduce across per-island leaders
 * (bottleneck inter-island collective class), ring all-gather back
 * within each island. Single-island groups degenerate exactly to
 * the flat ring (identical formula over the identical link class).
 */
class HierarchicalAlgorithm final : public CollectiveAlgorithm
{
  public:
    using CollectiveAlgorithm::CollectiveAlgorithm;

    CollectiveKind kind() const override
    {
        return CollectiveKind::Hierarchical;
    }

    /**
     * Bottleneck collective class among the island pairs the group
     * spans — the same bottleneck rule ClusterTopology::groupLink
     * applies, so per-island-pair overrides are respected.
     */
    LinkParams
    interBottleneck(const GroupDecomposition &decomp) const
    {
        if (topo_.uniformLinks())
            return topo_.config().interIslandCollective;
        const LinkParams *worst = nullptr;
        for (std::size_t i = 0; i < decomp.islands.size(); ++i) {
            for (std::size_t j = i + 1; j < decomp.islands.size(); ++j) {
                const LinkParams &link = topo_.collectiveLink(
                    decomp.islands[i].island, decomp.islands[j].island);
                if (worst == nullptr ||
                    link.bandwidth < worst->bandwidth)
                    worst = &link;
            }
        }
        panicIf(worst == nullptr, "interBottleneck: single island");
        return *worst;
    }

    double
    allReduce(double bytes, const DeviceSet &group,
              const GroupDecomposition &decomp) const override
    {
        if (group.size() <= 1)
            return 0.0;
        if (!decomp.spansIslands())
            return CollectiveModel::ringAllReduce(
                bytes, static_cast<std::uint32_t>(group.size()),
                topo_.groupLink(group));
        double rs_max = 0, ag_max = 0;
        for (const IslandGroup &g : decomp.islands) {
            const LinkParams &intra = topo_.intraLink(g.island);
            rs_max = std::max(rs_max, CollectiveModel::ringReduceScatter(
                                          bytes, g.size(), intra));
            ag_max = std::max(ag_max, CollectiveModel::ringAllGather(
                                          bytes, g.size(), intra));
        }
        const double inter = CollectiveModel::ringAllReduce(
            bytes, decomp.numIslands(), interBottleneck(decomp));
        return rs_max + inter + ag_max;
    }

    double
    allGather(double bytes, const DeviceSet &group,
              const GroupDecomposition &decomp) const override
    {
        if (group.size() <= 1)
            return 0.0;
        if (!decomp.spansIslands())
            return CollectiveModel::ringAllGather(
                bytes, static_cast<std::uint32_t>(group.size()),
                topo_.groupLink(group));
        // Leaders all-gather across islands, then every island
        // broadcasts inward via its intra all-gather.
        double ag_max = 0;
        for (const IslandGroup &g : decomp.islands)
            ag_max = std::max(ag_max,
                              CollectiveModel::ringAllGather(
                                  bytes, g.size(),
                                  topo_.intraLink(g.island)));
        return CollectiveModel::ringAllGather(
                   bytes, decomp.numIslands(), interBottleneck(decomp)) +
               ag_max;
    }

    CollectiveSchedule
    allReduceSchedule(double bytes, const DeviceSet &group,
                      const GroupDecomposition &decomp,
                      const std::string &label) const override
    {
        CollectiveSchedule sched;
        if (group.size() <= 1)
            return sched;
        if (!decomp.spansIslands()) {
            // Exact flat-ring degeneration, single step included.
            sched.stages.push_back(
                {{group, allReduce(bytes, group, decomp), label}});
            return sched;
        }

        std::vector<CollectiveStep> rs, ag;
        for (const IslandGroup &g : decomp.islands) {
            if (g.size() <= 1)
                continue; // singleton island slices have no intra phase
            const LinkParams &intra = topo_.intraLink(g.island);
            rs.push_back({g.devices,
                          CollectiveModel::ringReduceScatter(
                              bytes, g.size(), intra),
                          label + "_rs"});
            ag.push_back({g.devices,
                          CollectiveModel::ringAllGather(bytes, g.size(),
                                                         intra),
                          label + "_ag"});
        }
        if (!rs.empty())
            sched.stages.push_back(std::move(rs));
        sched.stages.push_back({{decomp.leaders,
                                 CollectiveModel::ringAllReduce(
                                     bytes, decomp.numIslands(),
                                     interBottleneck(decomp)),
                                 label + "_xr"}});
        if (!ag.empty())
            sched.stages.push_back(std::move(ag));
        return sched;
    }
};

} // namespace

// ---------------------------------------------------------------------
// CollectiveModel.

CollectiveModel::CollectiveModel(const ClusterTopology &topo)
    : topo_(topo), flat_(std::make_unique<FlatRingAlgorithm>(topo)),
      hierarchical_(std::make_unique<HierarchicalAlgorithm>(topo))
{
}

CollectiveModel::~CollectiveModel() = default;

const CollectiveAlgorithm &
CollectiveModel::algorithm(CollectiveKind kind) const
{
    switch (kind) {
    case CollectiveKind::FlatRing:
        return *flat_;
    case CollectiveKind::Hierarchical:
        return *hierarchical_;
    case CollectiveKind::Auto:
        break;
    }
    panic("CollectiveModel::algorithm: Auto has no fixed algorithm; "
          "resolve it per call with resolveAuto()");
}

GroupDecomposition
CollectiveModel::decompose(const DeviceSet &group) const
{
    return decomposeByIsland(topo_, group);
}

double
CollectiveModel::allReduceTime(double bytes, const DeviceSet &group) const
{
    if (group.size() <= 1)
        return 0.0;
    return ringAllReduce(bytes, static_cast<std::uint32_t>(group.size()),
                         topo_.groupLink(group));
}

double
CollectiveModel::allGatherTime(double bytes, const DeviceSet &group) const
{
    if (group.size() <= 1)
        return 0.0;
    return ringAllGather(bytes, static_cast<std::uint32_t>(group.size()),
                         topo_.groupLink(group));
}

double
CollectiveModel::allReduceTime(double bytes, const DeviceSet &group,
                               CollectiveKind kind,
                               const GroupDecomposition *decomp) const
{
    if (group.size() <= 1)
        return 0.0;
    GroupDecomposition local;
    if (decomp == nullptr) {
        local = decompose(group);
        decomp = &local;
    }
    if (kind == CollectiveKind::Auto)
        kind = resolveAuto(bytes, group, kind, decomp);
    return algorithm(kind).allReduce(bytes, group, *decomp);
}

double
CollectiveModel::allGatherTime(double bytes, const DeviceSet &group,
                               CollectiveKind kind,
                               const GroupDecomposition *decomp) const
{
    if (group.size() <= 1)
        return 0.0;
    GroupDecomposition local;
    if (decomp == nullptr) {
        local = decompose(group);
        decomp = &local;
    }
    if (kind == CollectiveKind::Auto) {
        const double flat = flat_->allGather(bytes, group, *decomp);
        const double hier =
            hierarchical_->allGather(bytes, group, *decomp);
        return std::min(flat, hier);
    }
    return algorithm(kind).allGather(bytes, group, *decomp);
}

CollectiveKind
CollectiveModel::resolveAuto(double bytes, const DeviceSet &group,
                             CollectiveKind kind,
                             const GroupDecomposition *decomp) const
{
    if (kind != CollectiveKind::Auto)
        return kind;
    if (group.size() <= 1)
        return CollectiveKind::FlatRing;
    GroupDecomposition local;
    if (decomp == nullptr) {
        local = decompose(group);
        decomp = &local;
    }
    const double flat = flat_->allReduce(bytes, group, *decomp);
    const double hier = hierarchical_->allReduce(bytes, group, *decomp);
    return hier < flat ? CollectiveKind::Hierarchical
                       : CollectiveKind::FlatRing;
}

CollectiveSchedule
CollectiveModel::allReduceSchedule(double bytes, const DeviceSet &group,
                                   CollectiveKind kind,
                                   const std::string &label,
                                   const GroupDecomposition *decomp) const
{
    CollectiveSchedule empty;
    if (group.size() <= 1)
        return empty;
    GroupDecomposition local;
    if (decomp == nullptr) {
        local = decompose(group);
        decomp = &local;
    }
    kind = resolveAuto(bytes, group, kind, decomp);
    return algorithm(kind).allReduceSchedule(bytes, group, *decomp,
                                             label);
}

double
CollectiveModel::tpAllReduceTime(double bytes, std::uint32_t tp) const
{
    // TP collectives stay within one island (placement enforces the
    // preference), so they are charged at the default intra-island
    // class — where flat and hierarchical rings coincide.
    return ringAllReduce(bytes, tp, topo_.config().intraIsland);
}

double
CollectiveModel::p2pTime(double bytes, DeviceId src, DeviceId dst) const
{
    if (bytes <= 0)
        return 0.0;
    LinkParams link = topo_.linkBetween(src, dst);
    return bytes / link.bandwidth + link.latency;
}

double
CollectiveModel::flowTime(double bytes, const DeviceSet &src,
                          const DeviceSet &dst) const
{
    panicIf(src.empty() || dst.empty(), "flowTime: empty device set");
    if (bytes <= 0)
        return 0.0;
    if (src == dst)
        return 0.0; // data already resident where it is consumed

    // Best pairwise link class available between the two sets.
    LinkParams best{0.0, 0.0};
    for (DeviceId s : src) {
        for (DeviceId d : dst) {
            LinkParams l = topo_.linkBetween(s, d);
            if (l.bandwidth > best.bandwidth)
                best = l;
        }
    }
    // Sharded across parallel streams: each stream moves a slice.
    const double streams =
        static_cast<double>(std::min(src.size(), dst.size()));
    return bytes / streams / best.bandwidth + best.latency;
}

} // namespace spindle
