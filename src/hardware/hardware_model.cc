#include "hardware/hardware_model.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/logging.h"
#include "common/math_util.h"

namespace spindle {

namespace {

inline std::size_t
hashCombine(std::size_t seed, std::size_t value)
{
    return seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) +
                   (seed >> 2));
}

} // namespace

std::size_t
HardwareModel::OpSignatureHash::operator()(const OpSignature &sig) const
{
    std::size_t h = std::hash<std::int64_t>{}(sig.batch);
    h = hashCombine(h, std::hash<std::int64_t>{}(sig.hidden));
    h = hashCombine(h, std::hash<std::uint64_t>{}(
                           std::bit_cast<std::uint64_t>(sig.flopsFwd)));
    h = hashCombine(h, std::hash<std::uint64_t>{}(
                           std::bit_cast<std::uint64_t>(
                               sig.activationBytes)));
    h = hashCombine(h, std::hash<std::uint32_t>{}(sig.n));
    return h;
}

HardwareModel::OpSignature
HardwareModel::signatureOf(const OperatorDesc &op, std::uint32_t n)
{
    // + 0.0 normalizes -0.0 to +0.0: the hash is over bit patterns
    // while operator== is numeric, and the two must agree on signed
    // zeros to honor the unordered_map key contract.
    return {op.input.batch, op.input.hidden, op.flopsFwd + 0.0,
            op.activationBytes + 0.0, n};
}

HardwareModel::HardwareModel(const ClusterTopology &topo,
                             HardwareParams params)
    : topo_(topo), params_(params), coll_(topo)
{
    fatalIf(params_.halfEffFlops <= 0, "HardwareModel: bad halfEffFlops");
    fatalIf(params_.maxTpDegree == 0 || !isPowerOfTwo(params_.maxTpDegree),
            "HardwareModel: maxTpDegree must be a power of two");
}

double
HardwareModel::efficiency(double per_device_flops) const
{
    if (per_device_flops <= 0)
        return params_.minEfficiency;
    double eff = per_device_flops / (per_device_flops + params_.halfEffFlops);
    if (per_device_flops < params_.tinyKernelFlops)
        eff *= params_.tinyKernelFactor;
    else if (per_device_flops < params_.smallKernelFlops)
        eff *= params_.smallKernelFactor;
    return std::max(eff, params_.minEfficiency);
}

std::vector<ParallelConfig>
HardwareModel::configsFor(const OperatorDesc &op, std::uint32_t n) const
{
    std::vector<ParallelConfig> out;
    if (n == 0)
        return out;
    const auto batch = static_cast<std::uint32_t>(
        std::max<std::int64_t>(op.input.batch, 1));
    const auto hidden = static_cast<std::uint32_t>(
        std::max<std::int64_t>(op.input.hidden, 1));
    // TP shards attention heads / MLP columns; cap so each shard
    // keeps a sane width, and keep the TP group inside one island —
    // the largest island bounds what any placement can host.
    std::uint32_t tp_cap = std::min(params_.maxTpDegree,
                                    topo_.maxIslandSize());
    tp_cap = std::min(tp_cap, std::max(1u, hidden / 64));

    for (std::uint32_t tp = 1; tp <= tp_cap && tp <= n; tp *= 2) {
        if (n % tp != 0)
            continue;
        std::uint32_t dp = n / tp;
        if (batch % dp != 0)
            continue; // §3.3: DP degree must divide the global batch
        out.push_back({dp, tp});
    }
    return out;
}

bool
HardwareModel::isValidAllocation(const OperatorDesc &op,
                                 std::uint32_t n) const
{
    return !configsFor(op, n).empty();
}

std::vector<std::uint32_t>
HardwareModel::validAllocations(const OperatorDesc &op,
                                std::uint32_t max_n) const
{
    const OpSignature sig = signatureOf(op, max_n);
    return valid_allocs_memo_.getOrCompute(sig, [&] {
        std::vector<std::uint32_t> out;
        for (std::uint32_t n = 1; n <= max_n; ++n)
            if (isValidAllocation(op, n))
                out.push_back(n);
        panicIf(out.empty(), "validAllocations: not even n=1 is valid");
        return out;
    });
}

ParallelConfig
HardwareModel::bestConfig(const OperatorDesc &op, std::uint32_t n) const
{
    const OpSignature sig = signatureOf(op, n);
    return best_config_memo_.getOrCompute(sig, [&] {
        auto configs = configsFor(op, n);
        if (configs.empty())
            fatal(strCat("bestConfig: no valid config for op '",
                         op.name, "' with n=", n));
        ParallelConfig best = configs.front();
        double best_t = std::numeric_limits<double>::infinity();
        for (const ParallelConfig &cfg : configs) {
            double t = opTimeFwd(op, cfg);
            if (t < best_t) {
                best_t = t;
                best = cfg;
            }
        }
        return best;
    });
}

double
HardwareModel::passTime(double flops, double act_bytes,
                        ParallelConfig cfg) const
{
    const double n = cfg.devices();
    panicIf(n < 1, "passTime: empty config");
    const double per_dev = flops / n;
    const double compute =
        per_dev / (topo_.device().peakFlops * efficiency(per_dev));

    // Megatron-style TP: two all-reduces of the (per-replica share
    // of the) activation per pass, priced by the collective oracle's
    // within-island charge — where every algorithm (flat ring,
    // hierarchical) degenerates to the same intra-island ring, so
    // the estimator/planner and the runtime cannot disagree.
    double comm = 0.0;
    if (cfg.tp > 1) {
        const double shard_bytes = act_bytes / cfg.dp;
        comm = 2.0 * coll_.tpAllReduceTime(shard_bytes, cfg.tp);
    }
    return params_.kernelLaunch + compute + comm;
}

double
HardwareModel::opTimeFwd(const OperatorDesc &op, ParallelConfig cfg) const
{
    return passTime(op.flopsFwd, op.activationBytes, cfg);
}

double
HardwareModel::opTimeFwd(const OperatorDesc &op, std::uint32_t n) const
{
    return opTimeFwd(op, bestConfig(op, n));
}

double
HardwareModel::opTimeBwd(const OperatorDesc &op, ParallelConfig cfg) const
{
    return passTime(op.flopsFwd * params_.bwdFlopsFactor,
                    op.activationBytes, cfg);
}

double
HardwareModel::opTime(const OperatorDesc &op, std::uint32_t n) const
{
    ParallelConfig cfg = bestConfig(op, n);
    return opTimeFwd(op, cfg) + opTimeBwd(op, cfg);
}

double
HardwareModel::metaOpTime(const MetaOp &m, std::uint32_t n) const
{
    return opTime(memberDesc(m), n);
}

std::vector<std::uint32_t>
HardwareModel::validAllocations(const MetaOp &m, std::uint32_t max_n) const
{
    return validAllocations(memberDesc(m), max_n);
}

} // namespace spindle
