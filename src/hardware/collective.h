/**
 * @file
 * Collective-algorithm layer: the communication cost oracle AND the
 * pluggable algorithms Spindle's runtime schedules parameter sync
 * with (§3.6). Point-to-point flows use the classic alpha-beta
 * formulation [Hockney 94]; group collectives come in four flavours:
 *
 *  - FlatRing — the historical model: one ring over the whole group,
 *    bottlenecked by the slowest collective link class the group
 *    spans (ClusterTopology::groupLink). Bit-reproducible legacy
 *    behaviour; the default.
 *  - Hierarchical — topology-aware three-phase schedule over the
 *    group's island decomposition: ring reduce-scatter within each
 *    island over its intra link class, ring all-reduce across the
 *    per-island leaders over the bottleneck inter-island collective
 *    class, ring all-gather back within each island. Single-island
 *    groups degenerate *exactly* to the flat ring.
 *  - ShardedHierarchical — the rail-optimized variant: same intra
 *    phases, but the inter-island stage runs
 *    S = min(smallest island slice, bottleneck rails) concurrent
 *    rings — ring r over the r-th member of every island slice —
 *    each carrying bytes/S over its own rail. Degenerates bit-exactly
 *    to Hierarchical when S == 1 (rails == 1 fabrics) and to the
 *    flat ring on single-island groups.
 *  - Auto — per call, whichever of the three is cheapest (flat on
 *    ties; Hierarchical on a hierarchical/sharded tie).
 *
 * Island decomposition (decomposeByIsland) handles arbitrary
 * DeviceSets: partial-island membership, permuted / non-contiguous
 * device ids, singleton islands. The leader of each island group is
 * its lowest member id.
 *
 * The same oracle prices collectives everywhere: SyncExecutor
 * schedules the phase structure on the simulator, the planner's
 * placement scoring and HardwareModel's Megatron-TP charge use the
 * ring formulas below, and the estimator inherits them through the
 * hardware oracle — so planning and runtime never disagree on what a
 * collective costs.
 */

#ifndef SPINDLE_HARDWARE_COLLECTIVE_H
#define SPINDLE_HARDWARE_COLLECTIVE_H

#include <memory>
#include <string>
#include <vector>

#include "hardware/topology.h"

namespace spindle {

/** Which collective algorithm a consumer selects. */
enum class CollectiveKind : std::uint8_t
{
    FlatRing,     ///< one ring over the whole group (legacy default)
    Hierarchical, ///< intra-island reduce-scatter / leader ring / all-gather
    Auto,         ///< per call, the cheapest algorithm (flat on ties)
    ShardedHierarchical, ///< hierarchical with concurrent per-rail inter rings
};

/** Human-readable algorithm name ("FlatRing", ...). */
const char *collectiveKindName(CollectiveKind kind);

/** One island's slice of a device group. */
struct IslandGroup
{
    std::uint32_t island = 0; ///< island index in the topology
    DeviceSet devices;        ///< group members in this island, ascending
    DeviceId leader = 0;      ///< elected leader: the lowest member id

    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(devices.size());
    }
};

/**
 * Topology-driven island decomposition of a device group: which
 * islands the group touches (ascending island index), the members it
 * has in each, and the elected per-island leaders.
 */
struct GroupDecomposition
{
    std::vector<IslandGroup> islands; ///< ascending island index
    DeviceSet leaders;                ///< leader ids, ascending

    bool spansIslands() const { return islands.size() > 1; }
    std::uint32_t numIslands() const
    {
        return static_cast<std::uint32_t>(islands.size());
    }

    /**
     * Size of the smallest island slice: the cap on how many
     * concurrent inter-island rings ShardedHierarchical can form
     * (ring r needs the r-th member of *every* slice). Cached here
     * so ParameterGroupPool's per-group decomposition carries it.
     */
    std::uint32_t minSliceSize() const
    {
        std::uint32_t m = 0;
        for (const IslandGroup &g : islands)
            m = (m == 0 || g.size() < m) ? g.size() : m;
        return m;
    }
};

/** Decompose @p group by the islands of @p topo (see file comment). */
GroupDecomposition decomposeByIsland(const ClusterTopology &topo,
                                     const DeviceSet &group);

/** One simulator reservation of a collective schedule. */
struct CollectiveStep
{
    DeviceSet devices;  ///< devices the step occupies
    double seconds = 0; ///< analytic duration of the step
    std::string label;  ///< trace label ("param_sync", "..._rs", ...)
};

/**
 * Phase structure of one collective: stages run in sequence (stage
 * s+1 starts when every step of stage s finished); steps within one
 * stage touch disjoint devices and therefore overlap. The flat ring
 * is one stage of one step; the hierarchical schedule is
 * [intra reduce-scatter steps] -> [leader ring] -> [intra all-gather
 * steps], so only the leader stage occupies devices across islands.
 */
struct CollectiveSchedule
{
    std::vector<std::vector<CollectiveStep>> stages;

    /** Analytic total: sum over stages of the slowest step. */
    double seconds() const;
};

/**
 * One pluggable collective algorithm: prices ring all-reduce /
 * all-gather over a decomposed device group and emits the phase
 * schedule the runtime executes. Stateless over a frozen topology.
 */
class CollectiveAlgorithm
{
  public:
    explicit CollectiveAlgorithm(const ClusterTopology &topo)
        : topo_(topo)
    {
    }
    virtual ~CollectiveAlgorithm() = default;

    virtual CollectiveKind kind() const = 0;

    /** All-reduce time of @p bytes over the decomposed group. */
    virtual double allReduce(double bytes, const DeviceSet &group,
                             const GroupDecomposition &decomp) const = 0;

    /** All-gather time of @p bytes over the decomposed group. */
    virtual double allGather(double bytes, const DeviceSet &group,
                             const GroupDecomposition &decomp) const = 0;

    /**
     * The all-reduce phase schedule the runtime executes; step
     * labels derive from @p label. Its seconds() equals allReduce().
     */
    virtual CollectiveSchedule
    allReduceSchedule(double bytes, const DeviceSet &group,
                      const GroupDecomposition &decomp,
                      const std::string &label) const = 0;

  protected:
    const ClusterTopology &topo_;
};

/**
 * Collective/communication cost oracle over a concrete topology,
 * dispatching to the selected CollectiveAlgorithm. The kind-less
 * overloads keep the historical flat-ring behaviour bit for bit.
 */
class CollectiveModel
{
  public:
    explicit CollectiveModel(const ClusterTopology &topo);
    ~CollectiveModel();

    CollectiveModel(const CollectiveModel &) = delete;
    CollectiveModel &operator=(const CollectiveModel &) = delete;

    /**
     * Ring all-reduce of @p bytes across @p group (flat ring).
     * t = 2 (g-1)/g * bytes / bw + 2 (g-1) * lat; 0 for g <= 1.
     */
    double allReduceTime(double bytes, const DeviceSet &group) const;

    /** Ring all-gather: t = (g-1)/g * bytes / bw + (g-1) * lat. */
    double allGatherTime(double bytes, const DeviceSet &group) const;

    /**
     * Algorithm-aware all-reduce. FlatRing reproduces the kind-less
     * overload bit for bit; Hierarchical degenerates to it on
     * single-island groups; ShardedHierarchical degenerates to
     * Hierarchical when its shard count is 1; Auto returns the
     * minimum of the three. Pass a cached @p decomp (e.g.
     * ParameterGroupPool's) to skip re-decomposing the group; it
     * must be the decomposition of @p group by this model's topology.
     */
    double allReduceTime(double bytes, const DeviceSet &group,
                         CollectiveKind kind,
                         const GroupDecomposition *decomp = nullptr) const;

    /** Algorithm-aware all-gather (same contract as allReduceTime). */
    double allGatherTime(double bytes, const DeviceSet &group,
                         CollectiveKind kind,
                         const GroupDecomposition *decomp = nullptr) const;

    /**
     * The algorithm Auto resolves to for this call:
     * ShardedHierarchical when strictly cheaper than both others,
     * else Hierarchical when strictly cheaper than the flat ring,
     * FlatRing otherwise (ties included — and a hierarchical/sharded
     * tie, always the case on rails == 1 fabrics, resolves to
     * Hierarchical). Non-Auto kinds resolve to themselves.
     */
    CollectiveKind
    resolveAuto(double bytes, const DeviceSet &group, CollectiveKind kind,
                const GroupDecomposition *decomp = nullptr) const;

    /**
     * Phase schedule of the selected algorithm's all-reduce (Auto:
     * of the per-call winner). seconds() equals allReduceTime() of
     * the resolved kind.
     */
    CollectiveSchedule
    allReduceSchedule(double bytes, const DeviceSet &group,
                      CollectiveKind kind, const std::string &label,
                      const GroupDecomposition *decomp = nullptr) const;

    /** Island decomposition of @p group (decomposeByIsland). */
    GroupDecomposition decompose(const DeviceSet &group) const;

    /**
     * Megatron-style TP all-reduce of @p bytes across a @p tp -wide
     * group. TP groups stay within one island (placement enforces
     * the preference), where every algorithm degenerates to the same
     * intra-island ring — so this price is algorithm-invariant and
     * the planner/estimator and the runtime use one oracle.
     */
    double tpAllReduceTime(double bytes, std::uint32_t tp) const;

    /** Point-to-point transfer of @p bytes from @p src to @p dst. */
    double p2pTime(double bytes, DeviceId src, DeviceId dst) const;

    /**
     * Transfer @p bytes from source device set to destination set,
     * as the runtime's batched P2P does at wave boundaries. Picks
     * the cheapest pairing class available: free when the sets are
     * identical singletons, on-device copy when any device overlaps,
     * otherwise the best pairwise link. Data is assumed sharded
     * across min(|src|,|dst|) parallel streams.
     */
    double flowTime(double bytes, const DeviceSet &src,
                    const DeviceSet &dst) const;

    /**
     * Pairing-aware flow pricing: flowTime() surcharged by the
     * attributed inter-island share. Destinations whose island holds
     * no source device must receive their shard over the
     * inter-island fabric, so the flow is charged its own cost once
     * more for that fraction of its shards — the identical
     * shard-by-shard attribution
     * PlacementResult.interIslandCommSeconds uses. Miss-free flows
     * price exactly like flowTime (the surcharge is the only
     * difference), which is what lets the placement score gradient
     * separate island-aligned windows from ones that merely touch
     * the source's island without disturbing how comm trades against
     * the other score terms. Drop-in replacement in placement
     * scoring (PlacementOptions::pairingAwareFlowPricing).
     */
    double pairedFlowTime(double bytes, const DeviceSet &src,
                          const DeviceSet &dst) const;

    /** Stateless ring all-reduce over an explicit link class. */
    static double ringAllReduce(double bytes, std::uint32_t group_size,
                                const LinkParams &link);

    /** Stateless ring all-gather over an explicit link class. */
    static double ringAllGather(double bytes, std::uint32_t group_size,
                                const LinkParams &link);

    /** Stateless ring reduce-scatter (same alpha-beta shape as the
     *  all-gather: each rank ends with 1/g of the reduced vector). */
    static double ringReduceScatter(double bytes, std::uint32_t group_size,
                                    const LinkParams &link);

    /** The concrete algorithm for a non-Auto kind. */
    const CollectiveAlgorithm &algorithm(CollectiveKind kind) const;

    const ClusterTopology &topology() const { return topo_; }

  private:
    const ClusterTopology &topo_;
    std::unique_ptr<CollectiveAlgorithm> flat_;
    std::unique_ptr<CollectiveAlgorithm> hierarchical_;
    std::unique_ptr<CollectiveAlgorithm> sharded_;
};

} // namespace spindle

#endif // SPINDLE_HARDWARE_COLLECTIVE_H
