/**
 * @file
 * Analytical cost model for the NCCL-style collectives Spindle's
 * runtime relies on: ring all-reduce for parameter/gradient sync and
 * TP activations, and batched point-to-point for inter-wave data
 * flows (§3.6). The classic alpha-beta formulation [Hockney 94].
 */

#ifndef SPINDLE_HARDWARE_COLLECTIVE_H
#define SPINDLE_HARDWARE_COLLECTIVE_H

#include "hardware/topology.h"

namespace spindle {

/**
 * Collective/communication cost oracle over a concrete topology.
 * Group collectives are bottlenecked by the slowest link class the
 * group spans (NVLink inside one island, InfiniBand across).
 */
class CollectiveModel
{
  public:
    explicit CollectiveModel(const ClusterTopology &topo);

    /**
     * Ring all-reduce of @p bytes across @p group.
     * t = 2 (g-1)/g * bytes / bw + 2 (g-1) * lat; 0 for g <= 1.
     */
    double allReduceTime(double bytes, const DeviceSet &group) const;

    /** Ring all-gather: t = (g-1)/g * bytes / bw + (g-1) * lat. */
    double allGatherTime(double bytes, const DeviceSet &group) const;

    /** Point-to-point transfer of @p bytes from @p src to @p dst. */
    double p2pTime(double bytes, DeviceId src, DeviceId dst) const;

    /**
     * Transfer @p bytes from source device set to destination set,
     * as the runtime's batched P2P does at wave boundaries. Picks
     * the cheapest pairing class available: free when the sets are
     * identical singletons, on-device copy when any device overlaps,
     * otherwise the best pairwise link. Data is assumed sharded
     * across min(|src|,|dst|) parallel streams.
     */
    double flowTime(double bytes, const DeviceSet &src,
                    const DeviceSet &dst) const;

    /** Stateless ring all-reduce over an explicit link class. */
    static double ringAllReduce(double bytes, std::uint32_t group_size,
                                const LinkParams &link);

    /** Stateless ring all-gather over an explicit link class. */
    static double ringAllGather(double bytes, std::uint32_t group_size,
                                const LinkParams &link);

    const ClusterTopology &topology() const { return topo_; }

  private:
    const ClusterTopology &topo_;
};

} // namespace spindle

#endif // SPINDLE_HARDWARE_COLLECTIVE_H
