/**
 * @file
 * Ground-truth operator timing oracle — the stand-in for profiling
 * real kernels on the paper's A800 cluster.
 *
 * For an operator with forward FLOPs F executed on n devices under a
 * hybrid DP x TP configuration, the model charges
 *
 *   t = launch + (F/n) / (peak * eff(F/n)) + tp_comm
 *
 * where eff(w) is a saturating, *piecewise* kernel-efficiency curve:
 * small per-device workloads underutilize the GPU, and crossing a
 * kernel-regime boundary applies a discrete penalty. This reproduces
 * the paper's two load-bearing observations (§3.2, Appendix A):
 * light MetaOps stop scaling after a few devices, and the execution
 * time function T_m(n) is piecewise in n because "the invoked kernels
 * may vary across different per-device workloads".
 *
 * The model also defines which allocations are *valid* for an
 * operator (§3.3: DP degree must divide the global batch; TP degree
 * is a bounded power of two), which the allocator's bi-point
 * discretization consumes.
 */

#ifndef SPINDLE_HARDWARE_HARDWARE_MODEL_H
#define SPINDLE_HARDWARE_HARDWARE_MODEL_H

#include <vector>

#include "common/sharded_memo.h"
#include "graph/meta_graph.h"
#include "hardware/collective.h"
#include "hardware/topology.h"

namespace spindle {

/** Hybrid parallelization of one operator over n = dp * tp devices. */
struct ParallelConfig
{
    std::uint32_t dp = 1; ///< data-parallel degree (divides batch)
    std::uint32_t tp = 1; ///< tensor-parallel degree (power of two)

    std::uint32_t devices() const { return dp * tp; }
    bool operator==(const ParallelConfig &other) const = default;
};

/** Tunables of the analytical GPU model. */
struct HardwareParams
{
    /** Backward-pass FLOPs as a multiple of forward FLOPs. */
    double bwdFlopsFactor = 2.0;

    /** Fixed per-operator overhead per pass (kernel launches). */
    double kernelLaunch = 40 * kMicro;

    /** Per-device FLOPs at which kernel efficiency reaches 50%. */
    double halfEffFlops = 3e10;

    /** Kernel-regime boundaries (per-device forward FLOPs) and the
     *  discrete efficiency penalty applied below each of them. */
    double smallKernelFlops = 1e9;
    double smallKernelFactor = 0.8;
    double tinyKernelFlops = 1.5e8;
    double tinyKernelFactor = 0.6;

    /** Efficiency floor. */
    double minEfficiency = 0.02;

    /** Largest tensor-parallel degree considered. */
    std::uint32_t maxTpDegree = 8;
};

/**
 * Deterministic cost oracle over a concrete cluster.
 *
 * All times are seconds for *one* operator (one member of a MetaOp);
 * MetaOp totals multiply by L_m. TP collectives are assumed to stay
 * within one island (the placement pass enforces this preference), so
 * they are charged at the intra-island link class.
 */
class HardwareModel
{
  public:
    HardwareModel(const ClusterTopology &topo, HardwareParams params = {});

    /** Piecewise saturating kernel efficiency for a per-device load. */
    double efficiency(double per_device_flops) const;

    /** All valid parallel configs with dp * tp == n for @p op. */
    std::vector<ParallelConfig> configsFor(const OperatorDesc &op,
                                           std::uint32_t n) const;

    /** True iff some valid config uses exactly n devices. */
    bool isValidAllocation(const OperatorDesc &op, std::uint32_t n) const;

    /** Ascending list of valid n in [1, max_n] (§3.3 constraint). */
    std::vector<std::uint32_t> validAllocations(const OperatorDesc &op,
                                                std::uint32_t max_n) const;

    /** Cheapest valid config for exactly n devices; fatal if none. */
    ParallelConfig bestConfig(const OperatorDesc &op,
                              std::uint32_t n) const;

    /** Forward time of one operator under an explicit config. */
    double opTimeFwd(const OperatorDesc &op, ParallelConfig cfg) const;

    /** Forward time under the best config for n devices. */
    double opTimeFwd(const OperatorDesc &op, std::uint32_t n) const;

    /** Backward time (bwdFlopsFactor x compute, same comm). */
    double opTimeBwd(const OperatorDesc &op, ParallelConfig cfg) const;

    /**
     * Full training-step time of one operator (forward + backward)
     * on n devices under the best config. This is the paper's
     * T_m(n) sample for one member operator.
     */
    double opTime(const OperatorDesc &op, std::uint32_t n) const;

    /** T_m(n) for one member operator of MetaOp @p m. */
    double metaOpTime(const MetaOp &m, std::uint32_t n) const;

    /** Valid allocations for a MetaOp (same rule as its members). */
    std::vector<std::uint32_t> validAllocations(const MetaOp &m,
                                                std::uint32_t max_n) const;

    const HardwareParams &params() const { return params_; }
    const ClusterTopology &topology() const { return topo_; }
    const CollectiveModel &collectives() const { return coll_; }

  private:
    double passTime(double flops, double act_bytes,
                    ParallelConfig cfg) const;

    /**
     * Workload signature of an operator for the lookup caches: the
     * exact set of fields configsFor()/opTimeFwd() read. Two ops
     * with equal signatures get identical configs and times, so
     * memoized answers are value-transparent. Placement synthesizes
     * a fresh memberDesc() per query, hence keying on fields rather
     * than addresses.
     */
    struct OpSignature
    {
        std::int64_t batch = 0;
        std::int64_t hidden = 0;
        double flopsFwd = 0;
        double activationBytes = 0;
        std::uint32_t n = 0;

        bool operator==(const OpSignature &other) const = default;
    };

    struct OpSignatureHash
    {
        std::size_t operator()(const OpSignature &sig) const;
    };

    static OpSignature signatureOf(const OperatorDesc &op,
                                   std::uint32_t n);

    const ClusterTopology &topo_;
    HardwareParams params_;
    CollectiveModel coll_;

    /** Memo of bestConfig() answers (planner hot path; placement
     *  asks for the same (MetaOp workload, n) hundreds of times).
     *  Pure-function cache — never stale; striped-lock, so the
     *  parallel estimator / placement lanes may query concurrently. */
    StripedMemo<OpSignature, ParallelConfig, OpSignatureHash>
        best_config_memo_;

    /** Memo of validAllocations() grids, keyed with n = max_n
     *  (striped-lock, same concurrency contract as above). */
    StripedMemo<OpSignature, std::vector<std::uint32_t>,
                OpSignatureHash> valid_allocs_memo_;
};

} // namespace spindle

#endif // SPINDLE_HARDWARE_HARDWARE_MODEL_H
