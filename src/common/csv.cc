#include "common/csv.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace spindle {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    fatalIf(header_.empty(), "Table: header must be non-empty");
}

void
Table::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != header_.size(),
            strCat("Table: row width ", cells.size(),
                   " != header width ", header_.size()));
    rows_.push_back(std::move(cells));
}

void
Table::printAligned(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c] + 2))
               << row[c];
        }
        os << '\n';
    };
    print_row(header_);
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    print_row(header_);
    for (const auto &row : rows_)
        print_row(row);
}

std::string
Table::fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

} // namespace spindle
