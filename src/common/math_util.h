/**
 * @file
 * Small numeric helpers shared by the cost model and the planner.
 */

#ifndef SPINDLE_COMMON_MATH_UTIL_H
#define SPINDLE_COMMON_MATH_UTIL_H

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace spindle {

/** Relative/absolute closeness test for doubles. */
bool nearlyEqual(double a, double b, double rel_tol = 1e-9,
                 double abs_tol = 1e-12);

/**
 * Ordinary least squares fit of y = a + b * x.
 *
 * @param xs sample abscissae (size >= 2 with at least two distinct
 *           values; with fewer, the slope degenerates to 0)
 * @param ys sample ordinates, same size as @p xs
 * @return pair {a, b} of intercept and slope
 */
std::pair<double, double> linearFit(const std::vector<double> &xs,
                                    const std::vector<double> &ys);

/** True iff @p n is a power of two (n >= 1). */
bool isPowerOfTwo(std::uint32_t n);

/** Largest power of two <= n (n >= 1). */
std::uint32_t floorPowerOfTwo(std::uint32_t n);

/** Smallest power of two >= n (n >= 1). */
std::uint32_t ceilPowerOfTwo(std::uint32_t n);

/** Round a positive real to the nearest integer, half away from zero. */
std::int64_t roundNearest(double x);

/**
 * Number of member operators a wave slice covers: the nearest
 * integer to span / per_op, clamped to [1, l_max].
 *
 * Shared by the wavefront scheduler and any baseline that slices by
 * time ratio. A denormal or zero @p per_op can push the quotient
 * past llround()'s defined domain (ultimately to infinity); an
 * explicit epsilon criterion maps that regime to "all remaining
 * operators fit" instead of undefined behaviour, and the lower
 * clamp keeps a wave from covering zero operators.
 */
std::int64_t waveSliceOps(double span, double per_op,
                          std::int64_t l_max);

} // namespace spindle

#endif // SPINDLE_COMMON_MATH_UTIL_H
