#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace spindle {

namespace {

/** Bounded spin before a thread falls back to sleeping (see the
 *  dispatch-latency note in the header). Short on purpose: on an
 *  oversubscribed machine long spins steal cycles from the lanes
 *  doing real work. */
constexpr int kSpinIterations = 1024;

} // namespace

std::uint32_t
resolveThreadCount(std::uint32_t requested)
{
    if (requested == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        requested = hw == 0 ? 1u : static_cast<std::uint32_t>(hw);
    }
    if (requested > kMaxPlannerThreads) {
        warn(strCat("resolveThreadCount: ", requested,
                    " threads requested; clamping to ",
                    kMaxPlannerThreads));
        requested = kMaxPlannerThreads;
    }
    return std::max(requested, 1u);
}

ThreadPool::ThreadPool(std::uint32_t threads)
    : threads_(std::max(threads, 1u))
{
    workers_.reserve(threads_ - 1);
    for (std::uint32_t i = 0; i + 1 < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_.store(true);
    }
    cv_work_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

std::size_t
ThreadPool::drainChunks(const Job &job)
{
    std::size_t done = 0;
    for (;;) {
        const std::size_t c = next_chunk_.fetch_add(1);
        if (c >= job.num_chunks)
            break;
        const std::size_t lo = job.begin + c * job.grain;
        const std::size_t hi = std::min(lo + job.grain, job.end);
        (*job.fn)(c, lo, hi);
        ++done;
    }
    if (done > 0 &&
        chunks_done_.fetch_add(done) + done == job.num_chunks) {
        // Pair with run()'s cv_done_ wait: taking the mutex orders
        // this notify after the waiter either saw the final count or
        // entered the wait.
        { std::lock_guard<std::mutex> lk(mu_); }
        cv_done_.notify_all();
    }
    return done;
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        bool woke = false;
        for (int spin = 0; spin < kSpinIterations; ++spin) {
            if (stop_.load(std::memory_order_relaxed) ||
                job_gen_.load(std::memory_order_acquire) != seen ||
                num_tasks_.load(std::memory_order_acquire) != 0) {
                woke = true;
                break;
            }
        }
        Job job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            if (!woke)
                cv_work_.wait(lk, [&] {
                    return stop_.load() || job_gen_.load() != seen ||
                           !tasks_.empty();
                });
            if (stop_.load())
                return;
            // Posted tasks first: a detached task never blocks a
            // chunked region (the region's caller is itself a lane),
            // but a region parked behind a long request would stall
            // its caller.
            if (!tasks_.empty()) {
                std::function<void()> task = std::move(tasks_.front());
                tasks_.pop_front();
                num_tasks_.store(tasks_.size(),
                                 std::memory_order_release);
                lk.unlock();
                task();
                continue;
            }
            if (job_gen_.load() == seen)
                continue; // raced with a wake for work already done
            // job_ and job_gen_ are written together under mu_, so
            // this copy is of the generation just observed. Joining
            // (active_workers_) fences the next run(): it will not
            // install a new job — and in particular not reset the
            // chunk cursor — while any worker still holds this copy.
            seen = job_gen_.load();
            job = job_;
            active_workers_.fetch_add(1);
        }
        drainChunks(job);
        if (active_workers_.fetch_sub(1) == 1) {
            { std::lock_guard<std::mutex> lk(mu_); }
            cv_done_.notify_all();
        }
    }
}

void
ThreadPool::post(std::function<void()> task)
{
    panicIf(threads_ == 1,
            "ThreadPool::post: pool has no worker threads (threads() "
            "== 1); posted tasks only run on workers — construct the "
            "pool with at least 2 lanes");
    {
        std::lock_guard<std::mutex> lk(mu_);
        panicIf(stop_.load(), "ThreadPool::post: pool is stopping");
        tasks_.push_back(std::move(task));
        num_tasks_.store(tasks_.size(), std::memory_order_release);
    }
    cv_work_.notify_one();
}

std::size_t
ThreadPool::pendingTasks() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return tasks_.size();
}

void
ThreadPool::run(std::size_t begin, std::size_t end, std::size_t grain,
                const std::function<void(std::size_t, std::size_t,
                                         std::size_t)> &fn)
{
    if (end <= begin)
        return;
    const std::size_t g = grain == 0 ? 1 : grain;
    const std::size_t total = end - begin;
    const std::size_t num_chunks = (total + g - 1) / g;

    // Serial fast path: no workers, or nothing to hand out. This is
    // also what guarantees a threads == 1 pool executes regions as a
    // plain in-order loop.
    if (threads_ == 1 || num_chunks == 1) {
        for (std::size_t c = 0; c < num_chunks; ++c) {
            const std::size_t lo = begin + c * g;
            const std::size_t hi = std::min(lo + g, end);
            fn(c, lo, hi);
        }
        return;
    }

    {
        std::unique_lock<std::mutex> lk(mu_);
        panicIf(running_, "ThreadPool::run: concurrent or nested run()");
        running_ = true;
        // Fence against stragglers of the previous job: they may
        // still hold a copy of the old Job (and its fn pointer), so
        // the cursor reset below must not happen under their feet.
        cv_done_.wait(lk, [&] { return active_workers_.load() == 0; });
        job_.fn = &fn;
        job_.begin = begin;
        job_.end = end;
        job_.grain = g;
        job_.num_chunks = num_chunks;
        next_chunk_.store(0);
        chunks_done_.store(0);
        job_gen_.fetch_add(1, std::memory_order_release);
    }
    cv_work_.notify_all();

    // The caller is a lane too.
    Job job = job_; // safe: only run() writes job_, and runs never
                    // overlap (running_ guard above)
    drainChunks(job);

    // Wait for stragglers: spin briefly (back-to-back planner
    // regions), then sleep. Every chunk counted means every fn
    // invocation has returned, so returning here keeps fn's referent
    // alive for as long as any lane can dereference it.
    bool all_done = false;
    for (int spin = 0; spin < kSpinIterations; ++spin) {
        if (chunks_done_.load(std::memory_order_acquire) == num_chunks) {
            all_done = true;
            break;
        }
    }
    std::unique_lock<std::mutex> lk(mu_);
    if (!all_done)
        cv_done_.wait(lk,
                      [&] { return chunks_done_.load() == num_chunks; });
    running_ = false;
}

} // namespace spindle
