/**
 * @file
 * Planner thread-pool substrate: a small, work-stealing-free pool of
 * persistent workers plus chunked `parallelFor`/`parallelReduce`
 * helpers.
 *
 * Design goals, in order:
 *
 *  1. **Determinism.** Work is split into chunks whose boundaries
 *     depend only on (begin, end, grain) — never on the number of
 *     threads or on scheduling. Chunks are handed out through a
 *     single atomic cursor (no stealing, no per-thread queues), and
 *     `parallelReduce` merges per-chunk results *in chunk order*, so
 *     a reduction whose merge operator is deterministic yields the
 *     same answer at any thread count — including 1, where every
 *     helper degenerates to a plain loop on the calling thread.
 *     Callers that reduce over floating-point scores must make the
 *     merge order-free themselves (the planner embeds a global
 *     candidate ordinal in its score tuples for exactly this).
 *
 *  2. **Low dispatch latency.** The planner issues a few small
 *     parallel regions per placed wave entry, so a dispatch costs
 *     must stay in the low microseconds. Workers spin briefly on the
 *     job generation counter before sleeping on the condition
 *     variable, which keeps back-to-back regions (the common planner
 *     pattern) on the fast path.
 *
 * Chunk tasks must not throw: planner error paths are
 * fatal()/panic(), which terminate the process (a service worker
 * that wants recoverable errors catches them inside its posted task
 * — see post()). The calling thread always participates in chunk
 * execution, so a pool of `threads() == k` runs a region on at most
 * k lanes (k - 1 workers + the caller).
 *
 * Besides the synchronous chunked regions, the pool doubles as the
 * service-side task executor: post() enqueues a detached task that
 * some worker runs as soon as it is free (PlanService admits plan
 * requests this way). Chunked regions and posted tasks share the
 * workers fairly — a worker between chunk jobs drains the task
 * queue, and a region dispatched while tasks run simply executes on
 * the remaining lanes (the caller is always one of them).
 */

#ifndef SPINDLE_COMMON_THREAD_POOL_H
#define SPINDLE_COMMON_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spindle {

/** Hard cap on planner threads (see resolveThreadCount). */
constexpr std::uint32_t kMaxPlannerThreads = 256;

/**
 * Resolve a user-facing thread-count knob: 0 means auto
 * (hardware_concurrency, at least 1); values above
 * kMaxPlannerThreads warn and clamp. The result is always >= 1.
 */
std::uint32_t resolveThreadCount(std::uint32_t requested);

/**
 * Fixed-size pool of persistent workers (see file comment).
 */
class ThreadPool
{
  public:
    /** @param threads total lanes including the caller; clamped
     *  below 1 to 1. threads == 1 creates no workers at all. */
    explicit ThreadPool(std::uint32_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total execution lanes (workers + calling thread). */
    std::uint32_t threads() const { return threads_; }

    /**
     * Run @p fn over the chunk grid of [begin, end) with the given
     * grain: fn(chunk_index, chunk_begin, chunk_end) for every chunk
     * [begin + c * grain, min(begin + (c+1) * grain, end)). Blocks
     * until every chunk has finished. Chunk boundaries depend only
     * on the arguments, not on the pool size.
     */
    void run(std::size_t begin, std::size_t end, std::size_t grain,
             const std::function<void(std::size_t, std::size_t,
                                      std::size_t)> &fn);

    /**
     * Enqueue a detached task for asynchronous execution on some
     * worker thread. Tasks run in FIFO order (one worker at a time
     * pops the front; several workers drain the queue concurrently)
     * and must not throw out of their own body. panic()s on a pool
     * with no workers (threads() == 1): there is nobody to run the
     * task, and running it inline would turn an async API into a
     * blocking one. Tasks still queued when the pool is destroyed
     * are dropped without running — owners that need every task to
     * run (PlanService) must drain before tearing the pool down.
     */
    void post(std::function<void()> task);

    /** Posted tasks not yet picked up by a worker. */
    std::size_t pendingTasks() const;

    /** Element-wise parallel for: fn(i) for every i in [begin, end). */
    template <typename Fn>
    void
    parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                Fn &&fn)
    {
        run(begin, end, grain,
            [&fn](std::size_t, std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i)
                    fn(i);
            });
    }

    /**
     * Chunked parallel reduction: @p map fills one default-initialized
     * accumulator per chunk (map(acc, chunk_begin, chunk_end)); the
     * accumulators are then folded left-to-right *in chunk order*
     * with merge(total, acc). Deterministic whenever map and merge
     * are (see the determinism note in the file comment).
     */
    template <typename Acc, typename Map, typename Merge>
    Acc
    parallelReduce(std::size_t begin, std::size_t end, std::size_t grain,
                   Map &&map, Merge &&merge)
    {
        const std::size_t total = end > begin ? end - begin : 0;
        const std::size_t g = grain == 0 ? 1 : grain;
        const std::size_t chunks = total == 0 ? 0 : (total + g - 1) / g;
        std::vector<Acc> partial(chunks);
        run(begin, end, g,
            [&](std::size_t c, std::size_t lo, std::size_t hi) {
                map(partial[c], lo, hi);
            });
        Acc out{};
        for (Acc &p : partial)
            merge(out, p);
        return out;
    }

  private:
    struct Job
    {
        const std::function<void(std::size_t, std::size_t, std::size_t)>
            *fn = nullptr;
        std::size_t begin = 0;
        std::size_t end = 0;
        std::size_t grain = 1;
        std::size_t num_chunks = 0;
    };

    void workerLoop();

    /** Execute chunks of the current job until the cursor runs dry;
     *  returns the number of chunks this thread completed. */
    std::size_t drainChunks(const Job &job);

    std::uint32_t threads_ = 1;
    std::vector<std::thread> workers_;

    mutable std::mutex mu_;
    std::condition_variable cv_work_;
    std::condition_variable cv_done_;
    Job job_;

    /** Detached tasks (post()), FIFO; guarded by mu_. */
    std::deque<std::function<void()>> tasks_;
    /** tasks_.size() mirror for the workers' lock-free spin check. */
    std::atomic<std::size_t> num_tasks_{0};

    /** Bumped (under mu_) for every new job; workers key off it. */
    std::atomic<std::uint64_t> job_gen_{0};
    std::atomic<bool> stop_{false};

    /** Next chunk index of the current job. */
    std::atomic<std::size_t> next_chunk_{0};
    /** Chunks of the current job that have finished executing. */
    std::atomic<std::size_t> chunks_done_{0};
    /** Workers currently holding a copy of job_ (see run()). */
    std::atomic<std::size_t> active_workers_{0};
    /** Guards against concurrent / nested run() calls. */
    bool running_ = false;
};

/**
 * Shared serial/parallel dispatch guard: run fn(i) for every i in
 * [begin, end) on the pool when one exists with workers and the
 * caller's work estimate says a dispatch pays off (@p parallel);
 * otherwise inline on the calling thread. Both paths visit every
 * index; results must not depend on which path ran (the planner's
 * regions guarantee that with indexed writes or ordinal merges).
 */
template <typename Fn>
void
maybeParallelFor(ThreadPool *pool, bool parallel, std::size_t begin,
                 std::size_t end, std::size_t grain, Fn &&fn)
{
    if (pool != nullptr && pool->threads() > 1 && parallel &&
        end > begin + 1) {
        pool->parallelFor(begin, end, grain, std::forward<Fn>(fn));
        return;
    }
    for (std::size_t i = begin; i < end; ++i)
        fn(i);
}

} // namespace spindle

#endif // SPINDLE_COMMON_THREAD_POOL_H
