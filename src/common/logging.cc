#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace spindle {

namespace {

/** Recoverable-fatal opt-in of the current thread (RecoverableScope). */
thread_local bool recoverable_fatals = false;

} // namespace

RecoverableScope::RecoverableScope() : prev_(recoverable_fatals)
{
    recoverable_fatals = true;
}

RecoverableScope::~RecoverableScope()
{
    recoverable_fatals = prev_;
}

bool
RecoverableScope::active()
{
    return recoverable_fatals;
}

void
fatal(const std::string &msg)
{
    if (recoverable_fatals)
        throw RecoverableError(msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace spindle
