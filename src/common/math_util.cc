#include "common/math_util.h"

#include <algorithm>

#include "common/logging.h"

namespace spindle {

bool
nearlyEqual(double a, double b, double rel_tol, double abs_tol)
{
    double diff = std::fabs(a - b);
    if (diff <= abs_tol)
        return true;
    double scale = std::max(std::fabs(a), std::fabs(b));
    return diff <= rel_tol * scale;
}

std::pair<double, double>
linearFit(const std::vector<double> &xs, const std::vector<double> &ys)
{
    panicIf(xs.size() != ys.size() || xs.empty(),
            "linearFit: mismatched or empty samples");
    const double n = static_cast<double>(xs.size());
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    if (std::fabs(denom) < 1e-30) {
        // All abscissae identical: flat fit through the mean.
        return {sy / n, 0.0};
    }
    const double b = (n * sxy - sx * sy) / denom;
    const double a = (sy - b * sx) / n;
    return {a, b};
}

bool
isPowerOfTwo(std::uint32_t n)
{
    return n >= 1 && (n & (n - 1)) == 0;
}

std::uint32_t
floorPowerOfTwo(std::uint32_t n)
{
    panicIf(n < 1, "floorPowerOfTwo: n must be >= 1");
    std::uint32_t p = 1;
    while (p * 2 <= n)
        p *= 2;
    return p;
}

std::uint32_t
ceilPowerOfTwo(std::uint32_t n)
{
    panicIf(n < 1, "ceilPowerOfTwo: n must be >= 1");
    std::uint32_t p = 1;
    while (p < n)
        p *= 2;
    return p;
}

std::int64_t
roundNearest(double x)
{
    return static_cast<std::int64_t>(std::llround(x));
}

std::int64_t
waveSliceOps(double span, double per_op, std::int64_t l_max)
{
    panicIf(l_max < 1, "waveSliceOps: need at least one operator");
    // Epsilon criterion: when per_op is so small relative to span
    // (denormal or zero curve times) that the quotient leaves
    // llround()'s defined domain, the slice is effectively free —
    // everything remaining fits the wave. The negated comparison
    // also routes inf and NaN quotients here.
    constexpr double kMaxOps = 9.0e18; // < INT64_MAX, llround-safe
    const double ratio = span / per_op;
    if (!(ratio < kMaxOps))
        return l_max;
    return std::clamp<std::int64_t>(roundNearest(ratio), 1, l_max);
}

} // namespace spindle
