/**
 * @file
 * Striped-lock memo cache for pure-function lookups.
 *
 * The planner memoizes hot cost-model queries (ScalingCurve::inverse,
 * HardwareModel::bestConfig / validAllocations). Those memos used to
 * be plain unordered_maps — correct for the historical single planner
 * thread, racy once allocation, estimation and placement scoring run
 * on a pool. StripedMemo shards the key space over a fixed set of
 * lock-protected stripes, keeping lookups thread-safe at any thread
 * count while staying *value-transparent*: the cached value of a key
 * is always exactly what the compute function returns for it, so a
 * hit is bit-identical to a miss. Concurrent misses on one key may
 * compute it twice — both computations of a pure function yield the
 * identical value, and each caller returns the value it computed, so
 * even the racing callers agree bit for bit.
 *
 * Eviction keeps the historical wholesale-drop policy per stripe: a
 * stripe that reaches its entry bound is cleared before inserting.
 * Dropping cache content is always value-transparent.
 *
 * Copy/move semantics: memo content is a droppable cache, but it is
 * only valid for the *state it was computed against*. Copies and
 * moves therefore start cold, and assignment clears the destination
 * (the owning object's inputs just changed).
 */

#ifndef SPINDLE_COMMON_SHARDED_MEMO_H
#define SPINDLE_COMMON_SHARDED_MEMO_H

#include <algorithm>
#include <array>
#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace spindle {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class StripedMemo
{
  public:
    /** @param max_entries bound on total entries across stripes
     *  before a stripe begins wholesale-dropping (historical memo
     *  limit semantics, applied per stripe). */
    explicit StripedMemo(std::size_t max_entries = 1 << 16)
        : stripe_limit_(std::max<std::size_t>(1, max_entries / kStripes))
    {
    }

    StripedMemo(const StripedMemo &other)
        : stripe_limit_(other.stripe_limit_)
    {
    }
    StripedMemo(StripedMemo &&other) noexcept
        : stripe_limit_(other.stripe_limit_)
    {
    }
    StripedMemo &
    operator=(const StripedMemo &other)
    {
        if (this != &other) {
            stripe_limit_ = other.stripe_limit_;
            clear();
        }
        return *this;
    }
    StripedMemo &
    operator=(StripedMemo &&other) noexcept
    {
        stripe_limit_ = other.stripe_limit_;
        clear();
        return *this;
    }

    /**
     * Return the memoized value of @p key, computing it via
     * @p compute on a miss. @p compute must be a pure function of
     * @p key (and of state that cannot change while lookups run);
     * it is invoked outside the stripe lock.
     */
    template <typename Fn>
    Value
    getOrCompute(const Key &key, Fn &&compute) const
    {
        Stripe &s = stripes_[Hash{}(key) % kStripes];
        {
            std::lock_guard<std::mutex> lk(s.mu);
            if (auto it = s.map.find(key); it != s.map.end())
                return it->second;
        }
        Value value = compute();
        {
            std::lock_guard<std::mutex> lk(s.mu);
            if (s.map.size() >= stripe_limit_)
                s.map.clear();
            s.map.emplace(key, value);
        }
        return value;
    }

    void
    clear() const
    {
        for (Stripe &s : stripes_) {
            std::lock_guard<std::mutex> lk(s.mu);
            s.map.clear();
        }
    }

  private:
    static constexpr std::size_t kStripes = 16;

    struct Stripe
    {
        std::mutex mu;
        std::unordered_map<Key, Value, Hash> map;
    };

    mutable std::array<Stripe, kStripes> stripes_;
    std::size_t stripe_limit_;
};

} // namespace spindle

#endif // SPINDLE_COMMON_SHARDED_MEMO_H
