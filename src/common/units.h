/**
 * @file
 * Unit conventions used throughout Spindle.
 *
 * All quantities are plain doubles with a documented unit; the helper
 * constants below make call sites read naturally (e.g. `3 * GiB`).
 *
 *   time        seconds
 *   compute     FLOPs (floating-point operations, not FLOPs/s)
 *   throughput  FLOPs per second
 *   data        bytes
 *   bandwidth   bytes per second
 */

#ifndef SPINDLE_COMMON_UNITS_H
#define SPINDLE_COMMON_UNITS_H

#include <cstdint>

namespace spindle {

/** Seconds in engineering notation. */
constexpr double kMilli = 1e-3;
constexpr double kMicro = 1e-6;

/** Decimal compute/bandwidth multipliers. */
constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

/** Binary data-size multipliers. */
constexpr double KiB = 1024.0;
constexpr double MiB = 1024.0 * KiB;
constexpr double GiB = 1024.0 * MiB;

/** Bytes per element for the mixed-precision regimes we model. */
constexpr double kBytesFp16 = 2.0;
constexpr double kBytesFp32 = 4.0;

/** Convert seconds to milliseconds for reporting. */
constexpr double
toMs(double seconds)
{
    return seconds * 1e3;
}

/** Convert FLOPs/s to TFLOPs/s for reporting. */
constexpr double
toTflops(double flops_per_s)
{
    return flops_per_s / kTera;
}

} // namespace spindle

#endif // SPINDLE_COMMON_UNITS_H
