/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * `fatal` reports a user error (bad configuration or arguments);
 * `panic` terminates because of an internal invariant violation (a
 * Spindle bug); `warn`/`inform` print status without stopping the
 * run.
 *
 * By default both `fatal` and `panic` terminate the process — right
 * for a CLI tool, lethal for a multi-tenant service where one bad
 * request must not take down every other tenant. A thread may
 * therefore opt into *recoverable* user errors by holding a
 * RecoverableScope: while one is active on the calling thread,
 * `fatal()` throws RecoverableError instead of exiting, and the
 * scope's creator (e.g. the PlanService request boundary) catches it
 * and turns it into a structured error result. `panic()` always
 * aborts — an invariant violation means in-process state can no
 * longer be trusted, recoverable scope or not.
 */

#ifndef SPINDLE_COMMON_LOGGING_H
#define SPINDLE_COMMON_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace spindle {

/**
 * A user error reported by fatal() on a thread that holds a
 * RecoverableScope. what() carries the fatal message verbatim.
 */
class RecoverableError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * RAII opt-in to recoverable user errors on the current thread (see
 * the file comment). Nestable; the outermost destructor restores the
 * default terminate-on-fatal behavior. Scopes are thread-local: a
 * scope on a service worker never changes how fatals behave on other
 * threads, so code that spawns its own workers (the planner's
 * ThreadPool regions) keeps the historical process-exit contract
 * unless each worker opts in itself.
 */
class RecoverableScope
{
  public:
    RecoverableScope();
    ~RecoverableScope();

    RecoverableScope(const RecoverableScope &) = delete;
    RecoverableScope &operator=(const RecoverableScope &) = delete;

    /** True iff the calling thread is inside some RecoverableScope. */
    static bool active();

  private:
    bool prev_;
};

/**
 * Report a user-caused error: throws RecoverableError when the
 * calling thread holds a RecoverableScope, otherwise terminates with
 * exit(1). Never returns either way.
 */
[[noreturn]] void fatal(const std::string &msg);

/** Terminate with abort(); use for internal invariant violations.
 *  Deliberately NOT recoverable (see the file comment). */
[[noreturn]] void panic(const std::string &msg);

/** Print a non-fatal warning to stderr. */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

} // namespace detail

/** Build a message from stream-insertable pieces. */
template <typename... Args>
std::string
strCat(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    return os.str();
}

/**
 * Check a caller-supplied condition; fatal() on failure.
 *
 * @param cond condition expected to hold
 * @param msg message describing the user error when it does not
 */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

/** Check an internal invariant; panic() on failure. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace spindle

#endif // SPINDLE_COMMON_LOGGING_H
