/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * `fatal` terminates because of a user error (bad configuration or
 * arguments); `panic` terminates because of an internal invariant
 * violation (a Spindle bug); `warn`/`inform` print status without
 * stopping the run.
 */

#ifndef SPINDLE_COMMON_LOGGING_H
#define SPINDLE_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace spindle {

/** Terminate with exit(1); use for user-caused errors. */
[[noreturn]] void fatal(const std::string &msg);

/** Terminate with abort(); use for internal invariant violations. */
[[noreturn]] void panic(const std::string &msg);

/** Print a non-fatal warning to stderr. */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    formatInto(os, rest...);
}

} // namespace detail

/** Build a message from stream-insertable pieces. */
template <typename... Args>
std::string
strCat(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    return os.str();
}

/**
 * Check a caller-supplied condition; fatal() on failure.
 *
 * @param cond condition expected to hold
 * @param msg message describing the user error when it does not
 */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

/** Check an internal invariant; panic() on failure. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace spindle

#endif // SPINDLE_COMMON_LOGGING_H
