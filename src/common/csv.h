/**
 * @file
 * A tiny table builder used by the benchmark harnesses to print the
 * rows/series each paper figure reports, both human-aligned on the
 * console and as CSV for downstream plotting.
 */

#ifndef SPINDLE_COMMON_CSV_H
#define SPINDLE_COMMON_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace spindle {

/**
 * Column-oriented result table.
 *
 * Usage:
 * @code
 *   Table t({"system", "gpus", "iter_ms"});
 *   t.addRow({"Spindle", "16", "812.4"});
 *   t.printAligned(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Print with space-aligned columns for the console. */
    void printAligned(std::ostream &os) const;

    /** Print as comma-separated values (header first). */
    void printCsv(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return header_.size(); }

    /** Format a double with @p precision fractional digits. */
    static std::string fmt(double value, int precision = 2);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace spindle

#endif // SPINDLE_COMMON_CSV_H
