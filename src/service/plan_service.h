/**
 * @file
 * Planning as a service: a multi-tenant front end over the planner +
 * plan cache, in the scheduler/worker/client shape of distributed
 * task frameworks (spider-style jobs with status/cancel handles).
 *
 * A PlanService owns a worker pool (the planner ThreadPool's
 * detached-task lane) and one shared, thread-safe PlanCache. Clients
 * submit plan/replan requests — a contracted MetaGraph, optionally
 * against a tenant-specific cluster — through a bounded admission
 * queue and get back a PlanJob handle to poll, wait on, or cancel.
 * Each request plans through ExecutionPlanner::replan() against the
 * shared cache, so near-identical workloads from different tenants
 * dedupe into full hits: the cache keys by value (GraphSignature ×
 * topology/options fingerprint), never by tenant, name, or id.
 *
 * **Equivalence discipline.** Every response is byte-identical to a
 * serial ExecutionPlanner::plan() on the same (graph, hardware):
 * replan() is pinned byte-identical to plan(), the shared cache is
 * value-transparent under concurrency, and requests never share
 * mutable planning state (each runs on one worker with a private
 * planner). Concurrency changes *when* a response is computed, never
 * *what* it contains (pinned by service_test).
 *
 * **Failure isolation.** A worker plans inside a RecoverableScope:
 * request-reachable user errors — malformed tenant topologies,
 * workloads that contract to empty levels, models that cannot fit
 * even memory-first — surface as a structured PlanError on that
 * job (request id + the fatal message) instead of killing the
 * process, so one tenant's malformed workload can never take down
 * another tenant's in-flight requests. Internal invariant violations
 * still panic(): a service whose invariants broke must not keep
 * serving plans.
 */

#ifndef SPINDLE_SERVICE_PLAN_SERVICE_H
#define SPINDLE_SERVICE_PLAN_SERVICE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "hardware/hardware_model.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"

namespace spindle {

/**
 * Structured planning failure of one request (the service-boundary
 * analogue of the engine's ArrivalError): which request failed and
 * the fatal() message that explains why, actionable as a response to
 * the tenant that submitted it.
 */
struct PlanError
{
    /** PlanJob::id() of the failed request. */
    std::uint64_t requestId = 0;

    /** The user-error description, verbatim from fatal(). */
    std::string message;
};

/** Lifecycle of one submitted request. Terminal states: Done,
 *  Failed, Cancelled. */
enum class PlanJobState
{
    Queued,    ///< admitted, waiting for a worker
    Running,   ///< a worker is planning it
    Done,      ///< result() is available
    Failed,    ///< error() is available (recoverable user error)
    Cancelled, ///< cancelled while still queued; never planned
};

/** Human-readable state name (logs, test diagnostics). */
const char *toString(PlanJobState state);

/**
 * Shared-state handle of one submitted request, à la spider::Job:
 * poll status(), block in wait(), cancel() while queued, and read
 * result()/error() once terminal. Handles are shared_ptrs — they
 * stay valid after the service dropped its reference, and outliving
 * the service itself is safe for terminal jobs.
 */
class PlanJob
{
  public:
    /** Service-unique request id (monotone admission order). */
    std::uint64_t id() const { return id_; }

    PlanJobState status() const;

    /** Block until the job reaches a terminal state; returns it. */
    PlanJobState wait() const;

    /**
     * Cancel the request if it is still queued: the slot is consumed
     * without planning and the state becomes Cancelled. Returns true
     * iff this call performed the cancellation; a job already
     * running, terminal, or cancelled by someone else returns false
     * (a running request is never interrupted — plans are small;
     * admission, not execution, is the contended resource).
     */
    bool cancel();

    /** Planner response; panics unless status() == Done. */
    const PlannerOutput &result() const;

    /** Structured failure; panics unless status() == Failed. */
    const PlanError &error() const;

  private:
    friend class PlanService;

    PlanJob() = default;

    /** Queued -> Running; false when the job was cancelled first. */
    bool markRunning();
    void complete(PlannerOutput output);
    void fail(PlanError error);

    mutable std::mutex mu_;
    mutable std::condition_variable cv_;
    PlanJobState state_ = PlanJobState::Queued;

    std::uint64_t id_ = 0;

    /** Request inputs (non-owning; must outlive the job — see
     *  PlanService::submit). */
    const MetaGraph *graph_ = nullptr;
    const HardwareModel *hw_ = nullptr; ///< nullptr: service default

    /** submitWithCluster(): the tenant's cluster spec, materialized
     *  by the worker inside the request's RecoverableScope so a
     *  malformed topology fails the job, not the process. */
    std::optional<ClusterConfig> config_;
    HardwareParams params_;
    std::unique_ptr<ClusterTopology> topo_;
    std::unique_ptr<HardwareModel> ownedHw_;

    PlannerOutput output_;
    PlanError error_;
};

using PlanJobHandle = std::shared_ptr<PlanJob>;

struct PlanServiceOptions
{
    /** Planning workers. 0 resolves to the machine's hardware
     *  concurrency (resolveThreadCount), minimum 1 either way. */
    std::uint32_t workers = 2;

    /** Bound on *queued* (admitted, not yet running) requests;
     *  submit() blocks on a full queue, trySubmit() rejects. At
     *  least 1. */
    std::size_t queueCapacity = 256;

    /**
     * Planning configuration applied to every request. `cache` is
     * ignored (the service's shared cache is used) and `threads` is
     * forced to 1 with a warning when set higher: the service
     * parallelizes *across* requests — one worker, one request, one
     * serial planner — which is also what keeps every fatal() of a
     * request on the worker thread that holds its RecoverableScope.
     */
    PlannerOptions planner;

    /** FIFO bound per cache context (PlanCache). */
    std::size_t maxPlansPerContext = 32;
};

/** Cumulative service counters (consistent snapshot via stats()). */
struct PlanServiceStats
{
    std::uint64_t submitted = 0; ///< admitted (incl. later cancelled)
    std::uint64_t rejected = 0;  ///< trySubmit() refusals (queue full)
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;    ///< PlanError responses
    std::uint64_t cancelled = 0;

    /** Completed responses served as whole-plan cache full hits —
     *  the cross-tenant dedupe the shared cache exists for. */
    std::uint64_t dedupedFullHits = 0;

    PlanCache::Stats cache;
};

/**
 * The multi-tenant planning front end (see file comment).
 *
 * Lifetime contract: the default HardwareModel, and every submitted
 * graph / tenant HardwareModel, must stay alive until the job that
 * references them is terminal (wait() or drain() both establish
 * that). The destructor drains: queued work still runs — cancel
 * first for a fast teardown.
 */
class PlanService
{
  public:
    explicit PlanService(const HardwareModel &hw,
                         PlanServiceOptions options = {});
    ~PlanService();

    PlanService(const PlanService &) = delete;
    PlanService &operator=(const PlanService &) = delete;

    /**
     * Admit a plan request for @p graph against the service's
     * default cluster; blocks while the queue is full. The returned
     * handle is also retained by the service until the job is
     * terminal, so fire-and-forget submission is safe.
     */
    PlanJobHandle submit(const MetaGraph &graph);

    /** Multi-tenant overload: plan against @p hw instead of the
     *  service default (e.g. a degraded withoutDevices() shape). */
    PlanJobHandle submit(const MetaGraph &graph, const HardwareModel &hw);

    /** Non-blocking admission: nullptr when the queue is full. */
    PlanJobHandle trySubmit(const MetaGraph &graph);

    /**
     * Admit a request whose tenant cluster is still a spec: the
     * worker materializes the topology + hardware model inside the
     * request's RecoverableScope, so a malformed config (zero-size
     * island, duplicate device ids, zero bandwidth, ...) fails this
     * job with a PlanError instead of exiting the process.
     */
    PlanJobHandle submitWithCluster(const MetaGraph &graph,
                                    ClusterConfig config,
                                    HardwareParams params = {});

    /** Admit a batch under one queue reservation (blocks until the
     *  whole batch fits); handles in input order. */
    std::vector<PlanJobHandle>
    submitBatch(const std::vector<const MetaGraph *> &graphs);

    /** Block until every admitted request is terminal. */
    void drain();

    PlanServiceStats stats() const;

    /** The shared cross-request cache (introspection/tests). */
    PlanCache &cache() { return cache_; }

    /** Resolved worker count. */
    std::uint32_t workers() const { return workers_; }

    /** The per-request planner options actually in effect. */
    const PlannerOptions &plannerOptions() const { return planner_options_; }

  private:
    PlanJobHandle makeJob(const MetaGraph &graph);
    PlanJobHandle admit(PlanJobHandle job, bool block);
    void runOne();
    void execute(PlanJob &job);
    void finishOne(PlanJobState terminal, bool full_hit);

    const HardwareModel &hw_;
    PlanServiceOptions options_;
    PlannerOptions planner_options_; ///< options_.planner, normalized
    std::uint32_t workers_ = 1;

    PlanCache cache_;
    std::unique_ptr<ThreadPool> pool_;

    mutable std::mutex mu_;
    std::condition_variable cv_space_; ///< submitters: queue has room
    std::condition_variable cv_idle_;  ///< drain(): outstanding == 0
    std::deque<PlanJobHandle> queue_;
    std::size_t outstanding_ = 0; ///< admitted, not yet terminal
    bool shutdown_ = false;

    std::atomic<std::uint64_t> next_id_{1};

    // Counters (guarded by mu_).
    std::uint64_t submitted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t deduped_full_hits_ = 0;
};

} // namespace spindle

#endif // SPINDLE_SERVICE_PLAN_SERVICE_H
