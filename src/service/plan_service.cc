#include "service/plan_service.h"

#include <utility>

#include "common/logging.h"

namespace spindle {

// ---------------------------------------------------------------------------
// PlanJob

const char *
toString(PlanJobState state)
{
    switch (state) {
    case PlanJobState::Queued:
        return "Queued";
    case PlanJobState::Running:
        return "Running";
    case PlanJobState::Done:
        return "Done";
    case PlanJobState::Failed:
        return "Failed";
    case PlanJobState::Cancelled:
        return "Cancelled";
    }
    return "?";
}

PlanJobState
PlanJob::status() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return state_;
}

PlanJobState
PlanJob::wait() const
{
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
        return state_ == PlanJobState::Done ||
               state_ == PlanJobState::Failed ||
               state_ == PlanJobState::Cancelled;
    });
    return state_;
}

bool
PlanJob::cancel()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (state_ != PlanJobState::Queued)
        return false;
    state_ = PlanJobState::Cancelled;
    cv_.notify_all();
    return true;
}

bool
PlanJob::markRunning()
{
    std::lock_guard<std::mutex> lk(mu_);
    if (state_ != PlanJobState::Queued)
        return false; // cancelled while queued
    state_ = PlanJobState::Running;
    return true;
}

void
PlanJob::complete(PlannerOutput output)
{
    std::lock_guard<std::mutex> lk(mu_);
    output_ = std::move(output);
    state_ = PlanJobState::Done;
    cv_.notify_all();
}

void
PlanJob::fail(PlanError error)
{
    std::lock_guard<std::mutex> lk(mu_);
    error_ = std::move(error);
    state_ = PlanJobState::Failed;
    cv_.notify_all();
}

const PlannerOutput &
PlanJob::result() const
{
    std::lock_guard<std::mutex> lk(mu_);
    panicIf(state_ != PlanJobState::Done,
            strCat("PlanJob::result: job ", id_, " is ",
                   toString(state_),
                   ", not Done; wait() first and check status()"));
    return output_;
}

const PlanError &
PlanJob::error() const
{
    std::lock_guard<std::mutex> lk(mu_);
    panicIf(state_ != PlanJobState::Failed,
            strCat("PlanJob::error: job ", id_, " is ",
                   toString(state_),
                   ", not Failed; wait() first and check status()"));
    return error_;
}

// ---------------------------------------------------------------------------
// PlanService

PlanService::PlanService(const HardwareModel &hw, PlanServiceOptions options)
    : hw_(hw), options_(options),
      cache_(std::max<std::size_t>(options.maxPlansPerContext, 1))
{
    workers_ = resolveThreadCount(options_.workers);
    options_.queueCapacity = std::max<std::size_t>(options_.queueCapacity, 1);

    planner_options_ = options_.planner;
    if (planner_options_.threads != 1) {
        warn(strCat("PlanService: per-request planner threads forced "
                    "from ", planner_options_.threads,
                    " to 1; the service parallelizes across requests, "
                    "not within one"));
        planner_options_.threads = 1;
    }
    planner_options_.cache = &cache_;

    // workers_ + 1 lanes: the pool's "caller lane" runs chunked
    // regions inline, but posted tasks only run on the pool's own
    // worker threads — so a service of N planning workers needs a
    // pool with N workers, i.e. N + 1 lanes.
    pool_ = std::make_unique<ThreadPool>(workers_ + 1);
}

PlanService::~PlanService()
{
    drain();
    {
        std::lock_guard<std::mutex> lk(mu_);
        shutdown_ = true;
    }
    // Pool teardown joins every worker; drain() guaranteed no posted
    // task is still pending or running a job.
    pool_.reset();
}

PlanJobHandle
PlanService::makeJob(const MetaGraph &graph)
{
    PlanJobHandle job(new PlanJob());
    job->id_ = next_id_.fetch_add(1, std::memory_order_relaxed);
    job->graph_ = &graph;
    return job;
}

PlanJobHandle
PlanService::admit(PlanJobHandle job, bool block)
{
    {
        std::unique_lock<std::mutex> lk(mu_);
        panicIf(shutdown_, "PlanService: submit after destruction began");
        if (queue_.size() >= options_.queueCapacity) {
            if (!block) {
                ++rejected_;
                return nullptr;
            }
            cv_space_.wait(lk, [&] {
                return queue_.size() < options_.queueCapacity;
            });
        }
        queue_.push_back(job);
        ++submitted_;
        ++outstanding_;
    }
    pool_->post([this] { runOne(); });
    return job;
}

PlanJobHandle
PlanService::submit(const MetaGraph &graph)
{
    return admit(makeJob(graph), /*block=*/true);
}

PlanJobHandle
PlanService::submit(const MetaGraph &graph, const HardwareModel &hw)
{
    PlanJobHandle job = makeJob(graph);
    job->hw_ = &hw;
    return admit(std::move(job), /*block=*/true);
}

PlanJobHandle
PlanService::trySubmit(const MetaGraph &graph)
{
    return admit(makeJob(graph), /*block=*/false);
}

PlanJobHandle
PlanService::submitWithCluster(const MetaGraph &graph, ClusterConfig config,
                               HardwareParams params)
{
    PlanJobHandle job = makeJob(graph);
    job->config_ = std::move(config);
    job->params_ = params;
    return admit(std::move(job), /*block=*/true);
}

std::vector<PlanJobHandle>
PlanService::submitBatch(const std::vector<const MetaGraph *> &graphs)
{
    std::vector<PlanJobHandle> jobs;
    jobs.reserve(graphs.size());
    for (const MetaGraph *graph : graphs)
        jobs.push_back(makeJob(*graph));
    {
        std::unique_lock<std::mutex> lk(mu_);
        panicIf(shutdown_, "PlanService: submit after destruction began");
        fatalIf(jobs.size() > options_.queueCapacity,
                strCat("PlanService::submitBatch: batch of ", jobs.size(),
                       " exceeds queueCapacity ", options_.queueCapacity,
                       "; split the batch or raise the capacity"));
        cv_space_.wait(lk, [&] {
            return queue_.size() + jobs.size() <= options_.queueCapacity;
        });
        for (const PlanJobHandle &job : jobs) {
            queue_.push_back(job);
            ++submitted_;
            ++outstanding_;
        }
    }
    for (std::size_t i = 0; i < jobs.size(); ++i)
        pool_->post([this] { runOne(); });
    return jobs;
}

void
PlanService::runOne()
{
    PlanJobHandle job;
    {
        std::lock_guard<std::mutex> lk(mu_);
        // One posted task per admitted job, so the queue cannot be
        // empty here; cancelled jobs still occupy their slot until
        // this pop.
        panicIf(queue_.empty(),
                "PlanService::runOne: task with no queued job");
        job = std::move(queue_.front());
        queue_.pop_front();
    }
    cv_space_.notify_one();

    if (!job->markRunning()) {
        // Cancelled while queued: consume the slot without planning.
        finishOne(PlanJobState::Cancelled, /*full_hit=*/false);
        return;
    }
    execute(*job);
    const PlanJobState terminal = job->status();
    finishOne(terminal, terminal == PlanJobState::Done &&
                            job->output_.replan.fullHit);
}

void
PlanService::execute(PlanJob &job)
{
    // Everything request-derived — tenant topology materialization,
    // graph validation, the planning pipeline itself — runs inside
    // the scope, so any fatal() it reaches becomes this job's
    // PlanError instead of process death. panic() still aborts.
    RecoverableScope scope;
    try {
        const HardwareModel *hw = &hw_;
        if (job.config_.has_value()) {
            job.topo_ = std::make_unique<ClusterTopology>(
                std::move(*job.config_));
            job.ownedHw_ = std::make_unique<HardwareModel>(*job.topo_,
                                                           job.params_);
            hw = job.ownedHw_.get();
        } else if (job.hw_ != nullptr) {
            hw = job.hw_;
        }

        fatalIf(job.graph_->numLevels() == 0,
                strCat("PlanService: request ", job.id_,
                       " contracted to an empty MetaGraph (no levels); "
                       "nothing to plan"));

        // Per-request planner: construction is cheap at threads == 1
        // (no pool spawned), and replan() against the shared cache is
        // where cross-request reuse happens. Byte-identical to a
        // serial plan() on the same (graph, hardware) — pinned by
        // service_test.
        const ExecutionPlanner planner(*hw, planner_options_);
        job.complete(planner.replan(*job.graph_));
    } catch (const RecoverableError &err) {
        job.fail(PlanError{job.id_, err.what()});
    }
}

void
PlanService::finishOne(PlanJobState terminal, bool full_hit)
{
    std::lock_guard<std::mutex> lk(mu_);
    switch (terminal) {
    case PlanJobState::Done:
        ++completed_;
        if (full_hit)
            ++deduped_full_hits_;
        break;
    case PlanJobState::Failed:
        ++failed_;
        break;
    case PlanJobState::Cancelled:
        ++cancelled_;
        break;
    default:
        panic(strCat("PlanService::finishOne: non-terminal state ",
                     toString(terminal)));
    }
    panicIf(outstanding_ == 0,
            "PlanService::finishOne: outstanding underflow");
    --outstanding_;
    if (outstanding_ == 0)
        cv_idle_.notify_all();
}

void
PlanService::drain()
{
    std::unique_lock<std::mutex> lk(mu_);
    cv_idle_.wait(lk, [&] { return outstanding_ == 0; });
}

PlanServiceStats
PlanService::stats() const
{
    PlanServiceStats out;
    {
        std::lock_guard<std::mutex> lk(mu_);
        out.submitted = submitted_;
        out.rejected = rejected_;
        out.completed = completed_;
        out.failed = failed_;
        out.cancelled = cancelled_;
        out.dedupedFullHits = deduped_full_hits_;
    }
    out.cache = cache_.stats();
    return out;
}

} // namespace spindle
