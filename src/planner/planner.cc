#include "planner/planner.h"

#include <chrono>

#include "common/logging.h"
#include "runtime/memory_model.h"

namespace spindle {

ExecutionPlanner::ExecutionPlanner(const HardwareModel &hw,
                                   PlannerOptions options)
    : hw_(hw), options_(options)
{
}

PlannerOutput
ExecutionPlanner::plan(const MetaGraph &graph) const
{
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint32_t n = hw_.topology().numDevices();

    PlannerOutput out;

    // §3.2: profile the oracle and fit per-MetaOp scaling curves.
    ScalabilityEstimator estimator(hw_, options_.estimator);
    out.curves = estimator.estimateAll(graph, n);

    // §3.3: per-MetaLevel MPSP allocation + bi-point discretization.
    ResourceAllocator allocator(graph, out.curves, n, options_.allocator);
    std::vector<LevelAllocation> allocations = allocator.allocateAll();

    // §3.4: craft waves level by level, then merge.
    WavefrontScheduler scheduler(graph, out.curves, n,
                                 options_.scheduler);
    out.plan.waves = scheduler.scheduleAll(allocations);
    out.plan.numDevices = n;
    out.plan.allocations = std::move(allocations);
    out.plan.theoreticalOptimum = 0;
    for (const LevelAllocation &a : out.plan.allocations)
        out.plan.theoreticalOptimum += a.continuous.cStar;
    out.plan.estimatedSpan = out.plan.waves.empty()
        ? 0.0
        : out.plan.waves.back().start + out.plan.waves.back().duration;

    // §3.5: map wave entries onto devices.
    MemoryModel mem(options_.memory);
    DevicePlacement placement(hw_.topology(), hw_, mem,
                              options_.placement);
    out.placement = placement.place(graph, out.plan);

    // Re-annotate now that entries are placed: readiness gains the
    // per device-group predecessor edges event dispatch relies on.
    out.plan.annotateReadiness(graph);

    out.plan.validate(graph);

    const auto t1 = std::chrono::steady_clock::now();
    out.planningSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return out;
}

} // namespace spindle
