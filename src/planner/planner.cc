#include "planner/planner.h"

#include <algorithm>
#include <bit>
#include <chrono>

#include "common/logging.h"
#include "runtime/memory_model.h"

namespace spindle {

namespace {

using clock_type = std::chrono::steady_clock;

double
secondsBetween(clock_type::time_point a, clock_type::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v;
    return h * 0x100000001b3ull;
}

std::uint64_t
mix(std::uint64_t h, double v)
{
    return mix(h, std::bit_cast<std::uint64_t>(v));
}

/**
 * Fingerprint of every option that can change planned bytes.
 * `threads` is deliberately excluded (plans are byte-identical at
 * any thread count), as are `cache` (bookkeeping, not behavior),
 * `placement.bandPruning` (the admissible pruning is
 * winner-preserving by construction — see placement.h — so toggling
 * it cannot change a single planned byte, and fingerprinting it
 * would needlessly split otherwise-identical cache contexts) and
 * the estimator noise/seed fields — replan() bypasses the cache
 * entirely when noise is on, and with noise off the seed is unread.
 */
std::uint64_t
optionsFingerprint(const PlannerOptions &o)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = mix(h, static_cast<std::uint64_t>(o.estimator.piecewise));
    h = mix(h, static_cast<std::uint64_t>(o.estimator.profileAllValid));
    h = mix(h, o.allocator.bisectionRelTol);
    h = mix(h, static_cast<std::uint64_t>(o.allocator.maxBisectionIters));
    h = mix(h, static_cast<std::uint64_t>(o.scheduler.extendResources));
    h = mix(h, static_cast<std::uint64_t>(o.placement.strategy));
    h = mix(h, static_cast<std::uint64_t>(o.placement.windows));
    h = mix(h,
            static_cast<std::uint64_t>(o.placement.partialFallbackRestart));
    h = mix(h, o.placement.memorySlack);
    h = mix(h, o.placement.memoryWeight);
    h = mix(h, o.placement.paramAffinityWeight);
    h = mix(h,
            static_cast<std::uint64_t>(o.placement.pairingAwareFlowPricing));
    h = mix(h, o.memory.optimizerFactor);
    h = mix(h, static_cast<std::uint64_t>(o.memory.zeroShardOptimizer));
    h = mix(h, static_cast<std::uint64_t>(o.memory.zeroShardParams));
    h = mix(h, o.memory.activationFactor);
    return h;
}

/** Curve-memo key of one MetaOp (§3.2 reads nothing else from it). */
PlanCache::CurveKey
curveKeyOf(const MetaOp &m, std::uint32_t max_devices)
{
    return {m.type,          m.input,           m.flopsFwdPerOp,
            m.paramBytesPerOp, m.activationBytes, max_devices};
}

} // namespace

ExecutionPlanner::ExecutionPlanner(const HardwareModel &hw,
                                   PlannerOptions options)
    : hw_(hw), options_(options),
      threads_(resolveThreadCount(options.threads))
{
    if (threads_ > 1)
        pool_ = std::make_unique<ThreadPool>(threads_);
    cache_context_ =
        mix(hw.topology().fingerprint(), optionsFingerprint(options_));
}

PlannerOutput
ExecutionPlanner::plan(const MetaGraph &graph) const
{
    auto seconds = secondsBetween;

    const auto t0 = clock_type::now();
    const std::uint32_t n = hw_.topology().numDevices();

    PlannerOutput out;

    // §3.2: profile the oracle and fit per-MetaOp scaling curves
    // (one independent curve per MetaOp — parallel when pooled).
    ScalabilityEstimator estimator(hw_, options_.estimator);
    out.curves = estimator.estimateAll(graph, n, pool_.get());
    const auto t_estimated = clock_type::now();
    out.phaseSeconds.estimation = seconds(t0, t_estimated);

    // §3.3: per-MetaLevel MPSP allocation + bi-point discretization
    // (levels are data-independent — parallel when pooled).
    ResourceAllocator allocator(graph, out.curves, n, options_.allocator);
    std::vector<LevelAllocation> allocations =
        allocator.allocateAll(pool_.get());
    const auto t_allocated = clock_type::now();
    out.phaseSeconds.allocation = seconds(t_estimated, t_allocated);

    // §3.4: craft waves level by level, then merge.
    WavefrontScheduler scheduler(graph, out.curves, n,
                                 options_.scheduler);
    out.plan.waves = scheduler.scheduleAll(allocations);
    out.plan.numDevices = n;
    out.plan.allocations = std::move(allocations);
    out.plan.theoreticalOptimum = 0;
    for (const LevelAllocation &a : out.plan.allocations)
        out.plan.theoreticalOptimum += a.continuous.cStar;
    out.plan.estimatedSpan = out.plan.waves.empty()
        ? 0.0
        : out.plan.waves.back().start + out.plan.waves.back().duration;
    const auto t_scheduled = clock_type::now();
    out.phaseSeconds.scheduling = seconds(t_allocated, t_scheduled);

    // §3.5: map wave entries onto devices (the scoring sweep runs as
    // a deterministic parallel reduction when pooled).
    MemoryModel mem(options_.memory);
    DevicePlacement placement(hw_.topology(), hw_, mem,
                              options_.placement, pool_.get());
    out.placement = placement.place(graph, out.plan);
    const auto t_placed = clock_type::now();
    out.phaseSeconds.placement = seconds(t_scheduled, t_placed);

    // Re-annotate now that entries are placed: readiness gains the
    // per device-group predecessor edges event dispatch relies on.
    out.plan.annotateReadiness(graph);

    out.plan.validate(graph);

    out.planningSeconds = seconds(t0, clock_type::now());
    return out;
}

PlanCache &
ExecutionPlanner::planCache() const
{
    if (options_.cache != nullptr)
        return *options_.cache;
    if (owned_cache_ == nullptr)
        owned_cache_ = std::make_unique<PlanCache>();
    return *owned_cache_;
}

void
ExecutionPlanner::remapCachedPlan(const PlanCache::CachedPlan &hit,
                                  const MetaGraph &graph,
                                  PlannerOutput &out) const
{
    out.plan = hit.plan;
    out.placement = hit.placement;
    out.curves = hit.curves;

    // Positional id map: donor (level, pos) id -> this graph's id.
    // MetaOp ids are dense in both graphs and the signatures match
    // level by level, so the map is a permutation.
    bool identity = true;
    std::vector<MetaOpId> remap(graph.numMetaOps(), -1);
    for (std::size_t k = 0; k < hit.levelIds.size(); ++k) {
        const std::vector<MetaOpId> &ids = graph.level(k);
        panicIf(hit.levelIds[k].size() != ids.size(),
                "replan: cached level shape mismatch");
        for (std::size_t p = 0; p < ids.size(); ++p) {
            remap[hit.levelIds[k][p]] = ids[p];
            identity = identity && hit.levelIds[k][p] == ids[p];
        }
    }
    if (identity)
        return;

    std::vector<ScalingCurve> curves = hit.curves;
    for (std::size_t old_id = 0; old_id < remap.size(); ++old_id)
        curves[static_cast<std::size_t>(remap[old_id])] =
            hit.curves[old_id];
    out.curves = std::move(curves);

    for (Wave &wave : out.plan.waves)
        for (WaveEntry &entry : wave.entries)
            entry.metaOp = remap[entry.metaOp];
    for (LevelAllocation &alloc : out.plan.allocations) {
        for (MetaOpId &id : alloc.metaOps)
            id = remap[id];
        for (MetaOpAllocation &p : alloc.plans)
            p.metaOp = remap[p.metaOp];
    }
}

PlannerOutput
ExecutionPlanner::replan(const MetaGraph &graph) const
{
    // Value transparency has two preconditions: estimation must be
    // noise-free (noise draws are seeded per MetaOp id, invisible to
    // positional signatures) and the placement configuration must be
    // fingerprintable (a custom generator is an opaque pointer).
    if (options_.estimator.noiseStdFrac > 0 ||
        options_.placement.generator != nullptr)
        return plan(graph);

    auto seconds = secondsBetween;
    const auto t0 = clock_type::now();
    const std::uint32_t n = hw_.topology().numDevices();
    PlanCache &cache = planCache();
    const std::uint64_t ctx = cache_context_;

    PlannerOutput out;
    out.replan.attempted = true;
    out.replan.totalLevels =
        static_cast<std::uint32_t>(graph.numLevels());

    GraphSignature sig = signatureOf(graph);

    // ---- Full hit: this exact workload value was planned before in
    // this context. Remap the cached plan's ids positionally; no
    // pipeline stage runs.
    if (const PlanCache::PlanPtr hit = cache.findPlan(ctx, sig)) {
        out.replan.fullHit = true;
        out.replan.reusedLevels = out.replan.totalLevels;
        out.replan.prefixWaves =
            static_cast<std::uint32_t>(hit->plan.waves.size());
        cache.addStats({.fullHits = 1,
                        .reusedLevels = graph.numLevels()});
        out.phaseSeconds.diff = seconds(t0, clock_type::now());
        remapCachedPlan(*hit, graph, out);
        // Cheap insurance on the remap: re-derive readiness on the
        // *new* graph and re-validate, keeping the byte-identity
        // claim falsifiable on every hit.
        out.plan.annotateReadiness(graph);
        out.plan.validate(graph);
        out.planningSeconds = seconds(t0, clock_type::now());
        return out;
    }
    cache.addStats({.misses = 1});
    const auto t_diffed = clock_type::now();
    out.phaseSeconds.diff = seconds(t0, t_diffed);

    // ---- Miss: run the pipeline, reusing memoized per-stage
    // results. Estimation (§3.2) through the curve memo — curves
    // depend only on the member workload shape and the cluster.
    ScalabilityEstimator estimator(hw_, options_.estimator);
    std::vector<ScalingCurve> curves;
    curves.reserve(graph.numMetaOps());
    for (const MetaOp &m : graph.metaOps()) {
        const PlanCache::CurveKey key = curveKeyOf(m, n);
        if (std::optional<ScalingCurve> hit = cache.findCurve(ctx, key)) {
            curves.push_back(std::move(*hit));
            ++out.replan.curveHits;
        } else {
            curves.push_back(estimator.estimate(m, n));
            cache.storeCurve(ctx, key, curves.back());
            ++out.replan.curveMisses;
        }
    }
    out.curves = std::move(curves);
    cache.addStats({.curveHits = out.replan.curveHits,
                    .curveMisses = out.replan.curveMisses});
    const auto t_estimated = clock_type::now();
    out.phaseSeconds.estimation = seconds(t_diffed, t_estimated);

    // Allocation (§3.3) through the per-level memo; hits are stored
    // positionally and remapped onto this graph's ids.
    ResourceAllocator allocator(graph, out.curves, n, options_.allocator);
    std::vector<LevelAllocation> allocations(graph.numLevels());
    for (std::size_t k = 0; k < graph.numLevels(); ++k) {
        const std::vector<MetaOpId> &ids = graph.level(k);
        PlanCache::LevelKey key;
        key.ops.reserve(ids.size());
        for (MetaOpId id : ids) {
            const MetaOp &m = graph.metaOp(id);
            key.ops.emplace_back(curveKeyOf(m, n), m.numOps());
        }
        if (std::optional<LevelAllocation> hit =
                cache.findLevelAlloc(ctx, key)) {
            allocations[k] = std::move(*hit);
            allocations[k].metaOps = ids;
            panicIf(allocations[k].plans.size() != ids.size(),
                    "replan: cached allocation shape mismatch");
            for (std::size_t i = 0; i < ids.size(); ++i)
                allocations[k].plans[i].metaOp = ids[i];
            ++out.replan.allocHits;
        } else {
            allocations[k] = allocator.allocateLevel(ids);
            cache.storeLevelAlloc(ctx, key, allocations[k]);
            ++out.replan.allocMisses;
        }
    }
    cache.addStats({.allocHits = out.replan.allocHits,
                     .allocMisses = out.replan.allocMisses});
    const auto t_allocated = clock_type::now();
    out.phaseSeconds.allocation = seconds(t_estimated, t_allocated);

    // Scheduling (§3.4) is recomputed — it is cheap and globally
    // coupled (wave merging reads every level).
    WavefrontScheduler scheduler(graph, out.curves, n,
                                 options_.scheduler);
    out.plan.waves = scheduler.scheduleAll(allocations);
    out.plan.numDevices = n;
    out.plan.allocations = std::move(allocations);
    out.plan.theoreticalOptimum = 0;
    for (const LevelAllocation &a : out.plan.allocations)
        out.plan.theoreticalOptimum += a.continuous.cStar;
    out.plan.estimatedSpan = out.plan.waves.empty()
        ? 0.0
        : out.plan.waves.back().start + out.plan.waves.back().duration;
    const auto t_scheduled = clock_type::now();
    out.phaseSeconds.scheduling = seconds(t_allocated, t_scheduled);

    // Placement (§3.5): replay the committed prefix of the cached
    // plan sharing the longest level prefix with this workload, and
    // score only the waves of perturbed levels. Prefix reuse relies
    // on the Spindle strategy's state being wave-local; Sequential
    // threads a device cursor through every wave, so it re-places
    // from scratch (full hits above still apply).
    MemoryModel mem(options_.memory);
    DevicePlacement placement(hw_.topology(), hw_, mem,
                              options_.placement, pool_.get());
    std::vector<PlacementCommit> commit_log;
    std::size_t donor_levels = 0;
    const PlanCache::PlanPtr donor =
        options_.placement.strategy == PlacementStrategy::Spindle
            ? cache.bestPrefixDonor(ctx, sig, &donor_levels)
            : nullptr;
    std::size_t resume_wave = 0;
    if (donor != nullptr && donor_levels > 0) {
        while (resume_wave < out.plan.waves.size() &&
               out.plan.waves[resume_wave].level <
                   static_cast<std::int32_t>(donor_levels))
            ++resume_wave;
        panicIf(resume_wave > donor->plan.waves.size(),
                "replan: donor prefix shorter than matched levels");
        for (std::size_t w = 0; w < resume_wave; ++w) {
            Wave &dst = out.plan.waves[w];
            const Wave &src = donor->plan.waves[w];
            // The matched levels are value-identical, so the waves
            // the (deterministic) scheduler crafted for them must
            // agree shape for shape.
            panicIf(src.level != dst.level ||
                        src.entries.size() != dst.entries.size(),
                    "replan: donor prefix wave shape mismatch");
            for (std::size_t i = 0; i < dst.entries.size(); ++i) {
                const WaveEntry &from = src.entries[i];
                WaveEntry &to = dst.entries[i];
                panicIf(from.n != to.n || from.opBegin != to.opBegin ||
                            from.numOps != to.numOps,
                        "replan: donor prefix entry mismatch");
                to.devices = from.devices;
            }
        }
    }
    if (resume_wave > 0) {
        std::vector<PlacementCommit> prefix;
        for (const PlacementCommit &rec : donor->commitLog)
            if (rec.wave < resume_wave)
                prefix.push_back(rec);
        out.placement = placement.placeWithPrefix(
            graph, out.plan, resume_wave, prefix, &commit_log);
        out.replan.reusedLevels = static_cast<std::uint32_t>(donor_levels);
        out.replan.prefixWaves = static_cast<std::uint32_t>(resume_wave);
        cache.addStats({.reusedLevels = donor_levels});
    } else {
        out.placement = placement.place(graph, out.plan, &commit_log);
    }
    const auto t_placed = clock_type::now();
    out.phaseSeconds.placement = seconds(t_scheduled, t_placed);

    out.plan.annotateReadiness(graph);
    out.plan.validate(graph);

    // Cache the result for future arrivals. commit_log is empty by
    // construction when the memory-first fallback ran, which is what
    // disqualifies fallback plans as future prefix donors.
    PlanCache::CachedPlan entry;
    entry.sig = std::move(sig);
    entry.plan = out.plan;
    entry.curves = out.curves;
    entry.placement = out.placement;
    entry.levelIds.resize(graph.numLevels());
    for (std::size_t k = 0; k < graph.numLevels(); ++k)
        entry.levelIds[k] = graph.level(k);
    entry.commitLog = std::move(commit_log);
    cache.storePlan(ctx, std::move(entry));

    out.planningSeconds = seconds(t0, clock_type::now());
    return out;
}

} // namespace spindle
