#include "planner/planner.h"

#include <chrono>

#include "common/logging.h"
#include "runtime/memory_model.h"

namespace spindle {

ExecutionPlanner::ExecutionPlanner(const HardwareModel &hw,
                                   PlannerOptions options)
    : hw_(hw), options_(options),
      threads_(resolveThreadCount(options.threads))
{
    if (threads_ > 1)
        pool_ = std::make_unique<ThreadPool>(threads_);
}

PlannerOutput
ExecutionPlanner::plan(const MetaGraph &graph) const
{
    using clock = std::chrono::steady_clock;
    auto seconds = [](clock::time_point a, clock::time_point b) {
        return std::chrono::duration<double>(b - a).count();
    };

    const auto t0 = clock::now();
    const std::uint32_t n = hw_.topology().numDevices();

    PlannerOutput out;

    // §3.2: profile the oracle and fit per-MetaOp scaling curves
    // (one independent curve per MetaOp — parallel when pooled).
    ScalabilityEstimator estimator(hw_, options_.estimator);
    out.curves = estimator.estimateAll(graph, n, pool_.get());
    const auto t_estimated = clock::now();
    out.phaseSeconds.estimation = seconds(t0, t_estimated);

    // §3.3: per-MetaLevel MPSP allocation + bi-point discretization
    // (levels are data-independent — parallel when pooled).
    ResourceAllocator allocator(graph, out.curves, n, options_.allocator);
    std::vector<LevelAllocation> allocations =
        allocator.allocateAll(pool_.get());
    const auto t_allocated = clock::now();
    out.phaseSeconds.allocation = seconds(t_estimated, t_allocated);

    // §3.4: craft waves level by level, then merge.
    WavefrontScheduler scheduler(graph, out.curves, n,
                                 options_.scheduler);
    out.plan.waves = scheduler.scheduleAll(allocations);
    out.plan.numDevices = n;
    out.plan.allocations = std::move(allocations);
    out.plan.theoreticalOptimum = 0;
    for (const LevelAllocation &a : out.plan.allocations)
        out.plan.theoreticalOptimum += a.continuous.cStar;
    out.plan.estimatedSpan = out.plan.waves.empty()
        ? 0.0
        : out.plan.waves.back().start + out.plan.waves.back().duration;
    const auto t_scheduled = clock::now();
    out.phaseSeconds.scheduling = seconds(t_allocated, t_scheduled);

    // §3.5: map wave entries onto devices (the scoring sweep runs as
    // a deterministic parallel reduction when pooled).
    MemoryModel mem(options_.memory);
    DevicePlacement placement(hw_.topology(), hw_, mem,
                              options_.placement, pool_.get());
    out.placement = placement.place(graph, out.plan);
    const auto t_placed = clock::now();
    out.phaseSeconds.placement = seconds(t_scheduled, t_placed);

    // Re-annotate now that entries are placed: readiness gains the
    // per device-group predecessor edges event dispatch relies on.
    out.plan.annotateReadiness(graph);

    out.plan.validate(graph);

    out.planningSeconds = seconds(t0, clock::now());
    return out;
}

} // namespace spindle
