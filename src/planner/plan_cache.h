/**
 * @file
 * Plan cache + level-diff layer for incremental replanning.
 *
 * The dynamicity story (paper Fig. 13) replans the whole workload at
 * every task arrival/departure, so replan latency scales with the
 * *cluster* even when the perturbation is one task. This layer keys
 * previously planned results by value so `ExecutionPlanner::replan()`
 * can reuse everything an arrival did not perturb:
 *
 *  - **Signatures** capture the exact values the planning pipeline
 *    reads from a MetaGraph — positionally, never by id or name — so
 *    two graphs that plan byte-identically compare equal even when
 *    their MetaOp ids or task names differ (e.g. the same task mix
 *    rebuilt after a departure).
 *  - **PlanCache** stores three tiers per (topology fingerprint,
 *    planner-options fingerprint) context: scaling curves per
 *    workload shape (§3.2), level allocations per LevelSignature
 *    (§3.3), and whole placed plans per GraphSignature, whose
 *    comm-first placement commit logs double as replayable prefixes
 *    for the PR-3 partial-restart machinery (§3.5).
 *
 * Everything cached is value-transparent: a hit returns bits the
 * uncached pipeline would also have produced, which is what lets
 * replan() keep planner_equivalence_test's frozen-reference,
 * byte-identity discipline.
 *
 * **Thread safety.** The cache is safe for concurrent lookups and
 * stores from any number of threads: contexts are sharded over
 * striped mutexes (the StripedMemo pattern from
 * common/sharded_memo.h), whole-plan hits are returned as
 * shared_ptrs so a concurrent eviction can never pull an entry out
 * from under a reader, and the curve/allocation tiers hand out
 * copies. Counters (including evictions) are atomics kept exact
 * under the stripe locks. This is what lets many planners — e.g.
 * every PlanService worker — share one cache through
 * PlannerOptions::cache and replan() concurrently: racing misses on
 * the same signature may compute the plan twice, but both
 * computations produce identical bytes (the pipeline is
 * deterministic) and each caller returns the plan it computed, so
 * even the racers agree bit for bit.
 */

#ifndef SPINDLE_PLANNER_PLAN_CACHE_H
#define SPINDLE_PLANNER_PLAN_CACHE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "cost/scaling_curve.h"
#include "graph/meta_graph.h"
#include "planner/execution_plan.h"
#include "planner/placement.h"

namespace spindle {

/**
 * Value identity of one MetaOp as the planning pipeline consumes it.
 * Ids and names are deliberately absent: MetaOps are identified
 * positionally (level index, index within level), which is exactly
 * how the pipeline's deterministic tie-breaks see them (within a
 * level, MetaOp ids ascend with position).
 */
struct MetaOpSignature
{
    /** Member workload shape — the §3.2 estimator's only inputs. */
    OpType type = OpType::Custom;
    TensorShape input;
    double flopsFwdPerOp = 0;
    double paramBytesPerOp = 0;
    double activationBytes = 0;

    /** Operator count L_m (allocator + scheduler input). */
    std::int64_t numOps = 0;

    /**
     * Per-member-operator (raw param dedup key, param bytes), in
     * member order. Placement's per-device memory state is keyed by
     * the RAW dedup key (shared sets by ParamKey, unshared operators
     * by a unique negative key), and its floating-point summation
     * order over that map depends on the raw key values — so byte
     * identity requires the sequences to match exactly, not merely
     * describe the same sharing structure.
     */
    struct MemberParam
    {
        std::int64_t key = 0;
        double bytes = 0;
        bool operator==(const MemberParam &) const = default;
    };
    std::vector<MemberParam> memberParams;

    /**
     * Inbound flows in MetaGraph::edges() iteration order, sources
     * identified positionally. Edge order matters: placement
     * accumulates inflow comm seconds in it.
     */
    struct Inflow
    {
        std::int32_t srcLevel = -1;
        std::int32_t srcPos = -1;
        double flowBytes = 0;
        bool operator==(const Inflow &) const = default;
    };
    std::vector<Inflow> inflows;

    bool operator==(const MetaOpSignature &) const = default;
};

/** Positional value identity of one MetaLevel. */
struct LevelSignature
{
    std::vector<MetaOpSignature> metaOps;
    bool operator==(const LevelSignature &) const = default;
};

/** Positional value identity of a whole MetaGraph. */
struct GraphSignature
{
    std::vector<LevelSignature> levels;

    /** Hash over all levels, for cheap bucketing; equality always
     *  falls back to the deep comparison below. */
    std::uint64_t hash = 0;

    bool equalLevels(const GraphSignature &o) const
    {
        return levels == o.levels;
    }

    /** Number of leading levels on which the two signatures agree. */
    std::size_t commonPrefixLevels(const GraphSignature &o) const;
};

/** Build the (positional, id- and name-free) signature of @p graph. */
GraphSignature signatureOf(const MetaGraph &graph);

/**
 * Multi-tier cache of planning results, partitioned by context
 * fingerprint (topology fingerprint mixed with a fingerprint of the
 * planning options). See the file comment for the tiers and the
 * value-transparency contract.
 */
class PlanCache
{
  public:
    /** One cached, fully placed plan. */
    struct CachedPlan
    {
        GraphSignature sig;

        /** Placed, readiness-annotated plan in the donor graph's ids. */
        ExecutionPlan plan;

        /** Curves indexed by the donor graph's MetaOp ids. */
        std::vector<ScalingCurve> curves;

        PlacementResult placement;

        /** Donor MetaOp ids by (level, position) — the remap key. */
        std::vector<std::vector<MetaOpId>> levelIds;

        /**
         * Comm-first placement commit log, replayable as a prefix.
         * Empty when the plan needed the memory-first fallback (such
         * logs would mix scoring regimes and are unusable).
         */
        std::vector<PlacementCommit> commitLog;
    };

    /** Key of one cached scaling curve (plus max_devices context). */
    struct CurveKey
    {
        OpType type = OpType::Custom;
        TensorShape input;
        double flopsFwdPerOp = 0;
        double paramBytesPerOp = 0;
        double activationBytes = 0;
        std::uint32_t maxDevices = 0;
        bool operator==(const CurveKey &) const = default;
    };

    /** Key of one cached level allocation: per-position workload
     *  shape plus operator count (everything §3.3 reads). */
    struct LevelKey
    {
        std::vector<std::pair<CurveKey, std::int64_t>> ops;
        bool operator==(const LevelKey &) const = default;
    };

    /** Cumulative counters across every lookup (reported by the
     *  arrival-storm bench). */
    struct Stats
    {
        std::uint64_t fullHits = 0;
        std::uint64_t misses = 0;
        std::uint64_t curveHits = 0;
        std::uint64_t curveMisses = 0;
        std::uint64_t allocHits = 0;
        std::uint64_t allocMisses = 0;
        std::uint64_t reusedLevels = 0;
        std::uint64_t evictions = 0;
    };

    /** Shared-ownership view of a cached plan: stays valid after a
     *  concurrent eviction drops the cache's own reference. */
    using PlanPtr = std::shared_ptr<const CachedPlan>;

    /** @param max_plans_per_context FIFO bound on the whole-plan tier
     *  (curve/allocation tiers are small and unbounded). */
    explicit PlanCache(std::size_t max_plans_per_context = 32);

    /** Cached plan whose signature equals @p sig, or nullptr. */
    PlanPtr findPlan(std::uint64_t ctx, const GraphSignature &sig) const;

    /**
     * Cached plan sharing the longest non-empty level prefix with
     * @p sig among entries that carry a replayable commit log; ties
     * go to the most recently stored entry. @p prefix_levels gets
     * the matched level count. nullptr when nothing matches.
     */
    PlanPtr bestPrefixDonor(std::uint64_t ctx, const GraphSignature &sig,
                            std::size_t *prefix_levels) const;

    /** Insert a plan, evicting the oldest entry past the bound. A
     *  plan whose signature is already cached for @p ctx replaces
     *  nothing and is dropped (racing misses stay bounded). */
    void storePlan(std::uint64_t ctx, CachedPlan plan);

    /** Copy of the cached curve for @p key, if any. */
    std::optional<ScalingCurve> findCurve(std::uint64_t ctx,
                                          const CurveKey &key) const;
    void storeCurve(std::uint64_t ctx, const CurveKey &key,
                    const ScalingCurve &curve);

    /** Hit values are stored positionally: callers must remap the
     *  contained MetaOp ids onto their own graph's level ids. */
    std::optional<LevelAllocation>
    findLevelAlloc(std::uint64_t ctx, const LevelKey &key) const;
    void storeLevelAlloc(std::uint64_t ctx, const LevelKey &key,
                         const LevelAllocation &alloc);

    /** Consistent snapshot of the cumulative counters. */
    Stats stats() const;

    /** Atomically add every (nonzero) field of @p delta to the
     *  counters — how replan() publishes its per-call accounting. */
    void addStats(const Stats &delta);

    /** Plans currently cached for @p ctx (tests/bench introspection). */
    std::size_t numPlans(std::uint64_t ctx) const;

  private:
    struct Context
    {
        std::deque<PlanPtr> plans; ///< newest at the back
        std::vector<std::pair<CurveKey, ScalingCurve>> curves;
        std::vector<std::pair<LevelKey, LevelAllocation>> levels;
    };

    /** Contexts sharded over lock stripes by fingerprint. One
     *  context's state lives entirely inside one stripe, so every
     *  per-context operation takes exactly one lock. */
    struct Stripe
    {
        mutable std::mutex mu;
        std::map<std::uint64_t, Context> contexts;
    };

    static constexpr std::size_t kStripes = 16;

    Stripe &stripeOf(std::uint64_t ctx) const;

    mutable std::array<Stripe, kStripes> stripes_;
    std::size_t max_plans_;

    /** Counter fields mirror Stats one for one. */
    struct AtomicStats
    {
        std::atomic<std::uint64_t> fullHits{0};
        std::atomic<std::uint64_t> misses{0};
        std::atomic<std::uint64_t> curveHits{0};
        std::atomic<std::uint64_t> curveMisses{0};
        std::atomic<std::uint64_t> allocHits{0};
        std::atomic<std::uint64_t> allocMisses{0};
        std::atomic<std::uint64_t> reusedLevels{0};
        std::atomic<std::uint64_t> evictions{0};
    };
    mutable AtomicStats stats_;
};

} // namespace spindle

#endif // SPINDLE_PLANNER_PLAN_CACHE_H
