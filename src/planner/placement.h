/**
 * @file
 * Device placement (paper §3.5): map every wave entry onto concrete
 * devices, trading inter-wave communication against per-device
 * memory balance.
 *
 * Guidelines implemented, as in the paper:
 *  - intra-device-island placement is preferred for each entry and
 *    for the data flows between entries across waves;
 *  - when islands cannot hold everything, entries with higher
 *    communication volume get the better (intra-island) placement
 *    first;
 *  - per-device memory is tracked (parameters deduplicated by
 *    ParamKey, so parameter-sharing MetaOps landing on the same
 *    device store them once) and balanced; an entry that would
 *    exceed capacity triggers a restart of the whole placement with
 *    memory-first scoring — the constrained-depth backtracking of
 *    the paper collapsed into a two-phase search.
 *
 * A Sequential strategy (each entry takes the next consecutive
 * devices, no awareness) is provided for the Fig. 10 ablation.
 */

#ifndef SPINDLE_PLANNER_PLACEMENT_H
#define SPINDLE_PLANNER_PLACEMENT_H

#include <vector>

#include "planner/execution_plan.h"
#include "runtime/memory_model.h"

namespace spindle {

/** Placement strategy selector. */
enum class PlacementStrategy : std::uint8_t
{
    Spindle,    ///< locality- and memory-aware greedy (§3.5)
    Sequential, ///< consecutive-devices baseline (Fig. 10 ablation)
};

/** Placement tunables. */
struct PlacementOptions
{
    PlacementStrategy strategy = PlacementStrategy::Spindle;

    /** Usable fraction of device HBM before an entry is rejected. */
    double memorySlack = 0.92;

    /** Weight converting relative memory imbalance into seconds in
     *  the placement score (heuristic trade-off knob). */
    double memoryWeight = 1e-3;

    /**
     * Weight of the parameter-affinity bonus (§3.5: MetaOps sharing
     * parameters are preferentially co-located, shrinking redundant
     * storage and gradient-sync device groups). The bonus is the
     * estimated all-reduce seconds saved by not growing the groups
     * of parameters already resident on the candidate devices.
     */
    double paramAffinityWeight = 1.0;
};

/** Result of placing a plan. */
struct PlacementResult
{
    /** Peak bytes per device (params + optimizer + activations). */
    std::vector<double> peakBytes;

    /** Estimated total inter-wave transmission seconds. */
    double estimatedCommSeconds = 0;

    /** True when the memory-first fallback pass was needed. */
    bool usedMemoryFallback = false;
};

/**
 * Greedy wave-by-wave placer.
 */
class DevicePlacement
{
  public:
    DevicePlacement(const ClusterTopology &topo, const HardwareModel &hw,
                    const MemoryModel &mem, PlacementOptions options = {});

    /**
     * Fill WaveEntry::devices for every wave of @p plan.
     * fatal()s when even memory-first placement cannot fit.
     */
    PlacementResult place(const MetaGraph &graph,
                          ExecutionPlan &plan) const;

  private:
    struct Attempt;

    bool tryPlace(const MetaGraph &graph, ExecutionPlan &plan,
                  bool memory_first, PlacementResult &result) const;

    const ClusterTopology &topo_;
    const HardwareModel &hw_;
    const MemoryModel &mem_;
    PlacementOptions options_;
};

} // namespace spindle

#endif // SPINDLE_PLANNER_PLACEMENT_H
