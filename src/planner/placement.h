/**
 * @file
 * Device placement (paper §3.5): map every wave entry onto concrete
 * devices, trading inter-wave communication against per-device
 * memory balance.
 *
 * Guidelines implemented, as in the paper:
 *  - intra-device-island placement is preferred for each entry and
 *    for the data flows between entries across waves;
 *  - when islands cannot hold everything, entries with higher
 *    communication volume get the better (intra-island) placement
 *    first;
 *  - per-device memory is tracked (parameters deduplicated by
 *    ParamKey, so parameter-sharing MetaOps landing on the same
 *    device store them once) and balanced; an entry that would
 *    exceed capacity triggers a restart of the placement with
 *    memory-first scoring — the constrained-depth backtracking of
 *    the paper collapsed into a two-phase search. By default the
 *    restart resumes from the first infeasible wave (committed
 *    earlier waves are replayed, not re-scored), keeping the
 *    fallback cheap at 512+ GPU scale; a full restart remains the
 *    last resort.
 *
 * Candidate generation is pluggable (see window_generator.h): the
 * placer scores whatever windows the configured WindowGenerator
 * emits, using incremental per-band state (link-class / residency /
 * island-change prefix counts and a sliding-window maximum over
 * per-device loads) so scoring stays O(1) per window after an
 * O(free-list) setup per entry. `ContiguousRuns` reproduces the
 * historical placer bit for bit (planner_equivalence_test);
 * `IslandAware` decouples window shape from device numbering.
 *
 * **Incremental per-entry sweep (4096-GPU scaling).** The per-entry
 * setup itself is incremental across entries rather than a rescan:
 * the attempt state keeps, besides the per-device parameter maps, a
 * sorted flat mirror of each map (binary-search probes in the hot
 * loops, same stored doubles, so identical arithmetic) and a
 * reverse index from parameter key to the devices holding it. An
 * entry's would-be per-device load then splits into one shared
 * "all-miss" base — activation share plus every signature share,
 * accumulated once in the exact order the probe loop would have —
 * and sparse overrides for the *affected* devices (the union of the
 * holder lists of the entry's keys), the only devices where a probe
 * can hit. Commits dirty only the chosen window's devices, so
 * affected sets stay tiny and per-entry setup is O(free) + O(affected
 * · |sig|) instead of O(free · |sig|). Parameter residency follows
 * the same scheme: per residency row a sparse ascending list of
 * holder positions replaces the rows × free flag matrix.
 *
 * **Admissible band pruning** (PlacementOptions::bandPruning): before
 * scoring a chunk of band windows, the sweep derives an exact lower
 * bound on every window's primary score from the already-built
 * prefix state — minimum load along the band for the memory term,
 * the cheapest link class present anywhere in the chunk's position
 * range per inflow, residency over the whole range for the affinity
 * term, and min(0, penalty) for the island penalty. Each bound term
 * is ≤ its counterpart and is accumulated in the same structural
 * order as the real score, so by monotonicity of rounded addition
 * the bound never exceeds any window's primary. A chunk is skipped
 * only when its bound is *strictly* above an already-scored
 * candidate's primary; the selection tie-break (secondary, then
 * serial enumeration ordinal) only arbitrates between equal
 * primaries, so a pruned chunk can never contain the winner and the
 * emitted plan is byte-identical with pruning on or off, at any
 * thread count (pinned by planner_equivalence_test, which toggles
 * the flag at 1024 GPUs).
 *
 * With a ThreadPool the per-entry sweep runs as a parallel reduction:
 * the position setup (per-device loads, link classes, residency
 * flags), the per-band prefix builds, and the window scoring are
 * chunked across lanes, and the winning window is selected by a
 * deterministic merge on (primary score, secondary score, candidate
 * ordinal) — the ordinal is the serial enumeration index, so the
 * emitted plan is byte-identical to the single-threaded sweep at any
 * thread count (pinned by planner_equivalence_test). Lanes share the
 * pruning bound through a relaxed atomic: a stale read only prunes
 * less, never differently, so pruning is also determinism-neutral
 * under concurrency.
 *
 * A Sequential strategy (each entry takes the next consecutive
 * device ids, no topology awareness — by design independent of the
 * island structure and of any renumbering) is provided for the
 * Fig. 10 ablation.
 */

#ifndef SPINDLE_PLANNER_PLACEMENT_H
#define SPINDLE_PLANNER_PLACEMENT_H

#include <vector>

#include "planner/execution_plan.h"
#include "planner/window_generator.h"
#include "runtime/memory_model.h"

namespace spindle {

class ThreadPool;

/** Placement strategy selector. */
enum class PlacementStrategy : std::uint8_t
{
    Spindle,    ///< locality- and memory-aware greedy (§3.5)
    Sequential, ///< consecutive-devices baseline (Fig. 10 ablation)
};

/** Placement tunables. */
struct PlacementOptions
{
    PlacementStrategy strategy = PlacementStrategy::Spindle;

    /**
     * Candidate-window generation policy for the Spindle strategy.
     * ContiguousRuns is the historical default; IslandAware emits
     * per-island runs plus deliberate cross-island unions and is the
     * right choice on heterogeneous or permuted-numbering clusters.
     */
    WindowPolicy windows = WindowPolicy::ContiguousRuns;

    /**
     * Custom window generator (non-owning; must outlive placement).
     * Overrides `windows` when set.
     */
    const WindowGenerator *generator = nullptr;

    /**
     * Restart the memory-first fallback from the first infeasible
     * wave (replaying already-committed waves) instead of from wave
     * 0. Falls back to the historical full restart automatically if
     * the partial restart still cannot fit.
     */
    bool partialFallbackRestart = true;

    /** Usable fraction of device HBM before an entry is rejected. */
    double memorySlack = 0.92;

    /** Weight converting relative memory imbalance into seconds in
     *  the placement score (heuristic trade-off knob). */
    double memoryWeight = 1e-3;

    /**
     * Weight of the parameter-affinity bonus (§3.5: MetaOps sharing
     * parameters are preferentially co-located, shrinking redundant
     * storage and gradient-sync device groups). The bonus is the
     * estimated all-reduce seconds saved by not growing the groups
     * of parameters already resident on the candidate devices.
     */
    double paramAffinityWeight = 1.0;

    /**
     * Price candidate windows with
     * CollectiveModel::pairedFlowTime (per-destination shards, the
     * flow finishing with its slowest destination — the same
     * attribution PlacementResult.interIslandCommSeconds reports)
     * instead of flowTime's best-pair bound. The paired oracle can
     * punish a window for merely touching a congested source island,
     * which the best-pair bound cannot, so IslandAware windows
     * dominate even on homogeneous clusters. Default off: the legacy
     * scoring stays byte-identical to the frozen equivalence
     * reference. Plan-affecting (folded into the planner's options
     * fingerprint).
     */
    bool pairingAwareFlowPricing = false;

    /**
     * Admissible pruning of the candidate sweep (see the file
     * comment): skip a chunk of band windows when an exact lower
     * bound on every window's primary score is strictly above an
     * already-scored candidate's. Winner-preserving by construction,
     * so plans are byte-identical with the flag on or off; it exists
     * as the equivalence test's proof handle and as a perf escape
     * hatch. Value-transparent — excluded from the planner options
     * fingerprint, like thread count and plan-cache settings.
     */
    bool bandPruning = true;
};

/**
 * One committed wave entry of a placement pass: positional entry
 * coordinates plus the comm seconds the pass charged to it. A logged
 * comm-first pass can be replayed bit-identically from these records
 * — the partial fallback restart replays the feasible prefix of a
 * failed pass, and incremental replanning (planner/plan_cache.h)
 * replays the prefix of a previously cached plan whose leading
 * levels an arrival did not perturb.
 */
struct PlacementCommit
{
    std::uint32_t wave = 0;
    std::uint32_t entry = 0;
    double comm = 0;        ///< scored comm charged to the entry
    double interIsland = 0; ///< inter-island share of the above
};

/** Result of placing a plan. */
struct PlacementResult
{
    /** Peak bytes per device (params + optimizer + activations). */
    std::vector<double> peakBytes;

    /** Estimated total inter-wave transmission seconds. */
    double estimatedCommSeconds = 0;

    /**
     * Estimated seconds of comm crossing the inter-island fabric,
     * attributed shard by shard: each flow's seconds scaled by the
     * fraction of destination devices whose island holds no source
     * device, plus the intra-island preference penalties of TP
     * groups that straddle. Deliberately finer-grained than the
     * best-pair flowTime pricing of estimatedCommSeconds, which
     * cannot see the difference between an island-aligned window
     * and one that merely touches the source's island.
     */
    double interIslandCommSeconds = 0;

    /** True when the memory-first fallback pass was needed. */
    bool usedMemoryFallback = false;

    /** Wave index the fallback pass restarted from (0 = full
     *  restart; meaningful only when usedMemoryFallback). */
    std::size_t fallbackRestartWave = 0;
};

/**
 * Greedy wave-by-wave placer.
 */
class DevicePlacement
{
  public:
    /** @param pool optional planner pool for the parallel scoring
     *  sweep (non-owning; nullptr or a 1-thread pool run the
     *  historical serial sweep — same bytes either way). */
    DevicePlacement(const ClusterTopology &topo, const HardwareModel &hw,
                    const MemoryModel &mem, PlacementOptions options = {},
                    ThreadPool *pool = nullptr);

    /**
     * Fill WaveEntry::devices for every wave of @p plan.
     * fatal()s when even memory-first placement cannot fit.
     *
     * When @p commit_log is non-null it receives the commit records
     * of the successful comm-first pass, replayable as a placement
     * prefix; it is left empty when the memory-first fallback was
     * needed (a fallback log would mix scoring regimes).
     */
    PlacementResult
    place(const MetaGraph &graph, ExecutionPlan &plan,
          std::vector<PlacementCommit> *commit_log = nullptr) const;

    /**
     * place() with a reused prefix: waves before @p resume_wave must
     * already carry the device sets a comm-first pass committed, and
     * @p prefix must be that pass's commit records for those waves.
     * The prefix is replayed (state committed, never re-scored) and
     * scoring starts at @p resume_wave; the full fallback cascade of
     * place() applies beyond the prefix, so the filled plan is
     * byte-identical to a from-scratch place(). Used by
     * ExecutionPlanner::replan().
     */
    PlacementResult
    placeWithPrefix(const MetaGraph &graph, ExecutionPlan &plan,
                    std::size_t resume_wave,
                    const std::vector<PlacementCommit> &prefix,
                    std::vector<PlacementCommit> *commit_log = nullptr) const;

  private:
    struct Attempt;

    /** Internal alias; see PlacementCommit. */
    using CommitRecord = PlacementCommit;

    /**
     * One placement pass. Waves before @p resume_wave are replayed
     * from @p replay (state committed, no scoring); waves from
     * @p resume_wave on are scored (memory-first when
     * @p memory_first). On failure, the index of the first
     * infeasible wave lands in @p fail_wave and committed records
     * (all passes log into @p log when non-null) describe the
     * feasible prefix.
     */
    bool tryPlace(const MetaGraph &graph, ExecutionPlan &plan,
                  bool memory_first, PlacementResult &result,
                  std::size_t resume_wave,
                  const std::vector<CommitRecord> *replay,
                  std::vector<CommitRecord> *log,
                  std::size_t *fail_wave) const;

    const WindowGenerator &generator() const;

    const ClusterTopology &topo_;
    const HardwareModel &hw_;
    const MemoryModel &mem_;
    PlacementOptions options_;
    ThreadPool *pool_ = nullptr;
};

} // namespace spindle

#endif // SPINDLE_PLANNER_PLACEMENT_H
