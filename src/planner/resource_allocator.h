/**
 * @file
 * Resource allocator (paper §3.3): per-MetaLevel device allocation.
 *
 * The level sub-problem (Eqs. 4-7) relaxes to a malleable project
 * scheduling problem (MPSP) when devices and operators are
 * continuously divisible. By Theorem 1, the relaxed optimum has all
 * MetaOps start together and finish together at C~*, found by a
 * bisection search over Eq. (9) (Appendix B, Alg. 2). The fractional
 * allocations n*_m are then reinstated as integers by the bi-point
 * discretization of Conds. (10a)/(10b), producing at most two
 * ASL-tuples per MetaOp (plus ignorable dummy allocations).
 */

#ifndef SPINDLE_PLANNER_RESOURCE_ALLOCATOR_H
#define SPINDLE_PLANNER_RESOURCE_ALLOCATOR_H

#include <vector>

#include "cost/scaling_curve.h"
#include "planner/allocation.h"

namespace spindle {

class ThreadPool;

/** Allocator tunables. */
struct AllocatorOptions
{
    /** Relative convergence tolerance of the bisection search. */
    double bisectionRelTol = 1e-7;

    /** Hard cap on bisection iterations (guards degenerate curves). */
    std::uint32_t maxBisectionIters = 200;
};

/**
 * Per-level resource allocator over estimated scaling curves.
 *
 * The allocator never touches the hardware oracle directly: like the
 * paper's planner it sees only the scaling curves from §3.2, whose
 * valid-allocation grids already encode the practical constraints
 * (DP divides batch, TP degree divisibility).
 */
class ResourceAllocator
{
  public:
    /**
     * @param graph contracted MetaGraph
     * @param curves scaling curve per MetaOp, indexed by MetaOpId
     * @param num_devices cluster size N
     */
    ResourceAllocator(const MetaGraph &graph,
                      const std::vector<ScalingCurve> &curves,
                      std::uint32_t num_devices,
                      AllocatorOptions options = {});

    /**
     * Solve the continuous MPSP relaxation for one MetaLevel
     * (Appendix B, Alg. 2). nStar is aligned with @p level.
     */
    MpspSolution solveContinuous(const std::vector<MetaOpId> &level) const;

    /**
     * Full per-level allocation: continuous optimum plus bi-point
     * discretization and rounding of operator counts (§3.3).
     */
    LevelAllocation allocateLevel(const std::vector<MetaOpId> &level) const;

    /**
     * Allocate every MetaLevel of the graph, in level order. Levels
     * are data-independent (each bisects its own MPSP over the
     * shared read-only curves), so a non-null @p pool solves them in
     * parallel; each level lands at its own index, making the output
     * identical at any thread count.
     */
    std::vector<LevelAllocation>
    allocateAll(ThreadPool *pool = nullptr) const;

    /**
     * Theoretical lower bound on the iteration's execution span:
     * the sum of per-level continuous optima C~* (Fig. 11 baseline).
     */
    double theoreticalOptimum() const;

    std::uint32_t numDevices() const { return num_devices_; }

  private:
    /** Discretize one MetaOp's fractional n* (Conds. 10a/10b). */
    MetaOpAllocation discretize(MetaOpId m, double n_star,
                                double c_star) const;

    const MetaGraph &graph_;
    const std::vector<ScalingCurve> &curves_;
    std::uint32_t num_devices_;
    AllocatorOptions options_;
};

} // namespace spindle

#endif // SPINDLE_PLANNER_RESOURCE_ALLOCATOR_H
