/**
 * @file
 * The Spindle execution plan: a sequence of waves (paper §3.4,
 * Fig. 5b). A wave is the smallest scheduling unit — one concurrent
 * execution of sliced MetaOps on disjoint, fixed device groups.
 * Data flows are transmitted only between waves.
 */

#ifndef SPINDLE_PLANNER_EXECUTION_PLAN_H
#define SPINDLE_PLANNER_EXECUTION_PLAN_H

#include <string>
#include <vector>

#include "hardware/device.h"
#include "planner/allocation.h"

namespace spindle {

/** One sliced MetaOp execution inside a wave. */
struct WaveEntry
{
    MetaOpId metaOp = -1;

    /** Devices allocated (n of the ASL-tuple slice). */
    std::uint32_t n = 0;

    /** Index of the first member operator executed in this wave. */
    std::int64_t opBegin = 0;

    /** Number of consecutive member operators executed. */
    std::int64_t numOps = 0;

    /** Estimated execution time of the slice (curve-based). */
    double duration = 0;

    /** Concrete devices; filled in by device placement (§3.5). */
    DeviceSet devices;
};

/** One wave: concurrent entries on disjoint device groups. */
struct Wave
{
    std::int32_t index = -1;

    /** MetaLevel this wave belongs to. */
    std::int32_t level = -1;

    /**
     * Execution stream. Waves of one stream execute strictly in
     * order; waves of different streams are independent (used by the
     * task-parallel Spindle-Optimus baseline; Spindle itself emits a
     * single stream because waves are global barriers).
     */
    std::int32_t stream = 0;

    /**
     * Readiness edges (§3.6 event-driven dispatch): indices of the
     * waves that must complete before this wave may be admitted.
     * Sorted, unique, strictly smaller than this wave's index.
     *
     * The edges cover (a) transmission producers and consumers — the
     * waves that produced each entry's inputs (predecessor MetaOps'
     * final slices, or the same MetaOp's previous slice); (b) the
     * previous wave of the same stream (program order); and (c) per
     * device-group wave predecessors — once the plan is placed, the
     * latest earlier wave sharing any device.
     *
     * Empty on plans that were never annotated (see
     * annotateWaveReadiness()); the runtime then derives the edges
     * itself.
     */
    std::vector<std::int32_t> predecessors;

    /** Estimated start time within the plan (compute span only). */
    double start = 0;

    /** Estimated duration = max over entries. */
    double duration = 0;

    std::vector<WaveEntry> entries;

    /** Total devices allocated across entries. */
    std::uint32_t devicesAllocated() const;
};

/**
 * Full execution plan for one training iteration.
 */
struct ExecutionPlan
{
    std::vector<Wave> waves;
    std::uint32_t numDevices = 0;

    /** Estimated compute span (sum of wave durations). */
    double estimatedSpan = 0;

    /** Sum of per-level continuous optima C~* (Fig. 11 bound). */
    double theoreticalOptimum = 0;

    /** Per-level allocator output (kept for analysis/tests). */
    std::vector<LevelAllocation> allocations;

    /**
     * Check the structural invariants the paper's formulation
     * demands; panic()s with a description on violation:
     *  - every wave's entries allocate <= numDevices in total;
     *  - a MetaOp appears at most once per wave (Eq. 6: intervals
     *    of the same MetaOp are disjoint);
     *  - each MetaOp executes exactly L_m operators overall, in
     *    contiguous slices (Eq. 7);
     *  - a MetaOp's first slice starts only after every predecessor
     *    MetaOp has fully executed in earlier waves (Eq. 3);
     *  - placed entries within a wave occupy disjoint device sets
     *    of the declared size;
     *  - when readiness edges are annotated, every predecessor index
     *    is in range and strictly earlier, the lists are sorted and
     *    unique, and every data producer (transmission producer or
     *    previous slice) is covered by an edge.
     */
    void validate(const MetaGraph &graph) const;

    /**
     * Fill Wave::predecessors for every wave (see that field for the
     * edge kinds). Safe to call again after placement: device-group
     * predecessor edges are only derivable once entries are placed.
     */
    void annotateReadiness(const MetaGraph &graph);

    /** True when readiness edges were annotated (any wave carries
     *  predecessors). */
    bool hasReadiness() const;

    /** Human-readable wave-by-wave rendering (examples, debugging). */
    std::string str(const MetaGraph &graph) const;
};

/**
 * Compute the readiness edges of @p waves without storing them (the
 * adjacency the event-driven runtime dispatches on). Wave indices
 * must equal their positions. Device-group predecessor edges are
 * included only for placed entries.
 */
std::vector<std::vector<std::int32_t>>
computeWaveReadiness(const MetaGraph &graph,
                     const std::vector<Wave> &waves);

/** Store computeWaveReadiness() edges into @p waves in place. */
void annotateWaveReadiness(const MetaGraph &graph,
                           std::vector<Wave> &waves);

/** True when any wave of @p waves carries readiness predecessors. */
bool hasWaveReadiness(const std::vector<Wave> &waves);

} // namespace spindle

#endif // SPINDLE_PLANNER_EXECUTION_PLAN_H
