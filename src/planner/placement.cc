#include "planner/placement.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

#include "common/logging.h"

namespace spindle {

namespace {

/** Dedup key for parameter storage: shared keys map to themselves,
 *  unshared operators get a unique negative key. */
std::int64_t
paramDedupKey(const OperatorDesc &op)
{
    if (op.paramKey != kNoParam)
        return op.paramKey;
    return -(static_cast<std::int64_t>(op.id) + 2);
}

} // namespace

/** Mutable state of one placement attempt. */
struct DevicePlacement::Attempt
{
    /** Per-device stored parameter state, deduplicated by key. */
    std::vector<std::unordered_map<std::int64_t, double>> params;

    /** Per-device accumulated activation bytes. */
    std::vector<double> activations;

    /** Most recent device set of each MetaOp (last placed slice). */
    std::map<MetaOpId, DeviceSet> lastSlice;

    double
    deviceTotal(DeviceId d) const
    {
        double total = activations[d];
        for (const auto &[key, bytes] : params[d])
            total += bytes;
        return total;
    }
};

DevicePlacement::DevicePlacement(const ClusterTopology &topo,
                                 const HardwareModel &hw,
                                 const MemoryModel &mem,
                                 PlacementOptions options)
    : topo_(topo), hw_(hw), mem_(mem), options_(options)
{
}

PlacementResult
DevicePlacement::place(const MetaGraph &graph, ExecutionPlan &plan) const
{
    PlacementResult result;
    if (tryPlace(graph, plan, /*memory_first=*/false, result))
        return result;
    // Backtracking collapsed into a restart: redo everything with
    // memory balance as the primary objective (§3.5 "alternative
    // placements with sub-optimal communication costs").
    result = {};
    result.usedMemoryFallback = true;
    fatalIf(!tryPlace(graph, plan, /*memory_first=*/true, result),
            "DevicePlacement: workload does not fit device memory even "
            "with memory-first placement");
    return result;
}

bool
DevicePlacement::tryPlace(const MetaGraph &graph, ExecutionPlan &plan,
                          bool memory_first,
                          PlacementResult &result) const
{
    const std::uint32_t num_devices = plan.numDevices;
    const double capacity =
        topo_.device().memoryBytes * options_.memorySlack;
    const CollectiveModel &coll = hw_.collectives();

    Attempt state;
    state.params.assign(num_devices, {});
    state.activations.assign(num_devices, 0.0);

    // Per-op parameter share charged to each device of a slice.
    auto param_share = [&](const OperatorDesc &op, ParallelConfig cfg) {
        const double shard =
            op.paramBytes / cfg.tp /
            (mem_.params().zeroShardParams ? cfg.dp : 1.0);
        const double opt =
            op.paramBytes / cfg.tp * mem_.params().optimizerFactor /
            (mem_.params().zeroShardOptimizer ? cfg.dp : 1.0);
        return shard + opt;
    };

    std::uint32_t seq_cursor = 0; // Sequential strategy cursor

    for (Wave &wave : plan.waves) {
        DeviceSet free = topo_.allDevices();
        free.resize(std::min<std::size_t>(free.size(), num_devices));

        // Entry placement order: highest communication volume first
        // (or largest memory first in the fallback pass).
        std::vector<std::size_t> order(wave.entries.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        auto entry_volume = [&](const WaveEntry &e) {
            const MetaOp &m = graph.metaOp(e.metaOp);
            double vol = m.activationBytes; // outflow / chain flow
            if (e.opBegin == 0) {
                for (const MetaEdge &edge : graph.edges())
                    if (edge.dst == e.metaOp)
                        vol += edge.flowBytes;
            }
            return vol;
        };
        auto entry_memory = [&](const WaveEntry &e) {
            const MetaOp &m = graph.metaOp(e.metaOp);
            ParallelConfig cfg = hw_.bestConfig(memberDesc(m), e.n);
            return mem_.sliceBytesPerDevice(m, e.numOps, cfg);
        };
        if (options_.strategy == PlacementStrategy::Spindle) {
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          double va, vb;
                          if (memory_first) {
                              va = entry_memory(wave.entries[a]);
                              vb = entry_memory(wave.entries[b]);
                          } else {
                              va = entry_volume(wave.entries[a]);
                              vb = entry_volume(wave.entries[b]);
                          }
                          if (va != vb)
                              return va > vb;
                          return a < b;
                      });
        }

        for (std::size_t idx : order) {
            WaveEntry &e = wave.entries[idx];
            const MetaOp &m = graph.metaOp(e.metaOp);
            const ParallelConfig cfg = hw_.bestConfig(memberDesc(m), e.n);
            const double act_share =
                mem_.activationBytesPerDevice(m, e.numOps, cfg);

            // Candidate windows: contiguous runs of the free list.
            panicIf(free.size() < e.n,
                    "tryPlace: scheduler exceeded wave capacity");
            std::vector<DeviceSet> windows;
            if (options_.strategy == PlacementStrategy::Sequential) {
                // Next consecutive devices, wrapping; no awareness.
                DeviceSet win;
                for (std::uint32_t k = 0; k < e.n; ++k)
                    win.push_back((seq_cursor + k) % num_devices);
                canonicalize(win);
                // Wrapping can collapse duplicates only if n >
                // num_devices, which validate() forbids.
                seq_cursor = (seq_cursor + e.n) % num_devices;
                windows.push_back(std::move(win));
            } else {
                for (std::size_t s = 0; s + e.n <= free.size(); ++s)
                    windows.emplace_back(free.begin() + s,
                                         free.begin() + s + e.n);
            }

            // Score each window: {primary, secondary} lexicographic.
            double best_primary = std::numeric_limits<double>::infinity();
            double best_secondary = best_primary;
            std::size_t best_w = windows.size();
            double best_comm = 0;
            for (std::size_t w = 0; w < windows.size(); ++w) {
                const DeviceSet &win = windows[w];

                // Memory feasibility and resulting peak fraction.
                bool feasible = true;
                double peak_frac = 0;
                for (DeviceId d : win) {
                    double add = act_share;
                    for (std::int64_t i = 0; i < e.numOps; ++i) {
                        const OperatorDesc &op =
                            graph.base().op(m.ops[e.opBegin + i]);
                        const std::int64_t key = paramDedupKey(op);
                        const double share = param_share(op, cfg);
                        auto it = state.params[d].find(key);
                        if (it == state.params[d].end())
                            add += share;
                        else if (share > it->second)
                            add += share - it->second;
                    }
                    const double total = state.deviceTotal(d) + add;
                    if (options_.strategy == PlacementStrategy::Spindle &&
                        total > capacity) {
                        feasible = false;
                        break;
                    }
                    peak_frac = std::max(
                        peak_frac, total / topo_.device().memoryBytes);
                }
                if (!feasible)
                    continue;

                // Inter-wave communication: first slices pull from
                // predecessor MetaOps, later slices from the own
                // MetaOp's previous slice.
                double comm = 0;
                if (e.opBegin == 0) {
                    for (const MetaEdge &edge : graph.edges()) {
                        if (edge.dst != e.metaOp)
                            continue;
                        auto it = state.lastSlice.find(edge.src);
                        if (it != state.lastSlice.end())
                            comm += coll.flowTime(edge.flowBytes,
                                                  it->second, win);
                    }
                } else {
                    auto it = state.lastSlice.find(e.metaOp);
                    if (it != state.lastSlice.end())
                        comm += coll.flowTime(m.activationBytes,
                                              it->second, win);
                }

                // Parameter affinity (§3.5): reward windows whose
                // devices already store this slice's parameter sets;
                // placing elsewhere would grow the corresponding
                // gradient-sync groups by roughly one ring pass of
                // the non-resident bytes.
                double non_resident_bytes = 0;
                for (std::int64_t i = 0; i < e.numOps; ++i) {
                    const OperatorDesc &op =
                        graph.base().op(m.ops[e.opBegin + i]);
                    if (op.paramBytes <= 0)
                        continue;
                    const std::int64_t key = paramDedupKey(op);
                    bool resident = false;
                    for (DeviceId d : win) {
                        if (state.params[d].count(key)) {
                            resident = true;
                            break;
                        }
                    }
                    if (!resident)
                        non_resident_bytes += op.paramBytes;
                }
                comm += options_.paramAffinityWeight * 2.0 *
                        non_resident_bytes /
                        topo_.config().interIslandCollective.bandwidth;

                // Intra-island preference: a TP group spanning
                // islands pays the real collective slowdown.
                if (cfg.tp > 1 && !topo_.withinOneIsland(win)) {
                    const double shard = m.activationBytes / cfg.dp;
                    const double slow = CollectiveModel::ringAllReduce(
                        shard, cfg.tp, topo_.config().interIsland);
                    const double fast = CollectiveModel::ringAllReduce(
                        shard, cfg.tp, topo_.config().intraIsland);
                    comm += 2.0 * static_cast<double>(e.numOps) *
                            (slow - fast);
                }

                const double mem_score =
                    options_.memoryWeight * peak_frac;
                double primary, secondary;
                if (memory_first) {
                    primary = peak_frac;
                    secondary = comm;
                } else {
                    primary = comm + mem_score;
                    secondary = peak_frac;
                }
                if (primary < best_primary ||
                    (primary == best_primary &&
                     secondary < best_secondary)) {
                    best_primary = primary;
                    best_secondary = secondary;
                    best_w = w;
                    best_comm = comm;
                }
            }
            if (best_w == windows.size())
                return false; // nothing fits: trigger fallback

            // Commit the chosen window.
            const DeviceSet &win = windows[best_w];
            for (DeviceId d : win) {
                state.activations[d] += act_share;
                for (std::int64_t i = 0; i < e.numOps; ++i) {
                    const OperatorDesc &op =
                        graph.base().op(m.ops[e.opBegin + i]);
                    const std::int64_t key = paramDedupKey(op);
                    const double share = param_share(op, cfg);
                    auto [it, inserted] =
                        state.params[d].emplace(key, share);
                    if (!inserted && share > it->second)
                        it->second = share;
                }
            }
            e.devices = win;
            state.lastSlice[e.metaOp] = win;
            result.estimatedCommSeconds += best_comm;
            if (options_.strategy != PlacementStrategy::Sequential) {
                DeviceSet remaining;
                std::set_difference(free.begin(), free.end(),
                                    win.begin(), win.end(),
                                    std::back_inserter(remaining));
                free = std::move(remaining);
            }
        }
    }

    result.peakBytes.assign(num_devices, 0.0);
    for (std::uint32_t d = 0; d < num_devices; ++d)
        result.peakBytes[d] = state.deviceTotal(d);
    return true;
}

} // namespace spindle
