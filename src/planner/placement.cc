#include "planner/placement.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"


namespace spindle {

namespace {

/** Dedup key for parameter storage: shared keys map to themselves,
 *  unshared operators get a unique negative key. */
std::int64_t
paramDedupKey(const OperatorDesc &op)
{
    if (op.paramKey != kNoParam)
        return op.paramKey;
    return -(static_cast<std::int64_t>(op.id) + 2);
}

/**
 * Parameter signature of one member operator of a slice: the dedup
 * key plus the per-device share and raw bytes the scoring loops
 * consume. Computed once per wave entry instead of re-deriving the
 * OperatorDesc and share inside every candidate window.
 */
struct SliceParam
{
    std::int64_t key = 0;
    double share = 0; ///< per-device param + optimizer share
    double bytes = 0; ///< raw parameter bytes (affinity scoring)
};

/** Number of link classes a (src set, device) pair can fall into. */
constexpr int kNumLinkClasses = 3;

/** Packed per-class prefix counters (BandState::inflowPref): each
 *  class owns a disjoint 21-bit field of one 64-bit word. */
constexpr unsigned kClsFieldBits = 21;
constexpr std::uint64_t kClsFieldMask = (std::uint64_t{1} << kClsFieldBits) - 1;
static_assert(kNumLinkClasses * kClsFieldBits <= 64,
              "packed class counters must fit one word");

/** Below this much estimated per-phase work (rough element-visit
 *  count) a parallel dispatch costs more than it saves; purely a
 *  performance threshold — both paths compute identical bytes. */
constexpr std::size_t kMinParallelWork = 1 << 12;

/** Smallest window-sweep chunk handed to a lane. */
constexpr std::size_t kMinSweepChunk = 128;

/**
 * Entry-wide per-inflow scoring context (uniform-fabric fast path):
 * the per-class flow times and, per free position, the fastest link
 * class the device has any pair with the source set in.
 */
struct InflowCtx
{
    double flowByClass[kNumLinkClasses] = {0, 0, 0};
    std::uint32_t srcSize = 0;
    std::vector<std::uint8_t> cls;               ///< per free pos
    std::vector<std::uint32_t> srcCountByIsland; ///< per island
    /** Per free pos: device is in the source set. Marked from the
     *  (small) source set, so the position pass needs no per-device
     *  binary search. */
    std::vector<char> inSrc;
    /** Class a device of this island resolves to, in / not in the
     *  source set. A device's class depends only on (island, inSrc),
     *  so the per-position work collapses to one table lookup. */
    std::vector<std::uint8_t> clsIn, clsOut;
};

/**
 * Per-band incremental scoring state: prefix counts that make every
 * length-n window of the band scoreable in O(1). Buffers only grow
 * (every element read this entry is written this entry), so bands
 * re-use capacity across entries without re-zeroing.
 */
struct BandState
{
    std::size_t ordinalBase = 0; ///< global ordinal of window w=0
    std::size_t numWindows = 0;  ///< B - n + 1, or 0 when B < n
    double minTotal = 0; ///< min candidate total along the band

    std::vector<std::uint32_t> chgPref; ///< island changes, size B
    /**
     * Sparse residency: per residency row, the ascending band
     * indices whose position holds the row's key (intersection of
     * the band with the row's holder-position list). The sweep
     * advances one pointer per row as the window slides — amortized
     * O(1) per window — and the pruning bound binary-searches a
     * chunk's whole range in one probe per row.
     */
    std::vector<std::vector<std::uint32_t>> resIdx;
    /**
     * Link-class counts, inflows x (B+1), the kNumLinkClasses
     * per-class counters packed into disjoint 21-bit fields of one
     * word (a band never exceeds 2^21 positions). One add per
     * position instead of kNumLinkClasses, and a window's class
     * presence is one subtraction — fields are individually
     * monotone, so the difference never borrows across them.
     */
    std::vector<std::uint64_t> inflowPref;
    /** Island-miss counts, inflows x (B+1); paired pricing only. */
    std::vector<std::uint32_t> missPref;
    std::vector<std::ptrdiff_t> eqWindow; ///< per inflow, -1 = none
};

/**
 * One scored candidate window. The placer's historical selection
 * rule — scan candidates in enumeration order, replace on strictly
 * better (primary, secondary) — equals a minimum under the
 * lexicographic order (primary, secondary, ordinal), which is what
 * makes the parallel sweep's merge deterministic and byte-identical
 * to the serial scan at any thread count.
 */
struct Candidate
{
    double primary = std::numeric_limits<double>::infinity();
    double secondary = std::numeric_limits<double>::infinity();
    double comm = 0;
    std::size_t ordinal = std::numeric_limits<std::size_t>::max();
    std::int32_t band = -1; ///< band index; -1 = explicit extra
    std::size_t start = 0;  ///< window start in band / extras index

    bool
    found() const
    {
        return ordinal != std::numeric_limits<std::size_t>::max();
    }
};

bool
betterThan(const Candidate &a, const Candidate &b)
{
    if (a.primary != b.primary)
        return a.primary < b.primary;
    if (a.secondary != b.secondary)
        return a.secondary < b.secondary;
    return a.ordinal < b.ordinal;
}

/** One chunk of the window sweep: a start range of one band, or
 *  (band < 0) a range of explicit extras. */
struct SweepTask
{
    std::int32_t band = -1;
    std::size_t lo = 0;
    std::size_t hi = 0;
};

/**
 * Shard-level inter-island attribution of one flow: the flow's bytes
 * land sharded across the destination devices, and a destination
 * device whose island holds no source device must receive its shard
 * over the inter-island fabric. Returns the fraction of destination
 * devices in that situation (0 when the flow is free). Deliberately
 * finer-grained than flowTime's best-pair pricing, which cannot see
 * the difference between an island-aligned window and one that
 * merely touches the source's island.
 */
double
interIslandShardFraction(const ClusterTopology &topo,
                         const DeviceSet &src, const DeviceSet &dst,
                         std::vector<char> &island_scratch)
{
    island_scratch.assign(topo.numIslands(), 0);
    for (DeviceId s : src)
        island_scratch[topo.islandOf(s)] = 1;
    std::size_t miss = 0;
    for (DeviceId d : dst)
        if (!island_scratch[topo.islandOf(d)])
            ++miss;
    return static_cast<double>(miss) / static_cast<double>(dst.size());
}

} // namespace

/**
 * Mutable state of one placement attempt.
 *
 * Per-device totals are cached: the former deviceTotal() walked the
 * whole parameter map on every candidate window of every entry
 * (quadratic in practice). The cache is refreshed lazily after a
 * commit dirties a device, by replaying the exact walk the uncached
 * code performed — cached reads are bit-identical, and each device
 * is re-walked at most once per committed entry instead of once per
 * candidate window. The parallel position pass touches distinct
 * devices on distinct lanes, so the lazy refresh stays race-free.
 */
struct DevicePlacement::Attempt
{
    /**
     * Per-device stored parameter state, deduplicated by key. The
     * map stays the owner: deviceTotal() walks it in bucket order,
     * and that accumulation order is pinned by the byte-identity
     * contract.
     */
    std::vector<std::unordered_map<std::int64_t, double>> params;

    /**
     * Sorted-by-key mirror of params, one vector per device, probed
     * by the candidate sweep with binary searches instead of map
     * lookups. The values are the exact doubles the map holds, so a
     * mirror probe feeds the scoring arithmetic the same bits a map
     * probe would. Re-derived per committed device (a device's
     * parameter set changes only when an entry commits to it).
     */
    std::vector<std::vector<std::pair<std::int64_t, double>>> flat;

    /**
     * Reverse index: parameter key -> devices holding it. Lists are
     * unsorted and append-only; a device is appended exactly once,
     * when the key first lands on it, so each list is exactly the
     * key's holder set. The sweep unions an entry's key lists into
     * the "affected" device set — the only devices whose candidate
     * total can differ from the shared all-miss base.
     */
    std::unordered_map<std::int64_t, std::vector<DeviceId>> holders;

    /** Per-device accumulated activation bytes. */
    std::vector<double> activations;

    /** Most recent device set of each MetaOp (last placed slice). */
    std::map<MetaOpId, DeviceSet> lastSlice;

    /** Lazily refreshed deviceTotal() cache (see class comment). */
    std::vector<double> total_cache;
    std::vector<char> total_dirty;

    /** Lazy-refresh bits for the flat mirror: commits just flag the
     *  device, and the next probe re-derives. Probes from the
     *  parallel position pass touch distinct devices on distinct
     *  lanes (like the deviceTotal cache), so the lazy refresh
     *  stays race-free. */
    std::vector<char> flat_dirty;

    void
    init(std::uint32_t num_devices)
    {
        params.assign(num_devices, {});
        flat.assign(num_devices, {});
        flat_dirty.assign(num_devices, 0);
        holders.clear();
        activations.assign(num_devices, 0.0);
        total_cache.assign(num_devices, 0.0);
        total_dirty.assign(num_devices, 1);
    }

    void
    markDirty(DeviceId d)
    {
        total_dirty[d] = 1;
        flat_dirty[d] = 1;
    }

    /** Re-derive flat[d] from params[d]. Sorting by key makes the
     *  mirror independent of the map's bucket order. */
    void
    refreshFlat(DeviceId d)
    {
        auto &fv = flat[d];
        fv.clear();
        fv.reserve(params[d].size());
        for (const auto &kv : params[d])
            fv.push_back(kv);
        std::sort(fv.begin(), fv.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        flat_dirty[d] = 0;
    }

    /**
     * Fold a committed slice into flat[d] incrementally: every key
     * of @p keys (sorted, deduplicated) takes its value from the
     * already-updated map — existing entries in place, new keys
     * appended (ascending, since @p keys ascend) and merged. O(K)
     * per device instead of refreshFlat's O(K log K) rebuild, which
     * matters because commits are the only steady-state writer.
     */
    void
    mergeFlat(DeviceId d, const std::vector<std::int64_t> &keys,
              const std::vector<double> &shares)
    {
        if (flat_dirty[d]) {
            refreshFlat(d); // map changed behind the mirror: rebuild
            return;
        }
        auto &fv = flat[d];
        const std::size_t old = fv.size();
        for (std::size_t i = 0; i < keys.size(); ++i) {
            const auto begin = fv.begin();
            const auto it = std::lower_bound(
                begin, begin + static_cast<std::ptrdiff_t>(old),
                keys[i], [](const auto &a, std::int64_t k) {
                    return a.first < k;
                });
            // The committed value is the strict-max fold of the
            // existing share (exact in the clean mirror) with the
            // slice's maximum share — no map lookup needed.
            if (it != begin + static_cast<std::ptrdiff_t>(old) &&
                it->first == keys[i]) {
                if (shares[i] > it->second)
                    it->second = shares[i];
            } else {
                fv.emplace_back(keys[i], shares[i]);
            }
        }
        // Slice keys usually all sort above the device's existing
        // keys (fresh parameters get fresh dedup keys), leaving the
        // append already in order — skip the merge (and its internal
        // temp buffer) then.
        if (fv.size() == old || old == 0 ||
            fv[old - 1].first < fv[old].first)
            return;
        std::inplace_merge(
            fv.begin(), fv.begin() + static_cast<std::ptrdiff_t>(old),
            fv.end(), [](const auto &a, const auto &b) {
                return a.first < b.first;
            });
    }

    /** Binary-search flat[d] for @p key; nullptr when absent.
     *  Refreshes a stale mirror first (see flat_dirty). */
    const double *
    findFlat(DeviceId d, std::int64_t key)
    {
        if (flat_dirty[d])
            refreshFlat(d);
        const auto &fv = flat[d];
        const auto it = std::lower_bound(
            fv.begin(), fv.end(), key,
            [](const auto &a, std::int64_t k) { return a.first < k; });
        if (it == fv.end() || it->first != key)
            return nullptr;
        return &it->second;
    }

    double
    deviceTotal(DeviceId d)
    {
        if (total_dirty[d]) {
            double total = activations[d];
            for (const auto &[key, bytes] : params[d])
                total += bytes;
            total_cache[d] = total;
            total_dirty[d] = 0;
        }
        return total_cache[d];
    }
};

DevicePlacement::DevicePlacement(const ClusterTopology &topo,
                                 const HardwareModel &hw,
                                 const MemoryModel &mem,
                                 PlacementOptions options,
                                 ThreadPool *pool)
    : topo_(topo), hw_(hw), mem_(mem), options_(options), pool_(pool)
{
}

const WindowGenerator &
DevicePlacement::generator() const
{
    if (options_.generator != nullptr)
        return *options_.generator;
    return builtinWindowGenerator(options_.windows);
}

PlacementResult
DevicePlacement::place(const MetaGraph &graph, ExecutionPlan &plan,
                       std::vector<PlacementCommit> *commit_log) const
{
    if (commit_log != nullptr)
        commit_log->clear();
    PlacementResult result;
    std::vector<CommitRecord> log;
    std::size_t fail_wave = 0;
    if (tryPlace(graph, plan, /*memory_first=*/false, result, 0, nullptr,
                 &log, &fail_wave)) {
        if (commit_log != nullptr)
            *commit_log = std::move(log);
        return result;
    }

    // Backtracking collapsed into a restart with memory balance as
    // the primary objective (§3.5 "alternative placements with
    // sub-optimal communication costs"). Preferred: resume from the
    // first infeasible wave, replaying the feasible prefix verbatim
    // instead of re-scoring it.
    if (options_.partialFallbackRestart && fail_wave > 0) {
        PlacementResult partial;
        partial.usedMemoryFallback = true;
        partial.fallbackRestartWave = fail_wave;
        if (tryPlace(graph, plan, /*memory_first=*/true, partial,
                     fail_wave, &log, nullptr, nullptr))
            return partial;
    }

    // Last resort: the historical full memory-first restart.
    result = {};
    result.usedMemoryFallback = true;
    fatalIf(!tryPlace(graph, plan, /*memory_first=*/true, result, 0,
                      nullptr, nullptr, nullptr),
            "DevicePlacement: workload does not fit device memory even "
            "with memory-first placement");
    return result;
}

PlacementResult
DevicePlacement::placeWithPrefix(
    const MetaGraph &graph, ExecutionPlan &plan, std::size_t resume_wave,
    const std::vector<PlacementCommit> &prefix,
    std::vector<PlacementCommit> *commit_log) const
{
    if (resume_wave == 0)
        return place(graph, plan, commit_log);
    if (commit_log != nullptr)
        commit_log->clear();

    // Comm-first from the replayed prefix. Replay recommits the
    // donor's exact per-device state, and wave scoring reads only
    // earlier commits plus graph data — never later waves — so this
    // pass commits bit for bit what a from-scratch comm-first pass
    // commits (the donor's prefix for waves < resume_wave *is* that
    // pass's prefix, since the leading levels are value-identical).
    PlacementResult result;
    std::vector<CommitRecord> fresh;
    std::size_t fail_wave = 0;
    if (tryPlace(graph, plan, /*memory_first=*/false, result, resume_wave,
                 &prefix, &fresh, &fail_wave)) {
        if (commit_log != nullptr) {
            *commit_log = prefix;
            commit_log->insert(commit_log->end(), fresh.begin(),
                               fresh.end());
        }
        return result;
    }

    // Mirror place()'s fallback cascade exactly. The combined log
    // below equals the log a from-scratch comm-first pass would have
    // handed the partial restart: prefix records first, then this
    // pass's fresh commits, in wave-major commit order.
    std::vector<CommitRecord> combined = prefix;
    combined.insert(combined.end(), fresh.begin(), fresh.end());
    if (options_.partialFallbackRestart && fail_wave > 0) {
        PlacementResult partial;
        partial.usedMemoryFallback = true;
        partial.fallbackRestartWave = fail_wave;
        if (tryPlace(graph, plan, /*memory_first=*/true, partial,
                     fail_wave, &combined, nullptr, nullptr))
            return partial;
    }

    result = {};
    result.usedMemoryFallback = true;
    fatalIf(!tryPlace(graph, plan, /*memory_first=*/true, result, 0,
                      nullptr, nullptr, nullptr),
            "DevicePlacement: workload does not fit device memory even "
            "with memory-first placement");
    return result;
}

bool
DevicePlacement::tryPlace(const MetaGraph &graph, ExecutionPlan &plan,
                          bool memory_first, PlacementResult &result,
                          std::size_t resume_wave,
                          const std::vector<CommitRecord> *replay,
                          std::vector<CommitRecord> *log,
                          std::size_t *fail_wave) const
{
    const std::uint32_t num_devices = plan.numDevices;
    const double capacity =
        topo_.device().memoryBytes * options_.memorySlack;
    const CollectiveModel &coll = hw_.collectives();
    const WindowGenerator &window_gen = generator();
    const bool use_pool = pool_ != nullptr && pool_->threads() > 1;

    Attempt state;
    state.init(num_devices);

    // Per-op parameter share charged to each device of a slice.
    auto param_share = [&](const OperatorDesc &op, ParallelConfig cfg) {
        const double shard =
            op.paramBytes / cfg.tp /
            (mem_.params().zeroShardParams ? cfg.dp : 1.0);
        const double opt =
            op.paramBytes / cfg.tp * mem_.params().optimizerFactor /
            (mem_.params().zeroShardOptimizer ? cfg.dp : 1.0);
        return shard + opt;
    };

    // Partial-restart replay: recommit the feasible prefix (device
    // choices and their logged comm) without re-scoring it. The
    // records replayed are exactly the commits the failed pass made
    // for waves before resume_wave, in commit order, so the attempt
    // state ends up bit-identical to that pass's state at the start
    // of the first infeasible wave.
    if (resume_wave > 0) {
        panicIf(replay == nullptr, "tryPlace: resume without replay log");
        for (const CommitRecord &rec : *replay) {
            if (rec.wave >= resume_wave)
                continue;
            WaveEntry &e = plan.waves[rec.wave].entries[rec.entry];
            const MetaOp &m = graph.metaOp(e.metaOp);
            const ParallelConfig cfg =
                hw_.bestConfig(memberDesc(m), e.n);
            const double act_share =
                mem_.activationBytesPerDevice(m, e.numOps, cfg);
            for (DeviceId d : e.devices) {
                state.activations[d] += act_share;
                for (std::int64_t i = 0; i < e.numOps; ++i) {
                    const OperatorDesc &op =
                        graph.base().op(m.ops[e.opBegin + i]);
                    const std::int64_t key = paramDedupKey(op);
                    const double share = param_share(op, cfg);
                    auto [it, inserted] =
                        state.params[d].emplace(key, share);
                    if (inserted)
                        state.holders[key].push_back(d);
                    else if (share > it->second)
                        it->second = share;
                }
                state.markDirty(d);
            }
            state.lastSlice[e.metaOp] = e.devices;
            result.estimatedCommSeconds += rec.comm;
            result.interIslandCommSeconds += rec.interIsland;
        }
    }

    // The three *default* link classes a (src set, candidate device)
    // pair can use. CollectiveModel::flowTime maximizes bandwidth
    // over all (src, dst) pairs, so the sweep must (a) track, per
    // candidate device, *every* class it has a pair in — a device
    // sharing an island with one source device still has
    // inter-island pairs to the others — and (b) probe classes in
    // bandwidth order, not class-index order (a config may rank its
    // fabrics differently from the defaults). Two classes configured
    // to the exact same bandwidth but different latency are resolved
    // by flowTime's lower-latency tiebreak, which class-level
    // bandwidth bookkeeping cannot reproduce; such (pathological)
    // configs — and any topology whose islands override the default
    // classes (uniformLinks() false), where three classes cannot
    // describe the fabric at all — drop to scoring every window with
    // the flow oracle directly, keeping the bit-identical contract
    // unconditional. The same class machinery serves the
    // pairing-aware oracle: the window's best class still sets the
    // base flow bound, and pairedFlowTime is that bound surcharged
    // by the window's island-miss fraction, which the per-position
    // island ids below count exactly.
    const LinkParams link_class[kNumLinkClasses] = {
        {topo_.device().copyBandwidth, 0.0}, // overlapping device
        topo_.config().intraIsland,          // same island
        topo_.config().interIsland,          // cross island
    };
    int class_by_bw[kNumLinkClasses] = {0, 1, 2};
    std::stable_sort(class_by_bw, class_by_bw + kNumLinkClasses,
                     [&](int a, int b) {
                         return link_class[a].bandwidth >
                                link_class[b].bandwidth;
                     });
    int rank_of_class[kNumLinkClasses];
    for (int r = 0; r < kNumLinkClasses; ++r)
        rank_of_class[class_by_bw[r]] = r;
    const bool tied_class_bandwidths =
        link_class[0].bandwidth == link_class[1].bandwidth ||
        link_class[0].bandwidth == link_class[2].bandwidth ||
        link_class[1].bandwidth == link_class[2].bandwidth;
    const bool exact_comm = tied_class_bandwidths || !topo_.uniformLinks();

    // Window flow oracle: the legacy best-pair bound, or the
    // pairing-aware per-destination-shard price behind the
    // PlacementOptions flag (see placement.h). Both the exact paths
    // and the class-level fast path below dispatch on this.
    const bool paired = options_.pairingAwareFlowPricing;
    auto flow_price = [&](double bytes, const DeviceSet &src,
                          const DeviceSet &dst) {
        return paired ? coll.pairedFlowTime(bytes, src, dst)
                      : coll.flowTime(bytes, src, dst);
    };

    std::uint32_t seq_cursor = 0; // Sequential strategy cursor

    // Scratch buffers reused across entries. All are only-grow: the
    // elements an entry reads are exactly the elements it wrote, so
    // stale capacity never leaks into scores.
    std::vector<double> cand_total;        // per free pos: total if placed
    std::vector<std::uint32_t> pos_island; // per free pos: island index
    std::vector<SliceParam> sig;           // slice param signature
    std::vector<std::int64_t> uniq_keys;   // distinct sig keys, sorted
    std::vector<double> uniq_vals;         // per uniq key: max sig share
    /** (key, max share) in first-occurrence sig order — the commit
     *  loop's working set. Multi-task slices repeat shared keys many
     *  times; committing each distinct key once with the strict-max
     *  share leaves the map byte-identical (same distinct-insertion
     *  sequence, so the same bucket layout deviceTotal() walks, and
     *  strict-max folding is order-independent selection). */
    std::vector<std::pair<std::int64_t, double>> commit_keys;
    std::vector<char> key_seen;            // per uniq key, per entry
    std::vector<std::int32_t> sig_row;     // sig index -> residency row
    std::vector<std::int64_t> row_key;     // residency row -> param key
    std::unordered_map<std::int64_t, std::int32_t> row_of;
    /** Per row: ascending free-list positions holding the key. */
    std::vector<std::vector<std::uint32_t>> row_pos;
    std::vector<InflowCtx> inflow_ctx;     // per-inflow fast-path state
    std::vector<BandState> band_states;    // per-band prefix state
    CandidateWindows cand_windows;         // generator output
    std::vector<SweepTask> sweep_tasks;
    DeviceSet win_buf; // serial-sweep window scratch (exact-comm path)
    /** Free-list positions of the winning window (empty on the
     *  Sequential path), kept for the attribution fast path below. */
    std::vector<std::uint32_t> win_positions;
    std::vector<std::size_t> deque_scratch; // serial-sweep deque
    std::vector<std::size_t> rowptr_scratch; // serial residency ptrs
    std::vector<char> rownonres_scratch;     // serial residency flags
    std::vector<char> island_scratch; // inter-island attribution

    // Affected-device epoch stamps: device d holds at least one of
    // the current entry's keys iff affected_epoch[d] == entry_epoch.
    // Stamping instead of clearing keeps the per-entry cost at the
    // size of the holder lists, not the device count.
    std::vector<std::uint64_t> affected_epoch(num_devices, 0);
    std::uint64_t entry_epoch = 0;

    // Free-list position of each device this entry (valid iff
    // pos_epoch[d] == entry_epoch — the stamp doubles as the
    // free-membership test), filled by the position pass. Turns the
    // holder-list -> row-position intersection into O(1) lookups.
    std::vector<std::uint32_t> pos_of(num_devices, 0);
    std::vector<std::uint64_t> pos_epoch(num_devices, 0);

    // Best primary score committed so far in the current entry's
    // sweep, shared across lanes for admissible pruning. Relaxed is
    // enough: a stale read only prunes less, and pruning decisions
    // never change the winner (see placement.h).
    const bool prune = options_.bandPruning;
    std::atomic<double> prune_bound{
        std::numeric_limits<double>::infinity()};

    for (std::size_t wi = resume_wave; wi < plan.waves.size(); ++wi) {
        Wave &wave = plan.waves[wi];
        DeviceSet free = topo_.allDevices();
        free.resize(std::min<std::size_t>(free.size(), num_devices));

        // Entry placement order: highest communication volume first
        // (or largest memory first in the fallback pass). Sort keys
        // are precomputed; the former comparator re-derived them on
        // every comparison (including a bestConfig search per probe
        // in the fallback pass).
        std::vector<std::size_t> order(wave.entries.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        if (options_.strategy == PlacementStrategy::Spindle) {
            std::vector<double> sort_key(wave.entries.size());
            for (std::size_t i = 0; i < wave.entries.size(); ++i) {
                const WaveEntry &e = wave.entries[i];
                const MetaOp &m = graph.metaOp(e.metaOp);
                if (memory_first) {
                    ParallelConfig cfg =
                        hw_.bestConfig(memberDesc(m), e.n);
                    sort_key[i] =
                        mem_.sliceBytesPerDevice(m, e.numOps, cfg);
                } else {
                    double vol = m.activationBytes; // outflow / chain
                    if (e.opBegin == 0) {
                        for (const MetaEdge &edge : graph.edges())
                            if (edge.dst == e.metaOp)
                                vol += edge.flowBytes;
                    }
                    sort_key[i] = vol;
                }
            }
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          if (sort_key[a] != sort_key[b])
                              return sort_key[a] > sort_key[b];
                          return a < b;
                      });
        }

        for (std::size_t idx : order) {
            WaveEntry &e = wave.entries[idx];
            const MetaOp &m = graph.metaOp(e.metaOp);
            const ParallelConfig cfg = hw_.bestConfig(memberDesc(m), e.n);
            const double act_share =
                mem_.activationBytesPerDevice(m, e.numOps, cfg);

            panicIf(free.size() < e.n,
                    "tryPlace: scheduler exceeded wave capacity");

            // Slice parameter signature, computed once per entry.
            sig.clear();
            sig.reserve(static_cast<std::size_t>(e.numOps));
            for (std::int64_t i = 0; i < e.numOps; ++i) {
                const OperatorDesc &op =
                    graph.base().op(m.ops[e.opBegin + i]);
                sig.push_back({paramDedupKey(op), param_share(op, cfg),
                               op.paramBytes});
            }

            // Distinct keys of the slice (affected-set derivation
            // and reverse-index upkeep at commit). Zero-byte keys
            // are included on purpose: they still sit in the device
            // maps, so a device holding one is "affected" — its
            // probe loop takes the hit branch.
            uniq_keys.clear();
            for (const SliceParam &sp : sig)
                uniq_keys.push_back(sp.key);
            std::sort(uniq_keys.begin(), uniq_keys.end());
            uniq_keys.erase(
                std::unique(uniq_keys.begin(), uniq_keys.end()),
                uniq_keys.end());
            // Max share per distinct key (the value a device that
            // held nothing ends up storing — mergeFlat strict-max
            // folds it into the mirror at commit) and the distinct
            // keys in first-occurrence order (the commit loop's
            // working set, see commit_keys).
            uniq_vals.assign(uniq_keys.size(),
                             -std::numeric_limits<double>::infinity());
            key_seen.assign(uniq_keys.size(), 0);
            commit_keys.clear();
            for (const SliceParam &sp : sig) {
                const std::size_t i = static_cast<std::size_t>(
                    std::lower_bound(uniq_keys.begin(),
                                     uniq_keys.end(), sp.key) -
                    uniq_keys.begin());
                if (sp.share > uniq_vals[i])
                    uniq_vals[i] = sp.share;
                if (!key_seen[i]) {
                    key_seen[i] = 1;
                    commit_keys.emplace_back(sp.key, 0.0);
                }
            }
            // Resolve the shares once every occurrence is folded.
            for (auto &kv : commit_keys)
                kv.second = uniq_vals[static_cast<std::size_t>(
                    std::lower_bound(uniq_keys.begin(),
                                     uniq_keys.end(), kv.first) -
                    uniq_keys.begin())];

            // Inter-wave data sources feeding this entry, in the
            // edge order the score accumulates them: first slices
            // pull from predecessor MetaOps, later slices from the
            // own MetaOp's previous slice.
            std::vector<std::pair<double, const DeviceSet *>> inflows;
            if (e.opBegin == 0) {
                for (const MetaEdge &edge : graph.edges()) {
                    if (edge.dst != e.metaOp)
                        continue;
                    auto it = state.lastSlice.find(edge.src);
                    if (it != state.lastSlice.end())
                        inflows.emplace_back(edge.flowBytes,
                                             &it->second);
                }
            } else {
                auto it = state.lastSlice.find(e.metaOp);
                if (it != state.lastSlice.end())
                    inflows.emplace_back(m.activationBytes,
                                         &it->second);
            }

            // Intra-island preference: a TP group spanning islands
            // pays the real collective slowdown. Window-independent,
            // hoisted out of the scoring loop. Charged at the
            // *default* link classes (the same reference the paper's
            // heuristic uses) even on non-uniform fabrics.
            double island_penalty = 0;
            if (cfg.tp > 1) {
                const double shard = m.activationBytes / cfg.dp;
                const double slow = CollectiveModel::ringAllReduce(
                    shard, cfg.tp, topo_.config().interIsland);
                const double fast = CollectiveModel::ringAllReduce(
                    shard, cfg.tp, topo_.config().intraIsland);
                island_penalty = 2.0 * static_cast<double>(e.numOps) *
                                 (slow - fast);
            }

            double best_comm = 0;
            DeviceSet best_win;

            if (options_.strategy == PlacementStrategy::Sequential) {
                // Next consecutive device ids, wrapping; no
                // awareness, and — by design — no dependence on the
                // island structure, so the baseline keeps its
                // semantics under any renumbering of the cluster.
                DeviceSet win;
                for (std::uint32_t k = 0; k < e.n; ++k)
                    win.push_back((seq_cursor + k) % num_devices);
                canonicalize(win);
                // Wrapping can collapse duplicates only if n >
                // num_devices, which validate() forbids.
                seq_cursor = (seq_cursor + e.n) % num_devices;

                // Single candidate: score it directly (the memory
                // capacity check never rejects in this ablation).
                double peak_frac = 0;
                for (DeviceId d : win) {
                    double add = act_share;
                    for (const SliceParam &sp : sig) {
                        auto it = state.params[d].find(sp.key);
                        if (it == state.params[d].end())
                            add += sp.share;
                        else if (sp.share > it->second)
                            add += sp.share - it->second;
                    }
                    const double total = state.deviceTotal(d) + add;
                    peak_frac = std::max(
                        peak_frac, total / topo_.device().memoryBytes);
                }
                double comm = 0;
                for (const auto &[bytes, src] : inflows)
                    comm += flow_price(bytes, *src, win);
                double non_resident_bytes = 0;
                for (const SliceParam &sp : sig) {
                    if (sp.bytes <= 0)
                        continue;
                    bool resident = false;
                    for (DeviceId d : win) {
                        if (state.params[d].count(sp.key)) {
                            resident = true;
                            break;
                        }
                    }
                    if (!resident)
                        non_resident_bytes += sp.bytes;
                }
                comm += options_.paramAffinityWeight * 2.0 *
                        non_resident_bytes /
                        topo_.config().interIslandCollective.bandwidth;
                if (cfg.tp > 1 && !topo_.withinOneIsland(win))
                    comm += island_penalty;
                best_comm = comm;
                best_win = std::move(win);
            } else {
                // Candidate windows come from the configured
                // generator: bands (every length-n contiguous
                // subsequence of an ordered position sequence) and
                // explicit extras. All window scores derive from
                // per-device quantities computed once per entry; the
                // band sweeps combine them with prefix/extremum
                // queries that reproduce a full rescan bit for bit.
                // The sweep itself is a (possibly parallel) reduction
                // over candidate ordinals — see struct Candidate.
                const std::size_t F = free.size();
                const std::uint32_t n = e.n;

                window_gen.generate({topo_, free, n}, cand_windows);

                // ---- Phase A setup: entry-wide per-inflow context
                // (uniform-fabric fast path) and residency rows.
                inflow_ctx.resize(inflows.size());
                if (!exact_comm) {
                    for (std::size_t k = 0; k < inflows.size(); ++k) {
                        const auto &[bytes, src_ptr] = inflows[k];
                        const DeviceSet &src = *src_ptr;
                        InflowCtx &ctx = inflow_ctx[k];

                        // The whole flow over the best pair, sharded
                        // across min(|src|, n) streams — both
                        // pricing modes: the pairing-aware oracle is
                        // this bound scaled by its window's
                        // island-miss fraction (see pairedFlowTime).
                        const double streams =
                            static_cast<double>(std::min<std::size_t>(
                                src.size(), n));
                        for (int c = 0; c < kNumLinkClasses; ++c)
                            ctx.flowByClass[c] =
                                bytes / streams /
                                    link_class[c].bandwidth +
                                link_class[c].latency;
                        ctx.srcSize =
                            static_cast<std::uint32_t>(src.size());
                        ctx.srcCountByIsland.assign(topo_.numIslands(),
                                                    0);
                        for (DeviceId s : src)
                            ++ctx.srcCountByIsland[topo_.islandOf(s)];
                        if (ctx.cls.size() < F)
                            ctx.cls.resize(F);

                        // A device's class is the fastest one it has
                        // any pair in: copy needs the device itself
                        // in src, intra another src device in its
                        // island, inter a src device in a different
                        // island. That depends only on (island,
                        // in-src), so resolve it here per island —
                        // probing classes in bandwidth order, as the
                        // per-position loop used to — and mark the
                        // in-src positions from the source set.
                        const std::size_t num_isl = topo_.numIslands();
                        ctx.clsIn.resize(num_isl);
                        ctx.clsOut.resize(num_isl);
                        for (std::size_t isl = 0; isl < num_isl;
                             ++isl) {
                            const std::uint32_t cnt =
                                ctx.srcCountByIsland[isl];
                            const bool avail_in[kNumLinkClasses] = {
                                true, cnt > 1, ctx.srcSize > cnt};
                            const bool avail_out[kNumLinkClasses] = {
                                false, cnt > 0, ctx.srcSize > cnt};
                            auto pick = [&](const bool *avail) {
                                int cls =
                                    class_by_bw[kNumLinkClasses - 1];
                                for (int r = 0; r < kNumLinkClasses;
                                     ++r) {
                                    if (avail[class_by_bw[r]]) {
                                        cls = class_by_bw[r];
                                        break;
                                    }
                                }
                                return static_cast<std::uint8_t>(cls);
                            };
                            ctx.clsIn[isl] = pick(avail_in);
                            ctx.clsOut[isl] = pick(avail_out);
                        }
                        ctx.inSrc.assign(F, 0);
                        for (DeviceId s : src) {
                            const auto fit = std::lower_bound(
                                free.begin(), free.end(), s);
                            if (fit != free.end() && *fit == s)
                                ctx.inSrc[static_cast<std::size_t>(
                                    fit - free.begin())] = 1;
                        }
                    }
                }

                // Residency rows: one per distinct parameter key
                // carried by the slice (affinity scoring).
                sig_row.assign(sig.size(), -1);
                row_of.clear();
                row_key.clear();
                for (std::size_t i = 0; i < sig.size(); ++i) {
                    if (sig[i].bytes <= 0)
                        continue;
                    auto [it, inserted] = row_of.emplace(
                        sig[i].key,
                        static_cast<std::int32_t>(row_key.size()));
                    if (inserted)
                        row_key.push_back(sig[i].key);
                    sig_row[i] = it->second;
                }
                const std::size_t rows = row_key.size();
                if (cand_total.size() < F) {
                    cand_total.resize(F);
                    pos_island.resize(F);
                }

                // The would-be per-device load splits into one
                // shared all-miss base and sparse overrides: a
                // device holding none of the slice's keys misses
                // every probe, so its delta is act_share plus every
                // share — accumulated here once, in the exact order
                // the probe loop performs, so the base is
                // bit-identical to the probes it replaces. Only the
                // *affected* devices (union of the keys' holder
                // lists) can deviate and take the probe loop.
                double sig_base = act_share;
                for (const SliceParam &sp : sig)
                    sig_base += sp.share;
                ++entry_epoch;
                for (std::int64_t key : uniq_keys) {
                    const auto hit = state.holders.find(key);
                    if (hit == state.holders.end())
                        continue;
                    for (DeviceId d : hit->second)
                        affected_epoch[d] = entry_epoch;
                }

                // ---- Phase A: per free position, the device's
                // would-be total, island, and link class per inflow.
                // Positions are independent (each lane touches its
                // own device's lazy total), so this is the entry's
                // first parallel region.
                auto compute_position = [&](std::size_t pos) {
                    const DeviceId d = free[pos];
                    pos_of[d] = static_cast<std::uint32_t>(pos);
                    pos_epoch[d] = entry_epoch;
                    double add;
                    if (affected_epoch[d] != entry_epoch) {
                        add = sig_base;
                    } else {
                        add = act_share;
                        for (const SliceParam &sp : sig) {
                            const double *held =
                                state.findFlat(d, sp.key);
                            if (held == nullptr)
                                add += sp.share;
                            else if (sp.share > *held)
                                add += sp.share - *held;
                        }
                    }
                    cand_total[pos] = state.deviceTotal(d) + add;
                    const std::uint32_t isl = topo_.islandOf(d);
                    pos_island[pos] = isl;

                    if (!exact_comm) {
                        // Class tables are precomputed per island
                        // (see the inflow setup above): one lookup
                        // per inflow.
                        for (std::size_t k = 0; k < inflows.size();
                             ++k) {
                            InflowCtx &ctx = inflow_ctx[k];
                            ctx.cls[pos] = ctx.inSrc[pos]
                                               ? ctx.clsIn[isl]
                                               : ctx.clsOut[isl];
                        }
                    }
                };
                const std::size_t pos_work =
                    F * (inflows.size() + 2);
                maybeParallelFor(pool_,
                                 pos_work >= kMinParallelWork, 0, F,
                                 16, compute_position);

                // Sparse residency: per row, the ascending free-list
                // positions whose device already holds the row's key
                // — exactly the still-free holders, so the lists
                // stay tiny relative to F and bands intersect them
                // instead of scanning a rows x F flag matrix.
                if (row_pos.size() < rows)
                    row_pos.resize(rows);
                for (std::size_t r = 0; r < rows; ++r) {
                    row_pos[r].clear();
                    const auto hit = state.holders.find(row_key[r]);
                    if (hit == state.holders.end())
                        continue;
                    for (DeviceId d : hit->second)
                        if (pos_epoch[d] == entry_epoch)
                            row_pos[r].push_back(pos_of[d]);
                    std::sort(row_pos[r].begin(), row_pos[r].end());
                }

                // ---- Phase B: per-band prefix state. Sizing and
                // ordinal bases are serial (cheap, and resizes must
                // not race); the fills are independent per band and
                // per residency row.
                const std::size_t num_bands = cand_windows.bands.size();
                if (band_states.size() < num_bands)
                    band_states.resize(num_bands);
                std::size_t ordinal = 0;
                std::size_t band_positions = 0;
                for (std::size_t b = 0; b < num_bands; ++b) {
                    BandState &bs = band_states[b];
                    const std::size_t B = cand_windows.bands[b].size();
                    bs.ordinalBase = ordinal;
                    bs.numWindows = B >= n ? B - n + 1 : 0;
                    ordinal += bs.numWindows;
                    if (bs.numWindows == 0)
                        continue;
                    band_positions += B;
                    if (cfg.tp > 1 && bs.chgPref.size() < B)
                        bs.chgPref.resize(B);
                    if (bs.resIdx.size() < rows)
                        bs.resIdx.resize(rows);
                    if (!exact_comm) {
                        const std::size_t need =
                            inflows.size() * (B + 1);
                        if (bs.inflowPref.size() < need)
                            bs.inflowPref.resize(need);
                        if (paired) {
                            const std::size_t mneed =
                                inflows.size() * (B + 1);
                            if (bs.missPref.size() < mneed)
                                bs.missPref.resize(mneed);
                        }
                        bs.eqWindow.assign(inflows.size(), -1);
                    }
                }
                const std::size_t extras_base = ordinal;
                const std::size_t total_candidates =
                    ordinal + cand_windows.extras.size();

                // Shared per-band state: island-change prefix,
                // link-class prefixes, and the band window equal to
                // a source set (zero-cost transfer).
                auto build_band_shared = [&](std::size_t b) {
                    BandState &bs = band_states[b];
                    if (bs.numWindows == 0)
                        return;
                    const auto &band = cand_windows.bands[b];
                    const std::size_t B = band.size();
                    // Bands ascend (generator contract), so first
                    // position 0 and last B-1 force the identity
                    // permutation — the common ContiguousRuns case,
                    // where dropping the band[i] indirection lets
                    // the fills below vectorize.
                    const bool ident =
                        band[0] == 0 &&
                        band[B - 1] == static_cast<std::uint32_t>(
                                           B - 1);
                    const auto at = [&](std::size_t i) {
                        return ident ? static_cast<std::uint32_t>(i)
                                     : band[i];
                    };

                    // Island-change prefix: a window holds within
                    // one island iff no adjacent pair inside it
                    // changes islands (exact under any numbering).
                    // Only the TP island penalty reads it, so it is
                    // built only when cfg.tp > 1. The minimum load
                    // along the band always is: it is the admissible
                    // bound for the memory term (every window's
                    // maximum is >= the band-wide minimum) and the
                    // whole-band capacity skip.
                    if (cfg.tp > 1) {
                        bs.chgPref[0] = 0;
                        for (std::size_t i = 1; i < B; ++i)
                            bs.chgPref[i] =
                                bs.chgPref[i - 1] +
                                (pos_island[at(i)] !=
                                         pos_island[at(i - 1)]
                                     ? 1u
                                     : 0u);
                    }
                    double mn;
                    if (ident) {
                        mn = cand_total[0];
                        for (std::size_t i = 1; i < B; ++i)
                            mn = std::min(mn, cand_total[i]);
                    } else {
                        mn = cand_total[band[0]];
                        for (std::size_t i = 1; i < B; ++i)
                            mn = std::min(mn, cand_total[band[i]]);
                    }
                    bs.minTotal = mn;

                    if (exact_comm)
                        return;
                    const std::size_t stride = B + 1;
                    for (std::size_t k = 0; k < inflows.size(); ++k) {
                        std::uint64_t *pref =
                            bs.inflowPref.data() + k * stride;
                        const InflowCtx &ctx = inflow_ctx[k];
                        pref[0] = 0;
                        if (ident) {
                            for (std::size_t i = 0; i < B; ++i)
                                pref[i + 1] =
                                    pref[i] +
                                    (std::uint64_t{1}
                                     << (kClsFieldBits * ctx.cls[i]));
                        } else {
                            for (std::size_t i = 0; i < B; ++i)
                                pref[i + 1] =
                                    pref[i] +
                                    (std::uint64_t{1}
                                     << (kClsFieldBits *
                                         ctx.cls[band[i]]));
                        }
                        if (paired) {
                            // Island-miss prefix: positions whose
                            // island holds no source device (the
                            // pairing-aware surcharge counts them).
                            std::uint32_t *mpref =
                                bs.missPref.data() + k * stride;
                            mpref[0] = 0;
                            for (std::size_t i = 0; i < B; ++i)
                                mpref[i + 1] =
                                    mpref[i] +
                                    (ctx.srcCountByIsland
                                             [pos_island[at(i)]] == 0
                                         ? 1u
                                         : 0u);
                        }

                        const DeviceSet &src = *inflows[k].second;
                        if (src.size() == n) {
                            // Devices ascend along a band, so
                            // binary-search the band for the
                            // source's first device.
                            std::size_t lo = 0, hi = B;
                            while (lo < hi) {
                                const std::size_t mid = (lo + hi) / 2;
                                if (free[band[mid]] < src.front())
                                    lo = mid + 1;
                                else
                                    hi = mid;
                            }
                            if (lo + n <= B) {
                                bool equal = true;
                                for (std::uint32_t i = 0; i < n; ++i) {
                                    if (free[band[lo + i]] != src[i]) {
                                        equal = false;
                                        break;
                                    }
                                }
                                if (equal)
                                    bs.eqWindow[k] = static_cast<
                                        std::ptrdiff_t>(lo);
                            }
                        }
                    }
                };
                // Resident band indices of one row along one band:
                // intersect the band (ascending positions, per the
                // generator contract) with the row's holder-position
                // list. O(holders · log B) instead of O(B).
                auto build_band_row = [&](std::size_t b,
                                          std::size_t row) {
                    BandState &bs = band_states[b];
                    if (bs.numWindows == 0)
                        return;
                    const auto &band = cand_windows.bands[b];
                    std::vector<std::uint32_t> &out = bs.resIdx[row];
                    out.clear();
                    for (std::uint32_t p : row_pos[row]) {
                        const auto it = std::lower_bound(
                            band.begin(), band.end(), p);
                        if (it != band.end() && *it == p)
                            out.push_back(static_cast<std::uint32_t>(
                                it - band.begin()));
                    }
                };
                const std::size_t units_per_band = 1 + rows;
                const std::size_t num_units =
                    num_bands * units_per_band;
                auto build_unit = [&](std::size_t u) {
                    const std::size_t b = u / units_per_band;
                    const std::size_t sub = u % units_per_band;
                    if (sub == 0)
                        build_band_shared(b);
                    else
                        build_band_row(b, sub - 1);
                };
                const std::size_t band_work =
                    band_positions *
                    (2 + kNumLinkClasses * inflows.size());
                maybeParallelFor(pool_,
                                 band_work >= kMinParallelWork, 0,
                                 num_units, 1, build_unit);

                // ---- Phase C: the window sweep, a reduction over
                // the candidate ordinals. consider() mirrors the
                // historical replace-on-strictly-better scan (see
                // struct Candidate), and publishes improved
                // primaries into the shared pruning bound.
                prune_bound.store(
                    std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
                auto consider = [&](Candidate &best, double max_total,
                                    double comm, std::size_t ord,
                                    std::int32_t band,
                                    std::size_t start) {
                    const double peak_frac =
                        max_total / topo_.device().memoryBytes;
                    const double mem_score =
                        options_.memoryWeight * peak_frac;
                    double primary, secondary;
                    if (memory_first) {
                        primary = peak_frac;
                        secondary = comm;
                    } else {
                        primary = comm + mem_score;
                        secondary = peak_frac;
                    }
                    if (primary < best.primary ||
                        (primary == best.primary &&
                         (secondary < best.secondary ||
                          (secondary == best.secondary &&
                           ord < best.ordinal)))) {
                        best.primary = primary;
                        best.secondary = secondary;
                        best.comm = comm;
                        best.ordinal = ord;
                        best.band = band;
                        best.start = start;
                        if (prune) {
                            double cur = prune_bound.load(
                                std::memory_order_relaxed);
                            while (primary < cur &&
                                   !prune_bound
                                        .compare_exchange_weak(
                                            cur, primary,
                                            std::memory_order_relaxed))
                                ;
                        }
                    }
                };

                // Score band windows with start in [w_lo, w_hi). The
                // memory extremum uses a monotonic deque (sliding-
                // window maximum over the per-device candidate
                // totals along the band); a chunk warms its own
                // deque over the n-1 positions before its first
                // window, so the maximum — a selection, not an
                // accumulation — is bit-identical to the full scan.
                //
                // Before scoring, the chunk may be pruned: the lower
                // bound below is exact (each term <= its counterpart
                // in every window's score, accumulated in the same
                // structural order, so rounded addition keeps the
                // bound <= every primary), and a chunk is skipped
                // only when the bound is *strictly* above an
                // already-scored primary — such a chunk cannot
                // contain the winner even via the (secondary,
                // ordinal) tie-break, which only arbitrates equal
                // primaries. See placement.h.
                auto score_band_range =
                    [&](std::size_t b, std::size_t w_lo,
                        std::size_t w_hi, Candidate &best,
                        DeviceSet &win_scratch,
                        std::vector<std::size_t> &dq,
                        std::vector<std::size_t> &row_ptr,
                        std::vector<char> &row_nonres) {
                        const auto &band = cand_windows.bands[b];
                        const BandState &bs = band_states[b];
                        const std::size_t B = band.size();
                        const std::size_t stride = B + 1;

                        if (prune && bs.minTotal > capacity)
                            return; // every window fails capacity

                        if (prune) {
                            // Chunk windows cover band positions
                            // [w_lo, w_hi + n - 1).
                            const std::size_t r_end = w_hi + n - 1;
                            double lb = 0;
                            if (memory_first) {
                                lb = bs.minTotal /
                                     topo_.device().memoryBytes;
                            } else {
                                if (!exact_comm) {
                                    for (std::size_t k = 0;
                                         k < inflows.size(); ++k) {
                                        if (inflows[k].first <= 0)
                                            continue;
                                        const std::ptrdiff_t eq =
                                            bs.eqWindow[k];
                                        if (eq >= static_cast<
                                                      std::ptrdiff_t>(
                                                      w_lo) &&
                                            eq < static_cast<
                                                     std::ptrdiff_t>(
                                                     w_hi))
                                            continue; // one pays 0
                                        // Cheapest class present
                                        // anywhere in the range: a
                                        // window's class is present
                                        // in it, hence in the range,
                                        // hence covered by this min
                                        // (classes can invert the
                                        // bandwidth order via
                                        // latency, so min over
                                        // values, not first by
                                        // rank).
                                        const std::uint64_t *pref =
                                            bs.inflowPref.data() +
                                            k * stride;
                                        const std::uint64_t diff =
                                            pref[r_end] - pref[w_lo];
                                        double t = std::numeric_limits<
                                            double>::infinity();
                                        for (int c = 0;
                                             c < kNumLinkClasses;
                                             ++c) {
                                            if ((diff >>
                                                 (kClsFieldBits *
                                                  static_cast<
                                                      unsigned>(c))) &
                                                kClsFieldMask)
                                                t = std::min(
                                                    t,
                                                    inflow_ctx[k]
                                                        .flowByClass
                                                            [c]);
                                        }
                                        lb += t;
                                    }
                                }
                                // Rows with no resident position in
                                // the whole range are non-resident
                                // in every window; their bytes are a
                                // floor on the affinity term.
                                double nrb = 0;
                                if (rows > 0) {
                                    row_nonres.resize(rows);
                                    for (std::size_t r = 0; r < rows;
                                         ++r) {
                                        const auto &idx =
                                            bs.resIdx[r];
                                        const auto it =
                                            std::lower_bound(
                                                idx.begin(),
                                                idx.end(),
                                                static_cast<
                                                    std::uint32_t>(
                                                    w_lo));
                                        row_nonres[r] =
                                            (it == idx.end() ||
                                             *it >= r_end)
                                                ? 1
                                                : 0;
                                    }
                                    for (std::size_t s = 0;
                                         s < sig.size(); ++s) {
                                        const std::int32_t row =
                                            sig_row[s];
                                        if (row >= 0 &&
                                            row_nonres[static_cast<
                                                std::size_t>(row)])
                                            nrb += sig[s].bytes;
                                    }
                                }
                                lb += options_.paramAffinityWeight *
                                      2.0 * nrb /
                                      topo_.config()
                                          .interIslandCollective
                                          .bandwidth;
                                if (cfg.tp > 1)
                                    lb += std::min(0.0,
                                                   island_penalty);
                                lb += options_.memoryWeight *
                                      (bs.minTotal /
                                       topo_.device().memoryBytes);
                            }
                            if (lb > prune_bound.load(
                                         std::memory_order_relaxed))
                                return;
                        }

                        // Per-row sweep pointers: first resident
                        // band index >= w_lo; advanced as the window
                        // slides (amortized O(1) per window).
                        row_ptr.resize(rows);
                        row_nonres.resize(rows);
                        for (std::size_t r = 0; r < rows; ++r) {
                            const auto &idx = bs.resIdx[r];
                            row_ptr[r] = static_cast<std::size_t>(
                                std::lower_bound(
                                    idx.begin(), idx.end(),
                                    static_cast<std::uint32_t>(
                                        w_lo)) -
                                idx.begin());
                        }

                        dq.clear();
                        std::size_t head = 0;
                        const std::size_t i_end = w_hi + n - 1;
                        for (std::size_t i = w_lo; i < i_end; ++i) {
                            while (dq.size() > head &&
                                   cand_total[band[dq.back()]] <=
                                       cand_total[band[i]])
                                dq.pop_back();
                            dq.push_back(i);
                            if (i + 1 < w_lo + n)
                                continue; // window not yet full
                            const std::size_t w = i + 1 - n;
                            if (dq[head] < w)
                                ++head;
                            const double max_total =
                                cand_total[band[dq[head]]];

                            // Memory feasibility. Division by a
                            // positive constant is monotone, so
                            // dividing the window maximum equals the
                            // former per-device quotient maximum.
                            if (max_total > capacity)
                                continue;

                            // Inter-wave communication, accumulated
                            // in the same source order as always.
                            double comm = 0;
                            if (exact_comm && !inflows.empty()) {
                                // Exact fallback (see link_class
                                // comment).
                                win_scratch.resize(n);
                                for (std::uint32_t j = 0; j < n; ++j)
                                    win_scratch[j] =
                                        free[band[w + j]];
                                for (const auto &[bytes, src] :
                                     inflows)
                                    comm += flow_price(
                                        bytes, *src, win_scratch);
                            } else {
                                for (std::size_t k = 0;
                                     k < inflows.size(); ++k) {
                                    if (static_cast<std::ptrdiff_t>(
                                            w) == bs.eqWindow[k])
                                        continue; // data resident
                                    if (inflows[k].first <= 0)
                                        continue;
                                    const std::uint64_t *pref =
                                        bs.inflowPref.data() +
                                        k * stride;
                                    const std::uint64_t diff =
                                        pref[w + n] - pref[w];
                                    // Fastest link class present in
                                    // the window (classes partition
                                    // the devices, so the probe
                                    // always finds one).
                                    int cls = class_by_bw
                                        [kNumLinkClasses - 1];
                                    for (int r = 0;
                                         r < kNumLinkClasses; ++r) {
                                        const int c = class_by_bw[r];
                                        if ((diff >>
                                             (kClsFieldBits *
                                              static_cast<unsigned>(
                                                  c))) &
                                            kClsFieldMask) {
                                            cls = c;
                                            break;
                                        }
                                    }
                                    const double t =
                                        inflow_ctx[k].flowByClass[cls];
                                    if (paired) {
                                        // Pairing-aware surcharge:
                                        // the flow pays its cost
                                        // again for the fraction of
                                        // window members in islands
                                        // holding no source (see
                                        // pairedFlowTime).
                                        const std::uint32_t *mpref =
                                            bs.missPref.data() +
                                            k * stride;
                                        const std::uint32_t miss =
                                            mpref[w + n] - mpref[w];
                                        comm +=
                                            t *
                                            (1.0 +
                                             static_cast<double>(
                                                 miss) /
                                                 static_cast<double>(
                                                     n));
                                        continue;
                                    }
                                    comm += t;
                                }
                            }

                            // Parameter affinity (§3.5): reward
                            // windows whose devices already store
                            // this slice's parameter sets; placing
                            // elsewhere would grow the corresponding
                            // gradient-sync groups by roughly one
                            // ring pass of the non-resident bytes.
                            // The bytes accumulate in sig order (the
                            // historical FP order); the per-row
                            // flags come from the sliding pointers
                            // into the sparse resident-index lists.
                            double non_resident_bytes = 0;
                            if (rows > 0) {
                                for (std::size_t r = 0; r < rows;
                                     ++r) {
                                    const auto &idx = bs.resIdx[r];
                                    std::size_t &ptr = row_ptr[r];
                                    while (ptr < idx.size() &&
                                           idx[ptr] < w)
                                        ++ptr;
                                    row_nonres[r] =
                                        (ptr >= idx.size() ||
                                         idx[ptr] >= w + n)
                                            ? 1
                                            : 0;
                                }
                                for (std::size_t s = 0;
                                     s < sig.size(); ++s) {
                                    const std::int32_t row =
                                        sig_row[s];
                                    if (row >= 0 &&
                                        row_nonres[static_cast<
                                            std::size_t>(row)])
                                        non_resident_bytes +=
                                            sig[s].bytes;
                                }
                            }
                            comm += options_.paramAffinityWeight *
                                    2.0 * non_resident_bytes /
                                    topo_.config()
                                        .interIslandCollective
                                        .bandwidth;

                            if (cfg.tp > 1 &&
                                bs.chgPref[w + n - 1] !=
                                    bs.chgPref[w])
                                comm += island_penalty;

                            consider(best, max_total, comm,
                                     bs.ordinalBase + w,
                                     static_cast<std::int32_t>(b), w);
                        }
                    };

                // Score one explicit window (cross-island unions
                // etc.).
                auto score_extra = [&](std::size_t ei, Candidate &best,
                                       DeviceSet &win_scratch,
                                       std::vector<char> &row_nonres) {
                    const auto &win_pos = cand_windows.extras[ei];
                    panicIf(win_pos.size() != n,
                            "tryPlace: generator emitted a window of "
                            "the wrong size");
                    double max_total = 0;
                    for (std::uint32_t p : win_pos)
                        max_total =
                            std::max(max_total, cand_total[p]);
                    if (max_total > capacity)
                        return;

                    double comm = 0;
                    if (exact_comm && !inflows.empty()) {
                        win_scratch.resize(n);
                        for (std::uint32_t j = 0; j < n; ++j)
                            win_scratch[j] = free[win_pos[j]];
                        for (const auto &[bytes, src] : inflows)
                            comm += flow_price(bytes, *src,
                                               win_scratch);
                    } else {
                        for (std::size_t k = 0; k < inflows.size();
                             ++k) {
                            const InflowCtx &ctx = inflow_ctx[k];
                            const DeviceSet &src = *inflows[k].second;
                            if (src.size() == n) {
                                bool equal = true;
                                for (std::uint32_t j = 0; j < n;
                                     ++j) {
                                    if (free[win_pos[j]] != src[j]) {
                                        equal = false;
                                        break;
                                    }
                                }
                                if (equal)
                                    continue; // data already resident
                            }
                            if (inflows[k].first <= 0)
                                continue;
                            int best_rank = kNumLinkClasses - 1;
                            for (std::uint32_t p : win_pos) {
                                const int r =
                                    rank_of_class[ctx.cls[p]];
                                if (r < best_rank)
                                    best_rank = r;
                                if (best_rank == 0)
                                    break;
                            }
                            const double t =
                                ctx.flowByClass[class_by_bw[best_rank]];
                            if (paired) {
                                // Pairing-aware surcharge over the
                                // window's island-miss fraction (see
                                // pairedFlowTime).
                                std::uint32_t miss = 0;
                                for (std::uint32_t p : win_pos)
                                    if (ctx.srcCountByIsland
                                            [pos_island[p]] == 0)
                                        ++miss;
                                comm +=
                                    t * (1.0 +
                                         static_cast<double>(miss) /
                                             static_cast<double>(n));
                                continue;
                            }
                            comm += t;
                        }
                    }

                    double non_resident_bytes = 0;
                    if (rows > 0) {
                        row_nonres.resize(rows);
                        for (std::size_t r = 0; r < rows; ++r) {
                            const auto &rp = row_pos[r];
                            bool resident = false;
                            for (std::uint32_t p : win_pos) {
                                if (std::binary_search(rp.begin(),
                                                       rp.end(), p)) {
                                    resident = true;
                                    break;
                                }
                            }
                            row_nonres[r] = resident ? 0 : 1;
                        }
                        for (std::size_t s = 0; s < sig.size(); ++s) {
                            const std::int32_t row = sig_row[s];
                            if (row >= 0 &&
                                row_nonres[static_cast<std::size_t>(
                                    row)])
                                non_resident_bytes += sig[s].bytes;
                        }
                    }
                    comm += options_.paramAffinityWeight * 2.0 *
                            non_resident_bytes /
                            topo_.config()
                                .interIslandCollective.bandwidth;

                    if (cfg.tp > 1) {
                        const std::uint32_t first =
                            pos_island[win_pos.front()];
                        bool spans = false;
                        for (std::uint32_t p : win_pos) {
                            if (pos_island[p] != first) {
                                spans = true;
                                break;
                            }
                        }
                        if (spans)
                            comm += island_penalty;
                    }

                    consider(best, max_total, comm, extras_base + ei,
                             -1, ei);
                };

                // Chunk the candidate space into sweep tasks. Chunk
                // size only balances lanes and sets the pruning
                // granularity; any chunking yields the same winner
                // (the ordinal tie-break is global, and pruning is
                // winner-preserving per chunk). The serial sweep is
                // chunked too — that is what gives pruning its
                // skippable units — with a floor of 4n so the
                // per-chunk deque warm-up (n - 1 positions) stays
                // under a quarter of the chunk.
                const std::size_t sweep_work =
                    total_candidates *
                    (sig.size() + inflows.size() + 4);
                const bool sweep_parallel =
                    use_pool && sweep_work >= kMinParallelWork &&
                    total_candidates > 1;
                const std::size_t chunk_floor = std::max<std::size_t>(
                    kMinSweepChunk, 4 * static_cast<std::size_t>(n));
                const std::size_t chunk =
                    sweep_parallel
                        ? std::max(chunk_floor,
                                   total_candidates /
                                       (static_cast<std::size_t>(
                                            pool_->threads()) *
                                        4))
                        : chunk_floor;
                sweep_tasks.clear();
                for (std::size_t b = 0; b < num_bands; ++b) {
                    const std::size_t W = band_states[b].numWindows;
                    for (std::size_t lo = 0; lo < W; lo += chunk)
                        sweep_tasks.push_back(
                            {static_cast<std::int32_t>(b), lo,
                             std::min(lo + chunk, W)});
                }
                for (std::size_t lo = 0;
                     lo < cand_windows.extras.size(); lo += chunk)
                    sweep_tasks.push_back(
                        {-1, lo,
                         std::min(lo + chunk,
                                  cand_windows.extras.size())});

                auto run_task = [&](const SweepTask &t,
                                    Candidate &best,
                                    DeviceSet &win_scratch,
                                    std::vector<std::size_t> &dq,
                                    std::vector<std::size_t> &row_ptr,
                                    std::vector<char> &row_nonres) {
                    if (t.band >= 0)
                        score_band_range(
                            static_cast<std::size_t>(t.band), t.lo,
                            t.hi, best, win_scratch, dq, row_ptr,
                            row_nonres);
                    else
                        for (std::size_t ei = t.lo; ei < t.hi; ++ei)
                            score_extra(ei, best, win_scratch,
                                        row_nonres);
                };

                Candidate best;
                if (sweep_parallel && sweep_tasks.size() > 1) {
                    best = pool_->parallelReduce<Candidate>(
                        0, sweep_tasks.size(), 1,
                        [&](Candidate &acc, std::size_t lo,
                            std::size_t hi) {
                            DeviceSet win_scratch;
                            std::vector<std::size_t> dq;
                            std::vector<std::size_t> row_ptr;
                            std::vector<char> row_nonres;
                            for (std::size_t t = lo; t < hi; ++t)
                                run_task(sweep_tasks[t], acc,
                                         win_scratch, dq, row_ptr,
                                         row_nonres);
                        },
                        [](Candidate &out, const Candidate &c) {
                            if (betterThan(c, out))
                                out = c;
                        });
                } else {
                    for (const SweepTask &t : sweep_tasks)
                        run_task(t, best, win_buf, deque_scratch,
                                 rowptr_scratch, rownonres_scratch);
                }

                if (!best.found()) {
                    if (fail_wave != nullptr)
                        *fail_wave = wi;
                    return false; // nothing fits: trigger fallback
                }
                best_comm = best.comm;
                best_win.resize(n);
                win_positions.clear();
                if (best.band >= 0) {
                    const auto &band =
                        cand_windows.bands[static_cast<std::size_t>(
                            best.band)];
                    for (std::uint32_t j = 0; j < n; ++j) {
                        win_positions.push_back(band[best.start + j]);
                        best_win[j] = free[band[best.start + j]];
                    }
                } else {
                    const auto &win_pos =
                        cand_windows.extras[best.start];
                    for (std::uint32_t j = 0; j < n; ++j) {
                        win_positions.push_back(win_pos[j]);
                        best_win[j] = free[win_pos[j]];
                    }
                }
            }

            // Reverse-index upkeep, serially before the commit
            // mutates any device: a key gains exactly the window
            // devices that do not yet hold it (probed against the
            // still-pre-commit flat mirror). uniq_keys is
            // deduplicated, so no device is appended twice for one
            // key, keeping holder lists exact.
            for (std::int64_t key : uniq_keys) {
                std::vector<DeviceId> *hv = nullptr;
                for (DeviceId d : best_win) {
                    if (state.findFlat(d, key) != nullptr)
                        continue;
                    if (hv == nullptr)
                        hv = &state.holders[key];
                    hv->push_back(d);
                }
            }

            // Commit the chosen window. Devices are committed
            // independently (each lane touches only its own device's
            // map, flat mirror, and dirty bit), so large entries
            // parallelize; order is irrelevant to the resulting
            // state.
            auto commit_device = [&](std::size_t j) {
                const DeviceId d = best_win[j];
                state.activations[d] += act_share;
                for (const auto &[key, share] : commit_keys) {
                    auto [it, inserted] =
                        state.params[d].emplace(key, share);
                    if (!inserted && share > it->second)
                        it->second = share;
                }
                state.mergeFlat(d, uniq_keys, uniq_vals);
                state.total_dirty[d] = 1;
            };
            maybeParallelFor(pool_,
                             best_win.size() * (sig.size() + 1) >=
                                 kMinParallelWork,
                             0, best_win.size(), 8, commit_device);

            // Attribute the committed flows to intra- vs
            // inter-island fabric, shard by shard (see
            // interIslandShardFraction). Deliberately priced with
            // the legacy flowTime even under pairing-aware scoring,
            // so interIslandCommSeconds stays one metric comparable
            // across pricing modes (the acceptance comparison in
            // planner_equivalence_test depends on this).
            double entry_inter = 0;
            for (std::size_t k = 0; k < inflows.size(); ++k) {
                const auto &[bytes, src] = inflows[k];
                double t;
                if (!exact_comm && !win_positions.empty()) {
                    // Same class machinery the sweep scored with,
                    // which equals flowTime bit for bit on uniform
                    // fabrics: zero for empty flows and src == dst
                    // (flowTime's own early-outs), otherwise the
                    // flow time of the fastest class present in the
                    // window. O(n) instead of the oracle's
                    // O(|src| * n) pair scan.
                    if (bytes <= 0 || *src == best_win) {
                        t = 0;
                    } else {
                        const InflowCtx &ctx = inflow_ctx[k];
                        int best_rank = kNumLinkClasses - 1;
                        for (std::uint32_t p : win_positions) {
                            const int r = rank_of_class[ctx.cls[p]];
                            if (r < best_rank)
                                best_rank = r;
                            if (best_rank == 0)
                                break;
                        }
                        t = ctx.flowByClass[class_by_bw[best_rank]];
                    }
                } else {
                    t = coll.flowTime(bytes, *src, best_win);
                }
                if (t > 0)
                    entry_inter +=
                        t * interIslandShardFraction(
                                topo_, *src, best_win,
                                island_scratch);
            }
            if (cfg.tp > 1 && !topo_.withinOneIsland(best_win))
                entry_inter += island_penalty;
            result.interIslandCommSeconds += entry_inter;

            if (log != nullptr)
                log->push_back({static_cast<std::uint32_t>(wi),
                                static_cast<std::uint32_t>(idx),
                                best_comm, entry_inter});

            e.devices = best_win;
            state.lastSlice[e.metaOp] = std::move(best_win);
            result.estimatedCommSeconds += best_comm;
            if (options_.strategy != PlacementStrategy::Sequential) {
                // Remove the committed devices from the free list
                // (single compaction pass; general windows need not
                // be contiguous runs of it).
                const DeviceSet &win = state.lastSlice[e.metaOp];
                std::size_t out = 0, take = 0;
                for (std::size_t pos = 0; pos < free.size(); ++pos) {
                    if (take < win.size() && free[pos] == win[take]) {
                        ++take;
                        continue;
                    }
                    free[out++] = free[pos];
                }
                free.resize(out);
            }
        }
    }

    result.peakBytes.assign(num_devices, 0.0);
    for (std::uint32_t d = 0; d < num_devices; ++d)
        result.peakBytes[d] = state.deviceTotal(d);
    return true;
}

} // namespace spindle
