#include "planner/placement.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

#include "common/logging.h"

namespace spindle {

namespace {

/** Dedup key for parameter storage: shared keys map to themselves,
 *  unshared operators get a unique negative key. */
std::int64_t
paramDedupKey(const OperatorDesc &op)
{
    if (op.paramKey != kNoParam)
        return op.paramKey;
    return -(static_cast<std::int64_t>(op.id) + 2);
}

/**
 * Parameter signature of one member operator of a slice: the dedup
 * key plus the per-device share and raw bytes the scoring loops
 * consume. Computed once per wave entry instead of re-deriving the
 * OperatorDesc and share inside every candidate window.
 */
struct SliceParam
{
    std::int64_t key = 0;
    double share = 0; ///< per-device param + optimizer share
    double bytes = 0; ///< raw parameter bytes (affinity scoring)
};

/** Number of link classes a (src set, device) pair can fall into. */
constexpr int kNumLinkClasses = 3;

} // namespace

/**
 * Mutable state of one placement attempt.
 *
 * Per-device totals are cached: the former deviceTotal() walked the
 * whole parameter map on every candidate window of every entry
 * (quadratic in practice). The cache is refreshed lazily after a
 * commit dirties a device, by replaying the exact walk the uncached
 * code performed — cached reads are bit-identical, and each device
 * is re-walked at most once per committed entry instead of once per
 * candidate window.
 */
struct DevicePlacement::Attempt
{
    /** Per-device stored parameter state, deduplicated by key. */
    std::vector<std::unordered_map<std::int64_t, double>> params;

    /** Per-device accumulated activation bytes. */
    std::vector<double> activations;

    /** Most recent device set of each MetaOp (last placed slice). */
    std::map<MetaOpId, DeviceSet> lastSlice;

    /** Lazily refreshed deviceTotal() cache (see class comment). */
    std::vector<double> total_cache;
    std::vector<char> total_dirty;

    void
    init(std::uint32_t num_devices)
    {
        params.assign(num_devices, {});
        activations.assign(num_devices, 0.0);
        total_cache.assign(num_devices, 0.0);
        total_dirty.assign(num_devices, 1);
    }

    void
    markDirty(DeviceId d)
    {
        total_dirty[d] = 1;
    }

    double
    deviceTotal(DeviceId d)
    {
        if (total_dirty[d]) {
            double total = activations[d];
            for (const auto &[key, bytes] : params[d])
                total += bytes;
            total_cache[d] = total;
            total_dirty[d] = 0;
        }
        return total_cache[d];
    }
};

DevicePlacement::DevicePlacement(const ClusterTopology &topo,
                                 const HardwareModel &hw,
                                 const MemoryModel &mem,
                                 PlacementOptions options)
    : topo_(topo), hw_(hw), mem_(mem), options_(options)
{
}

PlacementResult
DevicePlacement::place(const MetaGraph &graph, ExecutionPlan &plan) const
{
    PlacementResult result;
    if (tryPlace(graph, plan, /*memory_first=*/false, result))
        return result;
    // Backtracking collapsed into a restart: redo everything with
    // memory balance as the primary objective (§3.5 "alternative
    // placements with sub-optimal communication costs").
    result = {};
    result.usedMemoryFallback = true;
    fatalIf(!tryPlace(graph, plan, /*memory_first=*/true, result),
            "DevicePlacement: workload does not fit device memory even "
            "with memory-first placement");
    return result;
}

bool
DevicePlacement::tryPlace(const MetaGraph &graph, ExecutionPlan &plan,
                          bool memory_first,
                          PlacementResult &result) const
{
    const std::uint32_t num_devices = plan.numDevices;
    const double capacity =
        topo_.device().memoryBytes * options_.memorySlack;
    const CollectiveModel &coll = hw_.collectives();

    Attempt state;
    state.init(num_devices);

    // Per-op parameter share charged to each device of a slice.
    auto param_share = [&](const OperatorDesc &op, ParallelConfig cfg) {
        const double shard =
            op.paramBytes / cfg.tp /
            (mem_.params().zeroShardParams ? cfg.dp : 1.0);
        const double opt =
            op.paramBytes / cfg.tp * mem_.params().optimizerFactor /
            (mem_.params().zeroShardOptimizer ? cfg.dp : 1.0);
        return shard + opt;
    };

    // The three link classes a (src set, candidate device) pair can
    // use. CollectiveModel::flowTime maximizes bandwidth over all
    // (src, dst) pairs, so the sweep must (a) track, per candidate
    // device, *every* class it has a pair in — a device sharing an
    // island with one source device still has inter-island pairs to
    // the others — and (b) probe classes in bandwidth order, not
    // class-index order (a config may rank its fabrics differently
    // from the defaults). Two classes configured to the exact same
    // bandwidth but different latency make flowTime's winner depend
    // on its pair iteration order, which class-level bookkeeping
    // cannot reproduce; such (pathological) configs drop to scoring
    // every window with flowTime directly, keeping the bit-identical
    // contract unconditional.
    const LinkParams link_class[kNumLinkClasses] = {
        {topo_.device().copyBandwidth, 0.0}, // overlapping device
        topo_.config().intraIsland,          // same island
        topo_.config().interIsland,          // cross island
    };
    int class_by_bw[kNumLinkClasses] = {0, 1, 2};
    std::stable_sort(class_by_bw, class_by_bw + kNumLinkClasses,
                     [&](int a, int b) {
                         return link_class[a].bandwidth >
                                link_class[b].bandwidth;
                     });
    const bool tied_class_bandwidths =
        link_class[0].bandwidth == link_class[1].bandwidth ||
        link_class[0].bandwidth == link_class[2].bandwidth ||
        link_class[1].bandwidth == link_class[2].bandwidth;

    std::uint32_t seq_cursor = 0; // Sequential strategy cursor

    // Scratch buffers reused across entries (sized per wave).
    std::vector<double> cand_total;      // per free pos: total if placed
    std::vector<SliceParam> sig;         // slice param signature
    std::vector<std::int32_t> sig_row;   // sig index -> residency row
    std::vector<std::uint32_t> res_pref; // residency prefix counts
    std::vector<std::uint32_t> island_src_count; // src devs per island
    DeviceSet win_buf; // window scratch for the tied-bandwidth path

    for (Wave &wave : plan.waves) {
        DeviceSet free = topo_.allDevices();
        free.resize(std::min<std::size_t>(free.size(), num_devices));

        // Entry placement order: highest communication volume first
        // (or largest memory first in the fallback pass). Sort keys
        // are precomputed; the former comparator re-derived them on
        // every comparison (including a bestConfig search per probe
        // in the fallback pass).
        std::vector<std::size_t> order(wave.entries.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        if (options_.strategy == PlacementStrategy::Spindle) {
            std::vector<double> sort_key(wave.entries.size());
            for (std::size_t i = 0; i < wave.entries.size(); ++i) {
                const WaveEntry &e = wave.entries[i];
                const MetaOp &m = graph.metaOp(e.metaOp);
                if (memory_first) {
                    ParallelConfig cfg =
                        hw_.bestConfig(memberDesc(m), e.n);
                    sort_key[i] =
                        mem_.sliceBytesPerDevice(m, e.numOps, cfg);
                } else {
                    double vol = m.activationBytes; // outflow / chain
                    if (e.opBegin == 0) {
                        for (const MetaEdge &edge : graph.edges())
                            if (edge.dst == e.metaOp)
                                vol += edge.flowBytes;
                    }
                    sort_key[i] = vol;
                }
            }
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          if (sort_key[a] != sort_key[b])
                              return sort_key[a] > sort_key[b];
                          return a < b;
                      });
        }

        for (std::size_t idx : order) {
            WaveEntry &e = wave.entries[idx];
            const MetaOp &m = graph.metaOp(e.metaOp);
            const ParallelConfig cfg = hw_.bestConfig(memberDesc(m), e.n);
            const double act_share =
                mem_.activationBytesPerDevice(m, e.numOps, cfg);

            panicIf(free.size() < e.n,
                    "tryPlace: scheduler exceeded wave capacity");

            // Slice parameter signature, computed once per entry.
            sig.clear();
            sig.reserve(static_cast<std::size_t>(e.numOps));
            for (std::int64_t i = 0; i < e.numOps; ++i) {
                const OperatorDesc &op =
                    graph.base().op(m.ops[e.opBegin + i]);
                sig.push_back({paramDedupKey(op), param_share(op, cfg),
                               op.paramBytes});
            }

            // Inter-wave data sources feeding this entry, in the
            // edge order the score accumulates them: first slices
            // pull from predecessor MetaOps, later slices from the
            // own MetaOp's previous slice.
            std::vector<std::pair<double, const DeviceSet *>> inflows;
            if (e.opBegin == 0) {
                for (const MetaEdge &edge : graph.edges()) {
                    if (edge.dst != e.metaOp)
                        continue;
                    auto it = state.lastSlice.find(edge.src);
                    if (it != state.lastSlice.end())
                        inflows.emplace_back(edge.flowBytes,
                                             &it->second);
                }
            } else {
                auto it = state.lastSlice.find(e.metaOp);
                if (it != state.lastSlice.end())
                    inflows.emplace_back(m.activationBytes,
                                         &it->second);
            }

            // Intra-island preference: a TP group spanning islands
            // pays the real collective slowdown. Window-independent,
            // hoisted out of the scoring loop.
            double island_penalty = 0;
            if (cfg.tp > 1) {
                const double shard = m.activationBytes / cfg.dp;
                const double slow = CollectiveModel::ringAllReduce(
                    shard, cfg.tp, topo_.config().interIsland);
                const double fast = CollectiveModel::ringAllReduce(
                    shard, cfg.tp, topo_.config().intraIsland);
                island_penalty = 2.0 * static_cast<double>(e.numOps) *
                                 (slow - fast);
            }

            double best_primary = std::numeric_limits<double>::infinity();
            double best_secondary = best_primary;
            double best_comm = 0;
            DeviceSet best_win;

            if (options_.strategy == PlacementStrategy::Sequential) {
                // Next consecutive devices, wrapping; no awareness.
                DeviceSet win;
                for (std::uint32_t k = 0; k < e.n; ++k)
                    win.push_back((seq_cursor + k) % num_devices);
                canonicalize(win);
                // Wrapping can collapse duplicates only if n >
                // num_devices, which validate() forbids.
                seq_cursor = (seq_cursor + e.n) % num_devices;

                // Single candidate: score it directly (the memory
                // capacity check never rejects in this ablation).
                double peak_frac = 0;
                for (DeviceId d : win) {
                    double add = act_share;
                    for (const SliceParam &sp : sig) {
                        auto it = state.params[d].find(sp.key);
                        if (it == state.params[d].end())
                            add += sp.share;
                        else if (sp.share > it->second)
                            add += sp.share - it->second;
                    }
                    const double total = state.deviceTotal(d) + add;
                    peak_frac = std::max(
                        peak_frac, total / topo_.device().memoryBytes);
                }
                double comm = 0;
                for (const auto &[bytes, src] : inflows)
                    comm += coll.flowTime(bytes, *src, win);
                double non_resident_bytes = 0;
                for (const SliceParam &sp : sig) {
                    if (sp.bytes <= 0)
                        continue;
                    bool resident = false;
                    for (DeviceId d : win) {
                        if (state.params[d].count(sp.key)) {
                            resident = true;
                            break;
                        }
                    }
                    if (!resident)
                        non_resident_bytes += sp.bytes;
                }
                comm += options_.paramAffinityWeight * 2.0 *
                        non_resident_bytes /
                        topo_.config().interIslandCollective.bandwidth;
                if (cfg.tp > 1 && !topo_.withinOneIsland(win))
                    comm += island_penalty;
                best_primary = memory_first
                                   ? peak_frac
                                   : comm + options_.memoryWeight *
                                                peak_frac;
                best_comm = comm;
                best_win = std::move(win);
            } else {
                // Candidate windows: the contiguous runs of the free
                // list. All window scores derive from per-device
                // quantities computed once per entry; the window
                // sweep combines them with prefix/extremum queries
                // that reproduce the former full rescan bit for bit.
                const std::size_t F = free.size();
                const std::size_t W = F - e.n + 1;

                // (a) Per-device total if this slice lands on it.
                cand_total.resize(F);
                for (std::size_t pos = 0; pos < F; ++pos) {
                    const DeviceId d = free[pos];
                    double add = act_share;
                    for (const SliceParam &sp : sig) {
                        auto it = state.params[d].find(sp.key);
                        if (it == state.params[d].end())
                            add += sp.share;
                        else if (sp.share > it->second)
                            add += sp.share - it->second;
                    }
                    cand_total[pos] = state.deviceTotal(d) + add;
                }

                // (b) Per-inflow link-class machinery: class of each
                // free device w.r.t. the source set, prefix counts
                // per class, the per-class flow time, and the window
                // that equals the source set (zero-cost flow).
                struct InflowCtx
                {
                    double flowByClass[kNumLinkClasses];
                    // class prefix counts, kNumLinkClasses rows of
                    // F + 1 entries each
                    std::vector<std::uint32_t> pref;
                    std::ptrdiff_t eq_window = -1;
                };
                std::vector<InflowCtx> inflow_ctx(inflows.size());
                for (std::size_t k = 0; k < inflows.size(); ++k) {
                    const auto &[bytes, src_ptr] = inflows[k];
                    const DeviceSet &src = *src_ptr;
                    InflowCtx &ctx = inflow_ctx[k];

                    const double streams = static_cast<double>(
                        std::min<std::size_t>(src.size(), e.n));
                    for (int c = 0; c < kNumLinkClasses; ++c)
                        ctx.flowByClass[c] =
                            bytes / streams /
                                link_class[c].bandwidth +
                            link_class[c].latency;

                    island_src_count.assign(topo_.numIslands(), 0);
                    for (DeviceId s : src)
                        ++island_src_count[topo_.islandOf(s)];
                    const auto src_size =
                        static_cast<std::uint32_t>(src.size());

                    // A device's class is the fastest one it has any
                    // pair in: copy needs the device itself in src,
                    // intra another src device in its island, inter
                    // a src device in a different island.
                    ctx.pref.assign(
                        kNumLinkClasses * (F + 1), 0);
                    for (std::size_t pos = 0; pos < F; ++pos) {
                        const DeviceId d = free[pos];
                        const bool in_src = std::binary_search(
                            src.begin(), src.end(), d);
                        const std::uint32_t same_island =
                            island_src_count[topo_.islandOf(d)];
                        const bool avail[kNumLinkClasses] = {
                            in_src,
                            same_island > (in_src ? 1u : 0u),
                            src_size > same_island,
                        };
                        int cls = class_by_bw[kNumLinkClasses - 1];
                        for (int r = 0; r < kNumLinkClasses; ++r) {
                            if (avail[class_by_bw[r]]) {
                                cls = class_by_bw[r];
                                break;
                            }
                        }
                        for (int c = 0; c < kNumLinkClasses; ++c)
                            ctx.pref[c * (F + 1) + pos + 1] =
                                ctx.pref[c * (F + 1) + pos] +
                                (cls == c ? 1u : 0u);
                    }

                    if (src.size() == e.n) {
                        auto at = std::lower_bound(
                            free.begin(), free.end(), src.front());
                        const std::size_t p = static_cast<std::size_t>(
                            at - free.begin());
                        if (p + e.n <= F &&
                            std::equal(src.begin(), src.end(),
                                       free.begin() + p))
                            ctx.eq_window =
                                static_cast<std::ptrdiff_t>(p);
                    }
                }

                // (c) Residency prefix counts per distinct parameter
                // key carried by the slice (affinity scoring).
                sig_row.assign(sig.size(), -1);
                std::unordered_map<std::int64_t, std::int32_t> row_of;
                for (std::size_t i = 0; i < sig.size(); ++i) {
                    if (sig[i].bytes <= 0)
                        continue;
                    auto it = row_of
                                  .emplace(sig[i].key,
                                           static_cast<std::int32_t>(
                                               row_of.size()))
                                  .first;
                    sig_row[i] = it->second;
                }
                const std::size_t rows = row_of.size();
                res_pref.assign(rows * (F + 1), 0);
                for (const auto &[key, row] : row_of) {
                    const std::size_t base =
                        static_cast<std::size_t>(row) * (F + 1);
                    for (std::size_t pos = 0; pos < F; ++pos)
                        res_pref[base + pos + 1] =
                            res_pref[base + pos] +
                            (state.params[free[pos]].count(key) ? 1u
                                                                : 0u);
                }

                // (d) Sweep the windows. The memory extremum uses a
                // monotonic deque (sliding-window maximum over the
                // per-device candidate totals).
                std::size_t best_w = W;
                std::vector<std::size_t> deque_pos;
                std::size_t head = 0;
                for (std::size_t pos = 0; pos < F; ++pos) {
                    while (deque_pos.size() > head &&
                           cand_total[deque_pos.back()] <=
                               cand_total[pos])
                        deque_pos.pop_back();
                    deque_pos.push_back(pos);
                    if (pos + 1 < e.n)
                        continue; // window not yet full
                    const std::size_t w = pos + 1 - e.n;
                    if (deque_pos[head] < w)
                        ++head;
                    const double max_total =
                        cand_total[deque_pos[head]];

                    // Memory feasibility and resulting peak
                    // fraction. Division by a positive constant is
                    // monotone, so dividing the window maximum
                    // equals the former per-device quotient maximum.
                    if (max_total > capacity)
                        continue;
                    const double peak_frac =
                        max_total / topo_.device().memoryBytes;

                    // Inter-wave communication, accumulated in the
                    // same source order as before.
                    double comm = 0;
                    if (tied_class_bandwidths && !inflows.empty()) {
                        // Exact fallback (see link_class comment):
                        // equal-bandwidth classes are resolved by
                        // flowTime's own pair order.
                        win_buf.assign(free.begin() + w,
                                       free.begin() + w + e.n);
                        for (const auto &[bytes, src] : inflows)
                            comm +=
                                coll.flowTime(bytes, *src, win_buf);
                    } else {
                        for (std::size_t k = 0; k < inflows.size();
                             ++k) {
                            const InflowCtx &ctx = inflow_ctx[k];
                            if (static_cast<std::ptrdiff_t>(w) ==
                                ctx.eq_window)
                                continue; // data already resident
                            if (inflows[k].first <= 0)
                                continue;
                            // Fastest link class present in the
                            // window (classes partition the devices,
                            // so the probe always finds one).
                            int cls =
                                class_by_bw[kNumLinkClasses - 1];
                            for (int r = 0; r < kNumLinkClasses;
                                 ++r) {
                                const int c = class_by_bw[r];
                                if (ctx.pref[c * (F + 1) + w + e.n] >
                                    ctx.pref[c * (F + 1) + w]) {
                                    cls = c;
                                    break;
                                }
                            }
                            comm += ctx.flowByClass[cls];
                        }
                    }

                    // Parameter affinity (§3.5): reward windows
                    // whose devices already store this slice's
                    // parameter sets; placing elsewhere would grow
                    // the corresponding gradient-sync groups by
                    // roughly one ring pass of the non-resident
                    // bytes.
                    double non_resident_bytes = 0;
                    for (std::size_t i = 0; i < sig.size(); ++i) {
                        const std::int32_t row = sig_row[i];
                        if (row < 0)
                            continue;
                        const std::size_t base =
                            static_cast<std::size_t>(row) * (F + 1);
                        if (res_pref[base + w + e.n] ==
                            res_pref[base + w])
                            non_resident_bytes += sig[i].bytes;
                    }
                    comm += options_.paramAffinityWeight * 2.0 *
                            non_resident_bytes /
                            topo_.config()
                                .interIslandCollective.bandwidth;

                    // Devices ascend and islands are contiguous id
                    // ranges, so a window spans one island iff its
                    // endpoints share it.
                    if (cfg.tp > 1 &&
                        topo_.islandOf(free[w]) !=
                            topo_.islandOf(free[pos]))
                        comm += island_penalty;

                    const double mem_score =
                        options_.memoryWeight * peak_frac;
                    double primary, secondary;
                    if (memory_first) {
                        primary = peak_frac;
                        secondary = comm;
                    } else {
                        primary = comm + mem_score;
                        secondary = peak_frac;
                    }
                    if (primary < best_primary ||
                        (primary == best_primary &&
                         secondary < best_secondary)) {
                        best_primary = primary;
                        best_secondary = secondary;
                        best_w = w;
                        best_comm = comm;
                    }
                }
                if (best_w == W)
                    return false; // nothing fits: trigger fallback
                best_win.assign(free.begin() + best_w,
                                free.begin() + best_w + e.n);
            }

            // Commit the chosen window.
            for (DeviceId d : best_win) {
                state.activations[d] += act_share;
                for (const SliceParam &sp : sig) {
                    auto [it, inserted] =
                        state.params[d].emplace(sp.key, sp.share);
                    if (!inserted && sp.share > it->second)
                        it->second = sp.share;
                }
                state.markDirty(d);
            }
            e.devices = best_win;
            state.lastSlice[e.metaOp] = std::move(best_win);
            result.estimatedCommSeconds += best_comm;
            if (options_.strategy != PlacementStrategy::Sequential) {
                // The committed window is a contiguous run of the
                // free list; erasing it preserves order exactly as
                // the former set_difference did.
                const DeviceSet &win = state.lastSlice[e.metaOp];
                auto at = std::lower_bound(free.begin(), free.end(),
                                           win.front());
                free.erase(at, at + static_cast<std::ptrdiff_t>(e.n));
            }
        }
    }

    result.peakBytes.assign(num_devices, 0.0);
    for (std::uint32_t d = 0; d < num_devices; ++d)
        result.peakBytes[d] = state.deviceTotal(d);
    return true;
}

} // namespace spindle
