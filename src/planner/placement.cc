#include "planner/placement.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

#include "common/logging.h"

namespace spindle {

namespace {

/** Dedup key for parameter storage: shared keys map to themselves,
 *  unshared operators get a unique negative key. */
std::int64_t
paramDedupKey(const OperatorDesc &op)
{
    if (op.paramKey != kNoParam)
        return op.paramKey;
    return -(static_cast<std::int64_t>(op.id) + 2);
}

/**
 * Parameter signature of one member operator of a slice: the dedup
 * key plus the per-device share and raw bytes the scoring loops
 * consume. Computed once per wave entry instead of re-deriving the
 * OperatorDesc and share inside every candidate window.
 */
struct SliceParam
{
    std::int64_t key = 0;
    double share = 0; ///< per-device param + optimizer share
    double bytes = 0; ///< raw parameter bytes (affinity scoring)
};

/** Number of link classes a (src set, device) pair can fall into. */
constexpr int kNumLinkClasses = 3;

/**
 * Shard-level inter-island attribution of one flow: the flow's bytes
 * land sharded across the destination devices, and a destination
 * device whose island holds no source device must receive its shard
 * over the inter-island fabric. Returns the fraction of destination
 * devices in that situation (0 when the flow is free). Deliberately
 * finer-grained than flowTime's best-pair pricing, which cannot see
 * the difference between an island-aligned window and one that
 * merely touches the source's island.
 */
double
interIslandShardFraction(const ClusterTopology &topo,
                         const DeviceSet &src, const DeviceSet &dst,
                         std::vector<char> &island_scratch)
{
    island_scratch.assign(topo.numIslands(), 0);
    for (DeviceId s : src)
        island_scratch[topo.islandOf(s)] = 1;
    std::size_t miss = 0;
    for (DeviceId d : dst)
        if (!island_scratch[topo.islandOf(d)])
            ++miss;
    return static_cast<double>(miss) / static_cast<double>(dst.size());
}

} // namespace

/**
 * Mutable state of one placement attempt.
 *
 * Per-device totals are cached: the former deviceTotal() walked the
 * whole parameter map on every candidate window of every entry
 * (quadratic in practice). The cache is refreshed lazily after a
 * commit dirties a device, by replaying the exact walk the uncached
 * code performed — cached reads are bit-identical, and each device
 * is re-walked at most once per committed entry instead of once per
 * candidate window.
 */
struct DevicePlacement::Attempt
{
    /** Per-device stored parameter state, deduplicated by key. */
    std::vector<std::unordered_map<std::int64_t, double>> params;

    /** Per-device accumulated activation bytes. */
    std::vector<double> activations;

    /** Most recent device set of each MetaOp (last placed slice). */
    std::map<MetaOpId, DeviceSet> lastSlice;

    /** Lazily refreshed deviceTotal() cache (see class comment). */
    std::vector<double> total_cache;
    std::vector<char> total_dirty;

    void
    init(std::uint32_t num_devices)
    {
        params.assign(num_devices, {});
        activations.assign(num_devices, 0.0);
        total_cache.assign(num_devices, 0.0);
        total_dirty.assign(num_devices, 1);
    }

    void
    markDirty(DeviceId d)
    {
        total_dirty[d] = 1;
    }

    double
    deviceTotal(DeviceId d)
    {
        if (total_dirty[d]) {
            double total = activations[d];
            for (const auto &[key, bytes] : params[d])
                total += bytes;
            total_cache[d] = total;
            total_dirty[d] = 0;
        }
        return total_cache[d];
    }
};

DevicePlacement::DevicePlacement(const ClusterTopology &topo,
                                 const HardwareModel &hw,
                                 const MemoryModel &mem,
                                 PlacementOptions options)
    : topo_(topo), hw_(hw), mem_(mem), options_(options)
{
}

const WindowGenerator &
DevicePlacement::generator() const
{
    if (options_.generator != nullptr)
        return *options_.generator;
    return builtinWindowGenerator(options_.windows);
}

PlacementResult
DevicePlacement::place(const MetaGraph &graph, ExecutionPlan &plan) const
{
    PlacementResult result;
    std::vector<CommitRecord> log;
    std::size_t fail_wave = 0;
    if (tryPlace(graph, plan, /*memory_first=*/false, result, 0, nullptr,
                 &log, &fail_wave))
        return result;

    // Backtracking collapsed into a restart with memory balance as
    // the primary objective (§3.5 "alternative placements with
    // sub-optimal communication costs"). Preferred: resume from the
    // first infeasible wave, replaying the feasible prefix verbatim
    // instead of re-scoring it.
    if (options_.partialFallbackRestart && fail_wave > 0) {
        PlacementResult partial;
        partial.usedMemoryFallback = true;
        partial.fallbackRestartWave = fail_wave;
        if (tryPlace(graph, plan, /*memory_first=*/true, partial,
                     fail_wave, &log, nullptr, nullptr))
            return partial;
    }

    // Last resort: the historical full memory-first restart.
    result = {};
    result.usedMemoryFallback = true;
    fatalIf(!tryPlace(graph, plan, /*memory_first=*/true, result, 0,
                      nullptr, nullptr, nullptr),
            "DevicePlacement: workload does not fit device memory even "
            "with memory-first placement");
    return result;
}

bool
DevicePlacement::tryPlace(const MetaGraph &graph, ExecutionPlan &plan,
                          bool memory_first, PlacementResult &result,
                          std::size_t resume_wave,
                          const std::vector<CommitRecord> *replay,
                          std::vector<CommitRecord> *log,
                          std::size_t *fail_wave) const
{
    const std::uint32_t num_devices = plan.numDevices;
    const double capacity =
        topo_.device().memoryBytes * options_.memorySlack;
    const CollectiveModel &coll = hw_.collectives();
    const WindowGenerator &window_gen = generator();

    Attempt state;
    state.init(num_devices);

    // Per-op parameter share charged to each device of a slice.
    auto param_share = [&](const OperatorDesc &op, ParallelConfig cfg) {
        const double shard =
            op.paramBytes / cfg.tp /
            (mem_.params().zeroShardParams ? cfg.dp : 1.0);
        const double opt =
            op.paramBytes / cfg.tp * mem_.params().optimizerFactor /
            (mem_.params().zeroShardOptimizer ? cfg.dp : 1.0);
        return shard + opt;
    };

    // Partial-restart replay: recommit the feasible prefix (device
    // choices and their logged comm) without re-scoring it. The
    // records replayed are exactly the commits the failed pass made
    // for waves before resume_wave, in commit order, so the attempt
    // state ends up bit-identical to that pass's state at the start
    // of the first infeasible wave.
    if (resume_wave > 0) {
        panicIf(replay == nullptr, "tryPlace: resume without replay log");
        for (const CommitRecord &rec : *replay) {
            if (rec.wave >= resume_wave)
                continue;
            WaveEntry &e = plan.waves[rec.wave].entries[rec.entry];
            const MetaOp &m = graph.metaOp(e.metaOp);
            const ParallelConfig cfg =
                hw_.bestConfig(memberDesc(m), e.n);
            const double act_share =
                mem_.activationBytesPerDevice(m, e.numOps, cfg);
            for (DeviceId d : e.devices) {
                state.activations[d] += act_share;
                for (std::int64_t i = 0; i < e.numOps; ++i) {
                    const OperatorDesc &op =
                        graph.base().op(m.ops[e.opBegin + i]);
                    const std::int64_t key = paramDedupKey(op);
                    const double share = param_share(op, cfg);
                    auto [it, inserted] =
                        state.params[d].emplace(key, share);
                    if (!inserted && share > it->second)
                        it->second = share;
                }
                state.markDirty(d);
            }
            state.lastSlice[e.metaOp] = e.devices;
            result.estimatedCommSeconds += rec.comm;
            result.interIslandCommSeconds += rec.interIsland;
        }
    }

    // The three *default* link classes a (src set, candidate device)
    // pair can use. CollectiveModel::flowTime maximizes bandwidth
    // over all (src, dst) pairs, so the sweep must (a) track, per
    // candidate device, *every* class it has a pair in — a device
    // sharing an island with one source device still has
    // inter-island pairs to the others — and (b) probe classes in
    // bandwidth order, not class-index order (a config may rank its
    // fabrics differently from the defaults). Two classes configured
    // to the exact same bandwidth but different latency make
    // flowTime's winner depend on its pair iteration order, which
    // class-level bookkeeping cannot reproduce; such (pathological)
    // configs — and any topology whose islands override the default
    // classes (uniformLinks() false), where three classes cannot
    // describe the fabric at all — drop to scoring every window with
    // flowTime directly, keeping the bit-identical contract
    // unconditional.
    const LinkParams link_class[kNumLinkClasses] = {
        {topo_.device().copyBandwidth, 0.0}, // overlapping device
        topo_.config().intraIsland,          // same island
        topo_.config().interIsland,          // cross island
    };
    int class_by_bw[kNumLinkClasses] = {0, 1, 2};
    std::stable_sort(class_by_bw, class_by_bw + kNumLinkClasses,
                     [&](int a, int b) {
                         return link_class[a].bandwidth >
                                link_class[b].bandwidth;
                     });
    int rank_of_class[kNumLinkClasses];
    for (int r = 0; r < kNumLinkClasses; ++r)
        rank_of_class[class_by_bw[r]] = r;
    const bool tied_class_bandwidths =
        link_class[0].bandwidth == link_class[1].bandwidth ||
        link_class[0].bandwidth == link_class[2].bandwidth ||
        link_class[1].bandwidth == link_class[2].bandwidth;
    const bool exact_comm = tied_class_bandwidths || !topo_.uniformLinks();

    std::uint32_t seq_cursor = 0; // Sequential strategy cursor

    // Scratch buffers reused across entries (sized per wave).
    std::vector<double> cand_total;       // per free pos: total if placed
    std::vector<std::uint32_t> pos_island; // per free pos: island index
    std::vector<SliceParam> sig;          // slice param signature
    std::vector<std::int32_t> sig_row;    // sig index -> residency row
    std::vector<char> res_flag;           // residency flags, rows x F
    std::vector<std::uint32_t> res_pref;  // per-band residency prefixes
    std::vector<std::uint32_t> chg_pref;  // per-band island changes
    std::vector<std::uint32_t> island_src_count; // src devs per island
    CandidateWindows cand_windows;        // generator output
    DeviceSet win_buf; // window scratch for the exact-comm path
    std::vector<char> island_scratch; // inter-island attribution

    for (std::size_t wi = resume_wave; wi < plan.waves.size(); ++wi) {
        Wave &wave = plan.waves[wi];
        DeviceSet free = topo_.allDevices();
        free.resize(std::min<std::size_t>(free.size(), num_devices));

        // Entry placement order: highest communication volume first
        // (or largest memory first in the fallback pass). Sort keys
        // are precomputed; the former comparator re-derived them on
        // every comparison (including a bestConfig search per probe
        // in the fallback pass).
        std::vector<std::size_t> order(wave.entries.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        if (options_.strategy == PlacementStrategy::Spindle) {
            std::vector<double> sort_key(wave.entries.size());
            for (std::size_t i = 0; i < wave.entries.size(); ++i) {
                const WaveEntry &e = wave.entries[i];
                const MetaOp &m = graph.metaOp(e.metaOp);
                if (memory_first) {
                    ParallelConfig cfg =
                        hw_.bestConfig(memberDesc(m), e.n);
                    sort_key[i] =
                        mem_.sliceBytesPerDevice(m, e.numOps, cfg);
                } else {
                    double vol = m.activationBytes; // outflow / chain
                    if (e.opBegin == 0) {
                        for (const MetaEdge &edge : graph.edges())
                            if (edge.dst == e.metaOp)
                                vol += edge.flowBytes;
                    }
                    sort_key[i] = vol;
                }
            }
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          if (sort_key[a] != sort_key[b])
                              return sort_key[a] > sort_key[b];
                          return a < b;
                      });
        }

        for (std::size_t idx : order) {
            WaveEntry &e = wave.entries[idx];
            const MetaOp &m = graph.metaOp(e.metaOp);
            const ParallelConfig cfg = hw_.bestConfig(memberDesc(m), e.n);
            const double act_share =
                mem_.activationBytesPerDevice(m, e.numOps, cfg);

            panicIf(free.size() < e.n,
                    "tryPlace: scheduler exceeded wave capacity");

            // Slice parameter signature, computed once per entry.
            sig.clear();
            sig.reserve(static_cast<std::size_t>(e.numOps));
            for (std::int64_t i = 0; i < e.numOps; ++i) {
                const OperatorDesc &op =
                    graph.base().op(m.ops[e.opBegin + i]);
                sig.push_back({paramDedupKey(op), param_share(op, cfg),
                               op.paramBytes});
            }

            // Inter-wave data sources feeding this entry, in the
            // edge order the score accumulates them: first slices
            // pull from predecessor MetaOps, later slices from the
            // own MetaOp's previous slice.
            std::vector<std::pair<double, const DeviceSet *>> inflows;
            if (e.opBegin == 0) {
                for (const MetaEdge &edge : graph.edges()) {
                    if (edge.dst != e.metaOp)
                        continue;
                    auto it = state.lastSlice.find(edge.src);
                    if (it != state.lastSlice.end())
                        inflows.emplace_back(edge.flowBytes,
                                             &it->second);
                }
            } else {
                auto it = state.lastSlice.find(e.metaOp);
                if (it != state.lastSlice.end())
                    inflows.emplace_back(m.activationBytes,
                                         &it->second);
            }

            // Intra-island preference: a TP group spanning islands
            // pays the real collective slowdown. Window-independent,
            // hoisted out of the scoring loop. Charged at the
            // *default* link classes (the same reference the paper's
            // heuristic uses) even on non-uniform fabrics.
            double island_penalty = 0;
            if (cfg.tp > 1) {
                const double shard = m.activationBytes / cfg.dp;
                const double slow = CollectiveModel::ringAllReduce(
                    shard, cfg.tp, topo_.config().interIsland);
                const double fast = CollectiveModel::ringAllReduce(
                    shard, cfg.tp, topo_.config().intraIsland);
                island_penalty = 2.0 * static_cast<double>(e.numOps) *
                                 (slow - fast);
            }

            double best_primary = std::numeric_limits<double>::infinity();
            double best_secondary = best_primary;
            double best_comm = 0;
            DeviceSet best_win;

            if (options_.strategy == PlacementStrategy::Sequential) {
                // Next consecutive device ids, wrapping; no
                // awareness, and — by design — no dependence on the
                // island structure, so the baseline keeps its
                // semantics under any renumbering of the cluster.
                DeviceSet win;
                for (std::uint32_t k = 0; k < e.n; ++k)
                    win.push_back((seq_cursor + k) % num_devices);
                canonicalize(win);
                // Wrapping can collapse duplicates only if n >
                // num_devices, which validate() forbids.
                seq_cursor = (seq_cursor + e.n) % num_devices;

                // Single candidate: score it directly (the memory
                // capacity check never rejects in this ablation).
                double peak_frac = 0;
                for (DeviceId d : win) {
                    double add = act_share;
                    for (const SliceParam &sp : sig) {
                        auto it = state.params[d].find(sp.key);
                        if (it == state.params[d].end())
                            add += sp.share;
                        else if (sp.share > it->second)
                            add += sp.share - it->second;
                    }
                    const double total = state.deviceTotal(d) + add;
                    peak_frac = std::max(
                        peak_frac, total / topo_.device().memoryBytes);
                }
                double comm = 0;
                for (const auto &[bytes, src] : inflows)
                    comm += coll.flowTime(bytes, *src, win);
                double non_resident_bytes = 0;
                for (const SliceParam &sp : sig) {
                    if (sp.bytes <= 0)
                        continue;
                    bool resident = false;
                    for (DeviceId d : win) {
                        if (state.params[d].count(sp.key)) {
                            resident = true;
                            break;
                        }
                    }
                    if (!resident)
                        non_resident_bytes += sp.bytes;
                }
                comm += options_.paramAffinityWeight * 2.0 *
                        non_resident_bytes /
                        topo_.config().interIslandCollective.bandwidth;
                if (cfg.tp > 1 && !topo_.withinOneIsland(win))
                    comm += island_penalty;
                best_primary = memory_first
                                   ? peak_frac
                                   : comm + options_.memoryWeight *
                                                peak_frac;
                best_comm = comm;
                best_win = std::move(win);
            } else {
                // Candidate windows come from the configured
                // generator: bands (every length-n contiguous
                // subsequence of an ordered position sequence) and
                // explicit extras. All window scores derive from
                // per-device quantities computed once per entry; the
                // band sweeps combine them with prefix/extremum
                // queries that reproduce a full rescan bit for bit.
                const std::size_t F = free.size();
                const std::uint32_t n = e.n;

                window_gen.generate({topo_, free, n}, cand_windows);

                // (a) Per-device total if this slice lands on it,
                // and the device's island.
                cand_total.resize(F);
                pos_island.resize(F);
                for (std::size_t pos = 0; pos < F; ++pos) {
                    const DeviceId d = free[pos];
                    double add = act_share;
                    for (const SliceParam &sp : sig) {
                        auto it = state.params[d].find(sp.key);
                        if (it == state.params[d].end())
                            add += sp.share;
                        else if (sp.share > it->second)
                            add += sp.share - it->second;
                    }
                    cand_total[pos] = state.deviceTotal(d) + add;
                    pos_island[pos] = topo_.islandOf(d);
                }

                // (b) Per-inflow link-class machinery (uniform-fabric
                // fast path): the class of each free device w.r.t.
                // the source set and the per-class flow time.
                struct InflowCtx
                {
                    double flowByClass[kNumLinkClasses];
                    std::vector<std::uint8_t> cls; ///< per free pos
                    // per-band class prefix counts and the band
                    // window equal to the source set (zero-cost)
                    std::vector<std::uint32_t> pref;
                    std::ptrdiff_t eq_window = -1;
                };
                std::vector<InflowCtx> inflow_ctx(inflows.size());
                if (!exact_comm) {
                    for (std::size_t k = 0; k < inflows.size(); ++k) {
                        const auto &[bytes, src_ptr] = inflows[k];
                        const DeviceSet &src = *src_ptr;
                        InflowCtx &ctx = inflow_ctx[k];

                        const double streams = static_cast<double>(
                            std::min<std::size_t>(src.size(), n));
                        for (int c = 0; c < kNumLinkClasses; ++c)
                            ctx.flowByClass[c] =
                                bytes / streams /
                                    link_class[c].bandwidth +
                                link_class[c].latency;

                        island_src_count.assign(topo_.numIslands(), 0);
                        for (DeviceId s : src)
                            ++island_src_count[topo_.islandOf(s)];
                        const auto src_size =
                            static_cast<std::uint32_t>(src.size());

                        // A device's class is the fastest one it has
                        // any pair in: copy needs the device itself
                        // in src, intra another src device in its
                        // island, inter a src device in a different
                        // island.
                        ctx.cls.resize(F);
                        for (std::size_t pos = 0; pos < F; ++pos) {
                            const DeviceId d = free[pos];
                            const bool in_src = std::binary_search(
                                src.begin(), src.end(), d);
                            const std::uint32_t same_island =
                                island_src_count[pos_island[pos]];
                            const bool avail[kNumLinkClasses] = {
                                in_src,
                                same_island > (in_src ? 1u : 0u),
                                src_size > same_island,
                            };
                            int cls = class_by_bw[kNumLinkClasses - 1];
                            for (int r = 0; r < kNumLinkClasses; ++r) {
                                if (avail[class_by_bw[r]]) {
                                    cls = class_by_bw[r];
                                    break;
                                }
                            }
                            ctx.cls[pos] =
                                static_cast<std::uint8_t>(cls);
                        }
                    }
                }

                // (c) Residency flags per distinct parameter key
                // carried by the slice (affinity scoring).
                sig_row.assign(sig.size(), -1);
                std::unordered_map<std::int64_t, std::int32_t> row_of;
                for (std::size_t i = 0; i < sig.size(); ++i) {
                    if (sig[i].bytes <= 0)
                        continue;
                    auto it = row_of
                                  .emplace(sig[i].key,
                                           static_cast<std::int32_t>(
                                               row_of.size()))
                                  .first;
                    sig_row[i] = it->second;
                }
                const std::size_t rows = row_of.size();
                res_flag.assign(rows * F, 0);
                for (const auto &[key, row] : row_of) {
                    const std::size_t base =
                        static_cast<std::size_t>(row) * F;
                    for (std::size_t pos = 0; pos < F; ++pos)
                        res_flag[base + pos] =
                            state.params[free[pos]].count(key) ? 1 : 0;
                }

                std::vector<std::uint32_t> best_pos; // free positions
                bool found = false;

                // Evaluate one window given its peak memory load and
                // a comm value; shared by the band sweep and the
                // explicit extras.
                auto consider = [&](double max_total, double comm,
                                    auto &&materialize) {
                    const double peak_frac =
                        max_total / topo_.device().memoryBytes;
                    const double mem_score =
                        options_.memoryWeight * peak_frac;
                    double primary, secondary;
                    if (memory_first) {
                        primary = peak_frac;
                        secondary = comm;
                    } else {
                        primary = comm + mem_score;
                        secondary = peak_frac;
                    }
                    if (primary < best_primary ||
                        (primary == best_primary &&
                         secondary < best_secondary)) {
                        best_primary = primary;
                        best_secondary = secondary;
                        best_comm = comm;
                        materialize(best_pos);
                        found = true;
                    }
                };

                // (d) Sweep each band. The memory extremum uses a
                // monotonic deque (sliding-window maximum over the
                // per-device candidate totals along the band).
                std::vector<std::size_t> deque_pos;
                for (const auto &band : cand_windows.bands) {
                    const std::size_t B = band.size();
                    if (B < n)
                        continue;

                    // Island-change prefix: a window holds within
                    // one island iff no adjacent pair inside it
                    // changes islands (exact under any numbering).
                    chg_pref.resize(B);
                    chg_pref[0] = 0;
                    for (std::size_t i = 1; i < B; ++i)
                        chg_pref[i] =
                            chg_pref[i - 1] +
                            (pos_island[band[i]] !=
                                     pos_island[band[i - 1]]
                                 ? 1u
                                 : 0u);

                    // Residency prefixes along the band.
                    res_pref.assign(rows * (B + 1), 0);
                    for (std::size_t row = 0; row < rows; ++row) {
                        const std::size_t base = row * (B + 1);
                        const std::size_t fbase = row * F;
                        for (std::size_t i = 0; i < B; ++i)
                            res_pref[base + i + 1] =
                                res_pref[base + i] +
                                res_flag[fbase + band[i]];
                    }

                    // Link-class prefixes and the source-equal
                    // window along the band.
                    if (!exact_comm) {
                        for (std::size_t k = 0; k < inflows.size();
                             ++k) {
                            InflowCtx &ctx = inflow_ctx[k];
                            ctx.pref.assign(
                                kNumLinkClasses * (B + 1), 0);
                            for (std::size_t i = 0; i < B; ++i) {
                                const int cls = ctx.cls[band[i]];
                                for (int c = 0; c < kNumLinkClasses;
                                     ++c)
                                    ctx.pref[c * (B + 1) + i + 1] =
                                        ctx.pref[c * (B + 1) + i] +
                                        (cls == c ? 1u : 0u);
                            }

                            ctx.eq_window = -1;
                            const DeviceSet &src = *inflows[k].second;
                            if (src.size() == n) {
                                // Devices ascend along a band, so
                                // binary-search the band for the
                                // source's first device.
                                std::size_t lo = 0, hi = B;
                                while (lo < hi) {
                                    const std::size_t mid =
                                        (lo + hi) / 2;
                                    if (free[band[mid]] < src.front())
                                        lo = mid + 1;
                                    else
                                        hi = mid;
                                }
                                if (lo + n <= B) {
                                    bool equal = true;
                                    for (std::uint32_t i = 0; i < n;
                                         ++i) {
                                        if (free[band[lo + i]] !=
                                            src[i]) {
                                            equal = false;
                                            break;
                                        }
                                    }
                                    if (equal)
                                        ctx.eq_window =
                                            static_cast<
                                                std::ptrdiff_t>(lo);
                                }
                            }
                        }
                    }

                    deque_pos.clear();
                    std::size_t head = 0;
                    for (std::size_t i = 0; i < B; ++i) {
                        while (deque_pos.size() > head &&
                               cand_total[band[deque_pos.back()]] <=
                                   cand_total[band[i]])
                            deque_pos.pop_back();
                        deque_pos.push_back(i);
                        if (i + 1 < n)
                            continue; // window not yet full
                        const std::size_t w = i + 1 - n;
                        if (deque_pos[head] < w)
                            ++head;
                        const double max_total =
                            cand_total[band[deque_pos[head]]];

                        // Memory feasibility. Division by a positive
                        // constant is monotone, so dividing the
                        // window maximum equals the former
                        // per-device quotient maximum.
                        if (max_total > capacity)
                            continue;

                        // Inter-wave communication, accumulated in
                        // the same source order as always.
                        double comm = 0;
                        if (exact_comm && !inflows.empty()) {
                            // Exact fallback (see link_class
                            // comment).
                            win_buf.resize(n);
                            for (std::uint32_t j = 0; j < n; ++j)
                                win_buf[j] = free[band[w + j]];
                            for (const auto &[bytes, src] : inflows)
                                comm += coll.flowTime(bytes, *src,
                                                      win_buf);
                        } else {
                            for (std::size_t k = 0;
                                 k < inflows.size(); ++k) {
                                const InflowCtx &ctx = inflow_ctx[k];
                                if (static_cast<std::ptrdiff_t>(w) ==
                                    ctx.eq_window)
                                    continue; // data already resident
                                if (inflows[k].first <= 0)
                                    continue;
                                // Fastest link class present in the
                                // window (classes partition the
                                // devices, so the probe always finds
                                // one).
                                int cls =
                                    class_by_bw[kNumLinkClasses - 1];
                                for (int r = 0; r < kNumLinkClasses;
                                     ++r) {
                                    const int c = class_by_bw[r];
                                    if (ctx.pref[c * (B + 1) + w +
                                                 n] >
                                        ctx.pref[c * (B + 1) + w]) {
                                        cls = c;
                                        break;
                                    }
                                }
                                comm += ctx.flowByClass[cls];
                            }
                        }

                        // Parameter affinity (§3.5): reward windows
                        // whose devices already store this slice's
                        // parameter sets; placing elsewhere would
                        // grow the corresponding gradient-sync
                        // groups by roughly one ring pass of the
                        // non-resident bytes.
                        double non_resident_bytes = 0;
                        for (std::size_t s = 0; s < sig.size(); ++s) {
                            const std::int32_t row = sig_row[s];
                            if (row < 0)
                                continue;
                            const std::size_t base =
                                static_cast<std::size_t>(row) *
                                (B + 1);
                            if (res_pref[base + w + n] ==
                                res_pref[base + w])
                                non_resident_bytes += sig[s].bytes;
                        }
                        comm += options_.paramAffinityWeight * 2.0 *
                                non_resident_bytes /
                                topo_.config()
                                    .interIslandCollective.bandwidth;

                        if (cfg.tp > 1 &&
                            chg_pref[w + n - 1] != chg_pref[w])
                            comm += island_penalty;

                        consider(max_total, comm,
                                 [&](std::vector<std::uint32_t> &out) {
                                     out.assign(band.begin() +
                                                    static_cast<
                                                        std::ptrdiff_t>(
                                                        w),
                                                band.begin() +
                                                    static_cast<
                                                        std::ptrdiff_t>(
                                                        w + n));
                                 });
                    }
                }

                // (e) Explicit windows (cross-island unions etc.).
                for (const auto &win_pos : cand_windows.extras) {
                    panicIf(win_pos.size() != n,
                            "tryPlace: generator emitted a window of "
                            "the wrong size");
                    double max_total = 0;
                    for (std::uint32_t p : win_pos)
                        max_total =
                            std::max(max_total, cand_total[p]);
                    if (max_total > capacity)
                        continue;

                    double comm = 0;
                    if (exact_comm && !inflows.empty()) {
                        win_buf.resize(n);
                        for (std::uint32_t j = 0; j < n; ++j)
                            win_buf[j] = free[win_pos[j]];
                        for (const auto &[bytes, src] : inflows)
                            comm +=
                                coll.flowTime(bytes, *src, win_buf);
                    } else {
                        for (std::size_t k = 0; k < inflows.size();
                             ++k) {
                            const InflowCtx &ctx = inflow_ctx[k];
                            const DeviceSet &src = *inflows[k].second;
                            if (src.size() == n) {
                                bool equal = true;
                                for (std::uint32_t j = 0; j < n;
                                     ++j) {
                                    if (free[win_pos[j]] != src[j]) {
                                        equal = false;
                                        break;
                                    }
                                }
                                if (equal)
                                    continue; // data already resident
                            }
                            if (inflows[k].first <= 0)
                                continue;
                            int best_rank = kNumLinkClasses - 1;
                            for (std::uint32_t p : win_pos) {
                                const int r =
                                    rank_of_class[ctx.cls[p]];
                                if (r < best_rank)
                                    best_rank = r;
                                if (best_rank == 0)
                                    break;
                            }
                            comm +=
                                ctx.flowByClass[class_by_bw[best_rank]];
                        }
                    }

                    double non_resident_bytes = 0;
                    for (std::size_t s = 0; s < sig.size(); ++s) {
                        const std::int32_t row = sig_row[s];
                        if (row < 0)
                            continue;
                        const std::size_t fbase =
                            static_cast<std::size_t>(row) * F;
                        bool resident = false;
                        for (std::uint32_t p : win_pos) {
                            if (res_flag[fbase + p]) {
                                resident = true;
                                break;
                            }
                        }
                        if (!resident)
                            non_resident_bytes += sig[s].bytes;
                    }
                    comm += options_.paramAffinityWeight * 2.0 *
                            non_resident_bytes /
                            topo_.config()
                                .interIslandCollective.bandwidth;

                    if (cfg.tp > 1) {
                        const std::uint32_t first =
                            pos_island[win_pos.front()];
                        bool spans = false;
                        for (std::uint32_t p : win_pos) {
                            if (pos_island[p] != first) {
                                spans = true;
                                break;
                            }
                        }
                        if (spans)
                            comm += island_penalty;
                    }

                    consider(max_total, comm,
                             [&](std::vector<std::uint32_t> &out) {
                                 out = win_pos;
                             });
                }

                if (!found) {
                    if (fail_wave != nullptr)
                        *fail_wave = wi;
                    return false; // nothing fits: trigger fallback
                }
                best_win.resize(n);
                for (std::uint32_t j = 0; j < n; ++j)
                    best_win[j] = free[best_pos[j]];
            }

            // Commit the chosen window.
            for (DeviceId d : best_win) {
                state.activations[d] += act_share;
                for (const SliceParam &sp : sig) {
                    auto [it, inserted] =
                        state.params[d].emplace(sp.key, sp.share);
                    if (!inserted && sp.share > it->second)
                        it->second = sp.share;
                }
                state.markDirty(d);
            }

            // Attribute the committed flows to intra- vs
            // inter-island fabric, shard by shard (see
            // interIslandShardFraction).
            double entry_inter = 0;
            for (const auto &[bytes, src] : inflows) {
                const double t = coll.flowTime(bytes, *src, best_win);
                if (t > 0)
                    entry_inter +=
                        t * interIslandShardFraction(
                                topo_, *src, best_win,
                                island_scratch);
            }
            if (cfg.tp > 1 && !topo_.withinOneIsland(best_win))
                entry_inter += island_penalty;
            result.interIslandCommSeconds += entry_inter;

            if (log != nullptr)
                log->push_back({static_cast<std::uint32_t>(wi),
                                static_cast<std::uint32_t>(idx),
                                best_comm, entry_inter});

            e.devices = best_win;
            state.lastSlice[e.metaOp] = std::move(best_win);
            result.estimatedCommSeconds += best_comm;
            if (options_.strategy != PlacementStrategy::Sequential) {
                // Remove the committed devices from the free list
                // (single compaction pass; general windows need not
                // be contiguous runs of it).
                const DeviceSet &win = state.lastSlice[e.metaOp];
                std::size_t out = 0, take = 0;
                for (std::size_t pos = 0; pos < free.size(); ++pos) {
                    if (take < win.size() && free[pos] == win[take]) {
                        ++take;
                        continue;
                    }
                    free[out++] = free[pos];
                }
                free.resize(out);
            }
        }
    }

    result.peakBytes.assign(num_devices, 0.0);
    for (std::uint32_t d = 0; d < num_devices; ++d)
        result.peakBytes[d] = state.deviceTotal(d);
    return true;
}

} // namespace spindle
