#include "planner/allocation.h"

namespace spindle {

std::int64_t
MetaOpAllocation::totalOps() const
{
    std::int64_t total = 0;
    for (const AslTuple &t : tuples)
        total += t.l;
    return total;
}

} // namespace spindle
