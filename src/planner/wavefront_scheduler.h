/**
 * @file
 * Wavefront scheduler (paper §3.4, Alg. 1).
 *
 * Given a MetaLevel's discretized allocation plan, the scheduler
 * greedily crafts waves: (1) propose ASL-tuples to occupy as many
 * devices as possible, (2) extend allocations of tuples with large
 * remaining work when devices would idle, (3) slice the proposed
 * tuples so their time spans align with the shortest one, and
 * (4) conclude the wave. Per-level schedules are merged in MetaLevel
 * order, which reinstates all cross-level operator dependencies at
 * wave boundaries.
 */

#ifndef SPINDLE_PLANNER_WAVEFRONT_SCHEDULER_H
#define SPINDLE_PLANNER_WAVEFRONT_SCHEDULER_H

#include <vector>

#include "cost/scaling_curve.h"
#include "planner/execution_plan.h"

namespace spindle {

/** Scheduler tunables. */
struct SchedulerOptions
{
    /** Enable step 2 resource extension (ablatable). */
    bool extendResources = true;
};

/**
 * Crafts the wavefront schedule from per-level allocations.
 */
class WavefrontScheduler
{
  public:
    WavefrontScheduler(const MetaGraph &graph,
                       const std::vector<ScalingCurve> &curves,
                       std::uint32_t num_devices,
                       SchedulerOptions options = {});

    /**
     * Schedule one MetaLevel (Alg. 1).
     *
     * @param alloc allocator output for the level
     * @param t_start start time of the level's first wave
     * @param[in,out] waves waves are appended with global indices
     * @return the end time of the level's last wave
     */
    double scheduleLevel(const LevelAllocation &alloc, double t_start,
                         std::vector<Wave> &waves) const;

    /** Schedule all levels in order ("Merging MetaLevels"). */
    std::vector<Wave>
    scheduleAll(const std::vector<LevelAllocation> &allocs) const;

  private:
    const MetaGraph &graph_;
    const std::vector<ScalingCurve> &curves_;
    std::uint32_t num_devices_;
    SchedulerOptions options_;
};

} // namespace spindle

#endif // SPINDLE_PLANNER_WAVEFRONT_SCHEDULER_H
