#include "planner/resource_allocator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/thread_pool.h"

namespace spindle {

ResourceAllocator::ResourceAllocator(const MetaGraph &graph,
                                     const std::vector<ScalingCurve> &curves,
                                     std::uint32_t num_devices,
                                     AllocatorOptions options)
    : graph_(graph), curves_(curves), num_devices_(num_devices),
      options_(options)
{
    fatalIf(num_devices_ == 0, "ResourceAllocator: empty cluster");
    fatalIf(curves_.size() != graph_.numMetaOps(),
            "ResourceAllocator: one curve per MetaOp required");
}

MpspSolution
ResourceAllocator::solveContinuous(const std::vector<MetaOpId> &level) const
{
    fatalIf(level.empty(), "solveContinuous: empty level");
    const double n_total = static_cast<double>(num_devices_);

    // Alg. 2 line 1-2: bracket C~* between "everything fully
    // parallel" and "everything serial on one device".
    double c_low = 0, c_high = 0;
    for (MetaOpId m : level) {
        const ScalingCurve &curve = curves_[m];
        const double l = static_cast<double>(graph_.metaOp(m).numOps());
        const double t_min =
            curve.eval(std::min<double>(n_total, curve.maxValid()));
        c_low = std::max(c_low, t_min * l);
        c_high += curve.timeAt(curve.minValid()) * l;
    }
    c_high = std::max(c_high, c_low * (1 + options_.bisectionRelTol));

    auto alloc_sum = [&](double c) {
        double sum = 0;
        for (MetaOpId m : level) {
            const double l = static_cast<double>(graph_.metaOp(m).numOps());
            sum += curves_[m].inverse(c / l);
        }
        return sum;
    };

    // If even the fastest completion needs fewer than N devices, the
    // level saturates: every MetaOp takes its max useful allocation.
    if (alloc_sum(c_low) <= n_total) {
        MpspSolution sol;
        sol.cStar = c_low;
        for (MetaOpId m : level)
            sol.nStar.push_back(curves_[m].inverse(
                c_low / static_cast<double>(graph_.metaOp(m).numOps())));
        return sol;
    }

    // Alg. 2 lines 3-9: bisection on C~ until the summed fractional
    // allocations meet the capacity N.
    for (std::uint32_t it = 0; it < options_.maxBisectionIters; ++it) {
        const double c_mid = 0.5 * (c_low + c_high);
        if (alloc_sum(c_mid) < n_total)
            c_high = c_mid;
        else
            c_low = c_mid;
        if (c_high - c_low <= options_.bisectionRelTol * c_high)
            break;
    }

    MpspSolution sol;
    sol.cStar = c_high;
    double sum = 0;
    for (MetaOpId m : level) {
        const double l = static_cast<double>(graph_.metaOp(m).numOps());
        sol.nStar.push_back(curves_[m].inverse(sol.cStar / l));
        sum += sol.nStar.back();
    }
    // Renormalize the tiny bisection residue so Sum n* == N holds
    // exactly (Theorem 1's second condition).
    if (sum > 0 && sum > n_total) {
        for (double &n : sol.nStar)
            n *= n_total / sum;
    }
    return sol;
}

MetaOpAllocation
ResourceAllocator::discretize(MetaOpId m, double n_star,
                              double c_star) const
{
    const ScalingCurve &curve = curves_[m];
    const std::int64_t num_ops = graph_.metaOp(m).numOps();
    MetaOpAllocation out;
    out.metaOp = m;

    auto [n_lo, n_hi] = curve.bracketValid(n_star);

    if (n_lo == 0) {
        // n* below the smallest valid allocation: the paired lower
        // tuple is a dummy <0, ., .> and is ignored (§3.3); all
        // operators run on the smallest valid allocation, finishing
        // no later than C~* because T(n_hi) < T(n*).
        out.tuples.push_back({n_hi, -1, num_ops});
        return out;
    }
    if (n_lo == n_hi) {
        out.tuples.push_back({n_lo, -1, num_ops});
        return out;
    }

    // Conds. (10a)/(10b): split L into l_hi ops on n_hi devices and
    // l_lo ops on n_lo devices such that the serial execution of the
    // two tuples lasts exactly C~*.
    const double t_lo = curve.timeAt(n_lo);
    const double t_hi = curve.timeAt(n_hi);
    const double l_total = static_cast<double>(num_ops);
    double l_hi_real;
    if (nearlyEqual(t_lo, t_hi)) {
        l_hi_real = l_total;
    } else {
        l_hi_real = (c_star - t_lo * l_total) / (t_hi - t_lo);
        l_hi_real = std::clamp(l_hi_real, 0.0, l_total);
    }

    // Reinstate l as integers: round, preserving (10a) exactly and
    // introducing only minor bias into (10b).
    std::int64_t l_hi = std::clamp<std::int64_t>(
        roundNearest(l_hi_real), 0, num_ops);
    std::int64_t l_lo = num_ops - l_hi;

    if (l_hi > 0)
        out.tuples.push_back({n_hi, -1, l_hi});
    if (l_lo > 0)
        out.tuples.push_back({n_lo, -1, l_lo});
    return out;
}

LevelAllocation
ResourceAllocator::allocateLevel(const std::vector<MetaOpId> &level) const
{
    LevelAllocation out;
    out.metaOps = level;
    out.continuous = solveContinuous(level);
    out.plans.reserve(level.size());
    for (std::size_t i = 0; i < level.size(); ++i) {
        out.plans.push_back(discretize(level[i], out.continuous.nStar[i],
                                       out.continuous.cStar));
    }
    return out;
}

std::vector<LevelAllocation>
ResourceAllocator::allocateAll(ThreadPool *pool) const
{
    const std::size_t levels = graph_.numLevels();
    std::vector<LevelAllocation> out(levels);
    maybeParallelFor(pool, /*parallel=*/true, 0, levels, 1,
                     [&](std::size_t k) {
                         out[k] = allocateLevel(graph_.level(k));
                     });
    return out;
}

double
ResourceAllocator::theoreticalOptimum() const
{
    double total = 0;
    for (std::size_t k = 0; k < graph_.numLevels(); ++k)
        total += solveContinuous(graph_.level(k)).cStar;
    return total;
}

} // namespace spindle
