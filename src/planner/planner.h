/**
 * @file
 * The Spindle execution planner (paper Fig. 2, left half): graph
 * contraction feeds the scalability estimator (§3.2), the resource
 * allocator (§3.3), the wavefront scheduler (§3.4) and device
 * placement (§3.5), producing the execution plan the runtime engine
 * consumes.
 */

#ifndef SPINDLE_PLANNER_PLANNER_H
#define SPINDLE_PLANNER_PLANNER_H

#include <memory>

#include "common/thread_pool.h"
#include "cost/estimator.h"
#include "planner/placement.h"
#include "planner/resource_allocator.h"
#include "planner/wavefront_scheduler.h"

namespace spindle {

/** Aggregated options of every planning stage. */
struct PlannerOptions
{
    EstimatorOptions estimator;
    AllocatorOptions allocator;
    SchedulerOptions scheduler;
    PlacementOptions placement;

    /** Memory accounting regime used by placement (ZeRO flags). */
    MemoryParams memory;

    /**
     * Planner worker threads: 1 (default) plans serially on the
     * calling thread, 0 resolves to the machine's hardware
     * concurrency, and absurd values warn and clamp
     * (resolveThreadCount). Estimation, per-MetaLevel allocation and
     * the placement scoring sweep parallelize; scheduling stays
     * serial. Emitted plans are byte-identical at every thread
     * count (planner_equivalence_test pins {1, 2, 8}).
     */
    std::uint32_t threads = 1;
};

/** Wall-clock spent in each planning phase, seconds. */
struct PlannerPhaseSeconds
{
    double estimation = 0; ///< §3.2 curve profiling + fitting
    double allocation = 0; ///< §3.3 MPSP + discretization
    double scheduling = 0; ///< §3.4 wavefront crafting
    double placement = 0;  ///< §3.5 device mapping
};

/** Everything the planner produces for one workload. */
struct PlannerOutput
{
    ExecutionPlan plan;

    /** Scaling curves per MetaOp (kept for analysis and Fig. 4). */
    std::vector<ScalingCurve> curves;

    PlacementResult placement;

    /** Wall-clock spent planning, seconds (Fig. 12). */
    double planningSeconds = 0;

    /** Per-phase breakdown of planningSeconds (scaling benches). */
    PlannerPhaseSeconds phaseSeconds;
};

/**
 * End-to-end planner facade over a hardware oracle.
 */
class ExecutionPlanner
{
  public:
    explicit ExecutionPlanner(const HardwareModel &hw,
                              PlannerOptions options = {});

    /**
     * Plan one training iteration of the workload in @p graph on
     * the full cluster. The returned plan is validated against the
     * paper's structural invariants before being handed out.
     */
    PlannerOutput plan(const MetaGraph &graph) const;

    const PlannerOptions &options() const { return options_; }
    const HardwareModel &hardware() const { return hw_; }

    /** Resolved worker-thread count (options().threads after
     *  resolveThreadCount: 0 -> hardware_concurrency, clamped). */
    std::uint32_t resolvedThreads() const { return threads_; }

  private:
    const HardwareModel &hw_;
    PlannerOptions options_;
    std::uint32_t threads_ = 1;

    /** Worker pool shared by every plan() call (created only when
     *  threads_ > 1; plan() is not itself thread-safe). */
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace spindle

#endif // SPINDLE_PLANNER_PLANNER_H
