/**
 * @file
 * The Spindle execution planner (paper Fig. 2, left half): graph
 * contraction feeds the scalability estimator (§3.2), the resource
 * allocator (§3.3), the wavefront scheduler (§3.4) and device
 * placement (§3.5), producing the execution plan the runtime engine
 * consumes.
 *
 * Two entry points:
 *  - plan() always runs the full pipeline from scratch — it is the
 *    byte-identity reference and never reads or writes the cache;
 *  - replan() serves dynamic arrivals/departures (Fig. 13) through a
 *    PlanCache: a workload whose value signature was planned before
 *    in the same (topology, options) context is returned from the
 *    cache with its MetaOp ids remapped, and on a miss the pipeline
 *    reuses cached scaling curves, level allocations, and the
 *    committed placement prefix of the best cached neighbor — so
 *    replan cost scales with the perturbation, not the cluster.
 *    replan() output is byte-identical to plan() on the same graph
 *    (pinned by planner_equivalence_test).
 */

#ifndef SPINDLE_PLANNER_PLANNER_H
#define SPINDLE_PLANNER_PLANNER_H

#include <memory>

#include "common/thread_pool.h"
#include "cost/estimator.h"
#include "planner/placement.h"
#include "planner/plan_cache.h"
#include "planner/resource_allocator.h"
#include "planner/wavefront_scheduler.h"

namespace spindle {

/** Aggregated options of every planning stage. */
struct PlannerOptions
{
    EstimatorOptions estimator;
    AllocatorOptions allocator;
    SchedulerOptions scheduler;
    PlacementOptions placement;

    /** Memory accounting regime used by placement (ZeRO flags). */
    MemoryParams memory;

    /**
     * Planner worker threads: 1 (default) plans serially on the
     * calling thread, 0 resolves to the machine's hardware
     * concurrency, and absurd values warn and clamp
     * (resolveThreadCount). Estimation, per-MetaLevel allocation and
     * the placement scoring sweep parallelize; scheduling stays
     * serial. Emitted plans are byte-identical at every thread
     * count (planner_equivalence_test pins {1, 2, 8}).
     */
    std::uint32_t threads = 1;

    /**
     * Plan cache consulted by replan() (non-owning; must outlive the
     * planner). nullptr gives the planner a lazily created private
     * cache. Sharing one cache between planners is safe, including
     * planners replanning concurrently on different threads —
     * PlanCache is internally synchronized (striped locks), and
     * entries are keyed by a (topology fingerprint, options
     * fingerprint) context, so near-identical workloads from
     * different tenants dedupe into full hits while different
     * contexts never collide. Excluded from the context fingerprint
     * itself, like `threads`.
     */
    PlanCache *cache = nullptr;
};

/** Wall-clock spent in each planning phase, seconds. */
struct PlannerPhaseSeconds
{
    double estimation = 0; ///< §3.2 curve profiling + fitting
    double allocation = 0; ///< §3.3 MPSP + discretization
    double scheduling = 0; ///< §3.4 wavefront crafting
    double placement = 0;  ///< §3.5 device mapping
    double diff = 0;       ///< replan(): signature build + cache probe
};

/**
 * Phase names, in PlannerPhaseSeconds member order. Benchmarks and
 * baselines refer to phases by these names (e.g. the
 * `serial_tail_phase` field of BENCH_planner.json) rather than by
 * positional index, which would silently shift if a phase were ever
 * added or reordered.
 */
inline constexpr const char *kPlannerPhaseNames[] = {
    "estimation", "allocation", "scheduling", "placement", "diff",
};

inline constexpr std::size_t kNumPlannerPhases =
    sizeof(kPlannerPhaseNames) / sizeof(kPlannerPhaseNames[0]);

/** Name of phase @p index, or "unknown" when out of range. */
inline const char *
plannerPhaseName(std::size_t index)
{
    return index < kNumPlannerPhases ? kPlannerPhaseNames[index]
                                     : "unknown";
}

/** What one replan() call reused. All-zero for plan(). */
struct ReplanStats
{
    /** replan() took the cache path (false: fell back to plan()). */
    bool attempted = false;

    /** Whole plan served from the cache (ids remapped, no pipeline
     *  stage ran). */
    bool fullHit = false;

    std::uint32_t totalLevels = 0;

    /** Leading levels whose placement was replayed, not re-scored
     *  (== totalLevels on a full hit). */
    std::uint32_t reusedLevels = 0;

    /** Placement waves covered by the replayed prefix. */
    std::uint32_t prefixWaves = 0;

    std::uint64_t curveHits = 0;
    std::uint64_t curveMisses = 0;
    std::uint64_t allocHits = 0;
    std::uint64_t allocMisses = 0;
};

/** Everything the planner produces for one workload. */
struct PlannerOutput
{
    ExecutionPlan plan;

    /** Scaling curves per MetaOp (kept for analysis and Fig. 4). */
    std::vector<ScalingCurve> curves;

    PlacementResult placement;

    /** Wall-clock spent planning, seconds (Fig. 12). */
    double planningSeconds = 0;

    /** Per-phase breakdown of planningSeconds (scaling benches). */
    PlannerPhaseSeconds phaseSeconds;

    /** Cache reuse accounting of the replan() call that produced
     *  this output (all-zero when plan() produced it). */
    ReplanStats replan;
};

/**
 * End-to-end planner facade over a hardware oracle.
 */
class ExecutionPlanner
{
  public:
    explicit ExecutionPlanner(const HardwareModel &hw,
                              PlannerOptions options = {});

    /**
     * Plan one training iteration of the workload in @p graph on
     * the full cluster. The returned plan is validated against the
     * paper's structural invariants before being handed out. Always
     * from scratch; never touches the plan cache.
     */
    PlannerOutput plan(const MetaGraph &graph) const;

    /**
     * Incremental replan for dynamic arrivals/departures: plan
     * @p graph, reusing every cached result its value signature
     * licenses (see the file comment). Byte-identical to plan() on
     * the same graph. Falls back to plan() outright when estimator
     * noise is enabled (noise draws are seeded per MetaOp id, which
     * value signatures deliberately ignore) or a custom window
     * generator is installed (an opaque pointer the options
     * fingerprint cannot capture).
     */
    PlannerOutput replan(const MetaGraph &graph) const;

    const PlannerOptions &options() const { return options_; }
    const HardwareModel &hardware() const { return hw_; }

    /** Resolved worker-thread count (options().threads after
     *  resolveThreadCount: 0 -> hardware_concurrency, clamped). */
    std::uint32_t resolvedThreads() const { return threads_; }

    /** The cache replan() consults: options().cache when set, else
     *  this planner's private cache (created on first use). */
    PlanCache &planCache() const;

  private:
    void remapCachedPlan(const PlanCache::CachedPlan &hit,
                         const MetaGraph &graph, PlannerOutput &out) const;

    const HardwareModel &hw_;
    PlannerOptions options_;
    std::uint32_t threads_ = 1;

    /** Worker pool shared by every plan() call (created only when
     *  threads_ > 1; plan() is not itself thread-safe). */
    std::unique_ptr<ThreadPool> pool_;

    /** Private cache backing planCache() when options_.cache is
     *  null (mutable: replan() is logically const — its output is
     *  independent of cache state). */
    mutable std::unique_ptr<PlanCache> owned_cache_;

    /** Cache context: topology fingerprint ⊕ options fingerprint. */
    std::uint64_t cache_context_ = 0;
};

} // namespace spindle

#endif // SPINDLE_PLANNER_PLANNER_H
