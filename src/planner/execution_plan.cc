#include "planner/execution_plan.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.h"
#include "common/units.h"

namespace spindle {

std::uint32_t
Wave::devicesAllocated() const
{
    std::uint32_t total = 0;
    for (const WaveEntry &e : entries)
        total += e.n;
    return total;
}

void
ExecutionPlan::validate(const MetaGraph &graph) const
{
    std::map<MetaOpId, std::int64_t> ops_done;

    for (const Wave &wave : waves) {
        panicIf(wave.entries.empty(), "validate: empty wave");
        panicIf(wave.devicesAllocated() > numDevices,
                strCat("validate: wave ", wave.index, " allocates ",
                       wave.devicesAllocated(), " > N=", numDevices));

        std::vector<MetaOpId> seen;
        DeviceSet used;
        std::map<MetaOpId, std::int64_t> wave_ops;
        for (const WaveEntry &e : wave.entries) {
            panicIf(e.numOps <= 0, "validate: empty wave entry");
            panicIf(e.n == 0, "validate: zero-device entry");
            panicIf(std::count(seen.begin(), seen.end(), e.metaOp) > 0,
                    strCat("validate: MetaOp ", e.metaOp,
                           " appears twice in wave ", wave.index));
            seen.push_back(e.metaOp);

            const MetaOp &m = graph.metaOp(e.metaOp);
            if (e.opBegin == 0) {
                // Eq. 3: every predecessor finished in a strictly
                // earlier wave (ops_done holds the pre-wave state)
                // before the first slice of this MetaOp runs.
                for (MetaOpId p : graph.predecessors(e.metaOp)) {
                    panicIf(ops_done[p] != graph.metaOp(p).numOps(),
                            strCat("validate: MetaOp ", e.metaOp,
                                   " starts before predecessor ", p,
                                   " finished"));
                }
            }
            panicIf(e.opBegin != ops_done[e.metaOp],
                    strCat("validate: MetaOp ", e.metaOp,
                           " slices are not contiguous"));
            wave_ops[e.metaOp] = e.numOps;
            panicIf(e.opBegin + e.numOps > m.numOps(),
                    strCat("validate: MetaOp ", e.metaOp,
                           " over-executes"));

            if (!e.devices.empty()) {
                panicIf(e.devices.size() != e.n,
                        strCat("validate: entry device set size ",
                               e.devices.size(), " != n=", e.n));
                panicIf(!isCanonicalDeviceSet(e.devices),
                        "validate: device set not canonical");
                panicIf(intersects(used, e.devices),
                        strCat("validate: overlapping device sets in "
                               "wave ", wave.index));
                used = unionOf(used, e.devices);
            }
        }
        for (const auto &[m, ops] : wave_ops)
            ops_done[m] += ops;
    }

    for (const MetaOp &m : graph.metaOps()) {
        panicIf(ops_done[m.id] != m.numOps(),
                strCat("validate: MetaOp ", m.id, " executed ",
                       ops_done[m.id], " of ", m.numOps(), " ops"));
    }
}

std::string
ExecutionPlan::str(const MetaGraph &graph) const
{
    std::ostringstream os;
    os << "ExecutionPlan: " << waves.size() << " waves on "
       << numDevices << " devices, estimated span "
       << toMs(estimatedSpan) << " ms\n";
    for (const Wave &w : waves) {
        os << "  wave " << w.index << " (level " << w.level << ", "
           << toMs(w.duration) << " ms):\n";
        for (const WaveEntry &e : w.entries) {
            os << "    " << graph.metaOp(e.metaOp).name << " ops ["
               << e.opBegin << ", " << e.opBegin + e.numOps << ") on "
               << e.n << " devices";
            if (!e.devices.empty())
                os << " " << deviceSetStr(e.devices);
            os << "\n";
        }
    }
    return os.str();
}

} // namespace spindle
