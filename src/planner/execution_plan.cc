#include "planner/execution_plan.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.h"
#include "common/units.h"

namespace spindle {

std::uint32_t
Wave::devicesAllocated() const
{
    std::uint32_t total = 0;
    for (const WaveEntry &e : entries)
        total += e.n;
    return total;
}

namespace {

/**
 * Data-producer waves of every wave: for each entry, the wave that
 * produced its inputs (each predecessor MetaOp's final slice for a
 * first slice, the same MetaOp's previous slice otherwise). These
 * are exactly the waves transmissions are sourced from.
 */
std::vector<std::vector<std::int32_t>>
dataProducerWaves(const MetaGraph &graph, const std::vector<Wave> &waves)
{
    std::map<std::pair<MetaOpId, std::int64_t>, std::int32_t> producer;
    std::vector<std::vector<std::int32_t>> preds(waves.size());
    // Guard-then-panic below: this runs per entry on every planned
    // plan, and panicIf's by-value message strings are not free.
    for (std::size_t i = 0; i < waves.size(); ++i) {
        const Wave &w = waves[i];
        if (w.index != static_cast<std::int32_t>(i))
            panic("readiness: wave index does not match its position");
        for (const WaveEntry &e : w.entries) {
            if (e.opBegin == 0) {
                for (const MetaEdge &edge : graph.edges()) {
                    if (edge.dst != e.metaOp)
                        continue;
                    auto it = producer.find(
                        {edge.src, graph.metaOp(edge.src).numOps()});
                    if (it == producer.end())
                        panic("readiness: predecessor output missing "
                              "(invalid plan)");
                    preds[i].push_back(it->second);
                }
            } else {
                auto it = producer.find({e.metaOp, e.opBegin});
                if (it == producer.end())
                    panic("readiness: missing previous slice");
                preds[i].push_back(it->second);
            }
        }
        for (const WaveEntry &e : w.entries)
            producer[{e.metaOp, e.opBegin + e.numOps}] = w.index;
    }
    return preds;
}

void
sortUnique(std::vector<std::int32_t> &v)
{
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

} // namespace

std::vector<std::vector<std::int32_t>>
computeWaveReadiness(const MetaGraph &graph,
                     const std::vector<Wave> &waves)
{
    std::vector<std::vector<std::int32_t>> preds =
        dataProducerWaves(graph, waves);

    // Program order within a stream.
    std::map<std::int32_t, std::int32_t> last_of_stream;
    // Per device-group predecessors: the latest earlier wave that
    // touched each device (placed plans only). Dense by device id —
    // ids are dense by construction, and the map variant dominated
    // the planner's serial tail at 256 GPUs.
    std::vector<std::int32_t> last_on_device;

    for (std::size_t i = 0; i < waves.size(); ++i) {
        const Wave &w = waves[i];
        auto it = last_of_stream.find(w.stream);
        if (it != last_of_stream.end())
            preds[i].push_back(it->second);
        last_of_stream[w.stream] = w.index;

        for (const WaveEntry &e : w.entries) {
            for (DeviceId d : e.devices) {
                if (d >= last_on_device.size())
                    last_on_device.resize(d + 1, -1);
                const std::int32_t last = last_on_device[d];
                if (last >= 0 && last != w.index)
                    preds[i].push_back(last);
            }
        }
        for (const WaveEntry &e : w.entries)
            for (DeviceId d : e.devices)
                last_on_device[d] = w.index;

        sortUnique(preds[i]);
    }
    return preds;
}

void
annotateWaveReadiness(const MetaGraph &graph, std::vector<Wave> &waves)
{
    std::vector<std::vector<std::int32_t>> preds =
        computeWaveReadiness(graph, waves);
    for (std::size_t i = 0; i < waves.size(); ++i)
        waves[i].predecessors = std::move(preds[i]);
}

bool
hasWaveReadiness(const std::vector<Wave> &waves)
{
    return std::any_of(waves.begin(), waves.end(), [](const Wave &w) {
        return !w.predecessors.empty();
    });
}

void
ExecutionPlan::annotateReadiness(const MetaGraph &graph)
{
    annotateWaveReadiness(graph, waves);
}

bool
ExecutionPlan::hasReadiness() const
{
    return hasWaveReadiness(waves);
}

void
ExecutionPlan::validate(const MetaGraph &graph) const
{
    std::map<MetaOpId, std::int64_t> ops_done;

    // Checks below are guard-then-panic: validate runs on every
    // planned plan (256+ GPUs, thousands of entry/device probes),
    // and panicIf's eagerly built message strings dominated the
    // planner's serial tail.
    std::vector<char> used; // dense in-wave device occupancy
    for (const Wave &wave : waves) {
        panicIf(wave.entries.empty(), "validate: empty wave");
        if (wave.devicesAllocated() > numDevices)
            panic(strCat("validate: wave ", wave.index, " allocates ",
                         wave.devicesAllocated(), " > N=", numDevices));

        std::vector<MetaOpId> seen;
        used.assign(numDevices, 0);
        std::map<MetaOpId, std::int64_t> wave_ops;
        for (const WaveEntry &e : wave.entries) {
            if (e.numOps <= 0)
                panic("validate: empty wave entry");
            if (e.n == 0)
                panic("validate: zero-device entry");
            if (std::count(seen.begin(), seen.end(), e.metaOp) > 0)
                panic(strCat("validate: MetaOp ", e.metaOp,
                             " appears twice in wave ", wave.index));
            seen.push_back(e.metaOp);

            const MetaOp &m = graph.metaOp(e.metaOp);
            if (e.opBegin == 0) {
                // Eq. 3: every predecessor finished in a strictly
                // earlier wave (ops_done holds the pre-wave state)
                // before the first slice of this MetaOp runs.
                for (MetaOpId p : graph.predecessors(e.metaOp)) {
                    if (ops_done[p] != graph.metaOp(p).numOps())
                        panic(strCat("validate: MetaOp ", e.metaOp,
                                     " starts before predecessor ", p,
                                     " finished"));
                }
            }
            if (e.opBegin != ops_done[e.metaOp])
                panic(strCat("validate: MetaOp ", e.metaOp,
                             " slices are not contiguous"));
            wave_ops[e.metaOp] = e.numOps;
            if (e.opBegin + e.numOps > m.numOps())
                panic(strCat("validate: MetaOp ", e.metaOp,
                             " over-executes"));

            if (!e.devices.empty()) {
                if (e.devices.size() != e.n)
                    panic(strCat("validate: entry device set size ",
                                 e.devices.size(), " != n=", e.n));
                if (!isCanonicalDeviceSet(e.devices))
                    panic("validate: device set not canonical");
                for (DeviceId d : e.devices) {
                    if (d >= used.size())
                        panic(strCat("validate: device id ", d,
                                     " out of range in wave ",
                                     wave.index));
                    if (used[d])
                        panic(strCat("validate: overlapping device "
                                     "sets in wave ", wave.index));
                    used[d] = 1;
                }
            }
        }
        for (const auto &[m, ops] : wave_ops)
            ops_done[m] += ops;
    }

    for (const MetaOp &m : graph.metaOps()) {
        panicIf(ops_done[m.id] != m.numOps(),
                strCat("validate: MetaOp ", m.id, " executed ",
                       ops_done[m.id], " of ", m.numOps(), " ops"));
    }

    // Readiness edges (when annotated): well-formed and covering
    // every data producer, so event-driven dispatch can never admit
    // a wave before its inputs exist.
    if (hasWaveReadiness(waves)) {
        for (std::size_t i = 0; i < waves.size(); ++i) {
            const auto &preds = waves[i].predecessors;
            if (!std::is_sorted(preds.begin(), preds.end()) ||
                std::adjacent_find(preds.begin(), preds.end()) !=
                    preds.end())
                panic(strCat("validate: readiness edges of wave ", i,
                             " are not sorted and unique"));
            for (std::int32_t p : preds)
                if (p < 0 || p >= static_cast<std::int32_t>(i))
                    panic(strCat("validate: wave ", i,
                                 " has readiness predecessor ", p,
                                 " that is not strictly earlier"));
        }
        const std::vector<std::vector<std::int32_t>> data =
            dataProducerWaves(graph, waves);
        for (std::size_t i = 0; i < waves.size(); ++i) {
            for (std::int32_t p : data[i]) {
                if (p == waves[i].index)
                    continue; // same-wave production needs no edge
                if (!std::binary_search(waves[i].predecessors.begin(),
                                        waves[i].predecessors.end(),
                                        p))
                    panic(strCat("validate: wave ", i,
                                 " misses readiness edge to data "
                                 "producer wave ", p));
            }
        }
    }
}

std::string
ExecutionPlan::str(const MetaGraph &graph) const
{
    std::ostringstream os;
    os << "ExecutionPlan: " << waves.size() << " waves on "
       << numDevices << " devices, estimated span "
       << toMs(estimatedSpan) << " ms\n";
    for (const Wave &w : waves) {
        os << "  wave " << w.index << " (level " << w.level << ", "
           << toMs(w.duration) << " ms):\n";
        for (const WaveEntry &e : w.entries) {
            os << "    " << graph.metaOp(e.metaOp).name << " ops ["
               << e.opBegin << ", " << e.opBegin + e.numOps << ") on "
               << e.n << " devices";
            if (!e.devices.empty())
                os << " " << deviceSetStr(e.devices);
            os << "\n";
        }
    }
    return os.str();
}

} // namespace spindle
