#include "planner/plan_cache.h"

#include <bit>

#include "common/logging.h"

namespace spindle {

namespace {

/** Order-sensitive 64-bit hash combiner (FNV-1a over words). */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v;
    return h * 0x100000001b3ull;
}

std::uint64_t
mix(std::uint64_t h, double v)
{
    return mix(h, std::bit_cast<std::uint64_t>(v));
}

/**
 * Raw parameter dedup key, mirroring placement's: shared parameter
 * sets map to their ParamKey, unshared operators to a unique
 * negative key derived from the operator id. The raw values (not
 * just the sharing structure) go into the signature because
 * placement's per-device memory maps are keyed by them and its FP
 * summation order follows the key values.
 */
std::int64_t
rawParamKey(const OperatorDesc &op)
{
    if (op.paramKey != kNoParam)
        return op.paramKey;
    return -(static_cast<std::int64_t>(op.id) + 2);
}

std::uint64_t
hashSignature(const GraphSignature &sig)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = mix(h, static_cast<std::uint64_t>(sig.levels.size()));
    for (const LevelSignature &level : sig.levels) {
        h = mix(h, static_cast<std::uint64_t>(level.metaOps.size()));
        for (const MetaOpSignature &m : level.metaOps) {
            h = mix(h, static_cast<std::uint64_t>(m.type));
            h = mix(h, static_cast<std::uint64_t>(m.input.batch));
            h = mix(h, static_cast<std::uint64_t>(m.input.seq));
            h = mix(h, static_cast<std::uint64_t>(m.input.hidden));
            h = mix(h, m.flopsFwdPerOp);
            h = mix(h, m.paramBytesPerOp);
            h = mix(h, m.activationBytes);
            h = mix(h, static_cast<std::uint64_t>(m.numOps));
            for (const MetaOpSignature::MemberParam &p : m.memberParams) {
                h = mix(h, static_cast<std::uint64_t>(p.key));
                h = mix(h, p.bytes);
            }
            for (const MetaOpSignature::Inflow &f : m.inflows) {
                h = mix(h, static_cast<std::uint64_t>(f.srcLevel));
                h = mix(h, static_cast<std::uint64_t>(f.srcPos));
                h = mix(h, f.flowBytes);
            }
        }
    }
    return h;
}

} // namespace

std::size_t
GraphSignature::commonPrefixLevels(const GraphSignature &o) const
{
    const std::size_t bound = std::min(levels.size(), o.levels.size());
    std::size_t k = 0;
    while (k < bound && levels[k] == o.levels[k])
        ++k;
    return k;
}

GraphSignature
signatureOf(const MetaGraph &graph)
{
    GraphSignature sig;
    sig.levels.resize(graph.numLevels());

    // Positional address of every MetaOp: (level, index within
    // level). Within a level, ids ascend with position, which is
    // what makes positional identity line up with every id-ordered
    // tie-break in the pipeline.
    std::vector<std::pair<std::int32_t, std::int32_t>> pos_of(
        graph.numMetaOps(), {-1, -1});
    for (std::size_t k = 0; k < graph.numLevels(); ++k) {
        const std::vector<MetaOpId> &ids = graph.level(k);
        for (std::size_t p = 0; p < ids.size(); ++p)
            pos_of[ids[p]] = {static_cast<std::int32_t>(k),
                              static_cast<std::int32_t>(p)};
    }

    for (std::size_t k = 0; k < graph.numLevels(); ++k) {
        const std::vector<MetaOpId> &ids = graph.level(k);
        sig.levels[k].metaOps.reserve(ids.size());
        for (MetaOpId id : ids) {
            const MetaOp &m = graph.metaOp(id);
            MetaOpSignature s;
            s.type = m.type;
            s.input = m.input;
            s.flopsFwdPerOp = m.flopsFwdPerOp;
            s.paramBytesPerOp = m.paramBytesPerOp;
            s.activationBytes = m.activationBytes;
            s.numOps = m.numOps();
            s.memberParams.reserve(m.ops.size());
            for (OpId op_id : m.ops) {
                const OperatorDesc &op = graph.base().op(op_id);
                s.memberParams.push_back(
                    {rawParamKey(op), op.paramBytes});
            }
            sig.levels[k].metaOps.push_back(std::move(s));
        }
    }

    // Inbound flows, recorded in edge-iteration order per target.
    for (const MetaEdge &e : graph.edges()) {
        const auto [sl, sp] = pos_of[e.src];
        const auto [dl, dp] = pos_of[e.dst];
        sig.levels[dl].metaOps[dp].inflows.push_back(
            {sl, sp, e.flowBytes});
    }

    sig.hash = hashSignature(sig);
    return sig;
}

PlanCache::PlanCache(std::size_t max_plans_per_context)
    : max_plans_(std::max<std::size_t>(1, max_plans_per_context))
{
}

PlanCache::Stripe &
PlanCache::stripeOf(std::uint64_t ctx) const
{
    // Contexts are already FNV-mixed fingerprints, so the low bits
    // spread well; re-mix once to decouple from kStripes anyway.
    return stripes_[(ctx * 0x9e3779b97f4a7c15ull >> 32) % kStripes];
}

PlanCache::PlanPtr
PlanCache::findPlan(std::uint64_t ctx, const GraphSignature &sig) const
{
    Stripe &s = stripeOf(ctx);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.contexts.find(ctx);
    if (it == s.contexts.end())
        return nullptr;
    // Newest first: the storm pattern revisits recent task mixes.
    for (auto plan = it->second.plans.rbegin();
         plan != it->second.plans.rend(); ++plan)
        if ((*plan)->sig.hash == sig.hash &&
            (*plan)->sig.equalLevels(sig))
            return *plan;
    return nullptr;
}

PlanCache::PlanPtr
PlanCache::bestPrefixDonor(std::uint64_t ctx, const GraphSignature &sig,
                           std::size_t *prefix_levels) const
{
    *prefix_levels = 0;
    Stripe &s = stripeOf(ctx);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.contexts.find(ctx);
    if (it == s.contexts.end())
        return nullptr;
    PlanPtr best;
    for (auto plan = it->second.plans.rbegin();
         plan != it->second.plans.rend(); ++plan) {
        if ((*plan)->commitLog.empty())
            continue; // fallback plans cannot donate a replay prefix
        const std::size_t common = sig.commonPrefixLevels((*plan)->sig);
        if (common > *prefix_levels) {
            *prefix_levels = common;
            best = *plan;
        }
    }
    return best;
}

void
PlanCache::storePlan(std::uint64_t ctx, CachedPlan plan)
{
    // Allocate the node outside the lock; only the list splice and
    // the duplicate scan run under it.
    PlanPtr entry = std::make_shared<CachedPlan>(std::move(plan));
    Stripe &s = stripeOf(ctx);
    std::lock_guard<std::mutex> lk(s.mu);
    Context &context = s.contexts[ctx];
    // Concurrent misses on one signature both plan and both store;
    // the bytes are identical, so keeping the first (and not aging
    // out a distinct neighbor to hold a duplicate) is value-free.
    for (const PlanPtr &existing : context.plans)
        if (existing->sig.hash == entry->sig.hash &&
            existing->sig.equalLevels(entry->sig))
            return;
    context.plans.push_back(std::move(entry));
    while (context.plans.size() > max_plans_) {
        context.plans.pop_front();
        stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    }
}

std::optional<ScalingCurve>
PlanCache::findCurve(std::uint64_t ctx, const CurveKey &key) const
{
    Stripe &s = stripeOf(ctx);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.contexts.find(ctx);
    if (it == s.contexts.end())
        return std::nullopt;
    for (const auto &[cached_key, curve] : it->second.curves)
        if (cached_key == key)
            return curve;
    return std::nullopt;
}

void
PlanCache::storeCurve(std::uint64_t ctx, const CurveKey &key,
                      const ScalingCurve &curve)
{
    Stripe &s = stripeOf(ctx);
    std::lock_guard<std::mutex> lk(s.mu);
    Context &context = s.contexts[ctx];
    for (const auto &[cached_key, cached] : context.curves)
        if (cached_key == key)
            return; // racing miss already stored identical bytes
    context.curves.emplace_back(key, curve);
}

std::optional<LevelAllocation>
PlanCache::findLevelAlloc(std::uint64_t ctx, const LevelKey &key) const
{
    Stripe &s = stripeOf(ctx);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.contexts.find(ctx);
    if (it == s.contexts.end())
        return std::nullopt;
    for (const auto &[cached_key, alloc] : it->second.levels)
        if (cached_key == key)
            return alloc;
    return std::nullopt;
}

void
PlanCache::storeLevelAlloc(std::uint64_t ctx, const LevelKey &key,
                           const LevelAllocation &alloc)
{
    Stripe &s = stripeOf(ctx);
    std::lock_guard<std::mutex> lk(s.mu);
    Context &context = s.contexts[ctx];
    for (const auto &[cached_key, cached] : context.levels)
        if (cached_key == key)
            return;
    context.levels.emplace_back(key, alloc);
}

PlanCache::Stats
PlanCache::stats() const
{
    Stats out;
    out.fullHits = stats_.fullHits.load(std::memory_order_relaxed);
    out.misses = stats_.misses.load(std::memory_order_relaxed);
    out.curveHits = stats_.curveHits.load(std::memory_order_relaxed);
    out.curveMisses = stats_.curveMisses.load(std::memory_order_relaxed);
    out.allocHits = stats_.allocHits.load(std::memory_order_relaxed);
    out.allocMisses = stats_.allocMisses.load(std::memory_order_relaxed);
    out.reusedLevels =
        stats_.reusedLevels.load(std::memory_order_relaxed);
    out.evictions = stats_.evictions.load(std::memory_order_relaxed);
    return out;
}

void
PlanCache::addStats(const Stats &delta)
{
    auto add = [](std::atomic<std::uint64_t> &c, std::uint64_t v) {
        if (v != 0)
            c.fetch_add(v, std::memory_order_relaxed);
    };
    add(stats_.fullHits, delta.fullHits);
    add(stats_.misses, delta.misses);
    add(stats_.curveHits, delta.curveHits);
    add(stats_.curveMisses, delta.curveMisses);
    add(stats_.allocHits, delta.allocHits);
    add(stats_.allocMisses, delta.allocMisses);
    add(stats_.reusedLevels, delta.reusedLevels);
    add(stats_.evictions, delta.evictions);
}

std::size_t
PlanCache::numPlans(std::uint64_t ctx) const
{
    Stripe &s = stripeOf(ctx);
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.contexts.find(ctx);
    return it == s.contexts.end() ? 0 : it->second.plans.size();
}

} // namespace spindle
