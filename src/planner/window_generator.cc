#include "planner/window_generator.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace spindle {

void
ContiguousRunsGenerator::generate(const WindowGenContext &ctx,
                                  CandidateWindows &out) const
{
    out.clear();
    panicIf(ctx.n == 0 || ctx.n > ctx.free.size(),
            "ContiguousRuns: entry size exceeds free devices");
    std::vector<std::uint32_t> band(ctx.free.size());
    std::iota(band.begin(), band.end(), 0u);
    out.bands.push_back(std::move(band));
}

namespace {

/** Merge the first @p take_a of @p a with the first @p take_b of
 *  @p b into one ascending position list. */
std::vector<std::uint32_t>
mergedPrefix(const std::vector<std::uint32_t> &a, std::size_t take_a,
             const std::vector<std::uint32_t> &b, std::size_t take_b)
{
    std::vector<std::uint32_t> win;
    win.reserve(take_a + take_b);
    std::merge(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(take_a),
               b.begin(), b.begin() + static_cast<std::ptrdiff_t>(take_b),
               std::back_inserter(win));
    return win;
}

} // namespace

void
IslandAwareGenerator::generate(const WindowGenContext &ctx,
                               CandidateWindows &out) const
{
    out.clear();
    const std::size_t F = ctx.free.size();
    const std::uint32_t n = ctx.n;
    panicIf(n == 0 || n > F,
            "IslandAware: entry size exceeds free devices");

    // Free positions per island, island-id order. Positions ascend
    // within each island because the free list ascends.
    std::vector<std::vector<std::uint32_t>> isl(ctx.topo.numIslands());
    for (std::size_t pos = 0; pos < F; ++pos)
        isl[ctx.topo.islandOf(ctx.free[pos])].push_back(
            static_cast<std::uint32_t>(pos));

    // 1. Per-island bands: sliding runs that never leave an island,
    //    whatever the device numbering looks like.
    std::size_t largest = 0;
    for (const auto &positions : isl) {
        largest = std::max(largest, positions.size());
        if (positions.size() >= n)
            out.bands.push_back(positions);
    }

    // 2. Deliberate cross-island unions for entries at least one of
    //    the pair cannot host alone: per unordered island pair, up
    //    to three splits (lean on the first island, balance, lean on
    //    the second), each taking the lowest-id free devices of its
    //    island. Unordered iteration keeps the (i, j) and (j, i)
    //    splits from being emitted — and scored — twice.
    for (std::size_t i = 0; i + 1 < isl.size() && n >= 2; ++i) {
        const std::size_t ci = isl[i].size();
        if (ci == 0)
            continue;
        for (std::size_t j = i + 1; j < isl.size(); ++j) {
            const std::size_t cj = isl[j].size();
            if (cj == 0 || ci + cj < n)
                continue;
            if (ci >= n && cj >= n)
                continue; // both host alone: their bands cover it
            // take_i ranges over [max(1, n - cj), min(ci, n - 1)].
            const std::size_t lo =
                n > cj ? static_cast<std::size_t>(n - cj) : 1;
            const std::size_t hi =
                std::min(ci, static_cast<std::size_t>(n - 1));
            if (lo > hi)
                continue;
            const std::size_t takes[3] = {
                hi,                                     // i-heavy
                std::clamp<std::size_t>(n / 2, lo, hi), // balanced
                lo,                                     // j-heavy
            };
            std::size_t prev = isl.size() + n; // never a valid take
            for (std::size_t take_i : takes) {
                if (take_i == prev)
                    continue; // dedupe equal splits
                prev = take_i;
                out.extras.push_back(
                    mergedPrefix(isl[i], take_i, isl[j], n - take_i));
            }
        }
    }

    // 3. Greedy catch-alls when the entry outgrows every island:
    //    one variant per non-empty starting island, each filled up
    //    from the remaining islands in descending free-count order
    //    (ties by island id). Several variants keep placement — and
    //    in particular the memory-first fallback — from hinging on
    //    a single candidate whose devices happen to be loaded.
    if (largest < n) {
        std::vector<std::size_t> order;
        for (std::size_t k = 0; k < isl.size(); ++k)
            if (!isl[k].empty())
                order.push_back(k);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return isl[a].size() > isl[b].size();
                         });
        std::vector<std::vector<std::uint32_t>> greedy;
        for (std::size_t start : order) {
            std::vector<std::uint32_t> win;
            win.reserve(n);
            auto take_from = [&](std::size_t k) {
                if (win.size() >= n)
                    return;
                const std::size_t take = std::min<std::size_t>(
                    isl[k].size(), n - win.size());
                win.insert(win.end(), isl[k].begin(),
                           isl[k].begin() +
                               static_cast<std::ptrdiff_t>(take));
            };
            take_from(start);
            for (std::size_t k : order)
                if (k != start)
                    take_from(k);
            std::sort(win.begin(), win.end());
            greedy.push_back(std::move(win));
        }
        // Different starts can coincide; emit each window once.
        std::sort(greedy.begin(), greedy.end());
        greedy.erase(std::unique(greedy.begin(), greedy.end()),
                     greedy.end());
        for (auto &win : greedy)
            out.extras.push_back(std::move(win));
    }
}

const WindowGenerator &
builtinWindowGenerator(WindowPolicy policy)
{
    static const ContiguousRunsGenerator contiguous;
    static const IslandAwareGenerator island_aware;
    switch (policy) {
      case WindowPolicy::ContiguousRuns: return contiguous;
      case WindowPolicy::IslandAware: return island_aware;
    }
    panic("builtinWindowGenerator: unknown policy");
}

} // namespace spindle
