#include "planner/window_generator.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace spindle {

void
ContiguousRunsGenerator::generate(const WindowGenContext &ctx,
                                  CandidateWindows &out) const
{
    out.clear();
    panicIf(ctx.n == 0 || ctx.n > ctx.free.size(),
            "ContiguousRuns: entry size exceeds free devices");
    std::vector<std::uint32_t> &band = out.appendBand();
    band.resize(ctx.free.size());
    std::iota(band.begin(), band.end(), 0u);
}

namespace {

/** Merge the first @p take_a of @p a with the first @p take_b of
 *  @p b into @p win as one ascending position list. */
void
mergedPrefix(const std::vector<std::uint32_t> &a, std::size_t take_a,
             const std::vector<std::uint32_t> &b, std::size_t take_b,
             std::vector<std::uint32_t> &win)
{
    win.reserve(take_a + take_b);
    std::merge(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(take_a),
               b.begin(), b.begin() + static_cast<std::ptrdiff_t>(take_b),
               std::back_inserter(win));
}

} // namespace

void
IslandAwareGenerator::generate(const WindowGenContext &ctx,
                               CandidateWindows &out) const
{
    out.clear();
    const std::size_t F = ctx.free.size();
    const std::uint32_t n = ctx.n;
    panicIf(n == 0 || n > F,
            "IslandAware: entry size exceeds free devices");

    // Free positions per island, island-id order. Positions ascend
    // within each island because the free list ascends. Built in the
    // caller-owned scratch so repeated sweeps reuse capacity instead
    // of allocating one list set per entry. (scratch may be larger
    // than num_isl from an earlier call; only [0, num_isl) is live.)
    const std::size_t num_isl = ctx.topo.numIslands();
    out.prepareScratch(num_isl);
    std::vector<std::vector<std::uint32_t>> &isl = out.scratch;
    for (std::size_t pos = 0; pos < F; ++pos)
        isl[ctx.topo.islandOf(ctx.free[pos])].push_back(
            static_cast<std::uint32_t>(pos));

    // 1. Per-island bands: sliding runs that never leave an island,
    //    whatever the device numbering looks like.
    std::size_t largest = 0;
    for (std::size_t k = 0; k < num_isl; ++k) {
        largest = std::max(largest, isl[k].size());
        if (isl[k].size() >= n)
            out.appendBand() = isl[k];
    }

    // 2. Deliberate cross-island unions for entries at least one of
    //    the pair cannot host alone: per unordered island pair, up
    //    to three splits (lean on the first island, balance, lean on
    //    the second), each taking the lowest-id free devices of its
    //    island. Unordered iteration keeps the (i, j) and (j, i)
    //    splits from being emitted — and scored — twice.
    for (std::size_t i = 0; i + 1 < num_isl && n >= 2; ++i) {
        const std::size_t ci = isl[i].size();
        if (ci == 0)
            continue;
        for (std::size_t j = i + 1; j < num_isl; ++j) {
            const std::size_t cj = isl[j].size();
            if (cj == 0 || ci + cj < n)
                continue;
            if (ci >= n && cj >= n)
                continue; // both host alone: their bands cover it
            // take_i ranges over [max(1, n - cj), min(ci, n - 1)].
            const std::size_t lo =
                n > cj ? static_cast<std::size_t>(n - cj) : 1;
            const std::size_t hi =
                std::min(ci, static_cast<std::size_t>(n - 1));
            if (lo > hi)
                continue;
            const std::size_t takes[3] = {
                hi,                                     // i-heavy
                std::clamp<std::size_t>(n / 2, lo, hi), // balanced
                lo,                                     // j-heavy
            };
            std::size_t prev = num_isl + n; // never a valid take
            for (std::size_t take_i : takes) {
                if (take_i == prev)
                    continue; // dedupe equal splits
                prev = take_i;
                mergedPrefix(isl[i], take_i, isl[j], n - take_i,
                             out.appendExtra());
            }
        }
    }

    // 3. Greedy catch-alls when the entry outgrows every island:
    //    one variant per non-empty starting island, each filled up
    //    from the remaining islands in descending free-count order
    //    (ties by island id). Several variants keep placement — and
    //    in particular the memory-first fallback — from hinging on
    //    a single candidate whose devices happen to be loaded.
    if (largest < n) {
        std::vector<std::size_t> order;
        for (std::size_t k = 0; k < num_isl; ++k)
            if (!isl[k].empty())
                order.push_back(k);
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return isl[a].size() > isl[b].size();
                         });
        // Emit the variants straight into extras (recycled storage),
        // then sort-and-dedupe that tail in place: different starts
        // can coincide, and each window must be emitted once, in the
        // historical lexicographic order.
        const std::size_t greedy_base = out.extras.size();
        for (std::size_t start : order) {
            std::vector<std::uint32_t> &win = out.appendExtra();
            win.reserve(n);
            auto take_from = [&](std::size_t k) {
                if (win.size() >= n)
                    return;
                const std::size_t take = std::min<std::size_t>(
                    isl[k].size(), n - win.size());
                win.insert(win.end(), isl[k].begin(),
                           isl[k].begin() +
                               static_cast<std::ptrdiff_t>(take));
            };
            take_from(start);
            for (std::size_t k : order)
                if (k != start)
                    take_from(k);
            std::sort(win.begin(), win.end());
        }
        const auto greedy_begin =
            out.extras.begin() +
            static_cast<std::ptrdiff_t>(greedy_base);
        std::sort(greedy_begin, out.extras.end());
        const auto tail =
            std::unique(greedy_begin, out.extras.end());
        out.dropLastExtras(
            static_cast<std::size_t>(out.extras.end() - tail));
    }
}

const WindowGenerator &
builtinWindowGenerator(WindowPolicy policy)
{
    static const ContiguousRunsGenerator contiguous;
    static const IslandAwareGenerator island_aware;
    switch (policy) {
      case WindowPolicy::ContiguousRuns: return contiguous;
      case WindowPolicy::IslandAware: return island_aware;
    }
    panic("builtinWindowGenerator: unknown policy");
}

} // namespace spindle
