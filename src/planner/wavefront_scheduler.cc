#include "planner/wavefront_scheduler.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/logging.h"
#include "common/math_util.h"

namespace spindle {

namespace {

/** Mutable scheduling state of one MetaOp within a level. */
struct MetaOpState
{
    MetaOpId metaOp = -1;
    std::deque<AslTuple> tuples; ///< remaining, largest n first
    std::int64_t op_cursor = 0;  ///< member ops already scheduled

    bool done() const { return tuples.empty(); }
};

/** Remaining estimated execution time across all tuples. */
double
remainingTime(const MetaOpState &st, const ScalingCurve &curve)
{
    double total = 0;
    for (const AslTuple &t : st.tuples)
        total += curve.timeAt(t.n) * static_cast<double>(t.l);
    return total;
}

} // namespace

WavefrontScheduler::WavefrontScheduler(const MetaGraph &graph,
                                       const std::vector<ScalingCurve> &curves,
                                       std::uint32_t num_devices,
                                       SchedulerOptions options)
    : graph_(graph), curves_(curves), num_devices_(num_devices),
      options_(options)
{
    fatalIf(num_devices_ == 0, "WavefrontScheduler: empty cluster");
    fatalIf(curves_.size() != graph_.numMetaOps(),
            "WavefrontScheduler: one curve per MetaOp required");
}

double
WavefrontScheduler::scheduleLevel(const LevelAllocation &alloc,
                                  double t_start,
                                  std::vector<Wave> &waves) const
{
    // Initialize per-MetaOp state, tuples largest-n first so early
    // waves occupy as many devices as possible.
    std::vector<MetaOpState> states;
    states.reserve(alloc.metaOps.size());
    for (std::size_t i = 0; i < alloc.metaOps.size(); ++i) {
        MetaOpState st;
        st.metaOp = alloc.metaOps[i];
        std::vector<AslTuple> tuples = alloc.plans[i].tuples;
        std::sort(tuples.begin(), tuples.end(),
                  [](const AslTuple &a, const AslTuple &b) {
                      return a.n > b.n;
                  });
        for (const AslTuple &t : tuples) {
            panicIf(t.n == 0 || t.n > num_devices_,
                    "scheduleLevel: tuple allocation out of range");
            st.tuples.push_back(t);
        }
        states.push_back(std::move(st));
    }

    double t_current = t_start;
    std::int32_t level = graph_.metaOp(alloc.metaOps.front()).level;

    auto any_remaining = [&] {
        return std::any_of(states.begin(), states.end(),
                           [](const MetaOpState &s) { return !s.done(); });
    };

    while (any_remaining()) {
        // -- Step 1: propose the candidate set. Consider the front
        // tuple of every unfinished MetaOp (same-MetaOp tuples may
        // not run concurrently, Eq. 6) and greedily pack the largest
        // allocations first.
        std::vector<std::size_t> order;
        for (std::size_t i = 0; i < states.size(); ++i)
            if (!states[i].done())
                order.push_back(i);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (states[a].tuples.front().n !=
                          states[b].tuples.front().n)
                          return states[a].tuples.front().n >
                                 states[b].tuples.front().n;
                      return states[a].metaOp < states[b].metaOp;
                  });
        std::vector<std::size_t> selected;
        std::uint32_t used = 0;
        for (std::size_t idx : order) {
            std::uint32_t n = states[idx].tuples.front().n;
            if (used + n <= num_devices_) {
                selected.push_back(idx);
                used += n;
            }
        }
        panicIf(selected.empty(), "scheduleLevel: nothing schedulable");

        // -- Step 2: extend allocated resources if devices idle,
        // prioritizing MetaOps with the largest remaining work.
        if (options_.extendResources) {
            while (used < num_devices_) {
                std::size_t best = states.size();
                double best_remaining = -1;
                std::uint32_t best_next = 0;
                for (std::size_t idx : selected) {
                    const MetaOpState &st = states[idx];
                    const ScalingCurve &curve = curves_[st.metaOp];
                    std::uint32_t n = st.tuples.front().n;
                    // Next valid allocation within the idle budget.
                    std::uint32_t next = 0;
                    for (std::uint32_t cand : curve.validNs()) {
                        if (cand > n && cand - n <= num_devices_ - used) {
                            next = cand;
                            break;
                        }
                    }
                    if (next == 0)
                        continue;
                    double rem = remainingTime(st, curve);
                    if (rem > best_remaining) {
                        best_remaining = rem;
                        best = idx;
                        best_next = next;
                    }
                }
                if (best == states.size())
                    break; // no extensible tuple
                used += best_next - states[best].tuples.front().n;
                states[best].tuples.front().n = best_next;
            }
        }

        // -- Step 3: align time spans w.r.t. the tuple with the
        // shortest full execution time; slice the others.
        double t_wave = std::numeric_limits<double>::infinity();
        for (std::size_t idx : selected) {
            const AslTuple &t = states[idx].tuples.front();
            double full = curves_[states[idx].metaOp].timeAt(t.n) *
                          static_cast<double>(t.l);
            t_wave = std::min(t_wave, full);
        }

        // -- Step 4: conclude the wave.
        Wave wave;
        wave.index = static_cast<std::int32_t>(waves.size());
        wave.level = level;
        wave.start = t_current;
        for (std::size_t idx : selected) {
            MetaOpState &st = states[idx];
            AslTuple &front = st.tuples.front();
            const double per_op = curves_[st.metaOp].timeAt(front.n);
            std::int64_t ops = std::clamp<std::int64_t>(
                roundNearest(t_wave / per_op), 1, front.l);

            WaveEntry entry;
            entry.metaOp = st.metaOp;
            entry.n = front.n;
            entry.opBegin = st.op_cursor;
            entry.numOps = ops;
            entry.duration = per_op * static_cast<double>(ops);
            wave.entries.push_back(std::move(entry));

            st.op_cursor += ops;
            front.l -= ops;
            if (front.l == 0)
                st.tuples.pop_front();
            wave.duration = std::max(wave.duration,
                                     wave.entries.back().duration);
        }
        t_current += wave.duration;
        waves.push_back(std::move(wave));
    }
    return t_current;
}

std::vector<Wave>
WavefrontScheduler::scheduleAll(
    const std::vector<LevelAllocation> &allocs) const
{
    std::vector<Wave> waves;
    double t = 0;
    for (const LevelAllocation &alloc : allocs)
        t = scheduleLevel(alloc, t, waves);
    // Emit the readiness edges the event-driven runtime dispatches
    // on (data producers + program order; per device-group edges are
    // added when placement re-annotates the placed plan).
    annotateWaveReadiness(graph_, waves);
    return waves;
}

} // namespace spindle
