#include "planner/wavefront_scheduler.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/logging.h"
#include "common/math_util.h"

namespace spindle {

namespace {

/**
 * Mutable scheduling state of one MetaOp within a level.
 *
 * The tuples are sorted once (largest n first) and consumed through
 * an index cursor — no per-wave container churn. The estimated
 * remaining execution time is cached and refreshed only when the
 * tuple state mutates (a slice drains or an extension bumps the
 * front allocation), so the scheduler's extension loop reads it in
 * O(1) instead of re-summing per comparison.
 */
struct MetaOpState
{
    MetaOpId metaOp = -1;
    std::vector<AslTuple> tuples; ///< once-sorted, largest n first
    std::size_t cursor = 0;       ///< first unconsumed tuple
    std::int64_t op_cursor = 0;   ///< member ops already scheduled
    double remaining = 0;         ///< cached remaining exec time

    bool done() const { return cursor == tuples.size(); }

    AslTuple &front() { return tuples[cursor]; }
    const AslTuple &front() const { return tuples[cursor]; }

    /** Recompute the cached remaining time from the live tuples —
     *  the same left-to-right sum the uncached code summed per
     *  query, so cached reads are bit-identical. */
    void
    refreshRemaining(const ScalingCurve &curve)
    {
        double total = 0;
        for (std::size_t i = cursor; i < tuples.size(); ++i)
            total += curve.timeAt(tuples[i].n) *
                     static_cast<double>(tuples[i].l);
        remaining = total;
    }
};

/** Candidate-set key: largest front allocation first, MetaOp id as
 *  the deterministic tie-break (matches the former per-wave sort). */
struct CandidateKey
{
    std::uint32_t n = 0;
    MetaOpId metaOp = -1;
    std::size_t index = 0; ///< position in the states vector

    bool
    operator<(const CandidateKey &other) const
    {
        if (n != other.n)
            return n > other.n;
        return metaOp < other.metaOp;
    }
};

} // namespace

WavefrontScheduler::WavefrontScheduler(const MetaGraph &graph,
                                       const std::vector<ScalingCurve> &curves,
                                       std::uint32_t num_devices,
                                       SchedulerOptions options)
    : graph_(graph), curves_(curves), num_devices_(num_devices),
      options_(options)
{
    fatalIf(num_devices_ == 0, "WavefrontScheduler: empty cluster");
    fatalIf(curves_.size() != graph_.numMetaOps(),
            "WavefrontScheduler: one curve per MetaOp required");
}

double
WavefrontScheduler::scheduleLevel(const LevelAllocation &alloc,
                                  double t_start,
                                  std::vector<Wave> &waves) const
{
    // Request-reachable (a malformed workload can contract to an
    // empty MetaLevel), so it is a user error, not an invariant:
    // fatal() lets a RecoverableScope boundary (PlanService) turn it
    // into a structured PlanError instead of process death.
    fatalIf(alloc.metaOps.empty(),
            "scheduleLevel: empty level allocation (no MetaOps)");
    panicIf(alloc.plans.size() != alloc.metaOps.size(),
            "scheduleLevel: allocation plans misaligned with MetaOps");

    // Initialize per-MetaOp state, tuples largest-n first so early
    // waves occupy as many devices as possible.
    std::vector<MetaOpState> states;
    states.reserve(alloc.metaOps.size());
    for (std::size_t i = 0; i < alloc.metaOps.size(); ++i) {
        MetaOpState st;
        st.metaOp = alloc.metaOps[i];
        st.tuples = alloc.plans[i].tuples;
        std::sort(st.tuples.begin(), st.tuples.end(),
                  [](const AslTuple &a, const AslTuple &b) {
                      return a.n > b.n;
                  });
        for (const AslTuple &t : st.tuples)
            panicIf(t.n == 0 || t.n > num_devices_,
                    "scheduleLevel: tuple allocation out of range");
        st.refreshRemaining(curves_[st.metaOp]);
        states.push_back(std::move(st));
    }

    double t_current = t_start;
    std::int32_t level = graph_.metaOp(alloc.metaOps.front()).level;

    // Unfinished states, kept sorted by (front n desc, MetaOp asc).
    // Replaces the former rebuild+sort of the full candidate vector
    // every wave: only states a wave actually mutates re-enter.
    std::set<CandidateKey> candidates;
    for (std::size_t i = 0; i < states.size(); ++i) {
        if (states[i].done())
            continue;
        const bool inserted =
            candidates
                .insert({states[i].front().n, states[i].metaOp, i})
                .second;
        // Keys compare on (n, metaOp); a duplicate MetaOp would
        // silently collapse into one candidate, so reject it here.
        panicIf(!inserted,
                "scheduleLevel: duplicate MetaOp in level allocation");
    }

    while (!candidates.empty()) {
        // -- Step 1: propose the candidate set. Consider the front
        // tuple of every unfinished MetaOp (same-MetaOp tuples may
        // not run concurrently, Eq. 6) and greedily pack the largest
        // allocations first.
        std::vector<std::size_t> selected;
        std::uint32_t used = 0;
        for (const CandidateKey &key : candidates) {
            if (used + key.n <= num_devices_) {
                selected.push_back(key.index);
                used += key.n;
            }
        }
        panicIf(selected.empty(), "scheduleLevel: nothing schedulable");

        // Selected states are about to mutate (extension and/or
        // draining); pull them out and reinsert survivors after.
        for (std::size_t idx : selected)
            candidates.erase({states[idx].front().n,
                              states[idx].metaOp, idx});

        // -- Step 2: extend allocated resources if devices idle,
        // prioritizing MetaOps with the largest remaining work.
        if (options_.extendResources) {
            while (used < num_devices_) {
                std::size_t best = states.size();
                double best_remaining = -1;
                std::uint32_t best_next = 0;
                for (std::size_t idx : selected) {
                    const MetaOpState &st = states[idx];
                    const ScalingCurve &curve = curves_[st.metaOp];
                    std::uint32_t n = st.front().n;
                    // Next valid allocation within the idle budget.
                    // Valid grids ascend, so the first candidate
                    // above n decides feasibility.
                    std::uint32_t next = curve.nextValidAbove(n);
                    if (next == 0 || next - n > num_devices_ - used)
                        continue;
                    if (st.remaining > best_remaining) {
                        best_remaining = st.remaining;
                        best = idx;
                        best_next = next;
                    }
                }
                if (best == states.size())
                    break; // no extensible tuple
                used += best_next - states[best].front().n;
                states[best].front().n = best_next;
                states[best].refreshRemaining(curves_[states[best].metaOp]);
            }
        }

        // -- Step 3: align time spans w.r.t. the tuple with the
        // shortest full execution time; slice the others.
        double t_wave = std::numeric_limits<double>::infinity();
        for (std::size_t idx : selected) {
            const AslTuple &t = states[idx].front();
            double full = curves_[states[idx].metaOp].timeAt(t.n) *
                          static_cast<double>(t.l);
            t_wave = std::min(t_wave, full);
        }

        // -- Step 4: conclude the wave.
        Wave wave;
        wave.index = static_cast<std::int32_t>(waves.size());
        wave.level = level;
        wave.start = t_current;
        for (std::size_t idx : selected) {
            MetaOpState &st = states[idx];
            AslTuple &front = st.front();
            const double per_op = curves_[st.metaOp].timeAt(front.n);
            const std::int64_t ops =
                waveSliceOps(t_wave, per_op, front.l);

            WaveEntry entry;
            entry.metaOp = st.metaOp;
            entry.n = front.n;
            entry.opBegin = st.op_cursor;
            entry.numOps = ops;
            entry.duration = per_op * static_cast<double>(ops);
            wave.entries.push_back(std::move(entry));

            st.op_cursor += ops;
            front.l -= ops;
            if (front.l == 0)
                ++st.cursor;
            st.refreshRemaining(curves_[st.metaOp]);
            if (!st.done())
                candidates.insert({st.front().n, st.metaOp, idx});
            wave.duration = std::max(wave.duration,
                                     wave.entries.back().duration);
        }
        t_current += wave.duration;
        waves.push_back(std::move(wave));
    }
    return t_current;
}

std::vector<Wave>
WavefrontScheduler::scheduleAll(
    const std::vector<LevelAllocation> &allocs) const
{
    std::vector<Wave> waves;
    double t = 0;
    for (const LevelAllocation &alloc : allocs)
        t = scheduleLevel(alloc, t, waves);
    // Emit the readiness edges the event-driven runtime dispatches
    // on (data producers + program order; per device-group edges are
    // added when placement re-annotates the placed plan).
    annotateWaveReadiness(graph_, waves);
    return waves;
}

} // namespace spindle
