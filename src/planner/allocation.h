/**
 * @file
 * Allocation-plan types shared by the resource allocator (§3.3) and
 * the wavefront scheduler (§3.4).
 *
 * An ASL-tuple <n, s, l> schedules l consecutive operators of a
 * MetaOp from time s on n devices. The allocator produces tuples
 * with undetermined start times (the paper writes <n, ., l>); the
 * scheduler fills the starts when it crafts waves.
 */

#ifndef SPINDLE_PLANNER_ALLOCATION_H
#define SPINDLE_PLANNER_ALLOCATION_H

#include <cstdint>
#include <vector>

#include "graph/meta_graph.h"

namespace spindle {

/** An <n, s, l> tuple; start < 0 encodes "not yet scheduled". */
struct AslTuple
{
    std::uint32_t n = 0;  ///< allocated devices (0 = dummy, ignored)
    double start = -1;    ///< scheduled start time, seconds
    std::int64_t l = 0;   ///< consecutive operators covered
};

/** Discretized allocation of one MetaOp: its ASL-tuples. */
struct MetaOpAllocation
{
    MetaOpId metaOp = -1;

    /** Non-dummy tuples, largest n first (scheduling order). */
    std::vector<AslTuple> tuples;

    /** Sum of operator counts across tuples. */
    std::int64_t totalOps() const;
};

/** Continuous MPSP optimum for one MetaLevel (Theorem 1). */
struct MpspSolution
{
    /** Minimized operator completion time C~* of the level. */
    double cStar = 0;

    /** Fractional optimal allocation n*_m per MetaOp, aligned with
     *  the level's MetaOp list. */
    std::vector<double> nStar;
};

/** Full allocator output for one MetaLevel. */
struct LevelAllocation
{
    /** MetaOps of the level, defining the index space below. */
    std::vector<MetaOpId> metaOps;

    /** Continuous relaxation optimum (kept for Fig. 11 analysis). */
    MpspSolution continuous;

    /** Discretized per-MetaOp plans, aligned with metaOps. */
    std::vector<MetaOpAllocation> plans;
};

} // namespace spindle

#endif // SPINDLE_PLANNER_ALLOCATION_H
