/**
 * @file
 * Pluggable placement-window generation (paper §3.5).
 *
 * Device placement scores *candidate windows* — device sets an entry
 * could land on. What those candidates are used to be welded into
 * the placer's scoring loop (every contiguous run of the free-device
 * list), which coupled window shape to device numbering: on a
 * cluster whose ids interleave islands, every "contiguous" window
 * straddled the fabric. This layer makes candidate generation a
 * strategy object the placer consumes.
 *
 * A generator emits two kinds of candidates over the (ascending)
 * free-device list:
 *
 *  - **bands** — ordered sequences of free-list positions; every
 *    length-n contiguous subsequence of a band is a candidate
 *    window. Bands are what keeps the incremental scoring state of
 *    the placer alive: per-band prefix counts (link classes,
 *    parameter residency, island changes) and a sliding-window
 *    maximum over per-device memory loads score each window in O(1)
 *    after an O(band) setup.
 *  - **extras** — individual explicit windows (each an ascending
 *    position list of exactly n entries), for deliberate shapes
 *    that are not runs of any band, e.g. cross-island unions.
 *
 * Provided strategies:
 *  - `ContiguousRunsGenerator` — one band covering the whole free
 *    list: exactly the historical candidate set, proven bit-identical
 *    to the pre-refactor placer by planner_equivalence_test.
 *  - `IslandAwareGenerator` — one band per island (runs never cross
 *    an island by accident, regardless of device numbering) plus
 *    deliberate cross-island unions for entries that outgrow any
 *    single island or want to straddle on purpose.
 */

#ifndef SPINDLE_PLANNER_WINDOW_GENERATOR_H
#define SPINDLE_PLANNER_WINDOW_GENERATOR_H

#include <vector>

#include "hardware/topology.h"

namespace spindle {

/** Everything a generator may consult for one wave entry. */
struct WindowGenContext
{
    const ClusterTopology &topo;
    const DeviceSet &free; ///< free device ids, ascending
    std::uint32_t n = 0;   ///< devices the entry needs (<= free.size())
};

/**
 * Candidate windows for one entry. Positions index into
 * WindowGenContext::free; all position sequences ascend, so every
 * realized window is automatically a canonical DeviceSet.
 *
 * The struct is designed to be reused across entries without
 * allocating: clear() recycles the inner vectors into a pool instead
 * of freeing them, and generators obtain recycled (empty, capacity
 * retained) vectors through appendBand()/appendExtra(). At 4096
 * devices the placer calls a generator once per wave entry, so
 * per-entry band emission must not hit the allocator in steady
 * state. Generators that push fresh vectors directly (tests do)
 * still work — they just skip the pool on the way in.
 */
struct CandidateWindows
{
    /** Ascending position sequences; each length-n contiguous
     *  subsequence is a candidate (see file comment). Ascending
     *  order is a contract: it keeps realized windows canonical and
     *  lets the placer binary-search a band by device id. */
    std::vector<std::vector<std::uint32_t>> bands;

    /** Explicit windows: ascending positions, exactly n each. */
    std::vector<std::vector<std::uint32_t>> extras;

    /**
     * Generator workspace (e.g. IslandAware's per-island position
     * lists). Owned here rather than by the generator because the
     * built-in generators are shared immutable singletons that may
     * be invoked concurrently from several planners; the caller's
     * CandidateWindows is the only per-sweep mutable state.
     */
    std::vector<std::vector<std::uint32_t>> scratch;

    /** Recycle bands and extras into the pool (capacity kept). */
    void
    clear()
    {
        recycle(bands);
        recycle(extras);
    }

    /** Append a recycled empty vector to bands and return it. */
    std::vector<std::uint32_t> &
    appendBand()
    {
        return append(bands);
    }

    /** Append a recycled empty vector to extras and return it. */
    std::vector<std::uint32_t> &
    appendExtra()
    {
        return append(extras);
    }

    /** Ensure scratch holds >= @p count vectors, the first @p count
     *  of them empty (capacity kept). */
    void
    prepareScratch(std::size_t count)
    {
        if (scratch.size() < count)
            scratch.resize(count);
        for (std::size_t i = 0; i < count; ++i)
            scratch[i].clear();
    }

    /** Move the last @p count extras back into the pool (used by
     *  generators that emit-then-dedupe). */
    void
    dropLastExtras(std::size_t count)
    {
        for (std::size_t i = 0; i < count; ++i) {
            pool_.push_back(std::move(extras.back()));
            extras.pop_back();
        }
    }

  private:
    void
    recycle(std::vector<std::vector<std::uint32_t>> &from)
    {
        for (auto &v : from)
            pool_.push_back(std::move(v));
        from.clear();
    }

    std::vector<std::uint32_t> &
    append(std::vector<std::vector<std::uint32_t>> &to)
    {
        if (pool_.empty()) {
            to.emplace_back();
        } else {
            pool_.back().clear();
            to.push_back(std::move(pool_.back()));
            pool_.pop_back();
        }
        return to.back();
    }

    /** Retired inner vectors, capacity intact. */
    std::vector<std::vector<std::uint32_t>> pool_;
};

/** Window-generation strategy interface. */
class WindowGenerator
{
  public:
    virtual ~WindowGenerator() = default;

    virtual const char *name() const = 0;

    /**
     * Emit the candidate windows for one entry into @p out
     * (cleared first). Must emit at least one candidate of size
     * ctx.n whenever ctx.n <= ctx.free.size().
     */
    virtual void generate(const WindowGenContext &ctx,
                          CandidateWindows &out) const = 0;
};

/** The historical candidate set: all runs of the free list. */
class ContiguousRunsGenerator final : public WindowGenerator
{
  public:
    const char *name() const override { return "ContiguousRuns"; }
    void generate(const WindowGenContext &ctx,
                  CandidateWindows &out) const override;
};

/** Per-island runs plus deliberate cross-island unions. */
class IslandAwareGenerator final : public WindowGenerator
{
  public:
    const char *name() const override { return "IslandAware"; }
    void generate(const WindowGenContext &ctx,
                  CandidateWindows &out) const override;
};

/** Built-in strategy selector (PlacementOptions::windows). */
enum class WindowPolicy : std::uint8_t
{
    ContiguousRuns, ///< historical behaviour, numbering-coupled
    IslandAware,    ///< island-graph aware (heterogeneous / permuted)
};

/** Instantiate the built-in generator for @p policy. */
const WindowGenerator &builtinWindowGenerator(WindowPolicy policy);

} // namespace spindle

#endif // SPINDLE_PLANNER_WINDOW_GENERATOR_H
