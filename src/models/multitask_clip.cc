#include "models/multitask_clip.h"

#include <array>
#include <map>

#include "common/logging.h"

namespace spindle {

namespace {

/** ImageBind-style encoder configurations per modality. */
struct EncoderCfg
{
    const char *name;
    OpType type;
    std::int64_t seq;
    std::int64_t hidden;
    std::uint32_t layers;
};

constexpr std::array<EncoderCfg, 6> kEncoders = {{
    {"text", OpType::Text, 77, 1024, 24},      // ~302M params
    {"vision", OpType::Vision, 257, 1280, 32}, // ~629M params
    {"audio", OpType::Audio, 229, 768, 12},    // ~85M params
    {"depth", OpType::Depth, 257, 384, 12},    // ~21M params
    {"thermal", OpType::Thermal, 197, 768, 12},// ~85M params
    {"motion", OpType::Motion, 196, 512, 6},   // ~19M params
}};

/** Modality-pair tasks; indices into kEncoders, heavy = uses vision. */
struct TaskCfg
{
    int a;
    int b;
    bool heavy;
};

constexpr std::array<TaskCfg, 10> kTasks = {{
    {0, 2, false}, // (text, audio)      — Fig. 4 Task1
    {1, 3, true},  // (vision, depth)    — Fig. 4 Task2
    {2, 4, false}, // (audio, thermal)   — Fig. 4 Task3
    {5, 4, false}, // (motion, thermal)  — Fig. 4 Task4
    {0, 1, true},  // (text, vision)
    {0, 3, false}, // (text, depth)
    {1, 2, true},  // (vision, audio)
    {0, 4, false}, // (text, thermal)
    {1, 5, true},  // (vision, motion)
    {0, 5, false}, // (text, motion)
}};

} // namespace

ComputationGraph
buildMultitaskClip(const MultitaskClipConfig &config)
{
    fatalIf(config.numTasks < 1 || config.numTasks > kTasks.size(),
            strCat("buildMultitaskClip: numTasks must be 1..",
                   kTasks.size()));

    WorkloadBuilder builder;

    // Encoders are parameter-shared across tasks; batch may differ
    // per task, so the shared handle is declared once per modality
    // from a canonical spec (only layer count matters for keys).
    std::map<int, SharedModule> shared;
    for (std::size_t e = 0; e < kEncoders.size(); ++e) {
        const EncoderCfg &enc = kEncoders[e];
        shared.emplace(static_cast<int>(e),
                       builder.declareShared(transformerStack(
                           enc.name, enc.type, config.batchLight,
                           enc.seq, enc.hidden, enc.layers)));
    }

    for (std::uint32_t t = 0; t < config.numTasks; ++t) {
        const TaskCfg &task_cfg = kTasks[t];
        const std::int64_t batch =
            task_cfg.heavy ? config.batchHeavy : config.batchLight;
        const std::int32_t task = builder.addTask(
            strCat("clip-task", t, "-", kEncoders[task_cfg.a].name, "-",
                   kEncoders[task_cfg.b].name));

        auto add_encoder = [&](int e) {
            const EncoderCfg &enc = kEncoders[e];
            ModuleSpec spec = transformerStack(
                strCat("t", t, ".", enc.name), enc.type, batch, enc.seq,
                enc.hidden, enc.layers);
            return builder.addModule(task, spec, &shared.at(e));
        };
        NodeRange enc_a = add_encoder(task_cfg.a);
        NodeRange enc_b = add_encoder(task_cfg.b);

        // Contrastive head over the wider of the two embeddings.
        const std::int64_t hidden =
            std::max(kEncoders[task_cfg.a].hidden,
                     kEncoders[task_cfg.b].hidden);
        NodeRange loss = builder.addModule(
            task, lossModule(strCat("t", t, ".contrastive"), batch,
                             hidden));
        builder.addFlow(enc_a, loss);
        builder.addFlow(enc_b, loss);
    }
    return builder.build();
}

} // namespace spindle
