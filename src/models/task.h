/**
 * @file
 * User-facing workload definition API (paper §4).
 *
 * Training tasks are defined as SpindleTasks: the user instantiates
 * modules (stacks of identical operators) inside tasks and connects
 * them with addFlow(), mirroring the paper's add_flow API. Modules
 * may be declared *shared* so that several tasks reference the same
 * parameter sets (the sub-model sharing of MT MM models); Spindle's
 * runtime then synchronizes their gradients through the parameter
 * device-group pool.
 */

#ifndef SPINDLE_MODELS_TASK_H
#define SPINDLE_MODELS_TASK_H

#include <string>
#include <vector>

#include "graph/computation_graph.h"

namespace spindle {

/**
 * Specification of a module: @p layers stacked identical operators.
 * Workload quantities left at 0 are derived from the input shape by
 * the standard Transformer accounting (see transformerStack()).
 */
struct ModuleSpec
{
    std::string name;
    OpType type = OpType::Custom;
    TensorShape input;
    std::uint32_t layers = 1;

    double flopsPerLayer = 0;
    double paramBytesPerLayer = 0;
    double activationBytes = 0;
};

/** Forward FLOPs of one Transformer layer on [B, S, H] input. */
double transformerFwdFlops(std::int64_t batch, std::int64_t seq,
                           std::int64_t hidden);

/** Parameter bytes of one Transformer layer of width H (fp16). */
double transformerParamBytes(std::int64_t hidden);

/** Activation bytes of a [B, S, H] tensor (fp16). */
double activationBytesOf(const TensorShape &shape);

/**
 * Convenience ModuleSpec for a Transformer stack with derived
 * workload quantities.
 */
ModuleSpec transformerStack(std::string name, OpType type,
                            std::int64_t batch, std::int64_t seq,
                            std::int64_t hidden, std::uint32_t layers);

/**
 * Convenience ModuleSpec for a lightweight loss / fusion module
 * (e.g. a contrastive head): a single nearly parameter-free op.
 */
ModuleSpec lossModule(std::string name, std::int64_t batch,
                      std::int64_t hidden);

/** A contiguous range of operators added by one addModule() call. */
struct NodeRange
{
    OpId first = -1;
    OpId last = -1;
};

/** Handle to a shared parameter stack (one key per layer). */
class SharedModule
{
  public:
    const std::vector<ParamKey> &keys() const { return keys_; }

  private:
    friend class WorkloadBuilder;
    std::vector<ParamKey> keys_;
};

/**
 * Incremental builder of an MT MM workload graph.
 */
class WorkloadBuilder
{
  public:
    /** Register a parameter stack shareable across tasks. */
    SharedModule declareShared(const ModuleSpec &spec);

    /** Begin a new task (SpindleTask); returns its id. */
    std::int32_t addTask(const std::string &name);

    /**
     * Instantiate @p spec inside @p task. With @p shared, the ops
     * reference the shared parameter keys (layer counts must match);
     * otherwise each op owns private parameters.
     */
    NodeRange addModule(std::int32_t task, const ModuleSpec &spec,
                        const SharedModule *shared = nullptr);

    /** Connect the output of @p from to the input of @p to. */
    void addFlow(NodeRange from, NodeRange to);

    /** Finalize and return the computation graph. */
    ComputationGraph build();

    std::int32_t numTasks() const
    {
        return static_cast<std::int32_t>(task_names_.size());
    }

  private:
    ComputationGraph graph_;
    std::vector<std::string> task_names_;
    ParamKey next_key_ = 0;
    bool built_ = false;
};

} // namespace spindle

#endif // SPINDLE_MODELS_TASK_H
