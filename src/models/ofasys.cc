#include "models/ofasys.h"

#include <array>

#include "common/logging.h"

namespace spindle {

namespace {

/** LM configuration (BART-large-like unified encoder-decoder). */
constexpr std::int64_t kLmHidden = 1024;
constexpr std::uint32_t kLmLayers = 24; // 12 enc + 12 dec, ~302M

/** Vision encoder (ViT-L) and audio encoder configurations. */
constexpr std::int64_t kVisionHidden = 768;
constexpr std::uint32_t kVisionLayers = 12; // ~85M (ViT-B)
constexpr std::int64_t kAudioHidden = 768;
constexpr std::uint32_t kAudioLayers = 12; // ~85M

/** Per-task shape of the unified-LM input sequence. */
struct TaskCfg
{
    const char *name;
    bool vision; ///< activates the vision encoder
    bool audio;  ///< activates the audio encoder
    std::int64_t lmSeq;
};

constexpr std::array<TaskCfg, 7> kTasks = {{
    {"text-summarization", false, false, 512},
    {"image-captioning", true, false, 256},
    {"visual-grounding", true, false, 384},
    {"speech-recognition", false, true, 512},
    {"text-to-sql", false, false, 384},
    {"image-infilling", true, false, 256},
    {"motion-captioning", false, true, 256},
}};

} // namespace

ComputationGraph
buildOfasys(const OfasysConfig &config)
{
    fatalIf(config.numTasks < 1 || config.numTasks > kTasks.size(),
            strCat("buildOfasys: numTasks must be 1..", kTasks.size()));

    WorkloadBuilder builder;

    // Shared stacks: the unified LM (all tasks) and the modality
    // encoders (tasks activating that modality).
    SharedModule lm = builder.declareShared(transformerStack(
        "unified-lm", OpType::LM, config.batch, 512, kLmHidden,
        kLmLayers));
    SharedModule vision = builder.declareShared(transformerStack(
        "vision-enc", OpType::Vision, config.batch, 197, kVisionHidden,
        kVisionLayers));
    SharedModule audio = builder.declareShared(transformerStack(
        "audio-enc", OpType::Audio, config.batch, 299, kAudioHidden,
        kAudioLayers));

    for (std::uint32_t t = 0; t < config.numTasks; ++t) {
        const TaskCfg &cfg = kTasks[t];
        const std::int32_t task =
            builder.addTask(strCat("ofasys-", cfg.name));

        // Lightweight text adaptor in front of the LM (the paper
        // notes most text-paired tasks are dominated by the other
        // modality because of exactly this adaptor).
        ModuleSpec adaptor_spec = transformerStack(
            strCat("t", t, ".text-adaptor"), OpType::Adaptor,
            config.batch, 64, kLmHidden, 2);
        NodeRange adaptor = builder.addModule(task, adaptor_spec);

        // Unified LM: per-task sequence length, shared parameters.
        ModuleSpec lm_spec = transformerStack(
            strCat("t", t, ".lm"), OpType::LM, config.batch, cfg.lmSeq,
            kLmHidden, kLmLayers);
        NodeRange lm_range = builder.addModule(task, lm_spec, &lm);
        builder.addFlow(adaptor, lm_range);

        if (cfg.vision) {
            ModuleSpec enc = transformerStack(
                strCat("t", t, ".vision"), OpType::Vision, config.batch,
                197, kVisionHidden, kVisionLayers);
            NodeRange v = builder.addModule(task, enc, &vision);
            builder.addFlow(v, lm_range);
        }
        if (cfg.audio) {
            ModuleSpec enc = transformerStack(
                strCat("t", t, ".audio"), OpType::Audio, config.batch,
                299, kAudioHidden, kAudioLayers);
            NodeRange a = builder.addModule(task, enc, &audio);
            builder.addFlow(a, lm_range);
        }
    }
    return builder.build();
}

} // namespace spindle
