/**
 * @file
 * Multitask-CLIP workload (paper §5.1 (1), Appendix C): a multi-task
 * generalization of CLIP with the model structure and configuration
 * of ImageBind — six modality encoders (text, vision, audio, depth,
 * thermal, motion) and contrastive-loss cross-modal modules. Each
 * task pairs two modalities; the paired encoders are activated
 * simultaneously (no data-flow dependency between them) and feed a
 * shared contrastive head. Encoders are parameter-shared across all
 * tasks that activate them. Total ~1.2 B parameters at 10 tasks.
 */

#ifndef SPINDLE_MODELS_MULTITASK_CLIP_H
#define SPINDLE_MODELS_MULTITASK_CLIP_H

#include "models/task.h"

namespace spindle {

/** Configuration of the Multitask-CLIP workload. */
struct MultitaskClipConfig
{
    /** Number of contrastive modality-pair tasks (1..10). */
    std::uint32_t numTasks = 4;

    /** Global batch of tasks pairing only lightweight modalities. */
    std::int64_t batchLight = 64;

    /** Global batch of tasks involving the heavy vision encoder. */
    std::int64_t batchHeavy = 48;
};

/**
 * Build the Multitask-CLIP computation graph. The first four tasks
 * match the Fig. 4 legend: (text,audio), (vision,depth),
 * (audio,thermal), (motion,thermal).
 */
ComputationGraph buildMultitaskClip(const MultitaskClipConfig &config = {});

} // namespace spindle

#endif // SPINDLE_MODELS_MULTITASK_CLIP_H
