#include "models/task.h"

#include "common/logging.h"
#include "common/units.h"

namespace spindle {

double
transformerFwdFlops(std::int64_t batch, std::int64_t seq,
                    std::int64_t hidden)
{
    // 24 B S H^2 for the MLP + projections, 4 B S^2 H for attention.
    const double b = static_cast<double>(batch);
    const double s = static_cast<double>(seq);
    const double h = static_cast<double>(hidden);
    return 24.0 * b * s * h * h + 4.0 * b * s * s * h;
}

double
transformerParamBytes(std::int64_t hidden)
{
    const double h = static_cast<double>(hidden);
    return 12.0 * h * h * kBytesFp16;
}

double
activationBytesOf(const TensorShape &shape)
{
    return static_cast<double>(shape.numel()) * kBytesFp16;
}

ModuleSpec
transformerStack(std::string name, OpType type, std::int64_t batch,
                 std::int64_t seq, std::int64_t hidden,
                 std::uint32_t layers)
{
    ModuleSpec spec;
    spec.name = std::move(name);
    spec.type = type;
    spec.input = {batch, seq, hidden};
    spec.layers = layers;
    spec.flopsPerLayer = transformerFwdFlops(batch, seq, hidden);
    spec.paramBytesPerLayer = transformerParamBytes(hidden);
    spec.activationBytes = activationBytesOf(spec.input);
    return spec;
}

ModuleSpec
lossModule(std::string name, std::int64_t batch, std::int64_t hidden)
{
    ModuleSpec spec;
    spec.name = std::move(name);
    spec.type = OpType::Contrastive;
    spec.input = {batch, 1, hidden};
    spec.layers = 1;
    // Similarity matrix + softmax over the batch: ~2 B^2 H.
    spec.flopsPerLayer = 2.0 * static_cast<double>(batch) *
                         static_cast<double>(batch) *
                         static_cast<double>(hidden);
    spec.paramBytesPerLayer = 0;
    spec.activationBytes = activationBytesOf(spec.input);
    return spec;
}

SharedModule
WorkloadBuilder::declareShared(const ModuleSpec &spec)
{
    fatalIf(spec.layers == 0, "declareShared: zero layers");
    SharedModule shared;
    shared.keys_.reserve(spec.layers);
    for (std::uint32_t i = 0; i < spec.layers; ++i)
        shared.keys_.push_back(next_key_++);
    return shared;
}

std::int32_t
WorkloadBuilder::addTask(const std::string &name)
{
    fatalIf(built_, "addTask: builder already built");
    task_names_.push_back(name);
    return static_cast<std::int32_t>(task_names_.size()) - 1;
}

NodeRange
WorkloadBuilder::addModule(std::int32_t task, const ModuleSpec &spec,
                           const SharedModule *shared)
{
    fatalIf(built_, "addModule: builder already built");
    fatalIf(task < 0 || task >= numTasks(),
            strCat("addModule: unknown task ", task));
    fatalIf(spec.layers == 0, "addModule: zero layers");
    fatalIf(shared != nullptr && shared->keys().size() != spec.layers,
            strCat("addModule: shared module has ",
                   shared ? shared->keys().size() : 0,
                   " keys but spec declares ", spec.layers, " layers"));

    NodeRange range;
    OpId prev = -1;
    for (std::uint32_t i = 0; i < spec.layers; ++i) {
        OperatorDesc op;
        op.name = strCat(spec.name, ".", i);
        op.type = spec.type;
        op.input = spec.input;
        op.flopsFwd = spec.flopsPerLayer > 0
            ? spec.flopsPerLayer
            : transformerFwdFlops(spec.input.batch, spec.input.seq,
                                  spec.input.hidden);
        op.paramBytes = spec.paramBytesPerLayer > 0
            ? spec.paramBytesPerLayer
            : transformerParamBytes(spec.input.hidden);
        op.activationBytes = spec.activationBytes > 0
            ? spec.activationBytes
            : activationBytesOf(spec.input);
        op.taskId = task;
        op.paramKey = shared ? shared->keys()[i] : kNoParam;

        OpId id = graph_.addOperator(std::move(op));
        if (prev >= 0)
            graph_.addEdge(prev, id);
        else
            range.first = id;
        prev = id;
    }
    range.last = prev;
    return range;
}

void
WorkloadBuilder::addFlow(NodeRange from, NodeRange to)
{
    fatalIf(built_, "addFlow: builder already built");
    graph_.addEdge(from.last, to.first);
}

ComputationGraph
WorkloadBuilder::build()
{
    fatalIf(built_, "build: builder already built");
    built_ = true;
    graph_.finalize();
    return std::move(graph_);
}

} // namespace spindle
