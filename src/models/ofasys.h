/**
 * @file
 * OFASys workload (paper §5.1 (2), Appendix C): a generalist MT MM
 * paradigm where lightweight modality adaptors feed a *unified
 * encoder-decoder language model* shared by every task, trained with
 * a generative loss. The cross-modal module's workload is comparable
 * to the modality encoders'. ~0.66 B parameters.
 *
 * Seven tasks are modeled (text summarization, image captioning,
 * visual grounding, speech recognition, text-to-SQL, image
 * infilling, motion captioning), each activating its modality
 * encoder(s)/adaptors plus the shared LM.
 */

#ifndef SPINDLE_MODELS_OFASYS_H
#define SPINDLE_MODELS_OFASYS_H

#include "models/task.h"

namespace spindle {

/** Configuration of the OFASys workload. */
struct OfasysConfig
{
    /** Number of tasks (1..7). */
    std::uint32_t numTasks = 7;

    /** Global batch per task. */
    std::int64_t batch = 64;
};

/** Build the OFASys computation graph. */
ComputationGraph buildOfasys(const OfasysConfig &config = {});

} // namespace spindle

#endif // SPINDLE_MODELS_OFASYS_H
