#include "models/qwen_val.h"

#include "common/logging.h"
#include "common/units.h"

namespace spindle {

ComputationGraph
buildQwenVal(const QwenValConfig &config)
{
    fatalIf(config.numTasks < 1 || config.numTasks > 3,
            "buildQwenVal: numTasks must be 1..3");

    // LLM dimensions per scale: ~6.4B / ~29.6B / ~64B of transformer
    // parameters (embeddings make up the rest of the nominal size).
    std::int64_t llm_hidden = 4096;
    std::uint32_t llm_layers = 32;
    switch (config.size) {
      case QwenValConfig::Size::B9:
        break;
      case QwenValConfig::Size::B30:
        llm_hidden = 7168;
        llm_layers = 48;
        break;
      case QwenValConfig::Size::B70:
        llm_hidden = 8192;
        llm_layers = 80;
        break;
    }

    WorkloadBuilder builder;

    // ViT-bigG vision encoder (~1.9B) and Whisper-large audio
    // encoder (~0.6B), both shared across the tasks that use them;
    // the LLM is shared by every task.
    SharedModule vision = builder.declareShared(transformerStack(
        "vit-bigg", OpType::Vision, config.batch, 256, 1664, 48));
    SharedModule audio = builder.declareShared(transformerStack(
        "whisper-large", OpType::Audio, config.batch, 512, 1280, 32));
    SharedModule llm = builder.declareShared(transformerStack(
        "qwen-llm", OpType::LM, config.batch, 512, llm_hidden,
        llm_layers));
    SharedModule lm_head = builder.declareShared(transformerStack(
        "qwen-lm-head", OpType::Adaptor, config.batch, 512, llm_hidden,
        1));

    struct TaskCfg
    {
        const char *name;
        bool vision;
        bool audio;
    };
    const TaskCfg tasks[3] = {
        {"qwen-vl", true, false},
        {"qwen-al", false, true},
        {"qwen-val", true, true},
    };

    for (std::uint32_t t = 0; t < config.numTasks; ++t) {
        const TaskCfg &cfg = tasks[t];
        const std::int32_t task = builder.addTask(cfg.name);

        ModuleSpec llm_spec = transformerStack(
            strCat("t", t, ".llm"), OpType::LM, config.batch, 512,
            llm_hidden, llm_layers);
        NodeRange llm_range = builder.addModule(task, llm_spec, &llm);

        // Embedding + LM head: ~vocab x hidden parameters, shared
        // across tasks, with roughly one layer's worth of compute.
        ModuleSpec head_spec = transformerStack(
            strCat("t", t, ".lm-head"), OpType::Adaptor, config.batch,
            512, llm_hidden, 1);
        head_spec.paramBytesPerLayer =
            152064.0 * static_cast<double>(llm_hidden) * kBytesFp16;
        NodeRange head = builder.addModule(task, head_spec, &lm_head);
        builder.addFlow(llm_range, head);

        if (cfg.vision) {
            ModuleSpec enc = transformerStack(
                strCat("t", t, ".vision"), OpType::Vision, config.batch,
                256, 1664, 48);
            NodeRange v = builder.addModule(task, enc, &vision);
            builder.addFlow(v, llm_range);
        }
        if (cfg.audio) {
            ModuleSpec enc = transformerStack(
                strCat("t", t, ".audio"), OpType::Audio, config.batch,
                512, 1280, 32);
            NodeRange a = builder.addModule(task, enc, &audio);
            builder.addFlow(a, llm_range);
        }
    }
    return builder.build();
}

} // namespace spindle
