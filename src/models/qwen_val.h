/**
 * @file
 * QWen-VAL workload (paper §5.1 (3), Appendix C): a larger-scale MT
 * MM model following QWen-VL / QWen-Audio — a ViT-bigG vision
 * encoder (~1.9 B), a Whisper-large audio encoder (~0.6 B), and a
 * compute-intensive decoder-only LLM (~7 B) fed by the extracted
 * modality features together with text tokens. Three tasks:
 * vision-language (VL), audio-language (AL) and vision-audio-
 * language (VAL). ~9.25 B parameters; Appendix E scales the LLM to
 * 30 B / 70 B.
 */

#ifndef SPINDLE_MODELS_QWEN_VAL_H
#define SPINDLE_MODELS_QWEN_VAL_H

#include "models/task.h"

namespace spindle {

/** Configuration of the QWen-VAL workload. */
struct QwenValConfig
{
    /** LLM scale (Appendix E uses 30B and 70B variants). */
    enum class Size : std::uint8_t { B9, B30, B70 };

    Size size = Size::B9;

    /** Number of tasks (1..3: VL, AL, VAL). */
    std::uint32_t numTasks = 3;

    /** Global batch per task. */
    std::int64_t batch = 64;
};

/** Build the QWen-VAL computation graph. */
ComputationGraph buildQwenVal(const QwenValConfig &config = {});

} // namespace spindle

#endif // SPINDLE_MODELS_QWEN_VAL_H
