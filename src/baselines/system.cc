#include "baselines/system.h"

#include <chrono>

#include "common/logging.h"

namespace spindle {

System::System(const HardwareModel &hw)
    : hw_(hw)
{
}

SystemResult
System::runIteration(const MetaGraph &graph) const
{
    const auto t0 = std::chrono::steady_clock::now();
    ExecutionPlan plan = buildPlan(graph);
    // Every system dispatches on the same event-driven substrate:
    // ensure the readiness edges its dispatcher consumes are
    // annotated (planner-built plans already carry them).
    if (!plan.hasReadiness())
        plan.annotateReadiness(graph);
    const auto t1 = std::chrono::steady_clock::now();
    plan.validate(graph);

    Engine engine(hw_, MemoryParams{}, engine_options_);
    IterationResult iter = engine.run(graph, plan);

    SystemResult result;
    result.system = name();
    result.iterationSeconds = iter.iterationSeconds;
    result.breakdown = iter.breakdown;
    result.peakMemoryBytes = std::move(iter.peakMemoryBytes);
    result.timeline = std::move(iter.timeline);
    result.planningSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    result.theoreticalOptimum = plan.theoreticalOptimum;
    result.transmissionBytes = iter.transmissionBytes;
    result.syncBytes = iter.syncBytes;
    return result;
}

std::uint32_t
System::largestValid(const MetaOp &m, std::uint32_t cap) const
{
    const std::vector<std::uint32_t> valid =
        hw_.validAllocations(m, cap);
    fatalIf(valid.empty(),
            strCat("largestValid: MetaOp '", m.name,
                   "' has no valid allocation within ", cap));
    return valid.back();
}

} // namespace spindle
