/**
 * @file
 * DistMM-MT baseline (paper §5.1 (3)): the multi-task extension of
 * DistMM [NSDI'24].
 *
 * DistMM is intra-task heterogeneity aware: within one multi-modal
 * task it allocates appropriate resources to the different
 * multi-tower modality encoders and runs them concurrently. The MT
 * extension decouples tasks and executes them sequentially, each
 * task optimized in isolation with the whole cluster — so inter-task
 * heterogeneity is never exploited.
 *
 * Implementation: per task and per dependency level, the same MPSP
 * allocator and wavefront scheduler as Spindle are applied, but only
 * over that task's MetaOps; tasks run back-to-back.
 */

#ifndef SPINDLE_BASELINES_DISTMM_MT_H
#define SPINDLE_BASELINES_DISTMM_MT_H

#include "baselines/system.h"
#include "cost/estimator.h"

namespace spindle {

/** Intra-task aware, inter-task sequential system. */
class DistMMMTSystem : public System
{
  public:
    explicit DistMMMTSystem(const HardwareModel &hw,
                            EstimatorOptions estimator = {});

    std::string name() const override { return "DistMM-MT"; }

    ExecutionPlan buildPlan(const MetaGraph &graph) const override;

  private:
    EstimatorOptions estimator_;
};

} // namespace spindle

#endif // SPINDLE_BASELINES_DISTMM_MT_H
