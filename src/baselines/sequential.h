/**
 * @file
 * Temporally decoupled sequential baselines (paper §5.1 (1)&(2) and
 * Appendix H).
 *
 * Megatron-LM and DeepSpeed are single-task systems; the paper's MT
 * adaptation decouples the sub-models on the temporal dimension:
 * within each iteration every task takes up the whole cluster for a
 * short period and executes dependently and sequentially. Both are
 * workload-unaware — every operator is parallelized over as many
 * devices as its validity constraints permit:
 *
 *  - Megatron-LM: best hybrid DP x TP configuration (manually tuned
 *    3D parallelism);
 *  - DeepSpeed: ZeRO pure data parallelism (TP degree 1);
 *  - Spindle-Seq: the same decoupled strategy implemented on the
 *    Spindle runtime (Appendix H implementation-overhead control).
 */

#ifndef SPINDLE_BASELINES_SEQUENTIAL_H
#define SPINDLE_BASELINES_SEQUENTIAL_H

#include "baselines/system.h"

namespace spindle {

/** Flavor of the sequential whole-cluster strategy. */
enum class SequentialMode : std::uint8_t
{
    Megatron,  ///< hybrid DP x TP, whole cluster per operator
    DeepSpeed, ///< ZeRO pure DP, whole cluster per operator
    SpindleSeq ///< Megatron-like plan run through Spindle's stack
};

/**
 * Whole-cluster sequential execution: one wave per MetaOp, tasks one
 * after another, every wave on the maximal valid allocation.
 */
class SequentialSystem : public System
{
  public:
    SequentialSystem(const HardwareModel &hw, SequentialMode mode);

    std::string name() const override;

    ExecutionPlan buildPlan(const MetaGraph &graph) const override;

  private:
    /** Maximal allocation under the mode's parallelism menu. */
    std::uint32_t modeAllocation(const MetaOp &m) const;

    SequentialMode mode_;
};

} // namespace spindle

#endif // SPINDLE_BASELINES_SEQUENTIAL_H
