#include "baselines/spindle_system.h"

namespace spindle {

SpindleSystem::SpindleSystem(const HardwareModel &hw,
                             PlannerOptions options)
    : System(hw), options_(options)
{
}

std::string
SpindleSystem::name() const
{
    if (options_.placement.strategy == PlacementStrategy::Sequential)
        return "Spindle w/o DP";
    return "Spindle";
}

ExecutionPlan
SpindleSystem::buildPlan(const MetaGraph &graph) const
{
    ExecutionPlanner planner(hw_, options_);
    return planner.plan(graph).plan;
}

SpindleSystem
makeSpindleWithoutPlacement(const HardwareModel &hw)
{
    PlannerOptions options;
    options.placement.strategy = PlacementStrategy::Sequential;
    return SpindleSystem(hw, options);
}

} // namespace spindle
