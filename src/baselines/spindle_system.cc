#include "baselines/spindle_system.h"

#include "common/logging.h"

namespace spindle {

SpindleSystem::SpindleSystem(const HardwareModel &hw,
                             PlannerOptions options)
    : System(hw), options_(options)
{
}

std::string
SpindleSystem::name() const
{
    if (options_.placement.strategy == PlacementStrategy::Sequential)
        return "Spindle w/o DP";
    return "Spindle";
}

ExecutionPlan
SpindleSystem::buildPlan(const MetaGraph &graph) const
{
    // API-misuse tripwire, not a lock: overlapping calls used to
    // race on planner_ (and the planner's pool + cache) and corrupt
    // them silently. Panic — the *caller* holds the bug — naming the
    // contract and the supported alternatives.
    panicIf(building_.exchange(true, std::memory_order_acquire),
            "SpindleSystem::buildPlan: overlapping call on one "
            "instance. buildPlan caches the planner and its worker "
            "pool across calls, so calls must be serialized per "
            "instance; for concurrent planning give each thread its "
            "own SpindleSystem or submit requests through a "
            "PlanService (service/plan_service.h)");
    struct Guard
    {
        std::atomic<bool> &flag;
        ~Guard() { flag.store(false, std::memory_order_release); }
    } guard{building_};

    PlannerOptions options = options_;
    // EngineOptions::plannerThreads is the system-level override
    // (like the collective selector); unset defers to the planner
    // options this system was constructed with.
    if (engine_options_.plannerThreads.has_value())
        options.threads = *engine_options_.plannerThreads;
    // The planner (and its worker pool + plan cache) is cached
    // across builds — runDynamic-style replans must not pay thread
    // spawn/join per plan, and revisited task mixes should hit the
    // cache. Only the threads knob can change between calls.
    if (planner_ == nullptr ||
        planner_->options().threads != options.threads)
        planner_ = std::make_unique<ExecutionPlanner>(hw_, options);
    // Incremental: byte-identical to plan(graph), but arrivals and
    // departures pay for what they perturb, not for the cluster.
    return planner_->replan(graph).plan;
}

SpindleSystem
makeSpindleWithoutPlacement(const HardwareModel &hw)
{
    PlannerOptions options;
    options.placement.strategy = PlacementStrategy::Sequential;
    return SpindleSystem(hw, options);
}

} // namespace spindle
