/**
 * @file
 * Common interface of every training system under evaluation
 * (paper §5.1, Tab. 1a).
 *
 * Each system is characterized by the execution plan it builds for a
 * contracted workload graph; all systems then execute their plans on
 * the identical simulator substrate through the same runtime engine,
 * exactly like the paper's Appendix E simulation methodology.
 */

#ifndef SPINDLE_BASELINES_SYSTEM_H
#define SPINDLE_BASELINES_SYSTEM_H

#include <memory>
#include <string>

#include "runtime/engine.h"

namespace spindle {

/** One measured training iteration of one system. */
struct SystemResult
{
    std::string system;
    double iterationSeconds = 0;
    TimeBreakdown breakdown;
    std::vector<double> peakMemoryBytes;
    Timeline timeline;

    /** Wall-clock spent building the execution plan. */
    double planningSeconds = 0;

    /** Theoretical optimum C~* when the system computes one (Spindle
     *  only, Fig. 11); 0 otherwise. */
    double theoreticalOptimum = 0;

    double transmissionBytes = 0;
    double syncBytes = 0;
};

/**
 * Abstract training system: strategy = how the plan is built.
 *
 * Execution is shared: every system's plan is annotated with
 * readiness edges and dispatched through the same event-driven
 * engine (WaveDispatcher / TransmissionExecutor / SyncExecutor), so
 * a DispatchPolicy change applies uniformly to all systems under
 * comparison.
 */
class System
{
  public:
    explicit System(const HardwareModel &hw);
    virtual ~System() = default;

    virtual std::string name() const = 0;

    /**
     * Build the system's execution plan (placed, validated by the
     * caller) for one iteration of the workload.
     */
    virtual ExecutionPlan buildPlan(const MetaGraph &graph) const = 0;

    /**
     * Template method: build the plan, annotate its readiness
     * edges, validate it, execute one iteration on the simulator,
     * and package the measurements.
     */
    SystemResult runIteration(const MetaGraph &graph) const;

    /** Engine tunables — e.g. the dispatch policy or the collective
     *  algorithm selector (EngineOptions::collective) — used by
     *  every subsequent runIteration(). */
    void setEngineOptions(const EngineOptions &options)
    {
        engine_options_ = options;
    }
    const EngineOptions &engineOptions() const { return engine_options_; }

    const HardwareModel &hardware() const { return hw_; }

  protected:
    /** Largest valid allocation of @p m not exceeding @p cap. */
    std::uint32_t largestValid(const MetaOp &m, std::uint32_t cap) const;

    const HardwareModel &hw_;
    EngineOptions engine_options_;
};

} // namespace spindle

#endif // SPINDLE_BASELINES_SYSTEM_H
