#include "baselines/optimus.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/logging.h"

namespace spindle {

namespace {

/** Serial completion time of a task's MetaOps on n devices, each
 *  MetaOp using its largest valid allocation <= n. */
double
taskTime(const MetaGraph &graph, const std::vector<ScalingCurve> &curves,
         const std::vector<MetaOpId> &ids, std::uint32_t n)
{
    double total = 0;
    for (MetaOpId id : ids) {
        const ScalingCurve &curve = curves[id];
        std::uint32_t best = curve.minValid();
        for (std::uint32_t v : curve.validNs()) {
            if (v <= n)
                best = v;
            else
                break;
        }
        total += curve.timeAt(best) *
                 static_cast<double>(graph.metaOp(id).numOps());
    }
    return total;
}

} // namespace

SpindleOptimusSystem::SpindleOptimusSystem(const HardwareModel &hw,
                                           EstimatorOptions estimator)
    : System(hw), estimator_(estimator)
{
}

std::map<std::int32_t, std::vector<MetaOpId>>
SpindleOptimusSystem::groupTasks(const MetaGraph &graph) const
{
    // One job per task; with more tasks than devices, tasks are
    // folded round-robin into per-device job queues (each queue
    // runs its tasks back to back on the shared block).
    const std::uint32_t n_total = hw_.topology().numDevices();
    std::map<std::int32_t, std::vector<MetaOpId>> tasks;
    for (const MetaOp &m : graph.metaOps())
        tasks[m.taskId].push_back(m.id);
    if (tasks.size() <= n_total)
        return tasks;

    std::map<std::int32_t, std::vector<MetaOpId>> groups;
    std::int32_t next = 0;
    for (const auto &[task, ids] : tasks) {
        auto &group = groups[next % static_cast<std::int32_t>(n_total)];
        group.insert(group.end(), ids.begin(), ids.end());
        ++next;
    }
    return groups;
}

std::map<std::int32_t, std::uint32_t>
SpindleOptimusSystem::allocateTasks(
    const MetaGraph &graph, const std::vector<ScalingCurve> &curves) const
{
    const std::uint32_t n_total = hw_.topology().numDevices();
    std::map<std::int32_t, std::vector<MetaOpId>> tasks =
        groupTasks(graph);

    std::map<std::int32_t, std::uint32_t> alloc;
    for (const auto &[task, ids] : tasks)
        alloc[task] = 1;
    std::uint32_t used = static_cast<std::uint32_t>(tasks.size());

    // Greedy: repeatedly grow the task with the largest marginal
    // gain (T(n) - T(n')) / (n' - n), where n' is the task's next
    // valid (time-improving) allocation above n (§5.1).
    while (used < n_total) {
        double best_gain = 0;
        std::int32_t best_task = -1;
        std::uint32_t best_next = 0;
        for (const auto &[task, ids] : tasks) {
            const std::uint32_t cur = alloc[task];
            const double t_cur = taskTime(graph, curves, ids, cur);
            // Next allocation that actually improves the task time
            // and still fits in the unallocated budget.
            for (std::uint32_t next = cur + 1;
                 next <= cur + (n_total - used); ++next) {
                const double t_next =
                    taskTime(graph, curves, ids, next);
                if (t_next >= t_cur)
                    continue;
                const double gain =
                    (t_cur - t_next) / static_cast<double>(next - cur);
                if (gain > best_gain) {
                    best_gain = gain;
                    best_task = task;
                    best_next = next;
                }
                break; // only the *next* valid allocation counts
            }
        }
        if (best_task < 0)
            break; // no task benefits from more devices
        used += best_next - alloc[best_task];
        alloc[best_task] = best_next;
    }
    return alloc;
}

ExecutionPlan
SpindleOptimusSystem::buildPlan(const MetaGraph &graph) const
{
    const std::uint32_t n_total = hw_.topology().numDevices();
    ScalabilityEstimator estimator(hw_, estimator_);
    std::vector<ScalingCurve> curves =
        estimator.estimateAll(graph, n_total);
    std::map<std::int32_t, std::uint32_t> alloc =
        allocateTasks(graph, curves);

    std::map<std::int32_t, std::vector<MetaOpId>> tasks =
        groupTasks(graph);

    // Tasks run concurrently on disjoint consecutive device blocks;
    // within a block, the task executes its MetaOps sequentially in
    // dependency-level order, each on the block's largest valid
    // allocation (task-level granularity: no operator awareness).
    ExecutionPlan plan;
    plan.numDevices = n_total;
    std::uint32_t block_start = 0;
    std::int32_t stream = 0;
    for (auto &[task, ids] : tasks) {
        const std::uint32_t block = alloc[task];
        std::sort(ids.begin(), ids.end(),
                  [&](MetaOpId a, MetaOpId b) {
                      const MetaOp &ma = graph.metaOp(a);
                      const MetaOp &mb = graph.metaOp(b);
                      if (ma.level != mb.level)
                          return ma.level < mb.level;
                      return a < b;
                  });
        for (MetaOpId id : ids) {
            const MetaOp &m = graph.metaOp(id);
            const std::uint32_t n = largestValid(m, block);
            Wave wave;
            wave.index = static_cast<std::int32_t>(plan.waves.size());
            wave.level = m.level;
            wave.stream = stream;

            WaveEntry e;
            e.metaOp = id;
            e.n = n;
            e.opBegin = 0;
            e.numOps = m.numOps();
            e.devices.resize(n);
            std::iota(e.devices.begin(), e.devices.end(), block_start);
            wave.entries.push_back(std::move(e));
            plan.waves.push_back(std::move(wave));
        }
        block_start += block;
        ++stream;
    }
    return plan;
}

} // namespace spindle
