#include "baselines/distmm_mt.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "planner/placement.h"
#include "planner/resource_allocator.h"
#include "planner/wavefront_scheduler.h"

namespace spindle {

DistMMMTSystem::DistMMMTSystem(const HardwareModel &hw,
                               EstimatorOptions estimator)
    : System(hw), estimator_(estimator)
{
}

ExecutionPlan
DistMMMTSystem::buildPlan(const MetaGraph &graph) const
{
    const std::uint32_t n = hw_.topology().numDevices();

    ScalabilityEstimator estimator(hw_, estimator_);
    std::vector<ScalingCurve> curves = estimator.estimateAll(graph, n);

    ResourceAllocator allocator(graph, curves, n);
    WavefrontScheduler scheduler(graph, curves, n);

    // Group the task's MetaOps by (task, level); allocate and
    // schedule each group with the whole cluster, tasks sequential.
    std::map<std::int32_t, std::map<std::int32_t, std::vector<MetaOpId>>>
        task_levels;
    for (const MetaOp &m : graph.metaOps())
        task_levels[m.taskId][m.level].push_back(m.id);

    ExecutionPlan plan;
    plan.numDevices = n;
    double t = 0;
    for (const auto &[task, levels] : task_levels) {
        for (const auto &[level, ids] : levels) {
            LevelAllocation alloc = allocator.allocateLevel(ids);
            t = scheduler.scheduleLevel(alloc, t, plan.waves);
        }
    }

    // DistMM does not model placement locality; consecutive devices.
    MemoryModel mem;
    PlacementOptions popt;
    popt.strategy = PlacementStrategy::Sequential;
    DevicePlacement placement(hw_.topology(), hw_, mem, popt);
    placement.place(graph, plan);
    return plan;
}

} // namespace spindle
