#include "baselines/sequential.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/logging.h"

namespace spindle {

SequentialSystem::SequentialSystem(const HardwareModel &hw,
                                   SequentialMode mode)
    : System(hw), mode_(mode)
{
}

std::string
SequentialSystem::name() const
{
    switch (mode_) {
      case SequentialMode::Megatron: return "Megatron-LM";
      case SequentialMode::DeepSpeed: return "DeepSpeed";
      case SequentialMode::SpindleSeq: return "Spindle-Seq";
    }
    panic("SequentialSystem: unknown mode");
}

std::uint32_t
SequentialSystem::modeAllocation(const MetaOp &m) const
{
    const std::uint32_t n = hw_.topology().numDevices();
    if (mode_ == SequentialMode::DeepSpeed) {
        // ZeRO pure DP: the largest DP degree dividing the batch.
        const auto batch = static_cast<std::uint32_t>(
            std::max<std::int64_t>(m.input.batch, 1));
        std::uint32_t best = 1;
        for (std::uint32_t d = 1; d <= std::min(n, batch); ++d)
            if (batch % d == 0)
                best = d;
        return best;
    }
    return largestValid(m, n);
}

ExecutionPlan
SequentialSystem::buildPlan(const MetaGraph &graph) const
{
    ExecutionPlan plan;
    plan.numDevices = hw_.topology().numDevices();

    // Tasks in id order; within a task, MetaOps in dependency-level
    // order (ties by id). Each MetaOp becomes one whole-cluster wave.
    std::map<std::int32_t, std::vector<MetaOpId>> tasks;
    for (const MetaOp &m : graph.metaOps())
        tasks[m.taskId].push_back(m.id);
    for (auto &[task, ids] : tasks) {
        std::sort(ids.begin(), ids.end(),
                  [&](MetaOpId a, MetaOpId b) {
                      const MetaOp &ma = graph.metaOp(a);
                      const MetaOp &mb = graph.metaOp(b);
                      if (ma.level != mb.level)
                          return ma.level < mb.level;
                      return a < b;
                  });
        for (MetaOpId id : ids) {
            const MetaOp &m = graph.metaOp(id);
            const std::uint32_t n = modeAllocation(m);
            Wave wave;
            wave.index = static_cast<std::int32_t>(plan.waves.size());
            wave.level = m.level;

            WaveEntry e;
            e.metaOp = id;
            e.n = n;
            e.opBegin = 0;
            e.numOps = m.numOps();
            e.devices.resize(n);
            std::iota(e.devices.begin(), e.devices.end(), 0u);
            wave.entries.push_back(std::move(e));
            plan.waves.push_back(std::move(wave));
        }
    }
    return plan;
}

} // namespace spindle
