/**
 * @file
 * Spindle itself, packaged behind the common System interface so the
 * benchmark harnesses can sweep every competitor uniformly.
 */

#ifndef SPINDLE_BASELINES_SPINDLE_SYSTEM_H
#define SPINDLE_BASELINES_SPINDLE_SYSTEM_H

#include "baselines/system.h"
#include "planner/planner.h"

namespace spindle {

/** The full Spindle planner + runtime as a System. */
class SpindleSystem : public System
{
  public:
    explicit SpindleSystem(const HardwareModel &hw,
                           PlannerOptions options = {});

    std::string name() const override;

    ExecutionPlan buildPlan(const MetaGraph &graph) const override;

    const PlannerOptions &plannerOptions() const { return options_; }

  private:
    PlannerOptions options_;
};

/** Convenience: Spindle with the Fig. 10 sequential-placement
 *  ablation enabled ("Sp*: Spindle w/o DP" = without the device
 *  placement strategies of §3.5). */
SpindleSystem makeSpindleWithoutPlacement(const HardwareModel &hw);

} // namespace spindle

#endif // SPINDLE_BASELINES_SPINDLE_SYSTEM_H
