/**
 * @file
 * Spindle itself, packaged behind the common System interface so the
 * benchmark harnesses can sweep every competitor uniformly.
 */

#ifndef SPINDLE_BASELINES_SPINDLE_SYSTEM_H
#define SPINDLE_BASELINES_SPINDLE_SYSTEM_H

#include <atomic>
#include <memory>

#include "baselines/system.h"
#include "planner/planner.h"

namespace spindle {

/**
 * The full Spindle planner + runtime as a System.
 *
 * buildPlan() caches the planner (and its worker pool) across
 * calls, so concurrent buildPlan() on one instance is not supported
 * — matching ExecutionPlanner::plan(), which was never itself
 * thread-safe. Parallelism belongs *inside* a plan
 * (EngineOptions::plannerThreads) or *across requests* behind a
 * PlanService (service/plan_service.h), not across threads sharing
 * one SpindleSystem. The misuse used to corrupt the cached
 * planner/pool state silently; an atomic in-use guard now panics
 * with an actionable message instead (overlapping buildPlan calls —
 * including re-entry from a placement window-generator callback —
 * are detected, not raced).
 */
class SpindleSystem : public System
{
  public:
    explicit SpindleSystem(const HardwareModel &hw,
                           PlannerOptions options = {});

    std::string name() const override;

    ExecutionPlan buildPlan(const MetaGraph &graph) const override;

    const PlannerOptions &plannerOptions() const { return options_; }

  private:
    PlannerOptions options_;

    /** Cached planner (owns the worker pool); rebuilt only when the
     *  effective thread count changes (see buildPlan). */
    mutable std::unique_ptr<ExecutionPlanner> planner_;

    /** buildPlan() in-use guard: detects overlapping calls on one
     *  instance (an API misuse) before they corrupt planner_. */
    mutable std::atomic<bool> building_{false};
};

/** Convenience: Spindle with the Fig. 10 sequential-placement
 *  ablation enabled ("Sp*: Spindle w/o DP" = without the device
 *  placement strategies of §3.5). */
SpindleSystem makeSpindleWithoutPlacement(const HardwareModel &hw);

} // namespace spindle

#endif // SPINDLE_BASELINES_SPINDLE_SYSTEM_H
