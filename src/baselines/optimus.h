/**
 * @file
 * Spindle-Optimus baseline (paper §5.1 (4)): workload-aware
 * *task-level* resource allocation in the spirit of Optimus
 * [EuroSys'18].
 *
 * Each task is treated as one job with completion time T_task(n) =
 * the serial execution of its MetaOps on n devices. Devices are
 * assigned greedily to the task with the largest marginal gain
 * (T(n) - T(n')) / (n' - n); tasks then run concurrently on disjoint
 * static device blocks. Intra-task operator heterogeneity is
 * ignored — the coarse granularity the paper's case study blames for
 * devices idling once light tasks finish.
 */

#ifndef SPINDLE_BASELINES_OPTIMUS_H
#define SPINDLE_BASELINES_OPTIMUS_H

#include <map>

#include "baselines/system.h"
#include "cost/estimator.h"

namespace spindle {

/** Task-level marginal-gain allocation system. */
class SpindleOptimusSystem : public System
{
  public:
    explicit SpindleOptimusSystem(const HardwareModel &hw,
                                  EstimatorOptions estimator = {});

    std::string name() const override { return "Spindle-Optimus"; }

    ExecutionPlan buildPlan(const MetaGraph &graph) const override;

    /**
     * The greedy task-level allocation itself (exposed for tests):
     * devices per task id, summing to min(N, ...) with every task
     * getting at least one device.
     */
    std::map<std::int32_t, std::uint32_t>
    allocateTasks(const MetaGraph &graph,
                  const std::vector<ScalingCurve> &curves) const;

    /**
     * Job formation: one job per task, except when tasks outnumber
     * devices, in which case tasks fold round-robin into shared
     * job queues so every job can own at least one device.
     */
    std::map<std::int32_t, std::vector<MetaOpId>>
    groupTasks(const MetaGraph &graph) const;

  private:
    EstimatorOptions estimator_;
};

} // namespace spindle

#endif // SPINDLE_BASELINES_OPTIMUS_H
