/**
 * @file
 * Runtime-collective comparison: for each seed workload over
 * homogeneous and mixed-size island topologies, plan once and run
 * the identical placed plan with the FlatRing, Hierarchical and
 * Auto collective algorithms under both dispatch policies. Reports
 * exposed sync seconds per algorithm and the flat-vs-Auto delta —
 * the quantity the island-aware placements are rewarded with at
 * runtime — and emits the records into BENCH_collectives.json
 * (merged, so bench_fig08_end_to_end's rows coexist), which the CI
 * perf smoke gates against bench/baseline_collectives.json.
 */

#include <iostream>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

namespace {

/**
 * Mixed-size island fabric that rewards hierarchy: the planner
 * sweeps' 12-GPU + 4-GPU island shape with a rail-constrained
 * (single 50 GB/s rail) inter-island collective class, slower than
 * the 200 GB/s NVLink.
 */
ClusterTopology
railConstrainedHetero(std::uint32_t num_nodes)
{
    ClusterConfig cfg = heteroClusterConfig(num_nodes);
    cfg.interIslandCollective = {50 * kGiga, 10 * kMicro};
    return ClusterTopology(cfg);
}

/**
 * The same mixed 12/4-GPU fabric with a multi-rail inter-island
 * collective class: min(4-GPU island slice, rails) concurrent rings,
 * the fabric the sharded algorithm is built for.
 */
ClusterTopology
railRichHetero(std::uint32_t num_nodes, std::uint32_t rails)
{
    ClusterConfig cfg = heteroClusterConfig(num_nodes);
    cfg.interIslandCollective = {50 * kGiga, 10 * kMicro, rails};
    return ClusterTopology(cfg);
}

struct KindRun
{
    double syncSeconds = 0;
    double iterSeconds = 0;
};

KindRun
runKind(const HardwareModel &hw, const MetaGraph &meta,
        const ExecutionPlan &plan, DispatchPolicyKind dispatch,
        CollectiveKind kind)
{
    EngineOptions options;
    options.dispatch = dispatch;
    options.collective = kind;
    IterationResult r =
        Engine(hw, MemoryParams{}, options).run(meta, plan);
    return {r.breakdown.sync, r.iterationSeconds};
}

void
sweep(const std::string &workload, const ComputationGraph &graph,
      const std::string &cluster, ClusterTopology topo, Table &table,
      BenchJsonWriter &json)
{
    HardwareModel hw(topo);
    MetaGraph meta = contractGraph(graph);
    PlannerOutput out = ExecutionPlanner(hw).plan(meta);

    for (DispatchPolicyKind dispatch :
         {DispatchPolicyKind::StrictBarrier,
          DispatchPolicyKind::Overlap}) {
        const bool strict =
            dispatch == DispatchPolicyKind::StrictBarrier;
        const KindRun flat =
            runKind(hw, meta, out.plan, dispatch,
                    CollectiveKind::FlatRing);
        const KindRun hier =
            runKind(hw, meta, out.plan, dispatch,
                    CollectiveKind::Hierarchical);
        const KindRun sharded =
            runKind(hw, meta, out.plan, dispatch,
                    CollectiveKind::ShardedHierarchical);
        const KindRun aut =
            runKind(hw, meta, out.plan, dispatch,
                    CollectiveKind::Auto);

        const std::string name = strCat(workload, "/", cluster, "/",
                                        strict ? "strict" : "overlap");
        table.addRow({workload, cluster,
                      strict ? "StrictBarrier" : "Overlap",
                      Table::fmt(toMs(flat.syncSeconds), 3),
                      Table::fmt(toMs(hier.syncSeconds), 3),
                      Table::fmt(toMs(sharded.syncSeconds), 3),
                      Table::fmt(toMs(aut.syncSeconds), 3),
                      Table::fmt(toMs(flat.syncSeconds -
                                      aut.syncSeconds),
                                 3),
                      Table::fmt(toMs(aut.iterSeconds), 2)});
        json.record(
            name,
            {{"gpus", double(topo.numDevices())},
             {"islands", double(topo.numIslands())},
             {"rails",
              double(topo.config().interIslandCollective.rails)},
             {"flat_sync_s", flat.syncSeconds},
             {"hier_sync_s", hier.syncSeconds},
             {"sharded_sync_s", sharded.syncSeconds},
             {"auto_sync_s", aut.syncSeconds},
             {"sync_delta_s", flat.syncSeconds - aut.syncSeconds},
             {"sharded_delta_s",
              hier.syncSeconds - sharded.syncSeconds},
             {"flat_iter_s", flat.iterSeconds},
             {"auto_iter_s", aut.iterSeconds}});
    }
}

} // namespace

int
main()
{
    std::cout << "=== Runtime collectives: exposed sync by algorithm "
                 "===\n";
    Table table({"workload", "cluster", "policy", "flat_sync_ms",
                 "hier_sync_ms", "sharded_sync_ms", "auto_sync_ms",
                 "delta_ms", "auto_iter_ms"});
    BenchJsonWriter json;
    if (!json.loadFile("BENCH_collectives.json"))
        std::cerr << "warning: malformed lines in existing "
                     "BENCH_collectives.json were dropped\n";

    for (std::uint32_t tasks : {4u, 10u}) {
        ComputationGraph graph = buildMultitaskClip({.numTasks = tasks});
        const std::string name = strCat("Multitask-CLIP/", tasks, "T");
        sweep(name, graph, "2Nodes(16GPUs)", makeCluster(2), table,
              json);
        sweep(name, graph, "hetero16(12+4,50G)",
              railConstrainedHetero(2), table, json);
    }
    for (std::uint32_t tasks : {4u, 7u}) {
        ComputationGraph graph = buildOfasys({.numTasks = tasks});
        const std::string name = strCat("OFASys/", tasks, "T");
        sweep(name, graph, "hetero16(12+4,50G)",
              railConstrainedHetero(2), table, json);
    }
    {
        ComputationGraph graph = buildQwenVal({});
        sweep("QWen-VAL-9B/3T", graph, "hetero32(12+4,50G)",
              railConstrainedHetero(4), table, json);
    }
    // Rail-rich sweep: the 64-GPU mixed fabric with 4 and 8 rails on
    // the inter-island class. The 4-GPU islands cap the shard count
    // at 4, so the 8-rail points pin rail saturation: sharded equals
    // the 4-rail fabric while Auto still beats Hierarchical >= 10%
    // (the perf-smoke gate in check_bench_regression.py).
    for (std::uint32_t rails : {4u, 8u}) {
        ComputationGraph graph = buildMultitaskClip({.numTasks = 10});
        sweep("Multitask-CLIP/10T", graph,
              strCat("hetero64(12+4,50Gx", rails, "r)"),
              railRichHetero(8, rails), table, json);
    }

    table.printAligned(std::cout);

    if (json.writeFile("BENCH_collectives.json"))
        std::cout << "\nwrote BENCH_collectives.json\n";
    else
        std::cerr << "\nfailed to write BENCH_collectives.json\n";
    return 0;
}
