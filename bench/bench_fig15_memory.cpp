/**
 * @file
 * Reproduces Fig. 15 (Appendix G): per-device peak memory (GB) of
 * every system on Multitask-CLIP (4 tasks, 16 GPUs). Spindle's
 * selective parameter storage keeps consumption lower than the
 * whole-cluster replication of Megatron-LM/DeepSpeed, and its
 * memory-balancing placement keeps it even across devices.
 */

#include <algorithm>
#include <iostream>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

int
main()
{
    ComputationGraph graph = buildMultitaskClip({.numTasks = 4});
    MetaGraph meta = contractGraph(graph);
    ClusterTopology topo = makeCluster(2); // 16 GPUs
    HardwareModel hw(topo);

    auto systems = makeAllSystems(hw);
    std::vector<SystemResult> results;
    for (const auto &sys : systems)
        results.push_back(sys->runIteration(meta));

    std::cout << "=== Fig. 15: per-device memory consumption (GB), "
                 "Multitask-CLIP 4 tasks, 16 GPUs ===\n";
    std::vector<std::string> header{"device"};
    for (const SystemResult &r : results)
        header.push_back(r.system);
    Table table(std::move(header));
    for (std::uint32_t d = 0; d < topo.numDevices(); ++d) {
        std::vector<std::string> row{strCat(d)};
        for (const SystemResult &r : results)
            row.push_back(Table::fmt(r.peakMemoryBytes[d] / GiB, 2));
        table.addRow(std::move(row));
    }
    table.printAligned(std::cout);

    std::cout << "\nsummary (GB): max / mean / imbalance "
                 "(max over min):\n";
    Table summary({"system", "max_GB", "mean_GB", "imbalance"});
    for (const SystemResult &r : results) {
        double mx = 0, mn = 1e30, sum = 0;
        for (double b : r.peakMemoryBytes) {
            mx = std::max(mx, b);
            mn = std::min(mn, b);
            sum += b;
        }
        summary.addRow({r.system, Table::fmt(mx / GiB, 2),
                        Table::fmt(sum / GiB / topo.numDevices(), 2),
                        Table::fmt(mx / std::max(mn, 1.0), 2)});
    }
    summary.printAligned(std::cout);
    return 0;
}
