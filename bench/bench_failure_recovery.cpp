/**
 * @file
 * Failure-recovery bench: elastic recovery latency against cold
 * replanning (ROADMAP "Failure and elasticity scenarios").
 *
 * Two scenarios:
 *
 *  - 64-GPU chaos run (informational): a seeded ChaosInjector
 *    schedule — two random kills per iteration with rejoins — driven
 *    end-to-end through the RecoveryCoordinator, reporting episode
 *    counts, downtime, lost work, and post-failure throughput.
 *
 *  - 256-GPU flapping-shape storm (the gated point): two in-use
 *    devices alternately fail mid-iteration and rejoin, so the same
 *    two surviving shapes recur. After each shape's first episode the
 *    coordinator's shared PlanCache serves every recovery replan as a
 *    full hit; the mean full-hit recovery replan must beat a cold
 *    from-scratch plan() on the same surviving topology by >= 3x
 *    (gated in CI via check_bench_regression.py `recovery` mode
 *    against bench/baseline_recovery.json).
 *
 * Emits BENCH_recovery.json (override the path with the
 * SPINDLE_BENCH_JSON environment variable).
 */

#include <cstdlib>
#include <iostream>
#include <thread>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

namespace {

/** Devices the plan actually reserves, ascending. */
DeviceSet
usedDevices(const ExecutionPlan &plan)
{
    std::vector<bool> used(plan.numDevices, false);
    for (const Wave &w : plan.waves)
        for (const WaveEntry &e : w.entries)
            for (DeviceId d : e.devices)
                used[d] = true;
    DeviceSet out;
    for (DeviceId d = 0; d < plan.numDevices; ++d)
        if (used[d])
            out.push_back(d);
    return out;
}

/** Seeded random chaos at 64 GPUs, end to end (informational). */
void
runChaos(BenchJsonWriter &json, Table &table)
{
    ClusterTopology topo = makeCluster(8); // 64 GPUs
    HardwareModel hw(topo);
    ComputationGraph g = buildMultitaskClip({.numTasks = 4});
    MetaGraph meta = contractGraph(g);

    ChaosOptions copts;
    copts.iterations = 6;
    copts.killsPerIteration = 2;
    copts.rejoinAfter = 2;
    copts.seed = 7;
    FaultPlan faults = ChaosInjector(copts).generate(topo);

    RecoveryCoordinator coord(hw, meta);
    FaultedRunResult run = coord.run(faults, copts.iterations);
    const RecoveryStats &rec = run.recovery;

    double throughput_ratio = 0;
    std::uint64_t full_hits = 0;
    for (const RecoveryOutcome &ep : rec.outcomes) {
        throughput_ratio += ep.throughputRatio();
        full_hits += ep.replan.fullHit ? 1 : 0;
    }
    const double episodes = std::max<std::uint32_t>(rec.episodes, 1);

    json.record(
        "chaos/gpus=64",
        {{"gpus", static_cast<double>(topo.numDevices())},
         {"iterations", static_cast<double>(copts.iterations)},
         {"episodes", static_cast<double>(rec.episodes)},
         {"attempts", static_cast<double>(rec.totalAttempts)},
         {"full_hits", static_cast<double>(full_hits)},
         {"rejoined_devices", static_cast<double>(rec.rejoinedDevices)},
         {"mean_downtime_seconds", rec.totalDowntimeSeconds / episodes},
         {"mean_replan_seconds", rec.totalReplanSeconds / episodes},
         {"total_lost_work_seconds", rec.totalLostWorkSeconds},
         {"mean_throughput_ratio", throughput_ratio / episodes},
         {"total_seconds", run.totalSeconds}});
    table.addRow({"chaos/64", strCat(rec.episodes),
                  Table::fmt(toMs(rec.totalReplanSeconds / episodes), 3),
                  "-", "-", strCat(full_hits, "/", rec.episodes)});
}

/** Flapping-shape storm at 256 GPUs: the gated recovery point. */
void
runFlapStorm(BenchJsonWriter &json, Table &table)
{
    ClusterTopology topo = makeCluster(32); // 256 GPUs
    HardwareModel hw(topo);
    ComputationGraph g = buildMultitaskClip({.numTasks = 4});
    MetaGraph meta = contractGraph(g);

    // Victims must carry scheduled work or a mid-iteration kill would
    // drain instead of aborting: pick the first and last devices the
    // base plan reserves (usually in different islands, so the two
    // surviving shapes are distinct cache contexts).
    DeviceSet used;
    {
        ExecutionPlanner scout(hw);
        used = usedDevices(scout.plan(meta).plan);
    }
    panicIf(used.size() < 2,
            "flap storm: base plan uses fewer than two devices");
    const std::uint32_t victims[2] = {used.front(), used.back()};

    // Device A fails mid-iteration 0 and rejoins at the iteration-1
    // boundary, where device B fails, and so on: every iteration is
    // one failure episode, and each surviving shape recurs storm/2
    // times.
    constexpr std::uint32_t kEpisodes = 12;
    FaultPlan faults;
    for (std::uint32_t k = 0; k < kEpisodes; ++k) {
        const std::uint32_t d = victims[k % 2];
        faults.events.push_back(
            {k, /*fraction=*/0.5, FaultKind::DeviceFail, d});
        faults.events.push_back(
            {k + 1, /*fraction=*/0.0, FaultKind::DeviceJoin, d});
    }

    RecoveryCoordinator coord(hw, meta);
    FaultedRunResult run = coord.run(faults, kEpisodes + 1);
    const RecoveryStats &rec = run.recovery;
    panicIf(rec.episodes != kEpisodes,
            strCat("flap storm: expected ", kEpisodes, " episodes, got ",
                   rec.episodes));

    // Recovery latency: the mean full-hit recovery replan (each
    // shape's first episode is the cold miss that warms the cache).
    double recovery_seconds = 0;
    std::uint64_t full_hits = 0;
    for (const RecoveryOutcome &ep : rec.outcomes) {
        if (!ep.replan.fullHit)
            continue;
        recovery_seconds += ep.replanSeconds;
        ++full_hits;
    }
    panicIf(full_hits == 0,
            "flap storm: recurring shapes never hit the plan cache");
    const double recovery_mean =
        recovery_seconds / static_cast<double>(full_hits);

    // Cold reference: a fresh planner (no shared cache) planning from
    // scratch on the same surviving topologies.
    double cold_seconds = 0;
    std::uint64_t cold_samples = 0;
    for (std::uint32_t d : victims) {
        ClusterTopology surv(topo.withoutDevices({d}).config);
        HardwareModel cold_hw(surv);
        for (std::uint32_t rep = 0; rep < 3; ++rep) {
            ExecutionPlanner cold(cold_hw);
            cold_seconds += cold.plan(meta).planningSeconds;
            ++cold_samples;
        }
    }
    const double cold_mean =
        cold_seconds / static_cast<double>(cold_samples);
    const double speedup = cold_mean / recovery_mean;

    json.record(
        "flap-storm/gpus=256",
        {{"gpus", static_cast<double>(topo.numDevices())},
         {"events", static_cast<double>(rec.episodes)},
         {"recovery_mean_seconds", recovery_mean},
         {"cold_mean_seconds", cold_mean},
         {"speedup", speedup},
         {"full_hits", static_cast<double>(full_hits)},
         {"mean_downtime_seconds",
          rec.totalDowntimeSeconds / rec.episodes},
         {"hw_threads",
          static_cast<double>(std::thread::hardware_concurrency())}});
    table.addRow({"flap/256", strCat(rec.episodes),
                  Table::fmt(toMs(recovery_mean), 3),
                  Table::fmt(toMs(cold_mean), 3),
                  Table::fmt(speedup, 1),
                  strCat(full_hits, "/", rec.episodes)});
}

} // namespace

int
main()
{
    std::cout << "=== Failure recovery: elastic replan vs cold plan "
                 "===\n";

    BenchJsonWriter json;
    Table table({"scenario", "episodes", "recovery_mean_ms",
                 "cold_mean_ms", "speedup", "full_hits"});

    runChaos(json, table);
    runFlapStorm(json, table);

    table.printAligned(std::cout);
    std::cout << "\nEvery episode kills an in-use device mid-iteration; "
                 "the coordinator aborts the wave, replans on the "
                 "surviving topology, and recurring shapes are served "
                 "from the shared plan cache.\n";

    const char *override_path = std::getenv("SPINDLE_BENCH_JSON");
    const std::string path =
        override_path != nullptr ? override_path : "BENCH_recovery.json";
    if (json.writeFile(path))
        std::cout << "\nwrote " << path << "\n";
    else
        std::cerr << "\nfailed to write " << path << "\n";
    return 0;
}
