/**
 * @file
 * Planner scaling sweep: full execution-planning wall-clock from 8
 * to 256 GPUs on the heavy seed workloads (CLIP-10, OFASys-7 and the
 * 70B QWen-VAL of Tab. 2), with the per-phase breakdown (estimation /
 * allocation / scheduling / placement seconds) attached as counters,
 * plus sampled 1024/2048/4096-GPU CLIP-10 points probing the scale
 * envelope and a 512-GPU memory-fallback stress lane (the
 * Placement.MemoryFallback512GpuStress scenario as a gated
 * wall-clock record).
 *
 * The paper claims planning completes "within 3 seconds" at 64 GPUs;
 * the incremental placement scoring and memoized cost model keep the
 * 256-GPU points in the low milliseconds, and the thread-pool
 * planner core scales the dominant placement sweep across cores. The
 * sweep therefore carries a `threads` dimension at the largest scale
 * (serial / 2 / 8 planner threads at 256 GPUs; plans are
 * byte-identical across thread counts, so only wall-clock moves).
 * Results are written as BENCH_planner.json (path overridable via
 * SPINDLE_BENCH_JSON) for trajectory tracking and the CI perf smoke
 * job — see scripts/check_bench_regression.py (planner mode for the
 * wall-clock budgets, planner-threads mode for the parallel-vs-serial
 * speedup floor, planner-stress mode for the 512-GPU fallback lane;
 * each record carries hw_threads so the wall-clock gates can skip
 * runners without parallel hardware).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

namespace {

BenchJsonWriter &
jsonLog()
{
    static BenchJsonWriter writer;
    return writer;
}

struct WorkloadCase
{
    const char *name;
    ComputationGraph graph;
    bool zeroShardParams = false;

    /** Mixed 12/4-GPU islands + island-aware windows instead of the
     *  homogeneous 8-GPU nodes (same total GPU count). */
    bool hetero = false;
};

void
planAtScale(benchmark::State &state, const WorkloadCase &wl)
{
    const auto nodes = static_cast<std::uint32_t>(state.range(0));
    const auto threads = static_cast<std::uint32_t>(state.range(1));
    ClusterTopology topo =
        wl.hetero ? makeHeteroCluster(nodes) : makeCluster(nodes);
    HardwareModel hw(topo);
    MetaGraph meta = contractGraph(wl.graph);

    PlannerOptions options;
    // >= 30B models need ZeRO-3-style parameter sharding to fit
    // 80 GB devices (as real deployments do).
    options.memory.zeroShardParams = wl.zeroShardParams;
    if (wl.hetero)
        options.placement.windows = WindowPolicy::IslandAware;
    options.threads = threads;
    ExecutionPlanner planner(hw, options);

    // Keep the *fastest* iteration: the CI gate compares these
    // numbers against a budget, and the minimum is immune to one-off
    // scheduler stalls on shared runners (any single iteration is
    // not).
    PlannerOutput best;
    bool first = true;
    for (auto _ : state) {
        PlannerOutput out = planner.plan(meta);
        benchmark::DoNotOptimize(out.plan.estimatedSpan);
        if (first || out.planningSeconds < best.planningSeconds) {
            best = std::move(out);
            first = false;
        }
    }

    const std::uint32_t gpus = nodes * 8;

    // Which planning phase is the serial tail at this scale — the
    // argmax of the per-phase breakdown (first wins on ties). At the
    // 1024-GPU-and-up samples this is what decides where the next
    // scaling PR spends its effort. The JSON records carry the phase
    // *name* (kPlannerPhaseNames) so the artifact stays
    // self-describing if phases are ever added or reordered; the
    // benchmark counter stays numeric (counters are doubles).
    const double phases[4] = {best.phaseSeconds.estimation,
                              best.phaseSeconds.allocation,
                              best.phaseSeconds.scheduling,
                              best.phaseSeconds.placement};
    std::uint32_t tail = 0;
    for (std::uint32_t i = 1; i < 4; ++i)
        if (phases[i] > phases[tail])
            tail = i;

    state.counters["gpus"] = gpus;
    state.counters["threads"] = threads;
    state.counters["plan_seconds"] = best.planningSeconds;
    state.counters["estimation_seconds"] = best.phaseSeconds.estimation;
    state.counters["allocation_seconds"] = best.phaseSeconds.allocation;
    state.counters["scheduling_seconds"] = best.phaseSeconds.scheduling;
    state.counters["placement_seconds"] = best.phaseSeconds.placement;
    state.counters["serial_tail_phase"] = tail;

    // Serial records keep their historical names (budget
    // continuity); threaded records append the threads dimension.
    const std::string rec_name =
        threads == 1
            ? strCat(wl.name, "/gpus=", gpus)
            : strCat(wl.name, "/gpus=", gpus, "/threads=", threads);
    const auto hw_threads = static_cast<double>(
        std::thread::hardware_concurrency());
    jsonLog().record(
        rec_name,
        {{"gpus", static_cast<double>(gpus)},
         {"threads", static_cast<double>(threads)},
         {"hw_threads", hw_threads},
         {"plan_seconds", best.planningSeconds},
         {"estimation_seconds", best.phaseSeconds.estimation},
         {"allocation_seconds", best.phaseSeconds.allocation},
         {"scheduling_seconds", best.phaseSeconds.scheduling},
         {"placement_seconds", best.phaseSeconds.placement},
         {"serial_tail_phase", plannerPhaseName(tail)},
         {"waves", static_cast<double>(best.plan.waves.size())}});
}

/**
 * The promoted 512-GPU stress lane (satellite of the 4096-GPU scaling
 * work): the exact Placement.MemoryFallback512GpuStress scenario —
 * QWen-VAL on 64 8-GPU nodes, device memory tightened along a
 * pressure ladder until the comm-first pass fails mid-plan and the
 * memory-first fallback takes the partial restart — run as a
 * wall-clock benchmark. The record carries the fallback facts
 * (used_fallback, fallback_restart_wave) as value gates that hold on
 * any runner, plus plan_seconds for the hw_threads-gated wall-clock
 * budget (scripts/check_bench_regression.py, planner-stress mode).
 */
void
placementStress512(benchmark::State &state)
{
    ComputationGraph g = buildQwenVal({});
    MetaGraph meta = contractGraph(g);

    constexpr std::uint32_t kThreads = 8;
    ClusterConfig cfg;
    cfg.numNodes = 64;
    cfg.gpusPerNode = 8;
    PlannerOptions options;
    options.threads = kThreads;

    // Find the pressure rung that forces the fallback (same ladder as
    // the ctest stress), once, outside the timed loop.
    double peak = 0;
    {
        ClusterTopology roomy(cfg);
        HardwareModel hw_roomy(roomy);
        PlannerOutput baseline =
            ExecutionPlanner(hw_roomy, options).plan(meta);
        for (double b : baseline.placement.peakBytes)
            peak = std::max(peak, b);
    }
    bool fell_back = false;
    for (double frac : {0.999, 0.95, 0.9, 0.85, 0.8, 0.75, 0.7}) {
        cfg.device.memoryBytes =
            peak * frac / PlacementOptions{}.memorySlack;
        ClusterTopology tight(cfg);
        HardwareModel hw(tight);
        PlannerOutput probe = ExecutionPlanner(hw, options).plan(meta);
        if (probe.placement.usedMemoryFallback) {
            fell_back = true;
            break;
        }
    }

    // Time the fallback-taking plan; keep the fastest iteration (the
    // budget gate logic of planAtScale).
    ClusterTopology tight(cfg);
    HardwareModel hw(tight);
    ExecutionPlanner planner(hw, options);
    PlannerOutput best;
    bool first = true;
    for (auto _ : state) {
        PlannerOutput out = planner.plan(meta);
        benchmark::DoNotOptimize(out.plan.estimatedSpan);
        if (first || out.planningSeconds < best.planningSeconds) {
            best = std::move(out);
            first = false;
        }
    }

    state.counters["used_fallback"] =
        fell_back && best.placement.usedMemoryFallback ? 1 : 0;
    state.counters["fallback_restart_wave"] =
        static_cast<double>(best.placement.fallbackRestartWave);
    state.counters["plan_seconds"] = best.planningSeconds;

    jsonLog().record(
        "QWenVAL-stress/gpus=512",
        {{"gpus", 512.0},
         {"threads", static_cast<double>(kThreads)},
         {"hw_threads", static_cast<double>(
                            std::thread::hardware_concurrency())},
         {"used_fallback",
          fell_back && best.placement.usedMemoryFallback ? 1.0 : 0.0},
         {"fallback_restart_wave",
          static_cast<double>(best.placement.fallbackRestartWave)},
         {"plan_seconds", best.planningSeconds}});
}

const WorkloadCase clip10{"CLIP-10",
                          buildMultitaskClip({.numTasks = 10})};
const WorkloadCase ofa7{"OFASys-7", buildOfasys({.numTasks = 7})};
const WorkloadCase qwen70{
    "QWenVAL-70B",
    buildQwenVal({.size = QwenValConfig::Size::B70, .batch = 128}),
    /*zeroShardParams=*/true};
const WorkloadCase clip10_hetero{"CLIP-10-hetero",
                                 buildMultitaskClip({.numTasks = 10}),
                                 /*zeroShardParams=*/false,
                                 /*hetero=*/true};

} // namespace

// 8..256 GPUs serially, plus the threads dimension at 256 GPUs
// (args are {nodes, planner threads}) and sampled 1024/2048/4096-GPU
// points on the heaviest workload (128/256/512 nodes, serial)
// probing the scale envelope — serial_tail_phase on those records
// names the phase the next scaling push has to attack. QWen-VAL 70B
// needs >= 64 GPUs to fit 80 GB devices even with ZeRO-3 sharding,
// so its sweep starts there. The hetero case plans the same GPU
// counts over mixed 12/4-GPU islands with island-aware window
// generation.
BENCHMARK_CAPTURE(planAtScale, CLIP_10Tasks, clip10)
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1})
    ->Args({16, 1})->Args({32, 1})->Args({32, 2})->Args({32, 8})
    ->Args({128, 1})->Args({256, 1})->Args({512, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(placementStress512)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(planAtScale, OFASys_7Tasks, ofa7)
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({8, 1})
    ->Args({16, 1})->Args({32, 1})->Args({32, 2})->Args({32, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(planAtScale, QWenVAL_70B, qwen70)
    ->Args({8, 1})->Args({16, 1})->Args({32, 1})
    ->Args({32, 2})->Args({32, 4})->Args({32, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(planAtScale, CLIP_10Tasks_hetero, clip10_hetero)
    ->Args({2, 1})->Args({8, 1})->Args({16, 1})->Args({32, 1})
    ->Args({32, 2})->Args({32, 8})
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const char *path = std::getenv("SPINDLE_BENCH_JSON");
    const std::string json_path =
        path != nullptr ? path : "BENCH_planner.json";
    if (!jsonLog().empty()) {
        if (jsonLog().writeFile(json_path))
            std::cout << "wrote " << json_path << "\n";
        else
            std::cerr << "failed to write " << json_path << "\n";
    }
    return 0;
}
