/**
 * @file
 * Reproduces Fig. 11: optimality of the Spindle execution planner.
 * For Multitask-CLIP with 4/7/10 tasks on 16 and 32 GPUs, compares
 * the executed compute span (forward+backward, the quantity the
 * Theorem 1 relaxation bounds) against the theoretical optimum C~*
 * from the continuous MPSP. The paper reports deviations <= 7%; our
 * sparser valid-allocation grids admit slightly larger gaps.
 */

#include <iostream>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

int
main()
{
    std::cout << "=== Fig. 11: Spindle vs theoretical optimum "
                 "(Multitask-CLIP) ===\n";
    Table table({"tasks", "cluster", "optimum_ms", "spindle_ms",
                 "ratio"});

    for (std::uint32_t nodes : {2u, 4u}) {
        for (std::uint32_t tasks : {4u, 7u, 10u}) {
            ComputationGraph graph =
                buildMultitaskClip({.numTasks = tasks});
            MetaGraph meta = contractGraph(graph);
            ClusterTopology topo = makeCluster(nodes);
            HardwareModel hw(topo);
            SpindleSystem spindle(hw);
            SystemResult r = spindle.runIteration(meta);

            const double optimum = r.theoreticalOptimum;
            const double achieved = r.breakdown.fwdBwd;
            table.addRow({strCat(tasks, "Tasks"), clusterLabel(nodes),
                          Table::fmt(toMs(optimum), 1),
                          Table::fmt(toMs(achieved), 1),
                          Table::fmt(achieved / optimum, 3)});
        }
    }
    table.printAligned(std::cout);
    return 0;
}
