/**
 * @file
 * PlanService throughput bench: a multi-tenant request storm — mixed
 * Multitask-CLIP and OFASys workloads at 64 GPUs — admitted through
 * the service at 1 and at 8 planning workers.
 *
 * Each configuration gets a fresh service (fresh shared cache) and
 * the identical request sequence: first the distinct workloads of the
 * mix (the cold misses that populate the cache), then a storm cycling
 * through the mix, every one of which dedupes into a whole-plan full
 * hit. Wall-clock covers submission through drain. Every response is
 * byte-compared against a serial ExecutionPlanner::plan() reference
 * (the service equivalence contract); divergences are counted, never
 * tolerated.
 *
 * Emits BENCH_service.json (override the path with SPINDLE_BENCH_JSON)
 * with requests / seconds / rps / full_hit_rate / mismatches /
 * speedup_vs_serial per worker count. CI gates, via
 * check_bench_regression.py `service` mode against
 * bench/baseline_service.json:
 *   - mismatches == 0 and the full-hit-rate floor, on any runner
 *     (deterministic values);
 *   - the 8-worker throughput >= 2x the 1-worker run, only on runners
 *     with enough hardware threads to host the workers.
 */

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "bench_util.h"
#include "service/plan_service.h"

using namespace spindle;
using namespace spindle::bench;

namespace {

/** Byte-level equality of a service response vs the serial plan()
 *  reference; false (counted by the caller) on any divergence. */
bool
identical(const PlannerOutput &ref, const PlannerOutput &got)
{
    if (ref.plan.estimatedSpan != got.plan.estimatedSpan ||
        ref.plan.theoreticalOptimum != got.plan.theoreticalOptimum ||
        ref.plan.waves.size() != got.plan.waves.size())
        return false;
    for (std::size_t w = 0; w < ref.plan.waves.size(); ++w) {
        const Wave &a = ref.plan.waves[w];
        const Wave &b = got.plan.waves[w];
        if (a.entries.size() != b.entries.size())
            return false;
        for (std::size_t i = 0; i < a.entries.size(); ++i) {
            const WaveEntry &x = a.entries[i];
            const WaveEntry &y = b.entries[i];
            if (x.metaOp != y.metaOp || x.n != y.n ||
                x.opBegin != y.opBegin || x.numOps != y.numOps ||
                x.duration != y.duration || x.devices != y.devices)
                return false;
        }
    }
    return ref.placement.estimatedCommSeconds ==
               got.placement.estimatedCommSeconds &&
           ref.placement.peakBytes == got.placement.peakBytes &&
           ref.placement.usedMemoryFallback ==
               got.placement.usedMemoryFallback;
}

struct ConfigResult
{
    double seconds = 0;
    std::uint64_t requests = 0;
    std::uint64_t mismatches = 0;
    double fullHitRate = 0;
};

ConfigResult
runConfig(const HardwareModel &hw, const std::vector<MetaGraph> &metas,
          const std::vector<PlannerOutput> &want, std::uint32_t workers,
          std::uint32_t storm_requests)
{
    PlanServiceOptions options;
    options.workers = workers;
    options.queueCapacity = metas.size() + storm_requests;
    PlanService service(hw, options);

    std::vector<PlanJobHandle> jobs;
    jobs.reserve(metas.size() + storm_requests);
    std::vector<std::size_t> which;
    which.reserve(jobs.capacity());

    const auto t0 = std::chrono::steady_clock::now();
    // Cold phase: each distinct workload once. All distinct, so the
    // miss count is deterministic at any worker count.
    for (std::size_t m = 0; m < metas.size(); ++m) {
        jobs.push_back(service.submit(metas[m]));
        which.push_back(m);
    }
    // Warm storm: cycles the mix; every request is a full hit by the
    // time a worker picks it up only if the cold plan finished, so
    // drain the cold phase first to keep the hit rate deterministic.
    service.drain();
    for (std::uint32_t r = 0; r < storm_requests; ++r) {
        const std::size_t m = r % metas.size();
        jobs.push_back(service.submit(metas[m]));
        which.push_back(m);
    }
    service.drain();
    const auto t1 = std::chrono::steady_clock::now();

    ConfigResult out;
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    out.requests = jobs.size();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i]->status() != PlanJobState::Done ||
            !identical(want[which[i]], jobs[i]->result()))
            ++out.mismatches;
    }
    const PlanServiceStats stats = service.stats();
    out.fullHitRate =
        stats.completed == 0
            ? 0.0
            : static_cast<double>(stats.dedupedFullHits) /
                  static_cast<double>(stats.completed);
    return out;
}

} // namespace

int
main()
{
    std::cout << "=== PlanService: multi-tenant request storm at 64 GPUs "
                 "===\n";

    ClusterTopology topo = makeCluster(8); // 64 GPUs
    HardwareModel hw(topo);

    // The tenant mix: four CLIP task counts plus two OFASys mixes.
    std::vector<ComputationGraph> graphs;
    for (std::uint32_t t : {4u, 5u, 6u, 7u})
        graphs.push_back(buildMultitaskClip({.numTasks = t}));
    for (std::uint32_t t : {3u, 4u})
        graphs.push_back(buildOfasys({.numTasks = t}));
    std::vector<MetaGraph> metas;
    metas.reserve(graphs.size());
    for (const ComputationGraph &g : graphs)
        metas.push_back(contractGraph(g));

    // Serial references (never touch any cache).
    const ExecutionPlanner reference(hw);
    std::vector<PlannerOutput> want;
    want.reserve(metas.size());
    for (const MetaGraph &meta : metas)
        want.push_back(reference.plan(meta));

    constexpr std::uint32_t kStormRequests = 48;

    BenchJsonWriter json;
    Table table({"workers", "requests", "seconds", "req_per_s",
                 "full_hit_rate", "mismatches", "speedup_vs_serial"});

    double serial_seconds = 0;
    for (std::uint32_t workers : {1u, 8u}) {
        const ConfigResult r =
            runConfig(hw, metas, want, workers, kStormRequests);
        if (workers == 1)
            serial_seconds = r.seconds;
        const double rps =
            r.seconds > 0 ? static_cast<double>(r.requests) / r.seconds
                          : 0.0;
        const double speedup =
            r.seconds > 0 ? serial_seconds / r.seconds : 0.0;
        json.record(
            strCat("PlanService/gpus=64/workers=", workers),
            {{"workers", static_cast<double>(workers)},
             {"requests", static_cast<double>(r.requests)},
             {"seconds", r.seconds},
             {"rps", rps},
             {"full_hit_rate", r.fullHitRate},
             {"mismatches", static_cast<double>(r.mismatches)},
             {"speedup_vs_serial", speedup},
             {"hw_threads", static_cast<double>(
                                std::thread::hardware_concurrency())}});
        table.addRow({strCat(workers), strCat(r.requests),
                      Table::fmt(r.seconds, 3), Table::fmt(rps, 1),
                      Table::fmt(r.fullHitRate, 3), strCat(r.mismatches),
                      Table::fmt(speedup, 2)});
    }

    table.printAligned(std::cout);
    std::cout << "\nEach configuration replays the identical request "
                 "sequence on a fresh service: the distinct workloads "
                 "cold, then a storm that dedupes into full hits. Every "
                 "response is byte-compared against serial plan().\n";

    const char *override_path = std::getenv("SPINDLE_BENCH_JSON");
    const std::string path =
        override_path != nullptr ? override_path : "BENCH_service.json";
    if (json.writeFile(path))
        std::cout << "\nwrote " << path << "\n";
    else
        std::cerr << "\nfailed to write " << path << "\n";
    return 0;
}
