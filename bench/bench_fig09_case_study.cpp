/**
 * @file
 * Reproduces Fig. 9 (case study, Multitask-CLIP 4 tasks, 16 GPUs):
 *  (a) average cluster utilization over one iteration for Spindle,
 *      Spindle-Optimus, DistMM-MT and DeepSpeed;
 *  (b) per-device utilization and per-MetaOp compute utilization
 *      (the spider charts).
 */

#include <iostream>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

int
main()
{
    ComputationGraph graph = buildMultitaskClip({.numTasks = 4});
    MetaGraph meta = contractGraph(graph);
    ClusterTopology topo = makeCluster(2); // 16 GPUs
    HardwareModel hw(topo);
    const double peak = topo.device().peakFlops;

    std::vector<std::unique_ptr<System>> systems;
    systems.push_back(std::make_unique<SpindleSystem>(hw));
    systems.push_back(std::make_unique<SpindleOptimusSystem>(hw));
    systems.push_back(std::make_unique<DistMMMTSystem>(hw));
    systems.push_back(
        std::make_unique<SequentialSystem>(hw, SequentialMode::DeepSpeed));

    std::vector<SystemResult> results;
    for (const auto &sys : systems)
        results.push_back(sys->runIteration(meta));

    const std::size_t bins = 20;
    std::cout << "=== Fig. 9a: cluster utilization over one iteration "
                 "(TFLOPs/s per bin; x = fraction of iteration) ===\n";
    Table series({"timeline_frac", results[0].system, results[1].system,
                  results[2].system, results[3].system});
    std::vector<std::vector<double>> all;
    for (const SystemResult &r : results)
        all.push_back(r.timeline.clusterFlopsSeries(bins));
    for (std::size_t b = 0; b < bins; ++b) {
        series.addRow({Table::fmt((b + 0.5) / bins, 3),
                       Table::fmt(toTflops(all[0][b]), 1),
                       Table::fmt(toTflops(all[1][b]), 1),
                       Table::fmt(toTflops(all[2][b]), 1),
                       Table::fmt(toTflops(all[3][b]), 1)});
    }
    series.printAligned(std::cout);

    std::cout << "\naverage cluster utilization (TFLOPs/s):\n";
    for (const SystemResult &r : results) {
        std::cout << "  " << r.system << ": "
                  << Table::fmt(toTflops(r.timeline.totalFlops() /
                                         r.timeline.makespan()),
                                1)
                  << " (iter " << Table::fmt(toMs(r.iterationSeconds), 1)
                  << " ms)\n";
    }

    std::cout << "\n=== Fig. 9b (left): per-device utilization "
                 "(busy fraction, %) ===\n";
    Table dev({"device", results[0].system, results[1].system,
               results[2].system, results[3].system});
    std::vector<std::vector<double>> busy;
    for (const SystemResult &r : results)
        busy.push_back(r.timeline.deviceBusyFraction(topo.numDevices()));
    for (std::uint32_t d = 0; d < topo.numDevices(); ++d) {
        dev.addRow({strCat(d + 1), Table::fmt(100 * busy[0][d], 1),
                    Table::fmt(100 * busy[1][d], 1),
                    Table::fmt(100 * busy[2][d], 1),
                    Table::fmt(100 * busy[3][d], 1)});
    }
    dev.printAligned(std::cout);

    std::cout << "\n=== Fig. 9b (right): per-MetaOp compute "
                 "utilization (% of peak) ===\n";
    Table mop({"metaop", results[0].system, results[1].system,
               results[2].system, results[3].system});
    for (const MetaOp &m : meta.metaOps()) {
        if (m.type == OpType::Contrastive)
            continue;
        mop.addRow(
            {m.name,
             Table::fmt(100 * results[0].timeline.metaOpUtilization(
                                  m.id, peak), 1),
             Table::fmt(100 * results[1].timeline.metaOpUtilization(
                                  m.id, peak), 1),
             Table::fmt(100 * results[2].timeline.metaOpUtilization(
                                  m.id, peak), 1),
             Table::fmt(100 * results[3].timeline.metaOpUtilization(
                                  m.id, peak), 1)});
    }
    mop.printAligned(std::cout);
    return 0;
}
