/**
 * @file
 * Reproduces Fig. 1 (lower): device utilization in TFLOPs/s over two
 * iterations of *decoupled* execution of 4-task Multitask-CLIP,
 * where each task trains on its own static device partition (task1
 * on the largest block, the light tasks on small blocks). Inter- and
 * intra-task workload heterogeneity shows as fluctuation across and
 * within the per-task series.
 */

#include <iostream>
#include <map>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

int
main()
{
    ComputationGraph graph = buildMultitaskClip({.numTasks = 4});
    MetaGraph meta = contractGraph(graph);
    ClusterTopology topo = makeCluster(2); // 16 GPUs
    HardwareModel hw(topo);

    // Decoupled execution on static partitions = the task-parallel
    // baseline; its timeline gives the Fig. 1 utilization series.
    SpindleOptimusSystem decoupled(hw);
    SystemResult r = decoupled.runIteration(meta);

    // Per-task achieved FLOPs/s over time: bin the compute records
    // of each task across the iteration, then repeat for the second
    // iteration (identical by construction).
    const std::size_t bins = 24;
    const double span = r.timeline.makespan();
    std::map<std::int32_t, std::vector<double>> series;
    std::map<std::int32_t, std::uint32_t> devices_of_task;
    for (const ExecRecord &rec : r.timeline.records()) {
        if (rec.kind != ExecKind::Compute || rec.metaOp < 0)
            continue;
        std::int32_t task = meta.metaOp(rec.metaOp).taskId;
        auto &s = series[task];
        s.resize(bins, 0.0);
        const double rate = rec.flops / (rec.end - rec.start);
        auto first = static_cast<std::size_t>(rec.start / span * bins);
        auto last = static_cast<std::size_t>(rec.end / span * bins);
        last = std::min(last, bins - 1);
        for (std::size_t b = first; b <= last; ++b) {
            const double lo = std::max(rec.start, b * span / bins);
            const double hi = std::min(rec.end, (b + 1) * span / bins);
            if (hi > lo)
                s[b] += rate * (hi - lo) / (span / bins);
        }
    }
    std::cout << "=== Fig. 1 (lower): decoupled execution utilization, "
                 "Multitask-CLIP 4 tasks, 16 GPUs, 2 iterations ===\n";
    std::cout << "iteration time: " << Table::fmt(toMs(span), 1)
              << " ms; series sampled in " << bins << " bins, repeated "
              << "for the second iteration\n";

    std::vector<std::string> header{"timeline_frac"};
    for (const auto &[task, s] : series)
        header.push_back(strCat("task", task + 1, "_TFLOPs"));
    header.push_back("cluster_TFLOPs");
    Table table(std::move(header));

    auto cluster = r.timeline.clusterFlopsSeries(bins);
    for (std::size_t iter = 0; iter < 2; ++iter) {
        for (std::size_t b = 0; b < bins; ++b) {
            std::vector<std::string> row;
            row.push_back(Table::fmt(
                (static_cast<double>(iter) +
                 (b + 0.5) / static_cast<double>(bins)),
                3));
            for (const auto &[task, s] : series)
                row.push_back(Table::fmt(toTflops(s[b]), 1));
            row.push_back(Table::fmt(toTflops(cluster[b]), 1));
            table.addRow(std::move(row));
        }
    }
    table.printAligned(std::cout);

    // The headline observation: utilization fluctuates both across
    // tasks (inter-task) and over time within a task (intra-task).
    double mx = 0, mn = 1e30;
    for (double v : cluster) {
        mx = std::max(mx, v);
        mn = std::min(mn, v);
    }
    std::cout << "cluster utilization fluctuation: min "
              << Table::fmt(toTflops(mn), 1) << " / max "
              << Table::fmt(toTflops(mx), 1) << " TFLOPs/s\n";
    return 0;
}
