/**
 * @file
 * Fig. 13 companion: dynamic task *arrival* at sub-iteration
 * granularity. Where bench_fig13 re-plans at every phase boundary,
 * this scenario injects a newly arriving task mid-iteration through
 * the simulator's event queue (Engine::runDynamic): the new task's
 * waves contend for devices with the in-flight iteration instead of
 * waiting for a full replan. Reported per cluster size and arrival
 * time: the arriving task's completion when injected immediately vs
 * deferred to the iteration boundary (the lockstep alternative),
 * under both dispatch policies.
 */

#include <iostream>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

namespace {

void
runCluster(std::uint32_t nodes, Table &table)
{
    ClusterTopology topo = makeCluster(nodes);
    HardwareModel hw(topo);
    ExecutionPlanner planner(hw);

    // In-flight iteration: Multitask-CLIP with 4 tasks; the arrival
    // is a single-task workload planned on the same cluster (plans
    // are per-workload; the event queue shares the devices).
    ArrivalScenario scenario(planner, /*base_tasks=*/4,
                             /*arrival_tasks=*/1);

    for (DispatchPolicyKind kind : {DispatchPolicyKind::StrictBarrier,
                                    DispatchPolicyKind::Overlap}) {
        EngineOptions options;
        options.dispatch = kind;
        Engine engine(hw, MemoryParams{}, options);
        const std::string policy =
            kind == DispatchPolicyKind::StrictBarrier ? "strict"
                                                      : "overlap";

        const double iter =
            engine.run(scenario.base, scenario.baseOut.plan)
                .iterationSeconds;
        for (double frac : {0.1, 0.3, 0.5, 0.7}) {
            std::vector<double> injected, deferred;
            engine.runDynamic(scenario.base, scenario.baseOut.plan,
                              {{frac * iter, &scenario.arrival,
                                &scenario.arrivalOut.plan}},
                              &injected);
            // Lockstep alternative: the arrival waits for the
            // iteration boundary.
            engine.runDynamic(scenario.base, scenario.baseOut.plan,
                              {{iter, &scenario.arrival,
                                &scenario.arrivalOut.plan}},
                              &deferred);
            table.addRow({clusterLabel(nodes), policy,
                          Table::fmt(100 * frac, 0),
                          Table::fmt(toMs(injected[0]), 2),
                          Table::fmt(toMs(deferred[0]), 2),
                          Table::fmt(deferred[0] / injected[0], 2)});
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "=== Fig. 13 companion: mid-iteration task arrival "
                 "through the event queue ===\n";

    // Default sweep: the paper's 2-node testbed plus a 64-GPU point;
    // override with explicit node counts on the command line.
    std::vector<std::uint32_t> node_counts{2, 8};
    if (argc > 1) {
        node_counts.clear();
        for (int i = 1; i < argc; ++i)
            node_counts.push_back(static_cast<std::uint32_t>(
                std::strtoul(argv[i], nullptr, 10)));
    }

    Table table({"cluster", "policy", "arrival_at_pct", "inject_done_ms",
                 "deferred_done_ms", "speedup"});
    for (std::uint32_t nodes : node_counts)
        runCluster(nodes, table);

    table.printAligned(std::cout);
    std::cout << "\ninject_done: arriving task completion when its "
                 "waves are dispatched as events into the running "
                 "iteration; deferred_done: when it waits for the "
                 "iteration boundary.\n";
    return 0;
}
