/**
 * @file
 * Fig. 13 companion: dynamic task *arrival* at sub-iteration
 * granularity. Where bench_fig13 re-plans at every phase boundary,
 * this scenario injects a newly arriving task mid-iteration through
 * the simulator's event queue (Engine::runDynamic): the new task's
 * waves contend for devices with the in-flight iteration instead of
 * waiting for a full replan. Reported per arrival time: the
 * arriving task's completion when injected immediately vs deferred
 * to the iteration boundary (the lockstep alternative), under both
 * dispatch policies.
 */

#include <iostream>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

int
main()
{
    std::cout << "=== Fig. 13 companion: mid-iteration task arrival "
                 "through the event queue ===\n";

    ClusterTopology topo = makeCluster(2);
    HardwareModel hw(topo);
    ExecutionPlanner planner(hw);

    // In-flight iteration: Multitask-CLIP with 4 tasks.
    ComputationGraph base_graph = buildMultitaskClip({.numTasks = 4});
    MetaGraph base = contractGraph(base_graph);
    PlannerOutput base_out = planner.plan(base);

    // The arriving task: a single-task workload planned on the same
    // cluster (plans are per-workload; the event queue shares the
    // devices).
    ComputationGraph arr_graph = buildMultitaskClip({.numTasks = 1});
    MetaGraph arrival = contractGraph(arr_graph);
    PlannerOutput arr_out = planner.plan(arrival);

    Table table({"policy", "arrival_at_pct", "inject_done_ms",
                 "deferred_done_ms", "speedup"});

    for (DispatchPolicyKind kind : {DispatchPolicyKind::StrictBarrier,
                                    DispatchPolicyKind::Overlap}) {
        EngineOptions options;
        options.dispatch = kind;
        Engine engine(hw, MemoryParams{}, options);
        const std::string policy =
            kind == DispatchPolicyKind::StrictBarrier ? "strict"
                                                      : "overlap";

        const double iter =
            engine.run(base, base_out.plan).iterationSeconds;
        for (double frac : {0.1, 0.3, 0.5, 0.7}) {
            std::vector<double> injected, deferred;
            engine.runDynamic(
                base, base_out.plan,
                {{frac * iter, &arrival, &arr_out.plan}}, &injected);
            // Lockstep alternative: the arrival waits for the
            // iteration boundary.
            engine.runDynamic(base, base_out.plan,
                              {{iter, &arrival, &arr_out.plan}},
                              &deferred);
            table.addRow({policy, Table::fmt(100 * frac, 0),
                          Table::fmt(toMs(injected[0]), 2),
                          Table::fmt(toMs(deferred[0]), 2),
                          Table::fmt(deferred[0] / injected[0], 2)});
        }
    }
    table.printAligned(std::cout);
    std::cout << "\ninject_done: arriving task completion when its "
                 "waves are dispatched as events into the running "
                 "iteration; deferred_done: when it waits for the "
                 "iteration boundary.\n";
    return 0;
}
