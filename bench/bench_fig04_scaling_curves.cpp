/**
 * @file
 * Reproduces Fig. 4: per-operator execution time T_m(n) and resource
 * scalability sigma_m(n) = T_m(1)/T_m(n) of the MetaOps in 4-task
 * Multitask-CLIP, for n = 1..32 GPUs. Prints both the ground-truth
 * "measurements" (scatter points in the paper) and the estimator's
 * fitted scaling-curve values, plus the fit error of the piecewise
 * alpha-beta model against the single-piece baseline (Appendix A).
 */

#include <cmath>
#include <iostream>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

int
main()
{
    ComputationGraph graph = buildMultitaskClip({.numTasks = 4});
    MetaGraph meta = contractGraph(graph);
    ClusterTopology topo = makeCluster(4); // up to 32 GPUs
    HardwareModel hw(topo);
    ScalabilityEstimator estimator(hw);

    EstimatorOptions single;
    single.piecewise = false;
    ScalabilityEstimator baseline(hw, single);

    const std::vector<std::uint32_t> grid{1, 2, 4, 8, 16, 32};

    std::cout << "=== Fig. 4: MetaOp execution time (ms/op) and "
                 "resource scalability, Multitask-CLIP 4 tasks ===\n";
    Table time_table({"metaop", "kind", "n=1", "n=2", "n=4", "n=8",
                      "n=16", "n=32"});
    Table sigma_table({"metaop", "sigma(1)", "sigma(2)", "sigma(4)",
                       "sigma(8)", "sigma(16)", "sigma(32)"});

    double pw_err = 0, sp_err = 0;
    std::size_t err_samples = 0;
    for (const MetaOp &m : meta.metaOps()) {
        if (m.type == OpType::Contrastive)
            continue; // the paper plots the encoder MetaOps
        ScalingCurve fitted = estimator.estimate(m, 32);
        ScalingCurve single_fit = baseline.estimate(m, 32);

        std::vector<std::string> truth_row{m.name, "measured"};
        std::vector<std::string> fit_row{m.name, "fitted"};
        std::vector<std::string> sigma_row{m.name};
        for (std::uint32_t n : grid) {
            if (!fitted.isValid(n)) {
                truth_row.push_back("-");
                fit_row.push_back("-");
                sigma_row.push_back("-");
                continue;
            }
            const double truth = hw.metaOpTime(m, n);
            const double fit = fitted.timeAt(n);
            truth_row.push_back(Table::fmt(toMs(truth), 3));
            fit_row.push_back(Table::fmt(toMs(fit), 3));
            sigma_row.push_back(Table::fmt(fitted.scalability(n), 2));
            pw_err += std::abs(fit - truth) / truth;
            sp_err += std::abs(single_fit.timeAt(n) - truth) / truth;
            ++err_samples;
        }
        time_table.addRow(std::move(truth_row));
        time_table.addRow(std::move(fit_row));
        sigma_table.addRow(std::move(sigma_row));
    }
    time_table.printAligned(std::cout);
    std::cout << "\nresource scalability sigma(n) = T(1)/T(n) "
                 "(closer to n is better):\n";
    sigma_table.printAligned(std::cout);

    std::cout << "\nAppendix A fit quality (mean relative error over "
              << err_samples << " samples):\n"
              << "  piecewise alpha-beta: "
              << Table::fmt(100 * pw_err / err_samples, 2) << " %\n"
              << "  single-piece alpha-beta: "
              << Table::fmt(100 * sp_err / err_samples, 2) << " %\n";
    return 0;
}
