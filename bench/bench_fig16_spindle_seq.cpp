/**
 * @file
 * Reproduces Fig. 16 (Appendix H): system implementation
 * performance. Spindle-Seq — the decoupled sequential strategy run
 * on Spindle's runtime stack — performs on par with Megatron-LM and
 * DeepSpeed, showing the Spindle implementation adds no overhead
 * absent its scheduling optimizations.
 */

#include <iostream>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

namespace {

void
sweep(const std::string &workload, const ComputationGraph &graph,
      const std::vector<std::uint32_t> &node_list, Table &table)
{
    for (std::uint32_t nodes : node_list) {
        ClusterTopology topo = makeCluster(nodes);
        HardwareModel hw(topo);
        MetaGraph meta = contractGraph(graph);
        SequentialSystem seq(hw, SequentialMode::SpindleSeq);
        SequentialSystem megatron(hw, SequentialMode::Megatron);
        SequentialSystem ds(hw, SequentialMode::DeepSpeed);
        const double t_ds = ds.runIteration(meta).iterationSeconds;
        for (SystemResult r : {seq.runIteration(meta),
                               megatron.runIteration(meta),
                               ds.runIteration(meta)}) {
            table.addRow({workload, clusterLabel(nodes), r.system,
                          Table::fmt(toMs(r.iterationSeconds), 1),
                          Table::fmt(t_ds / r.iterationSeconds, 2)});
        }
    }
}

} // namespace

int
main()
{
    std::cout << "=== Fig. 16: Spindle-Seq vs Megatron-LM / DeepSpeed "
                 "(speedup vs DeepSpeed) ===\n";
    Table table({"workload", "cluster", "system", "iter_ms",
                 "speedup_vs_DS"});
    for (std::uint32_t tasks : {4u, 7u, 10u}) {
        ComputationGraph g = buildMultitaskClip({.numTasks = tasks});
        sweep(strCat("Multitask-CLIP/", tasks, "T"), g, {1, 2, 4}, table);
    }
    for (std::uint32_t tasks : {4u, 7u}) {
        ComputationGraph g = buildOfasys({.numTasks = tasks});
        sweep(strCat("OFASys/", tasks, "T"), g, {1, 2, 4}, table);
    }
    {
        ComputationGraph g = buildQwenVal({});
        sweep("QWen-VAL-9B/3T", g, {4, 8}, table);
    }
    table.printAligned(std::cout);
    return 0;
}
