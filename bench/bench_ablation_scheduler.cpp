/**
 * @file
 * Ablation bench for two Spindle design choices DESIGN.md calls out:
 *
 *  1. §3.4 step 2 resource extension — extending tuples of MetaOps
 *     with large remaining work so no device idles inside a wave;
 *  2. §3.2 piecewise alpha-beta estimation — planning on single-
 *     piece (homogeneous) curves instead.
 *
 * Reports the Spindle iteration time with each feature disabled,
 * relative to the full system.
 */

#include <iostream>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

namespace {

double
iterationMs(const HardwareModel &hw, const MetaGraph &meta,
            PlannerOptions options)
{
    SpindleSystem sys(hw, options);
    return toMs(sys.runIteration(meta).iterationSeconds);
}

} // namespace

int
main()
{
    std::cout << "=== Ablation: wavefront resource extension (§3.4) "
                 "and piecewise estimation (§3.2) ===\n";
    Table table({"workload", "cluster", "full_ms", "no_extension_ms",
                 "single_piece_fit_ms", "ext_gain", "piecewise_gain"});

    struct Case
    {
        std::string name;
        ComputationGraph graph;
    };
    std::vector<Case> cases;
    cases.push_back({"Multitask-CLIP/7T",
                     buildMultitaskClip({.numTasks = 7})});
    cases.push_back({"OFASys/7T", buildOfasys({.numTasks = 7})});

    for (const Case &c : cases) {
        for (std::uint32_t nodes : {2u, 4u}) {
            ClusterTopology topo = makeCluster(nodes);
            HardwareModel hw(topo);
            MetaGraph meta = contractGraph(c.graph);

            const double full = iterationMs(hw, meta, {});

            PlannerOptions no_ext;
            no_ext.scheduler.extendResources = false;
            const double without_ext = iterationMs(hw, meta, no_ext);

            PlannerOptions single_piece;
            single_piece.estimator.piecewise = false;
            const double single = iterationMs(hw, meta, single_piece);

            table.addRow({c.name, clusterLabel(nodes),
                          Table::fmt(full, 1),
                          Table::fmt(without_ext, 1),
                          Table::fmt(single, 1),
                          Table::fmt(without_ext / full, 3),
                          Table::fmt(single / full, 3)});
        }
    }
    table.printAligned(std::cout);
    std::cout << "(gain columns: slowdown factor when the feature is "
                 "disabled; > 1 means the feature helps)\n";
    return 0;
}
