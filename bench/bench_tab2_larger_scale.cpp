/**
 * @file
 * Reproduces Tab. 2 (Appendix E): simulated iteration-time speedup
 * over DeepSpeed on larger-scale QWen-VAL workloads (30B and 70B
 * parameters) on a 256-GPU cluster. The paper finds Spindle
 * sustains > 1.3x while the other competitors stay near 1x.
 */

#include <iostream>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

int
main()
{
    std::cout << "=== Tab. 2: larger-scale simulation, 256 GPUs "
                 "(speedup vs DeepSpeed) ===\n";
    Table table({"workload", "system", "iter_ms", "speedup_vs_DS"});

    for (QwenValConfig::Size size :
         {QwenValConfig::Size::B30, QwenValConfig::Size::B70}) {
        const std::string label =
            size == QwenValConfig::Size::B30 ? "QWen-VAL 30B"
                                             : "QWen-VAL 70B";
        ComputationGraph graph =
            buildQwenVal({.size = size, .batch = 128});
        ClusterTopology topo = makeCluster(32); // 256 GPUs
        HardwareModel hw(topo);
        MetaGraph meta = contractGraph(graph);

        // >= 30B models need ZeRO-3-style parameter sharding to fit
        // 80 GB devices (as real deployments do).
        PlannerOptions planner_options;
        planner_options.memory.zeroShardParams = true;

        std::vector<std::unique_ptr<System>> systems;
        systems.push_back(
            std::make_unique<SpindleSystem>(hw, planner_options));
        systems.push_back(std::make_unique<SpindleOptimusSystem>(hw));
        systems.push_back(std::make_unique<DistMMMTSystem>(hw));
        systems.push_back(std::make_unique<SequentialSystem>(
            hw, SequentialMode::Megatron));
        systems.push_back(std::make_unique<SequentialSystem>(
            hw, SequentialMode::DeepSpeed));
        std::vector<SystemResult> results;
        for (const auto &sys : systems)
            results.push_back(sys->runIteration(meta));
        const double ds = results.back().iterationSeconds;
        for (const SystemResult &r : results) {
            table.addRow({label, r.system,
                          Table::fmt(toMs(r.iterationSeconds), 1),
                          Table::fmt(ds / r.iterationSeconds, 2)});
        }
    }
    table.printAligned(std::cout);
    return 0;
}
