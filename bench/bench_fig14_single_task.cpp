/**
 * @file
 * Reproduces Fig. 14 (Appendix F): the single-task multi-modal
 * special case — 1-task Multitask-CLIP on 8/16/32 GPUs. Spindle's
 * operator-level strategy still beats the SOTA systems (paper: up to
 * 48%), while DistMM-MT, designed exactly for single-task MM
 * workloads, performs close to Spindle.
 */

#include <iostream>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

int
main()
{
    std::cout << "=== Fig. 14: single-task Multitask-CLIP "
                 "(speedup vs DeepSpeed) ===\n";
    Table table({"workload", "cluster", "system", "iter_ms",
                 "speedup_vs_DS"});
    ComputationGraph graph = buildMultitaskClip({.numTasks = 1});
    for (std::uint32_t nodes : {1u, 2u, 4u})
        sweepSystems("Multitask-CLIP/1T", nodes, graph, table);
    table.printAligned(std::cout);
    return 0;
}
