/**
 * @file
 * Reproduces Fig. 13 (Appendix D): dynamic multi-task workloads.
 * The task set changes over training (tasks join and exit); every
 * system re-plans at each change (Spindle re-runs its planner and
 * amortizes the cost), and the cumulative training time is reported
 * at each phase boundary.
 */

#include <iostream>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

namespace {

void
runSchedule(const std::string &name,
            const std::function<ComputationGraph(std::uint32_t)> &build,
            const std::vector<DynamicPhase> &phases, std::uint32_t nodes)
{
    ClusterTopology topo = makeCluster(nodes);
    HardwareModel hw(topo);
    auto systems = makeAllSystems(hw);

    std::cout << "--- " << name << " on " << clusterLabel(nodes)
              << "; cumulative total time (s) at each phase "
                 "boundary ---\n";
    std::vector<std::string> header{"phase", "tasks", "iters(k)"};
    for (const auto &sys : systems)
        header.push_back(sys->name());
    Table table(std::move(header));

    std::vector<double> cumulative(systems.size(), 0.0);
    for (std::size_t p = 0; p < phases.size(); ++p) {
        ComputationGraph graph = build(phases[p].tasks);
        MetaGraph meta = contractGraph(graph);
        std::vector<std::string> row{strCat(p + 1),
                                     strCat(phases[p].tasks),
                                     Table::fmt(phases[p].iterations, 0)};
        for (std::size_t s = 0; s < systems.size(); ++s) {
            SystemResult r = systems[s]->runIteration(meta);
            // Re-planning happens once per phase; iterations reuse
            // the plan (the paper: plans are regenerated only when
            // the input workload changes).
            cumulative[s] += r.planningSeconds +
                             r.iterationSeconds * phases[p].iterations *
                                 1e3;
            row.push_back(Table::fmt(cumulative[s], 0));
        }
        table.addRow(std::move(row));
    }
    table.printAligned(std::cout);
}

} // namespace

int
main()
{
    std::cout << "=== Fig. 13: dynamic multi-task workloads ===\n";
    runSchedule(
        "Multitask-CLIP",
        [](std::uint32_t t) { return buildMultitaskClip({.numTasks = t}); },
        clipDynamicPhases(), 2);
    std::cout << "\n";
    runSchedule(
        "OFASys",
        [](std::uint32_t t) { return buildOfasys({.numTasks = t}); },
        ofasysDynamicPhases(), 2);
    return 0;
}
