/**
 * @file
 * Reproduces Fig. 12: wall-clock cost of Spindle's execution
 * planning (graph contraction excluded, profiling + allocation +
 * wavefront scheduling + placement included) across workloads and
 * cluster sizes of 8..64 GPUs. The paper's plans complete within 3
 * seconds; this is a google-benchmark binary so the measurement
 * methodology is the standard one.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

namespace {

void
planWorkload(benchmark::State &state, const ComputationGraph &graph)
{
    const auto nodes = static_cast<std::uint32_t>(state.range(0));
    ClusterTopology topo = makeCluster(nodes);
    HardwareModel hw(topo);
    MetaGraph meta = contractGraph(graph);
    ExecutionPlanner planner(hw);
    double last_plan_seconds = 0;
    for (auto _ : state) {
        PlannerOutput out = planner.plan(meta);
        last_plan_seconds = out.planningSeconds;
        benchmark::DoNotOptimize(out.plan.estimatedSpan);
    }
    state.counters["gpus"] = nodes * 8;
    state.counters["plan_seconds"] = last_plan_seconds;
}

const ComputationGraph clip4 = buildMultitaskClip({.numTasks = 4});
const ComputationGraph clip7 = buildMultitaskClip({.numTasks = 7});
const ComputationGraph clip10 = buildMultitaskClip({.numTasks = 10});
const ComputationGraph ofa4 = buildOfasys({.numTasks = 4});
const ComputationGraph ofa7 = buildOfasys({.numTasks = 7});
const ComputationGraph qwen = buildQwenVal({});

} // namespace

BENCHMARK_CAPTURE(planWorkload, CLIP_4Tasks, clip4)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(planWorkload, CLIP_7Tasks, clip7)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(planWorkload, CLIP_10Tasks, clip10)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(planWorkload, OFASys_4Tasks, ofa4)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(planWorkload, OFASys_7Tasks, ofa7)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(planWorkload, QWenVAL_3Tasks, qwen)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
