/**
 * @file
 * Shared helpers for the benchmark harnesses: cluster construction,
 * uniform system sweeps, and speedup-table rendering in the shape of
 * the paper's figures.
 */

#ifndef SPINDLE_BENCH_BENCH_UTIL_H
#define SPINDLE_BENCH_BENCH_UTIL_H

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "spindle/spindle.h"

namespace spindle::bench {

/**
 * One record field: a number or a string. Implicit construction from
 * arithmetic values keeps the historical `{{"gpus", 8.0}, ...}` call
 * shape working unchanged; string fields make the artifacts
 * self-describing where an enum index would rot (e.g. the
 * serial_tail_phase of BENCH_planner.json naming a planner phase).
 */
struct BenchField
{
    BenchField(double v) : num(v) {}
    BenchField(const char *s) : str(s), isString(true) {}
    BenchField(std::string s) : str(std::move(s)), isString(true) {}

    double num = 0;
    std::string str;
    bool isString = false;
};

/**
 * Minimal JSON emitter for benchmark artifacts: an array of flat
 * records, each a name plus numeric or string fields. Lets bench
 * binaries drop machine-readable results (e.g. BENCH_planner.json)
 * next to their human-readable tables, so trajectory tooling and the
 * CI perf smoke can diff runs without parsing stdout.
 */
class BenchJsonWriter
{
  public:
    /** Add (or overwrite, matched by name) one record. */
    void
    record(const std::string &name,
           std::vector<std::pair<std::string, BenchField>> fields)
    {
        for (auto &rec : records_) {
            if (rec.first == name) {
                rec.second = std::move(fields);
                return;
            }
        }
        records_.emplace_back(name, std::move(fields));
    }

    bool empty() const { return records_.empty(); }

    /** Render the records as a JSON array of objects. */
    std::string
    str() const
    {
        std::ostringstream os;
        os.precision(17);
        os << "[\n";
        for (std::size_t i = 0; i < records_.size(); ++i) {
            const auto &[name, fields] = records_[i];
            os << "  {\"name\": \"" << name << "\"";
            for (const auto &[key, value] : fields) {
                os << ", \"" << key << "\": ";
                if (value.isString)
                    os << "\"" << value.str << "\"";
                else
                    os << value.num;
            }
            os << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
        }
        os << "]\n";
        return os.str();
    }

    /** Write the JSON rendering to @p path; false on I/O failure. */
    bool
    writeFile(const std::string &path) const
    {
        std::ofstream out(path);
        if (!out)
            return false;
        out << str();
        return static_cast<bool>(out);
    }

    /**
     * Merge the records of a file previously written by writeFile()
     * into this writer (same-name records are overwritten by later
     * record() calls). Lets several bench binaries contribute to one
     * artifact — e.g. bench_collectives and bench_fig08_end_to_end
     * both emitting exposed-sync deltas into BENCH_collectives.json.
     * Only parses the writer's own flat record shape; returns false
     * (leaving this writer untouched by the bad line) on anything
     * else. A missing file is not an error.
     */
    bool
    loadFile(const std::string &path)
    {
        std::ifstream in(path);
        if (!in)
            return true; // nothing to merge
        bool ok = true;
        std::string line;
        while (std::getline(in, line)) {
            const std::size_t name_key = line.find("{\"name\": \"");
            if (name_key == std::string::npos)
                continue; // array brackets / blank lines
            std::size_t pos = name_key + 10;
            const std::size_t name_end = line.find('"', pos);
            if (name_end == std::string::npos) {
                ok = false;
                continue;
            }
            const std::string name = line.substr(pos, name_end - pos);
            std::vector<std::pair<std::string, BenchField>> fields;
            bool line_ok = true;
            pos = name_end + 1;
            while (true) {
                const std::size_t key_begin = line.find('"', pos);
                if (key_begin == std::string::npos)
                    break;
                const std::size_t key_end =
                    line.find('"', key_begin + 1);
                const std::size_t colon =
                    key_end == std::string::npos
                        ? std::string::npos
                        : line.find(':', key_end);
                if (colon == std::string::npos) {
                    line_ok = false;
                    break;
                }
                std::string key = line.substr(key_begin + 1,
                                              key_end - key_begin - 1);
                std::size_t val_begin = colon + 1;
                while (val_begin < line.size() &&
                       line[val_begin] == ' ')
                    ++val_begin;
                if (val_begin < line.size() && line[val_begin] == '"') {
                    // Quoted string value (e.g. a phase name).
                    const std::size_t val_end =
                        line.find('"', val_begin + 1);
                    if (val_end == std::string::npos) {
                        line_ok = false;
                        break;
                    }
                    fields.emplace_back(
                        std::move(key),
                        line.substr(val_begin + 1,
                                    val_end - val_begin - 1));
                    pos = val_end + 1;
                    continue;
                }
                const char *start = line.c_str() + val_begin;
                char *end = nullptr;
                const double value = std::strtod(start, &end);
                if (end == start) {
                    line_ok = false;
                    break;
                }
                fields.emplace_back(std::move(key), value);
                pos = static_cast<std::size_t>(end - line.c_str());
            }
            if (line_ok)
                record(name, std::move(fields));
            else
                ok = false; // reject the whole line, merge nothing
        }
        return ok;
    }

  private:
    std::vector<std::pair<
        std::string, std::vector<std::pair<std::string, BenchField>>>>
        records_;
};

/** The paper's cluster: nodes of 8 A800s, NVLink + 400Gb/s IB. */
inline ClusterTopology
makeCluster(std::uint32_t num_nodes)
{
    ClusterConfig cfg;
    cfg.numNodes = num_nodes;
    cfg.gpusPerNode = 8;
    return ClusterTopology(cfg);
}

/**
 * Heterogeneous island layout with the same GPU count as num_nodes
 * standard nodes: node pairs fused into 12-GPU + 4-GPU islands (a
 * big NVLink domain next to a small one), odd trailing node kept at
 * 8. The config is exposed so benches can override link classes
 * (bench_collectives' rail-constrained fabric) while benchmarking
 * the exact island shape the planner sweeps use.
 */
inline ClusterConfig
heteroClusterConfig(std::uint32_t num_nodes)
{
    ClusterConfig cfg;
    std::uint32_t next = 0;
    auto add_island = [&](std::uint32_t size) {
        IslandSpec island;
        for (std::uint32_t i = 0; i < size; ++i)
            island.devices.push_back(next++);
        cfg.islands.push_back(std::move(island));
    };
    for (std::uint32_t k = 0; k + 1 < num_nodes; k += 2) {
        add_island(12);
        add_island(4);
    }
    if (num_nodes % 2 != 0)
        add_island(8);
    return cfg;
}

/** Mixed 12/4-island cluster with default link classes. */
inline ClusterTopology
makeHeteroCluster(std::uint32_t num_nodes)
{
    return ClusterTopology(heteroClusterConfig(num_nodes));
}

/** Label like "1Node(8GPUs)". */
inline std::string
clusterLabel(std::uint32_t num_nodes)
{
    return strCat(num_nodes, num_nodes == 1 ? "Node(" : "Nodes(",
                  num_nodes * 8, "GPUs)");
}

/**
 * One phase of a Fig. 13 dynamic-workload schedule: run the given
 * multitask mix for a stretch of iterations, then move to the next
 * phase (a task arrival or departure).
 */
struct DynamicPhase
{
    std::uint32_t tasks = 0;
    double iterations = 0; ///< thousands of iterations
};

/** The paper's Fig. 13 Multitask-CLIP schedule: 4 -> 7 -> 10 -> 7. */
inline std::vector<DynamicPhase>
clipDynamicPhases()
{
    return {{4, 50}, {7, 50}, {10, 50}, {7, 50}};
}

/** The paper's Fig. 13 OFASys schedule: 4 -> 7 -> 5. */
inline std::vector<DynamicPhase>
ofasysDynamicPhases()
{
    return {{4, 30}, {7, 40}, {5, 30}};
}

/**
 * Shared setup of the dynamic-arrival benches: a planned Multitask-
 * CLIP base workload plus a planned single-arrival workload on one
 * cluster. Self-referential (the MetaGraphs point into the member
 * ComputationGraphs), hence pinned in place.
 */
struct ArrivalScenario
{
    ArrivalScenario(ExecutionPlanner &planner, std::uint32_t base_tasks,
                    std::uint32_t arrival_tasks)
        : baseGraph(buildMultitaskClip({.numTasks = base_tasks})),
          arrivalGraph(buildMultitaskClip({.numTasks = arrival_tasks})),
          base(contractGraph(baseGraph)),
          arrival(contractGraph(arrivalGraph)),
          baseOut(planner.plan(base)), arrivalOut(planner.plan(arrival))
    {
    }

    ArrivalScenario(const ArrivalScenario &) = delete;
    ArrivalScenario &operator=(const ArrivalScenario &) = delete;

    ComputationGraph baseGraph;
    ComputationGraph arrivalGraph;
    MetaGraph base;
    MetaGraph arrival;
    PlannerOutput baseOut;
    PlannerOutput arrivalOut;
};

/** The five systems of Fig. 8, in the paper's legend order. */
inline std::vector<std::unique_ptr<System>>
makeAllSystems(const HardwareModel &hw)
{
    std::vector<std::unique_ptr<System>> systems;
    systems.push_back(std::make_unique<SpindleSystem>(hw));
    systems.push_back(std::make_unique<SpindleOptimusSystem>(hw));
    systems.push_back(std::make_unique<DistMMMTSystem>(hw));
    systems.push_back(
        std::make_unique<SequentialSystem>(hw, SequentialMode::Megatron));
    systems.push_back(
        std::make_unique<SequentialSystem>(hw, SequentialMode::DeepSpeed));
    return systems;
}

/**
 * Run every system on one workload/cluster combination and print
 * rows of iteration time plus speedup over DeepSpeed (the paper's
 * normalization in Fig. 8).
 */
inline void
sweepSystems(const std::string &workload, std::uint32_t num_nodes,
             const ComputationGraph &graph, Table &table,
             const std::function<void(const SystemResult &)> &observe =
                 nullptr)
{
    ClusterTopology topo = makeCluster(num_nodes);
    HardwareModel hw(topo);
    MetaGraph meta = contractGraph(graph);

    auto systems = makeAllSystems(hw);
    std::vector<SystemResult> results;
    results.reserve(systems.size());
    for (const auto &sys : systems)
        results.push_back(sys->runIteration(meta));

    const double deepspeed = results.back().iterationSeconds;
    for (const SystemResult &r : results) {
        table.addRow({workload, clusterLabel(num_nodes), r.system,
                      Table::fmt(toMs(r.iterationSeconds), 1),
                      Table::fmt(deepspeed / r.iterationSeconds, 2)});
        if (observe)
            observe(r);
    }
}

} // namespace spindle::bench

#endif // SPINDLE_BENCH_BENCH_UTIL_H
