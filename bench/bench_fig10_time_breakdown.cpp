/**
 * @file
 * Reproduces Fig. 10: runtime breakdown (parameter sync, forward +
 * backward, inter-wave send & receive) for DeepSpeed (DS), Spindle
 * (Sp) and Spindle without device placement (Sp*, the sequential-
 * placement ablation of §5.4) on Multitask-CLIP 10T, OFASys 7T and
 * QWen-VAL 3T across cluster sizes. The send&recv share of total
 * time is labeled, and the ablation's comm inflation factor is
 * reported (paper: sequential placement costs 3-6x more comm,
 * up to 27% of the iteration).
 */

#include <iostream>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

namespace {

void
breakdownRow(Table &table, const std::string &workload,
             std::uint32_t nodes, const SystemResult &r)
{
    const double total = r.iterationSeconds;
    table.addRow({workload, clusterLabel(nodes), r.system,
                  Table::fmt(toMs(r.breakdown.sync), 1),
                  Table::fmt(toMs(r.breakdown.fwdBwd), 1),
                  Table::fmt(toMs(r.breakdown.sendRecv), 1),
                  Table::fmt(toMs(total), 1),
                  Table::fmt(100 * r.breakdown.sendRecv / total, 1)});
}

} // namespace

int
main()
{
    std::cout << "=== Fig. 10: time breakdown (ms) and send&recv share; "
                 "Sp* = Spindle w/o device placement ===\n";
    Table table({"workload", "cluster", "system", "sync_ms",
                 "fwd_bwd_ms", "send_recv_ms", "total_ms",
                 "send_recv_pct"});
    Table ablation({"workload", "cluster", "comm_inflation_SpStar_vs_Sp"});
    Table dispatch({"workload", "cluster", "exposed_strict_ms",
                    "exposed_overlap_ms", "reduction_pct"});

    struct Case
    {
        std::string name;
        ComputationGraph graph;
        std::vector<std::uint32_t> nodes;
    };
    std::vector<Case> cases;
    cases.push_back({"Multitask-CLIP/10T",
                     buildMultitaskClip({.numTasks = 10}), {1, 2}});
    cases.push_back({"OFASys/7T", buildOfasys({.numTasks = 7}), {1, 2}});
    cases.push_back({"QWen-VAL/3T", buildQwenVal({}), {4, 8}});

    for (const Case &c : cases) {
        for (std::uint32_t nodes : c.nodes) {
            ClusterTopology topo = makeCluster(nodes);
            HardwareModel hw(topo);
            MetaGraph meta = contractGraph(c.graph);

            SequentialSystem ds(hw, SequentialMode::DeepSpeed);
            SpindleSystem sp(hw);
            SpindleSystem sp_star = makeSpindleWithoutPlacement(hw);

            SystemResult r_ds = ds.runIteration(meta);
            SystemResult r_sp = sp.runIteration(meta);
            SystemResult r_star = sp_star.runIteration(meta);

            breakdownRow(table, c.name, nodes, r_ds);
            breakdownRow(table, c.name, nodes, r_sp);
            breakdownRow(table, c.name, nodes, r_star);

            const double inflation =
                r_sp.breakdown.sendRecv > 0
                    ? r_star.breakdown.sendRecv / r_sp.breakdown.sendRecv
                    : 0.0;
            ablation.addRow({c.name, clusterLabel(nodes),
                             Table::fmt(inflation, 2)});

            // Dispatch-policy ablation: exposed send/recv + sync of
            // Spindle under lockstep barriers vs the dependency-
            // driven overlap policy (same plan, same substrate).
            EngineOptions overlap_opts;
            overlap_opts.dispatch = DispatchPolicyKind::Overlap;
            sp.setEngineOptions(overlap_opts);
            SystemResult r_ovl = sp.runIteration(meta);
            const double exp_strict =
                r_sp.breakdown.sendRecv + r_sp.breakdown.sync;
            const double exp_ovl =
                r_ovl.breakdown.sendRecv + r_ovl.breakdown.sync;
            dispatch.addRow(
                {c.name, clusterLabel(nodes),
                 Table::fmt(toMs(exp_strict), 3),
                 Table::fmt(toMs(exp_ovl), 3),
                 Table::fmt(
                     exp_strict > 0
                         ? 100 * (exp_strict - exp_ovl) / exp_strict
                         : 0.0,
                     2)});
        }
    }

    table.printAligned(std::cout);
    std::cout << "\nablation: inter-wave comm inflation of sequential "
                 "placement (Sp*) over Spindle placement (Sp):\n";
    ablation.printAligned(std::cout);
    std::cout << "\ndispatch policy: exposed send/recv + sync of "
                 "Spindle, strict-barrier vs dependency overlap:\n";
    dispatch.printAligned(std::cout);
    return 0;
}
