/**
 * @file
 * Reproduces Fig. 8: end-to-end iteration time of Spindle,
 * Spindle-Optimus, DistMM-MT, Megatron-LM and DeepSpeed across
 *  - Multitask-CLIP with 4 / 7 / 10 tasks on 8 / 16 / 32 GPUs,
 *  - OFASys with 4 / 7 tasks on 8 / 16 / 32 GPUs,
 *  - QWen-VAL (9.25B) with 3 tasks on 32 / 64 GPUs,
 * reporting each system's speedup over DeepSpeed (numbers above the
 * bars in the paper). Also prints the Tab. 1b workload inventory.
 */

#include <iostream>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

int
main()
{
    std::cout << "=== Tab. 1b: MT MM workload inventory ===\n";
    {
        Table inv({"model", "#params(B)", "#modalities", "#tasks",
                   "cross-modal module"});
        ComputationGraph clip = buildMultitaskClip({.numTasks = 10});
        ComputationGraph ofa = buildOfasys({.numTasks = 7});
        ComputationGraph qwen = buildQwenVal({});
        inv.addRow({"Multitask-CLIP",
                    Table::fmt(clip.totalUniqueParamBytes() / 2 / 1e9, 2),
                    "6", "10", "Contrastive Loss"});
        inv.addRow({"OFASys",
                    Table::fmt(ofa.totalUniqueParamBytes() / 2 / 1e9, 2),
                    "6", "7", "Enc-Dec LM"});
        inv.addRow({"QWen-VAL",
                    Table::fmt(qwen.totalUniqueParamBytes() / 2 / 1e9, 2),
                    "3", "3", "Dec-only LLM"});
        inv.printAligned(std::cout);
    }

    std::cout << "\n=== Fig. 8: end-to-end performance "
                 "(speedup vs DeepSpeed) ===\n";
    Table table({"workload", "cluster", "system", "iter_ms",
                 "speedup_vs_DS"});

    for (std::uint32_t tasks : {4u, 7u, 10u}) {
        ComputationGraph graph = buildMultitaskClip({.numTasks = tasks});
        for (std::uint32_t nodes : {1u, 2u, 4u})
            sweepSystems(strCat("Multitask-CLIP/", tasks, "T"), nodes,
                         graph, table);
    }
    for (std::uint32_t tasks : {4u, 7u}) {
        ComputationGraph graph = buildOfasys({.numTasks = tasks});
        for (std::uint32_t nodes : {1u, 2u, 4u})
            sweepSystems(strCat("OFASys/", tasks, "T"), nodes, graph,
                         table);
    }
    {
        ComputationGraph graph = buildQwenVal({});
        for (std::uint32_t nodes : {4u, 8u})
            sweepSystems("QWen-VAL-9B/3T", nodes, graph, table);
    }

    table.printAligned(std::cout);
    return 0;
}
