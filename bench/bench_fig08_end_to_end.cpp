/**
 * @file
 * Reproduces Fig. 8: end-to-end iteration time of Spindle,
 * Spindle-Optimus, DistMM-MT, Megatron-LM and DeepSpeed across
 *  - Multitask-CLIP with 4 / 7 / 10 tasks on 8 / 16 / 32 GPUs,
 *  - OFASys with 4 / 7 tasks on 8 / 16 / 32 GPUs,
 *  - QWen-VAL (9.25B) with 3 tasks on 32 / 64 GPUs,
 * reporting each system's speedup over DeepSpeed (numbers above the
 * bars in the paper). Also prints the Tab. 1b workload inventory.
 */

#include <iostream>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

int
main()
{
    std::cout << "=== Tab. 1b: MT MM workload inventory ===\n";
    {
        Table inv({"model", "#params(B)", "#modalities", "#tasks",
                   "cross-modal module"});
        ComputationGraph clip = buildMultitaskClip({.numTasks = 10});
        ComputationGraph ofa = buildOfasys({.numTasks = 7});
        ComputationGraph qwen = buildQwenVal({});
        inv.addRow({"Multitask-CLIP",
                    Table::fmt(clip.totalUniqueParamBytes() / 2 / 1e9, 2),
                    "6", "10", "Contrastive Loss"});
        inv.addRow({"OFASys",
                    Table::fmt(ofa.totalUniqueParamBytes() / 2 / 1e9, 2),
                    "6", "7", "Enc-Dec LM"});
        inv.addRow({"QWen-VAL",
                    Table::fmt(qwen.totalUniqueParamBytes() / 2 / 1e9, 2),
                    "3", "3", "Dec-only LLM"});
        inv.printAligned(std::cout);
    }

    std::cout << "\n=== Fig. 8: end-to-end performance "
                 "(speedup vs DeepSpeed) ===\n";
    Table table({"workload", "cluster", "system", "iter_ms",
                 "speedup_vs_DS"});

    for (std::uint32_t tasks : {4u, 7u, 10u}) {
        ComputationGraph graph = buildMultitaskClip({.numTasks = tasks});
        for (std::uint32_t nodes : {1u, 2u, 4u})
            sweepSystems(strCat("Multitask-CLIP/", tasks, "T"), nodes,
                         graph, table);
    }
    for (std::uint32_t tasks : {4u, 7u}) {
        ComputationGraph graph = buildOfasys({.numTasks = tasks});
        for (std::uint32_t nodes : {1u, 2u, 4u})
            sweepSystems(strCat("OFASys/", tasks, "T"), nodes, graph,
                         table);
    }
    {
        ComputationGraph graph = buildQwenVal({});
        for (std::uint32_t nodes : {4u, 8u})
            sweepSystems("QWen-VAL-9B/3T", nodes, graph, table);
    }

    table.printAligned(std::cout);

    // Exposed-sync delta of the collective-algorithm selector on the
    // paper's homogeneous clusters (Spindle plan, strict barrier):
    // Auto may only match or beat the flat ring. Records merge into
    // BENCH_collectives.json next to bench_collectives' topologies.
    std::cout << "\n=== Exposed sync: FlatRing vs Auto collectives "
                 "===\n";
    Table sync_table({"workload", "cluster", "flat_sync_ms",
                      "auto_sync_ms", "delta_ms"});
    BenchJsonWriter json;
    if (!json.loadFile("BENCH_collectives.json"))
        std::cerr << "warning: malformed lines in existing "
                     "BENCH_collectives.json were dropped\n";
    struct Headline
    {
        std::string name;
        ComputationGraph graph;
        std::uint32_t nodes;
    };
    const std::vector<Headline> headline = []() {
        std::vector<Headline> v;
        v.push_back({"Multitask-CLIP/10T",
                     buildMultitaskClip({.numTasks = 10}), 4});
        v.push_back({"OFASys/7T", buildOfasys({.numTasks = 7}), 4});
        v.push_back({"QWen-VAL-9B/3T", buildQwenVal({}), 8});
        return v;
    }();
    for (const auto &[name, graph, nodes] : headline) {
        ClusterTopology topo = makeCluster(nodes);
        HardwareModel hw(topo);
        MetaGraph meta = contractGraph(graph);
        SpindleSystem sys(hw);

        EngineOptions options;
        options.collective = CollectiveKind::FlatRing;
        sys.setEngineOptions(options);
        const double flat_sync =
            sys.runIteration(meta).breakdown.sync;
        options.collective = CollectiveKind::Auto;
        sys.setEngineOptions(options);
        const double auto_sync =
            sys.runIteration(meta).breakdown.sync;

        sync_table.addRow({name, clusterLabel(nodes),
                           Table::fmt(toMs(flat_sync), 3),
                           Table::fmt(toMs(auto_sync), 3),
                           Table::fmt(toMs(flat_sync - auto_sync), 3)});
        json.record(strCat("fig08/", name, "/", clusterLabel(nodes)),
                    {{"gpus", double(nodes * 8)},
                     {"flat_sync_s", flat_sync},
                     {"auto_sync_s", auto_sync},
                     {"sync_delta_s", flat_sync - auto_sync}});
    }
    sync_table.printAligned(std::cout);
    if (!json.writeFile("BENCH_collectives.json"))
        std::cerr << "failed to write BENCH_collectives.json\n";
    return 0;
}
