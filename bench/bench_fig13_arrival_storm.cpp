/**
 * @file
 * Arrival-storm bench: hundreds of task arrivals/departures at
 * 256-1024 GPU scale, measuring ExecutionPlanner::replan() against
 * a from-scratch plan() at every event.
 *
 * A deterministic random walk over Multitask-CLIP task counts plays
 * the Fig. 13 dynamicity story at storm intensity: each event adds
 * or removes one task and the planner replans the new mix. The
 * incremental path must (a) emit plans byte-identical to plan() —
 * checked here on sampled events, exhaustively in
 * planner_equivalence_test — and (b) beat from-scratch latency by
 * >= 10x at 256 GPUs (gated in CI via check_bench_regression.py
 * `replan` mode against bench/baseline_replan.json).
 *
 * Emits BENCH_replan.json (override the path with the
 * SPINDLE_BENCH_JSON environment variable).
 */

#include <cstdlib>
#include <iostream>
#include <thread>

#include "bench_util.h"

using namespace spindle;
using namespace spindle::bench;

namespace {

/** Deterministic 64-bit LCG (MMIX constants), top-bits output. */
std::uint64_t
nextRand(std::uint64_t &state)
{
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
}

/** Byte-level equality of a replanned vs from-scratch output. */
void
checkIdentical(const PlannerOutput &scratch, const PlannerOutput &inc,
               std::uint32_t gpus, std::uint32_t event)
{
    auto mismatch = [&](const char *what) {
        panic(strCat("arrival storm: replan() diverged from plan() (",
                     what, ") at gpus=", gpus, " event=", event));
    };
    if (scratch.plan.estimatedSpan != inc.plan.estimatedSpan ||
        scratch.plan.theoreticalOptimum != inc.plan.theoreticalOptimum)
        mismatch("span");
    if (scratch.plan.waves.size() != inc.plan.waves.size())
        mismatch("wave count");
    for (std::size_t w = 0; w < scratch.plan.waves.size(); ++w) {
        const Wave &a = scratch.plan.waves[w];
        const Wave &b = inc.plan.waves[w];
        if (a.entries.size() != b.entries.size())
            mismatch("entry count");
        for (std::size_t i = 0; i < a.entries.size(); ++i) {
            const WaveEntry &x = a.entries[i];
            const WaveEntry &y = b.entries[i];
            if (x.metaOp != y.metaOp || x.n != y.n ||
                x.opBegin != y.opBegin || x.numOps != y.numOps ||
                x.duration != y.duration || x.devices != y.devices)
                mismatch("wave entry");
        }
    }
    if (scratch.placement.estimatedCommSeconds !=
            inc.placement.estimatedCommSeconds ||
        scratch.placement.interIslandCommSeconds !=
            inc.placement.interIslandCommSeconds ||
        scratch.placement.peakBytes != inc.placement.peakBytes ||
        scratch.placement.usedMemoryFallback !=
            inc.placement.usedMemoryFallback)
        mismatch("placement");
}

void
runStorm(std::uint32_t nodes, std::uint32_t events,
         std::uint32_t scratch_every, BenchJsonWriter &json, Table &table)
{
    ClusterTopology topo = makeCluster(nodes);
    HardwareModel hw(topo);
    ExecutionPlanner planner(hw);

    // Pre-build one graph per task count the walk can visit — graph
    // construction and contraction are workload ingestion, not
    // replanning, and are excluded from both timings.
    constexpr std::uint32_t kMinTasks = 3;
    constexpr std::uint32_t kMaxTasks = 10;
    std::vector<ComputationGraph> graphs;
    std::vector<MetaGraph> metas;
    graphs.reserve(kMaxTasks - kMinTasks + 1);
    metas.reserve(kMaxTasks - kMinTasks + 1);
    for (std::uint32_t t = kMinTasks; t <= kMaxTasks; ++t) {
        graphs.push_back(buildMultitaskClip({.numTasks = t}));
        metas.push_back(contractGraph(graphs.back()));
    }

    std::uint64_t rng = 0x5eed;
    std::uint32_t tasks = 4;
    double replan_seconds = 0;
    double scratch_seconds = 0;
    std::uint64_t scratch_samples = 0;
    std::uint64_t full_hits = 0;
    std::uint64_t reused_levels = 0;
    std::uint64_t curve_hits = 0, curve_misses = 0;
    std::uint64_t alloc_hits = 0, alloc_misses = 0;

    for (std::uint32_t e = 0; e < events; ++e) {
        // One arrival or departure per event, walking [kMin, kMax].
        if ((nextRand(rng) & 1) != 0)
            tasks = std::min(kMaxTasks, tasks + 1);
        else
            tasks = std::max(kMinTasks, tasks - 1);
        const MetaGraph &meta = metas[tasks - kMinTasks];

        PlannerOutput inc = planner.replan(meta);
        replan_seconds += inc.planningSeconds;
        full_hits += inc.replan.fullHit ? 1 : 0;
        reused_levels += inc.replan.reusedLevels;
        curve_hits += inc.replan.curveHits;
        curve_misses += inc.replan.curveMisses;
        alloc_hits += inc.replan.allocHits;
        alloc_misses += inc.replan.allocMisses;

        if (e % scratch_every == 0) {
            PlannerOutput scratch = planner.plan(meta);
            scratch_seconds += scratch.planningSeconds;
            ++scratch_samples;
            checkIdentical(scratch, inc, topo.numDevices(), e);
        }
    }

    const double replan_mean = replan_seconds / events;
    const double scratch_mean =
        scratch_seconds / static_cast<double>(scratch_samples);
    const double speedup = scratch_mean / replan_mean;

    const std::string name =
        strCat("CLIP-storm/gpus=", topo.numDevices());
    json.record(
        name,
        {{"gpus", static_cast<double>(topo.numDevices())},
         {"events", static_cast<double>(events)},
         {"replan_mean_seconds", replan_mean},
         {"scratch_mean_seconds", scratch_mean},
         {"speedup", speedup},
         {"full_hits", static_cast<double>(full_hits)},
         {"reused_levels", static_cast<double>(reused_levels)},
         {"curve_hits", static_cast<double>(curve_hits)},
         {"curve_misses", static_cast<double>(curve_misses)},
         {"alloc_hits", static_cast<double>(alloc_hits)},
         {"alloc_misses", static_cast<double>(alloc_misses)},
         {"hw_threads", static_cast<double>(
                            std::thread::hardware_concurrency())}});
    table.addRow({strCat(topo.numDevices()), strCat(events),
                  Table::fmt(toMs(replan_mean), 3),
                  Table::fmt(toMs(scratch_mean), 3),
                  Table::fmt(speedup, 1),
                  strCat(full_hits, "/", events)});
}

} // namespace

int
main()
{
    std::cout << "=== Arrival storm: incremental replan vs from-scratch "
                 "===\n";

    BenchJsonWriter json;
    Table table({"gpus", "events", "replan_mean_ms", "scratch_mean_ms",
                 "speedup", "full_hits"});

    // 256 GPUs: the gated point — every event cross-checked against
    // a from-scratch plan. 1024 GPUs: scale point, sampled checks.
    runStorm(/*nodes=*/32, /*events=*/240, /*scratch_every=*/1, json,
             table);
    runStorm(/*nodes=*/128, /*events=*/48, /*scratch_every=*/8, json,
             table);

    table.printAligned(std::cout);
    std::cout << "\nEvery event adds or removes one Multitask-CLIP task "
                 "and replans the new mix; replan() output is verified "
                 "byte-identical to plan() on sampled events.\n";

    const char *override_path = std::getenv("SPINDLE_BENCH_JSON");
    const std::string path =
        override_path != nullptr ? override_path : "BENCH_replan.json";
    if (json.writeFile(path))
        std::cout << "\nwrote " << path << "\n";
    else
        std::cerr << "\nfailed to write " << path << "\n";
    return 0;
}
