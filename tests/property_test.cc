/**
 * @file
 * Property-based tests over randomly generated MT MM workloads:
 * graph contraction, planning and execution invariants must hold for
 * any dependency structure the builder can express.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <set>

#include "planner/planner.h"
#include "test_util.h"

namespace spindle {
namespace {

/** Deterministic random MT workload: tasks of random module chains
 *  with random shared encoders and random fan-in joins. */
ComputationGraph
randomWorkload(std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    auto pick = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };

    const OpType types[] = {OpType::Text, OpType::Vision, OpType::Audio,
                            OpType::Depth, OpType::Thermal,
                            OpType::Motion};
    const std::int64_t batches[] = {16, 32, 48, 64};

    WorkloadBuilder b;
    const int num_shared = pick(1, 3);
    std::vector<SharedModule> shared;
    std::vector<ModuleSpec> shared_specs;
    for (int i = 0; i < num_shared; ++i) {
        ModuleSpec spec = transformerStack(
            strCat("shared", i), types[pick(0, 5)],
            batches[pick(0, 3)], 64 * pick(1, 4), 256 * pick(1, 4),
            static_cast<std::uint32_t>(pick(2, 8)));
        shared_specs.push_back(spec);
        shared.push_back(b.declareShared(spec));
    }

    const int num_tasks = pick(1, 5);
    for (int t = 0; t < num_tasks; ++t) {
        std::int32_t task = b.addTask(strCat("task", t));
        const int num_encoders = pick(1, 3);
        std::vector<NodeRange> encoders;
        for (int e = 0; e < num_encoders; ++e) {
            if (pick(0, 2) == 0) {
                // Reuse a shared stack (same layer count required).
                int s = pick(0, num_shared - 1);
                ModuleSpec spec = shared_specs[s];
                spec.name = strCat("t", t, ".shared", s);
                encoders.push_back(b.addModule(task, spec, &shared[s]));
            } else {
                encoders.push_back(b.addModule(
                    task, transformerStack(
                              strCat("t", t, ".enc", e),
                              types[pick(0, 5)], batches[pick(0, 3)],
                              64 * pick(1, 4), 256 * pick(1, 4),
                              static_cast<std::uint32_t>(pick(1, 6)))));
            }
        }
        // A fusion stage joining all encoders.
        NodeRange fusion = b.addModule(
            task, transformerStack(strCat("t", t, ".fusion"), OpType::LM,
                                   batches[pick(0, 3)], 128, 512,
                                   static_cast<std::uint32_t>(pick(1, 4))));
        for (const NodeRange &enc : encoders)
            b.addFlow(enc, fusion);
    }
    return b.build();
}

class RandomWorkload : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomWorkload, ContractionPartitionsOperators)
{
    ComputationGraph g = randomWorkload(GetParam());
    MetaGraph meta = contractGraph(g);
    std::set<OpId> seen;
    for (const MetaOp &m : meta.metaOps()) {
        EXPECT_GT(m.numOps(), 0);
        for (OpId op : m.ops) {
            EXPECT_TRUE(seen.insert(op).second);
            const OperatorDesc &desc = g.op(op);
            EXPECT_EQ(desc.type, m.type);
            EXPECT_EQ(desc.input, m.input);
            EXPECT_EQ(desc.taskId, m.taskId);
        }
    }
    EXPECT_EQ(seen.size(), g.numOps());
}

TEST_P(RandomWorkload, ChainsAreConnectedPaths)
{
    ComputationGraph g = randomWorkload(GetParam());
    MetaGraph meta = contractGraph(g);
    for (const MetaOp &m : meta.metaOps()) {
        for (std::size_t i = 0; i + 1 < m.ops.size(); ++i) {
            const auto &succ = g.successors(m.ops[i]);
            ASSERT_EQ(succ.size(), 1u);
            EXPECT_EQ(succ[0], m.ops[i + 1]);
        }
    }
}

TEST_P(RandomWorkload, LevelsRespectDependencies)
{
    ComputationGraph g = randomWorkload(GetParam());
    MetaGraph meta = contractGraph(g);
    for (const MetaEdge &e : meta.edges())
        EXPECT_LT(meta.metaOp(e.src).level, meta.metaOp(e.dst).level);
    // Every level is non-empty and indexes every MetaOp once.
    std::size_t total = 0;
    for (std::size_t k = 0; k < meta.numLevels(); ++k) {
        EXPECT_FALSE(meta.level(k).empty());
        total += meta.level(k).size();
    }
    EXPECT_EQ(total, meta.numMetaOps());
}

TEST_P(RandomWorkload, PlannerProducesValidPlan)
{
    ComputationGraph g = randomWorkload(GetParam());
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = testutil::smallCluster(2);
    HardwareModel hw(topo);
    ExecutionPlanner planner(hw);
    PlannerOutput out = planner.plan(meta);
    out.plan.validate(meta);
    EXPECT_GT(out.plan.estimatedSpan, 0);
    EXPECT_GE(out.plan.estimatedSpan,
              out.plan.theoreticalOptimum * (1 - 1e-9));
}

TEST_P(RandomWorkload, EngineExecutesEveryOperator)
{
    ComputationGraph g = randomWorkload(GetParam());
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = testutil::smallCluster(2);
    HardwareModel hw(topo);
    ExecutionPlanner planner(hw);
    PlannerOutput out = planner.plan(meta);
    Engine engine(hw);
    IterationResult r = engine.run(meta, out.plan);
    EXPECT_GT(r.iterationSeconds, 0);
    // All forward FLOPs retired: fwd + bwdFactor x fwd.
    const double expect =
        g.totalFlopsFwd() * (1 + hw.params().bwdFlopsFactor);
    EXPECT_NEAR(r.timeline.totalFlops() / expect, 1.0, 1e-9);
}

TEST_P(RandomWorkload, AllSystemsAgreeOnWorkloadCoverage)
{
    ComputationGraph g = randomWorkload(GetParam());
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = testutil::smallCluster(1);
    HardwareModel hw(topo);
    const double expect =
        g.totalFlopsFwd() * (1 + hw.params().bwdFlopsFactor);

    SequentialSystem ds(hw, SequentialMode::DeepSpeed);
    SpindleOptimusSystem optimus(hw);
    for (System *sys : {(System *)&ds, (System *)&optimus}) {
        SystemResult r = sys->runIteration(meta);
        EXPECT_NEAR(r.timeline.totalFlops() / expect, 1.0, 1e-9)
            << r.system;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkload,
                         ::testing::Range<std::uint64_t>(0, 16));

// ---------------------------------------------------------------------
// Collective-algorithm properties over randomized island graphs.

/** A random explicit island graph: 1..5 islands of 1..6 devices,
 *  device ids globally shuffled (permuted, non-contiguous
 *  memberships), occasionally with per-pair collective overrides. */
ClusterConfig
randomIslandConfig(std::mt19937_64 &rng)
{
    auto pick = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };
    const int num_islands = pick(1, 5);
    std::vector<std::uint32_t> sizes;
    std::uint32_t total = 0;
    for (int k = 0; k < num_islands; ++k) {
        sizes.push_back(static_cast<std::uint32_t>(pick(1, 6)));
        total += sizes.back();
    }
    std::vector<DeviceId> ids(total);
    std::iota(ids.begin(), ids.end(), 0u);
    std::shuffle(ids.begin(), ids.end(), rng);

    ClusterConfig cfg;
    cfg.islands.resize(num_islands);
    std::size_t cursor = 0;
    for (int k = 0; k < num_islands; ++k)
        for (std::uint32_t j = 0; j < sizes[k]; ++j)
            cfg.islands[k].devices.push_back(ids[cursor++]);

    // Sometimes a multi-rail default fabric (only the sharded
    // algorithm reads rails; everything else must ignore them).
    cfg.interIslandCollective.rails =
        static_cast<std::uint32_t>(pick(1, 4));

    // Sometimes degrade one island pair's collective class.
    if (num_islands >= 2 && pick(0, 1) == 0) {
        const std::uint32_t a =
            static_cast<std::uint32_t>(pick(0, num_islands - 1));
        std::uint32_t b =
            static_cast<std::uint32_t>(pick(0, num_islands - 2));
        if (b >= a)
            ++b;
        cfg.islandLinks.push_back(
            {a, b, /*p2p=*/{0, 0},
             /*collective=*/{double(pick(10, 100)) * kGiga,
                             double(pick(1, 40)) * kMicro,
                             static_cast<std::uint32_t>(pick(1, 3))}});
    }
    return cfg;
}

/** A random non-trivial subset of the cluster's devices. */
DeviceSet
randomGroup(std::mt19937_64 &rng, std::uint32_t num_devices)
{
    auto pick = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };
    DeviceSet all(num_devices);
    std::iota(all.begin(), all.end(), 0u);
    std::shuffle(all.begin(), all.end(), rng);
    const std::uint32_t size = static_cast<std::uint32_t>(
        pick(2, static_cast<int>(num_devices)));
    all.resize(size);
    canonicalize(all);
    return all;
}

class RandomIslandGraph : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomIslandGraph, AutoIsNeverSlowerThanFlatRing)
{
    std::mt19937_64 rng(GetParam() * 7919 + 17);
    ClusterTopology topo(randomIslandConfig(rng));
    if (topo.numDevices() < 2)
        return;
    CollectiveModel coll(topo);
    for (int trial = 0; trial < 8; ++trial) {
        const DeviceSet group = randomGroup(rng, topo.numDevices());
        const double bytes =
            std::uniform_real_distribution<double>(1.0, 4e9)(rng);
        const double flat =
            coll.allReduceTime(bytes, group, CollectiveKind::FlatRing);
        const double hier = coll.allReduceTime(
            bytes, group, CollectiveKind::Hierarchical);
        const double sharded = coll.allReduceTime(
            bytes, group, CollectiveKind::ShardedHierarchical);
        const double aut =
            coll.allReduceTime(bytes, group, CollectiveKind::Auto);
        EXPECT_LE(aut, flat);
        EXPECT_LE(sharded, hier); // more rings never slows the stage
        EXPECT_EQ(aut, std::min(std::min(flat, hier), sharded));
        // The winner's schedule prices exactly like the oracle.
        EXPECT_EQ(coll.allReduceSchedule(bytes, group,
                                         CollectiveKind::Auto, "s")
                      .seconds(),
                  aut);
    }
}

TEST_P(RandomIslandGraph, AllReduceTimeIsMonotoneInBytes)
{
    std::mt19937_64 rng(GetParam() * 104729 + 3);
    ClusterTopology topo(randomIslandConfig(rng));
    if (topo.numDevices() < 2)
        return;
    CollectiveModel coll(topo);
    for (int trial = 0; trial < 4; ++trial) {
        const DeviceSet group = randomGroup(rng, topo.numDevices());
        double bytes = 1.0;
        for (CollectiveKind kind :
             {CollectiveKind::FlatRing, CollectiveKind::Hierarchical,
              CollectiveKind::ShardedHierarchical,
              CollectiveKind::Auto}) {
            double prev = -1.0;
            for (int step = 0; step < 12; ++step) {
                const double t =
                    coll.allReduceTime(bytes, group, kind);
                EXPECT_GE(t, prev)
                    << collectiveKindName(kind) << " at " << bytes;
                prev = t;
                bytes *= 4.0;
            }
            bytes = 1.0;
        }
    }
}

TEST_P(RandomIslandGraph, HierarchicalIsInvariantUnderRenumbering)
{
    // Island-structure-preserving renumberings (the renumbering_test
    // machinery's striping relabel) must not change any collective
    // price: the time depends on the island graph, not on device
    // numbering.
    std::mt19937_64 rng(GetParam() * 15485863 + 11);
    auto pick = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };
    const std::uint32_t islands = static_cast<std::uint32_t>(pick(1, 4));
    const std::uint32_t size = static_cast<std::uint32_t>(pick(2, 6));
    testutil::StripeRelabel pi{islands, size};
    ClusterConfig cfg_a = testutil::contiguousIslandConfig(islands, size);
    ClusterConfig cfg_b = testutil::stripedIslandConfig(islands, size);
    // A railed fabric so the sharded algorithm is non-degenerate.
    cfg_a.interIslandCollective.rails = 3;
    cfg_b.interIslandCollective.rails = 3;
    ClusterTopology contiguous(cfg_a);
    ClusterTopology striped(cfg_b);
    CollectiveModel coll_a(contiguous);
    CollectiveModel coll_b(striped);

    for (int trial = 0; trial < 8; ++trial) {
        const DeviceSet group =
            randomGroup(rng, contiguous.numDevices());
        const DeviceSet image = pi.image(group);
        const double bytes =
            std::uniform_real_distribution<double>(1.0, 4e9)(rng);
        for (CollectiveKind kind :
             {CollectiveKind::FlatRing, CollectiveKind::Hierarchical,
              CollectiveKind::ShardedHierarchical,
              CollectiveKind::Auto}) {
            EXPECT_DOUBLE_EQ(coll_a.allReduceTime(bytes, group, kind),
                             coll_b.allReduceTime(bytes, image, kind))
                << collectiveKindName(kind);
            EXPECT_DOUBLE_EQ(coll_a.allGatherTime(bytes, group, kind),
                             coll_b.allGatherTime(bytes, image, kind))
                << collectiveKindName(kind);
        }
        // The decompositions are each other's pi-image.
        const GroupDecomposition da = decomposeByIsland(contiguous,
                                                        group);
        const GroupDecomposition db = decomposeByIsland(striped, image);
        ASSERT_EQ(da.islands.size(), db.islands.size());
        for (std::size_t k = 0; k < da.islands.size(); ++k) {
            EXPECT_EQ(pi.image(da.islands[k].devices),
                      db.islands[k].devices);
        }
    }
}

TEST_P(RandomIslandGraph, DecompositionPartitionsTheGroup)
{
    std::mt19937_64 rng(GetParam() * 6700417 + 29);
    ClusterTopology topo(randomIslandConfig(rng));
    if (topo.numDevices() < 2)
        return;
    for (int trial = 0; trial < 8; ++trial) {
        const DeviceSet group = randomGroup(rng, topo.numDevices());
        const GroupDecomposition d = decomposeByIsland(topo, group);
        DeviceSet reunion;
        std::uint32_t prev_island = 0;
        bool first = true;
        for (const IslandGroup &g : d.islands) {
            EXPECT_FALSE(g.devices.empty());
            EXPECT_TRUE(first || g.island > prev_island);
            prev_island = g.island;
            first = false;
            EXPECT_EQ(g.leader, g.devices.front());
            for (DeviceId dev : g.devices)
                EXPECT_EQ(topo.islandOf(dev), g.island);
            reunion = unionOf(reunion, g.devices);
        }
        EXPECT_EQ(reunion, group);
        EXPECT_EQ(d.leaders.size(), d.islands.size());
    }
}

TEST_P(RandomIslandGraph, FlowPricingInvariantUnderStripeRelabel)
{
    // flowTime picks the best pairwise link class; with tied
    // bandwidths the lower-latency class must win *independently of
    // pair iteration order*. A striping relabel permutes device ids
    // (hence the order pairs are scanned in) while preserving the
    // set of spanned link classes, so both flow oracles must price
    // identically on the relabeled sets — this pins the
    // deterministic tiebreak.
    std::mt19937_64 rng(GetParam() * 2654435761 + 5);
    auto pick = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };
    const std::uint32_t islands = static_cast<std::uint32_t>(pick(2, 4));
    const std::uint32_t size = static_cast<std::uint32_t>(pick(2, 5));
    testutil::StripeRelabel pi{islands, size};
    ClusterConfig cfg_a = testutil::contiguousIslandConfig(islands, size);
    ClusterConfig cfg_b = testutil::stripedIslandConfig(islands, size);
    for (ClusterConfig *cfg : {&cfg_a, &cfg_b}) {
        // Tie the intra and inter point-to-point bandwidths; only
        // latency separates the classes.
        cfg->intraIsland = {200 * kGiga, 1 * kMicro};
        cfg->interIsland = {200 * kGiga, 25 * kMicro};
    }
    ClusterTopology contiguous(cfg_a);
    ClusterTopology striped(cfg_b);
    CollectiveModel coll_a(contiguous);
    CollectiveModel coll_b(striped);

    for (int trial = 0; trial < 16; ++trial) {
        const DeviceSet src = randomGroup(rng, contiguous.numDevices());
        const DeviceSet dst = randomGroup(rng, contiguous.numDevices());
        const double bytes =
            std::uniform_real_distribution<double>(1.0, 4e9)(rng);
        EXPECT_DOUBLE_EQ(
            coll_a.flowTime(bytes, src, dst),
            coll_b.flowTime(bytes, pi.image(src), pi.image(dst)));
        EXPECT_DOUBLE_EQ(coll_a.pairedFlowTime(bytes, src, dst),
                         coll_b.pairedFlowTime(bytes, pi.image(src),
                                               pi.image(dst)));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIslandGraph,
                         ::testing::Range<std::uint64_t>(0, 16));

} // namespace
} // namespace spindle
