/**
 * @file
 * Property-based tests over randomly generated MT MM workloads:
 * graph contraction, planning and execution invariants must hold for
 * any dependency structure the builder can express.
 */

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "planner/planner.h"
#include "test_util.h"

namespace spindle {
namespace {

/** Deterministic random MT workload: tasks of random module chains
 *  with random shared encoders and random fan-in joins. */
ComputationGraph
randomWorkload(std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    auto pick = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };

    const OpType types[] = {OpType::Text, OpType::Vision, OpType::Audio,
                            OpType::Depth, OpType::Thermal,
                            OpType::Motion};
    const std::int64_t batches[] = {16, 32, 48, 64};

    WorkloadBuilder b;
    const int num_shared = pick(1, 3);
    std::vector<SharedModule> shared;
    std::vector<ModuleSpec> shared_specs;
    for (int i = 0; i < num_shared; ++i) {
        ModuleSpec spec = transformerStack(
            strCat("shared", i), types[pick(0, 5)],
            batches[pick(0, 3)], 64 * pick(1, 4), 256 * pick(1, 4),
            static_cast<std::uint32_t>(pick(2, 8)));
        shared_specs.push_back(spec);
        shared.push_back(b.declareShared(spec));
    }

    const int num_tasks = pick(1, 5);
    for (int t = 0; t < num_tasks; ++t) {
        std::int32_t task = b.addTask(strCat("task", t));
        const int num_encoders = pick(1, 3);
        std::vector<NodeRange> encoders;
        for (int e = 0; e < num_encoders; ++e) {
            if (pick(0, 2) == 0) {
                // Reuse a shared stack (same layer count required).
                int s = pick(0, num_shared - 1);
                ModuleSpec spec = shared_specs[s];
                spec.name = strCat("t", t, ".shared", s);
                encoders.push_back(b.addModule(task, spec, &shared[s]));
            } else {
                encoders.push_back(b.addModule(
                    task, transformerStack(
                              strCat("t", t, ".enc", e),
                              types[pick(0, 5)], batches[pick(0, 3)],
                              64 * pick(1, 4), 256 * pick(1, 4),
                              static_cast<std::uint32_t>(pick(1, 6)))));
            }
        }
        // A fusion stage joining all encoders.
        NodeRange fusion = b.addModule(
            task, transformerStack(strCat("t", t, ".fusion"), OpType::LM,
                                   batches[pick(0, 3)], 128, 512,
                                   static_cast<std::uint32_t>(pick(1, 4))));
        for (const NodeRange &enc : encoders)
            b.addFlow(enc, fusion);
    }
    return b.build();
}

class RandomWorkload : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomWorkload, ContractionPartitionsOperators)
{
    ComputationGraph g = randomWorkload(GetParam());
    MetaGraph meta = contractGraph(g);
    std::set<OpId> seen;
    for (const MetaOp &m : meta.metaOps()) {
        EXPECT_GT(m.numOps(), 0);
        for (OpId op : m.ops) {
            EXPECT_TRUE(seen.insert(op).second);
            const OperatorDesc &desc = g.op(op);
            EXPECT_EQ(desc.type, m.type);
            EXPECT_EQ(desc.input, m.input);
            EXPECT_EQ(desc.taskId, m.taskId);
        }
    }
    EXPECT_EQ(seen.size(), g.numOps());
}

TEST_P(RandomWorkload, ChainsAreConnectedPaths)
{
    ComputationGraph g = randomWorkload(GetParam());
    MetaGraph meta = contractGraph(g);
    for (const MetaOp &m : meta.metaOps()) {
        for (std::size_t i = 0; i + 1 < m.ops.size(); ++i) {
            const auto &succ = g.successors(m.ops[i]);
            ASSERT_EQ(succ.size(), 1u);
            EXPECT_EQ(succ[0], m.ops[i + 1]);
        }
    }
}

TEST_P(RandomWorkload, LevelsRespectDependencies)
{
    ComputationGraph g = randomWorkload(GetParam());
    MetaGraph meta = contractGraph(g);
    for (const MetaEdge &e : meta.edges())
        EXPECT_LT(meta.metaOp(e.src).level, meta.metaOp(e.dst).level);
    // Every level is non-empty and indexes every MetaOp once.
    std::size_t total = 0;
    for (std::size_t k = 0; k < meta.numLevels(); ++k) {
        EXPECT_FALSE(meta.level(k).empty());
        total += meta.level(k).size();
    }
    EXPECT_EQ(total, meta.numMetaOps());
}

TEST_P(RandomWorkload, PlannerProducesValidPlan)
{
    ComputationGraph g = randomWorkload(GetParam());
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = testutil::smallCluster(2);
    HardwareModel hw(topo);
    ExecutionPlanner planner(hw);
    PlannerOutput out = planner.plan(meta);
    out.plan.validate(meta);
    EXPECT_GT(out.plan.estimatedSpan, 0);
    EXPECT_GE(out.plan.estimatedSpan,
              out.plan.theoreticalOptimum * (1 - 1e-9));
}

TEST_P(RandomWorkload, EngineExecutesEveryOperator)
{
    ComputationGraph g = randomWorkload(GetParam());
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = testutil::smallCluster(2);
    HardwareModel hw(topo);
    ExecutionPlanner planner(hw);
    PlannerOutput out = planner.plan(meta);
    Engine engine(hw);
    IterationResult r = engine.run(meta, out.plan);
    EXPECT_GT(r.iterationSeconds, 0);
    // All forward FLOPs retired: fwd + bwdFactor x fwd.
    const double expect =
        g.totalFlopsFwd() * (1 + hw.params().bwdFlopsFactor);
    EXPECT_NEAR(r.timeline.totalFlops() / expect, 1.0, 1e-9);
}

TEST_P(RandomWorkload, AllSystemsAgreeOnWorkloadCoverage)
{
    ComputationGraph g = randomWorkload(GetParam());
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = testutil::smallCluster(1);
    HardwareModel hw(topo);
    const double expect =
        g.totalFlopsFwd() * (1 + hw.params().bwdFlopsFactor);

    SequentialSystem ds(hw, SequentialMode::DeepSpeed);
    SpindleOptimusSystem optimus(hw);
    for (System *sys : {(System *)&ds, (System *)&optimus}) {
        SystemResult r = sys->runIteration(meta);
        EXPECT_NEAR(r.timeline.totalFlops() / expect, 1.0, 1e-9)
            << r.system;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkload,
                         ::testing::Range<std::uint64_t>(0, 16));

} // namespace
} // namespace spindle
