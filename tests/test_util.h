/**
 * @file
 * Shared fixtures for the Spindle test suite.
 */

#ifndef SPINDLE_TESTS_TEST_UTIL_H
#define SPINDLE_TESTS_TEST_UTIL_H

#include "spindle/spindle.h"

namespace spindle::testutil {

/** A 2-node x 8-GPU cluster with default link classes. */
inline ClusterTopology
smallCluster(std::uint32_t num_nodes = 2)
{
    ClusterConfig cfg;
    cfg.numNodes = num_nodes;
    cfg.gpusPerNode = 8;
    return ClusterTopology(cfg);
}

/**
 * The paper's Fig. 3 style workload: an audio-language and a
 * vision-language task sharing a text encoder and an LM.
 */
inline ComputationGraph
fig3Workload(std::int64_t batch = 32)
{
    WorkloadBuilder b;
    SharedModule text = b.declareShared(
        transformerStack("text", OpType::Text, batch, 77, 768, 4));
    SharedModule lm = b.declareShared(
        transformerStack("lm", OpType::LM, batch, 512, 1024, 6));

    std::int32_t t0 = b.addTask("audio-language");
    NodeRange a0 = b.addModule(
        t0, transformerStack("t0.audio", OpType::Audio, batch, 229, 768, 3));
    NodeRange x0 = b.addModule(
        t0, transformerStack("t0.text", OpType::Text, batch, 77, 768, 4),
        &text);
    NodeRange l0 = b.addModule(
        t0, transformerStack("t0.lm", OpType::LM, batch, 512, 1024, 6),
        &lm);
    b.addFlow(a0, l0);
    b.addFlow(x0, l0);

    std::int32_t t1 = b.addTask("vision-language");
    NodeRange v1 = b.addModule(
        t1, transformerStack("t1.vision", OpType::Vision, batch, 257, 1024,
                             5));
    NodeRange x1 = b.addModule(
        t1, transformerStack("t1.text", OpType::Text, batch, 77, 768, 4),
        &text);
    NodeRange l1 = b.addModule(
        t1, transformerStack("t1.lm", OpType::LM, batch, 512, 1024, 6),
        &lm);
    b.addFlow(v1, l1);
    b.addFlow(x1, l1);
    return b.build();
}

/**
 * The striping relabel pi(d) = (d % size) * islands + d / size:
 * contiguous island k (ids [k*size, (k+1)*size)) becomes the striped
 * island k ({k, k + islands, k + 2*islands, ...}). Island order and
 * the relative id order inside each island are both preserved, so
 * pi is an isomorphism of the island graph — the renumbering and
 * collective-invariance tests both build on it.
 */
struct StripeRelabel
{
    std::uint32_t islands;
    std::uint32_t size;

    DeviceId
    operator()(DeviceId d) const
    {
        return (d % size) * islands + d / size;
    }

    DeviceSet
    image(const DeviceSet &devices) const
    {
        DeviceSet out;
        out.reserve(devices.size());
        for (DeviceId d : devices)
            out.push_back((*this)(d));
        canonicalize(out);
        return out;
    }
};

/** Homogeneous islands x size cluster with contiguous id islands. */
inline ClusterConfig
contiguousIslandConfig(std::uint32_t islands = 2, std::uint32_t size = 8)
{
    ClusterConfig cfg;
    cfg.numNodes = islands;
    cfg.gpusPerNode = size;
    return cfg;
}

/** The StripeRelabel image of contiguousIslandConfig(). */
inline ClusterConfig
stripedIslandConfig(std::uint32_t islands = 2, std::uint32_t size = 8)
{
    StripeRelabel pi{islands, size};
    ClusterConfig cfg;
    cfg.islands.resize(islands);
    for (std::uint32_t k = 0; k < islands; ++k)
        for (std::uint32_t j = 0; j < size; ++j)
            cfg.islands[k].devices.push_back(pi(k * size + j));
    return cfg;
}

/** One bare operator description for low-level hardware tests. */
inline OperatorDesc
plainOp(std::int64_t batch = 32, std::int64_t seq = 128,
        std::int64_t hidden = 1024, OpType type = OpType::Text)
{
    OperatorDesc op;
    op.name = "op";
    op.type = type;
    op.input = {batch, seq, hidden};
    op.flopsFwd = transformerFwdFlops(batch, seq, hidden);
    op.paramBytes = transformerParamBytes(hidden);
    op.activationBytes = activationBytesOf(op.input);
    return op;
}

} // namespace spindle::testutil

#endif // SPINDLE_TESTS_TEST_UTIL_H
