/**
 * @file
 * Unit tests for the resource allocator (§3.3): the MPSP bisection
 * of Appendix B / Theorem 1 and the bi-point discretization of
 * Conds. (10a)/(10b).
 */

#include <gtest/gtest.h>

#include "cost/estimator.h"
#include "planner/resource_allocator.h"
#include "test_util.h"

namespace spindle {
namespace {

using testutil::fig3Workload;
using testutil::smallCluster;

struct AllocatorFixture : public ::testing::Test
{
    AllocatorFixture()
        : graph(fig3Workload()), meta(contractGraph(graph)),
          topo(smallCluster(2)), hw(topo), estimator(hw),
          curves(estimator.estimateAll(meta, topo.numDevices())),
          alloc(meta, curves, topo.numDevices())
    {
    }

    ComputationGraph graph;
    MetaGraph meta;
    ClusterTopology topo;
    HardwareModel hw;
    ScalabilityEstimator estimator;
    std::vector<ScalingCurve> curves;
    ResourceAllocator alloc;
};

TEST_F(AllocatorFixture, Theorem1AllocationsSumToN)
{
    MpspSolution sol = alloc.solveContinuous(meta.level(0));
    double sum = 0;
    for (double n : sol.nStar)
        sum += n;
    EXPECT_NEAR(sum, topo.numDevices(), 1e-3);
}

TEST_F(AllocatorFixture, Theorem1AllMetaOpsFinishAtCStar)
{
    // T_m(n*_m) * L_m == C~* for every MetaOp of the level.
    const auto &level = meta.level(0);
    MpspSolution sol = alloc.solveContinuous(level);
    for (std::size_t i = 0; i < level.size(); ++i) {
        const double l = static_cast<double>(
            meta.metaOp(level[i]).numOps());
        const double t = curves[level[i]].eval(sol.nStar[i]) * l;
        EXPECT_NEAR(t / sol.cStar, 1.0, 1e-3);
    }
}

TEST_F(AllocatorFixture, CStarBoundedByExtremes)
{
    const auto &level = meta.level(0);
    MpspSolution sol = alloc.solveContinuous(level);
    double serial = 0, max_parallel = 0;
    for (MetaOpId m : level) {
        const double l = static_cast<double>(meta.metaOp(m).numOps());
        serial += curves[m].timeAt(curves[m].minValid()) * l;
        max_parallel = std::max(
            max_parallel, curves[m].timeAt(curves[m].maxValid()) * l);
    }
    EXPECT_LE(sol.cStar, serial);
    EXPECT_GE(sol.cStar, max_parallel * (1 - 1e-9));
}

TEST_F(AllocatorFixture, DiscretizationPreservesOpCounts)
{
    // Cond. (10a): the tuples of each MetaOp cover exactly L_m ops.
    LevelAllocation level = alloc.allocateLevel(meta.level(0));
    for (std::size_t i = 0; i < level.metaOps.size(); ++i) {
        EXPECT_EQ(level.plans[i].totalOps(),
                  meta.metaOp(level.metaOps[i]).numOps());
    }
}

TEST_F(AllocatorFixture, DiscretizationAtMostTwoTuples)
{
    LevelAllocation level = alloc.allocateLevel(meta.level(0));
    for (const MetaOpAllocation &p : level.plans) {
        EXPECT_GE(p.tuples.size(), 1u);
        EXPECT_LE(p.tuples.size(), 2u);
        for (const AslTuple &t : p.tuples) {
            EXPECT_GE(t.n, 1u);
            EXPECT_GT(t.l, 0);
            EXPECT_TRUE(curves[p.metaOp].isValid(t.n))
                << "allocation must be on the valid grid";
        }
    }
}

TEST_F(AllocatorFixture, Condition10bApproximatelyHolds)
{
    // Serial execution of each MetaOp's tuples lasts ~C~* (up to
    // the integer rounding of l, which is one operator's bias), or
    // strictly less for dummy-bracketed MetaOps.
    LevelAllocation level = alloc.allocateLevel(meta.level(0));
    for (std::size_t i = 0; i < level.metaOps.size(); ++i) {
        const ScalingCurve &curve = curves[level.metaOps[i]];
        double total = 0, max_per_op = 0;
        for (const AslTuple &t : level.plans[i].tuples) {
            total += curve.timeAt(t.n) * static_cast<double>(t.l);
            max_per_op = std::max(max_per_op, curve.timeAt(t.n));
        }
        EXPECT_LE(total,
                  level.continuous.cStar + max_per_op + 1e-9);
    }
}

TEST_F(AllocatorFixture, AllocateAllCoversEveryLevel)
{
    auto levels = alloc.allocateAll();
    ASSERT_EQ(levels.size(), meta.numLevels());
    double sum = 0;
    for (const auto &l : levels)
        sum += l.continuous.cStar;
    EXPECT_NEAR(alloc.theoreticalOptimum(), sum, 1e-12);
}

TEST(Allocator, DummyAllocationForTinyMetaOp)
{
    // A MetaOp whose fractional share is below one device gets all
    // ops on its smallest valid allocation and no zero tuples.
    ComputationGraph g;
    auto add_chain = [&](OpType type, double flops, int n_ops) {
        OpId prev = -1;
        for (int i = 0; i < n_ops; ++i) {
            OperatorDesc op;
            op.type = type;
            op.input = {32, 64, 256};
            op.flopsFwd = flops;
            op.paramBytes = 1e6;
            op.activationBytes = 1e6;
            OpId id = g.addOperator(std::move(op));
            if (prev >= 0)
                g.addEdge(prev, id);
            prev = id;
        }
    };
    add_chain(OpType::LM, 5e12, 8);     // heavy: wants ~all devices
    add_chain(OpType::Motion, 1e8, 4);  // tiny: n* << 1
    g.finalize();
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = testutil::smallCluster(2);
    HardwareModel hw(topo);
    ScalabilityEstimator est(hw);
    auto curves = est.estimateAll(meta, 16);
    ResourceAllocator alloc(meta, curves, 16);
    LevelAllocation level = alloc.allocateLevel(meta.level(0));

    // Identify the tiny MetaOp and check the dummy-bracket path.
    for (std::size_t i = 0; i < level.metaOps.size(); ++i) {
        const MetaOp &m = meta.metaOp(level.metaOps[i]);
        if (m.type != OpType::Motion)
            continue;
        EXPECT_LT(level.continuous.nStar[i], 1.0);
        ASSERT_EQ(level.plans[i].tuples.size(), 1u);
        EXPECT_EQ(level.plans[i].tuples[0].n,
                  curves[level.metaOps[i]].minValid());
        EXPECT_EQ(level.plans[i].tuples[0].l, m.numOps());
    }
}

TEST(Allocator, SingleMetaOpLevelSaturates)
{
    // One MetaOp alone on the cluster takes its max useful
    // allocation; C~* equals its own best time.
    ComputationGraph g;
    OpId prev = -1;
    for (int i = 0; i < 6; ++i) {
        OperatorDesc op;
        op.type = OpType::LM;
        op.input = {32, 128, 1024};
        op.flopsFwd = 1e11;
        op.paramBytes = 1e6;
        op.activationBytes = 1e6;
        OpId id = g.addOperator(std::move(op));
        if (prev >= 0)
            g.addEdge(prev, id);
        prev = id;
    }
    g.finalize();
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = testutil::smallCluster(1);
    HardwareModel hw(topo);
    ScalabilityEstimator est(hw);
    auto curves = est.estimateAll(meta, 8);
    ResourceAllocator alloc(meta, curves, 8);
    MpspSolution sol = alloc.solveContinuous({0});
    EXPECT_NEAR(sol.nStar[0], 8.0, 1e-6);
    EXPECT_NEAR(sol.cStar, curves[0].timeAt(8) * 6, 1e-6);
}

TEST(Allocator, BisectionConvergesOnWideLevels)
{
    // Ten MetaOps of mixed weight on 8 devices: the bisection must
    // still satisfy the Theorem 1 conditions.
    ComputationGraph g;
    for (int c = 0; c < 10; ++c) {
        OpId prev = -1;
        for (int i = 0; i < 3 + c; ++i) {
            OperatorDesc op;
            op.type = static_cast<OpType>(c % 7);
            op.input = {16, 64 + c, 256};
            op.flopsFwd = 1e9 * (c + 1);
            op.paramBytes = 1e6;
            op.activationBytes = 1e6;
            OpId id = g.addOperator(std::move(op));
            if (prev >= 0)
                g.addEdge(prev, id);
            prev = id;
        }
    }
    g.finalize();
    MetaGraph meta = contractGraph(g);
    ASSERT_EQ(meta.numLevels(), 1u);
    ClusterTopology topo = testutil::smallCluster(1);
    HardwareModel hw(topo);
    ScalabilityEstimator est(hw);
    auto curves = est.estimateAll(meta, 8);
    ResourceAllocator alloc(meta, curves, 8);
    MpspSolution sol = alloc.solveContinuous(meta.level(0));
    double sum = 0;
    for (double n : sol.nStar) {
        EXPECT_GT(n, 0);
        sum += n;
    }
    EXPECT_LE(sum, 8.0 + 1e-6);
}

} // namespace
} // namespace spindle
