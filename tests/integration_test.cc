/**
 * @file
 * Integration tests: the paper's headline comparative claims, as
 * shape assertions over the full system stack (Fig. 8, 10, 11, 14,
 * 15, 16 and Appendix F-H).
 */

#include <gtest/gtest.h>

#include "test_util.h"

namespace spindle {
namespace {

using testutil::smallCluster;

TEST(Integration, SpindleBeatsSotaOnMultiTaskClip)
{
    // Fig. 8: Spindle vs DeepSpeed on 7-task CLIP across clusters.
    ComputationGraph g = buildMultitaskClip({.numTasks = 7});
    for (std::uint32_t nodes : {1u, 2u, 4u}) {
        ClusterTopology topo = smallCluster(nodes);
        HardwareModel hw(topo);
        MetaGraph meta = contractGraph(g);
        SpindleSystem spindle(hw);
        SequentialSystem ds(hw, SequentialMode::DeepSpeed);
        double ts = spindle.runIteration(meta).iterationSeconds;
        double td = ds.runIteration(meta).iterationSeconds;
        EXPECT_GT(td / ts, 1.1) << nodes << " nodes";
    }
}

TEST(Integration, SpeedupGrowsWithTaskCount)
{
    // Fig. 8 discussion: Spindle excels with more tasks.
    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    auto speedup = [&](std::uint32_t tasks) {
        ComputationGraph g = buildMultitaskClip({.numTasks = tasks});
        MetaGraph meta = contractGraph(g);
        SpindleSystem spindle(hw);
        SequentialSystem ds(hw, SequentialMode::DeepSpeed);
        return ds.runIteration(meta).iterationSeconds /
               spindle.runIteration(meta).iterationSeconds;
    };
    EXPECT_GT(speedup(10), speedup(4) * 0.98);
}

TEST(Integration, SpindleBeatsTaskLevelAndSingleTaskStrategies)
{
    // Fig. 8: Spindle >= DistMM-MT and >= Megatron on MT workloads.
    ComputationGraph g = buildOfasys({.numTasks = 7});
    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    MetaGraph meta = contractGraph(g);
    SpindleSystem spindle(hw);
    DistMMMTSystem distmm(hw);
    SequentialSystem megatron(hw, SequentialMode::Megatron);
    double ts = spindle.runIteration(meta).iterationSeconds;
    EXPECT_LT(ts, distmm.runIteration(meta).iterationSeconds);
    EXPECT_LT(ts, megatron.runIteration(meta).iterationSeconds);
}

TEST(Integration, DistMMWeakOnOfasys)
{
    // §5.2: OFASys tasks are dominated by one modality (lightweight
    // text adaptor), so DistMM-MT's intra-task parallelization gains
    // little over plain sequential execution.
    ComputationGraph g = buildOfasys({.numTasks = 7});
    ClusterTopology topo = smallCluster(4);
    HardwareModel hw(topo);
    MetaGraph meta = contractGraph(g);
    DistMMMTSystem distmm(hw);
    SequentialSystem ds(hw, SequentialMode::DeepSpeed);
    double ratio = ds.runIteration(meta).iterationSeconds /
                   distmm.runIteration(meta).iterationSeconds;
    EXPECT_LT(ratio, 1.15);
}

TEST(Integration, SingleTaskSpindleMatchesDistMM)
{
    // Appendix F / Fig. 14: on single-task MM workloads DistMM-MT is
    // close to Spindle (both exploit intra-task heterogeneity).
    ComputationGraph g = buildMultitaskClip({.numTasks = 1});
    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    MetaGraph meta = contractGraph(g);
    SpindleSystem spindle(hw);
    DistMMMTSystem distmm(hw);
    double ts = spindle.runIteration(meta).iterationSeconds;
    double td = distmm.runIteration(meta).iterationSeconds;
    EXPECT_NEAR(td / ts, 1.0, 0.25);
}

TEST(Integration, SpindleSeqMatchesSotaImplementations)
{
    // Appendix H / Fig. 16: the decoupled strategy on Spindle's
    // stack performs like Megatron-LM / DeepSpeed.
    ComputationGraph g = buildMultitaskClip({.numTasks = 4});
    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    MetaGraph meta = contractGraph(g);
    SequentialSystem seq(hw, SequentialMode::SpindleSeq);
    SequentialSystem megatron(hw, SequentialMode::Megatron);
    double a = seq.runIteration(meta).iterationSeconds;
    double b = megatron.runIteration(meta).iterationSeconds;
    EXPECT_NEAR(a / b, 1.0, 0.1);
}

TEST(Integration, PlacementAblationInflatesTransmission)
{
    // Fig. 10 ablation: sequential placement multiplies inter-wave
    // send/recv time severalfold.
    ComputationGraph g = buildMultitaskClip({.numTasks = 7});
    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    MetaGraph meta = contractGraph(g);
    SpindleSystem spindle(hw);
    SpindleSystem ablation = makeSpindleWithoutPlacement(hw);
    SystemResult with_dp = spindle.runIteration(meta);
    SystemResult without = ablation.runIteration(meta);
    EXPECT_GT(without.breakdown.sendRecv,
              1.5 * with_dp.breakdown.sendRecv);
}

TEST(Integration, SpindleMemoryLowerThanDecoupledBaselines)
{
    // Fig. 15: selective parameter storage keeps Spindle's peak
    // memory below whole-cluster replication.
    ComputationGraph g = buildMultitaskClip({.numTasks = 4});
    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    MetaGraph meta = contractGraph(g);
    SpindleSystem spindle(hw);
    SequentialSystem megatron(hw, SequentialMode::Megatron);
    auto peak = [](const SystemResult &r) {
        double mx = 0;
        for (double b : r.peakMemoryBytes)
            mx = std::max(mx, b);
        return mx;
    };
    EXPECT_LT(peak(spindle.runIteration(meta)),
              peak(megatron.runIteration(meta)));
}

TEST(Integration, IterationTimeNearTheoreticalOptimum)
{
    // Fig. 11: the compute span of the executed plan stays within a
    // modest factor of C~*.
    ComputationGraph g = buildMultitaskClip({.numTasks = 7});
    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    MetaGraph meta = contractGraph(g);
    SpindleSystem spindle(hw);
    SystemResult r = spindle.runIteration(meta);
    ASSERT_GT(r.theoreticalOptimum, 0);
    EXPECT_LT(r.breakdown.fwdBwd / r.theoreticalOptimum, 1.4);
}

TEST(Integration, ReplanningAdaptsToDynamicTaskSets)
{
    // Appendix D: when the task set changes, a fresh plan for the
    // new set beats reusing the sequential strategy.
    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    SpindleSystem spindle(hw);
    SequentialSystem ds(hw, SequentialMode::DeepSpeed);
    double spindle_total = 0, ds_total = 0;
    for (std::uint32_t tasks : {4u, 7u, 10u, 7u}) {
        ComputationGraph g = buildMultitaskClip({.numTasks = tasks});
        MetaGraph meta = contractGraph(g);
        spindle_total += spindle.runIteration(meta).iterationSeconds;
        ds_total += ds.runIteration(meta).iterationSeconds;
    }
    EXPECT_GT(ds_total / spindle_total, 1.2);
}

TEST(Integration, WholeStackDeterminism)
{
    ComputationGraph g = buildOfasys({.numTasks = 4});
    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    MetaGraph meta = contractGraph(g);
    SpindleSystem spindle(hw);
    SystemResult a = spindle.runIteration(meta);
    SystemResult b = spindle.runIteration(meta);
    EXPECT_DOUBLE_EQ(a.iterationSeconds, b.iterationSeconds);
    EXPECT_EQ(a.peakMemoryBytes, b.peakMemoryBytes);
}

} // namespace
} // namespace spindle
