/**
 * @file
 * Reference-vs-optimized planner equivalence.
 *
 * The planner fast path (incremental placement scoring, the
 * scheduler's maintained candidate order, memoized cost lookups)
 * promises *bit-identical* plans to the original implementation.
 * This suite pins that promise: the pre-optimization wavefront
 * scheduler and device placement are frozen below, verbatim, and
 * every seed workload is planned by both pipelines and byte-compared
 * — comm-first and memory-first placement passes alike.
 *
 * The concurrency-ready planner core extends the promise to thread
 * counts: every equivalence case runs the optimized pipeline at
 * {1, 2, 8} planner threads and byte-compares each against the
 * frozen serial reference, and a determinism case re-runs the
 * parallel planner to catch accidental dependence on lane scheduling
 * or sharded-memo iteration order.
 *
 * If an intentional scoring change ever lands, these reference
 * copies must be updated alongside it (and the change called out as
 * plan-affecting).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <deque>
#include <limits>
#include <map>
#include <unordered_map>

#include "baselines/spindle_system.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "planner/planner.h"
#include "test_util.h"

namespace spindle {
namespace {

using testutil::fig3Workload;

// ===================================================================
// Frozen pre-optimization reference implementation
// ===================================================================

namespace reference {

std::int64_t
paramDedupKey(const OperatorDesc &op)
{
    if (op.paramKey != kNoParam)
        return op.paramKey;
    return -(static_cast<std::int64_t>(op.id) + 2);
}

/** Mutable scheduling state of one MetaOp within a level. */
struct MetaOpState
{
    MetaOpId metaOp = -1;
    std::deque<AslTuple> tuples; ///< remaining, largest n first
    std::int64_t op_cursor = 0;  ///< member ops already scheduled

    bool done() const { return tuples.empty(); }
};

/** Remaining estimated execution time across all tuples. */
double
remainingTime(const MetaOpState &st, const ScalingCurve &curve)
{
    double total = 0;
    for (const AslTuple &t : st.tuples)
        total += curve.timeAt(t.n) * static_cast<double>(t.l);
    return total;
}

double
scheduleLevel(const MetaGraph &graph,
              const std::vector<ScalingCurve> &curves,
              std::uint32_t num_devices, const SchedulerOptions &options,
              const LevelAllocation &alloc, double t_start,
              std::vector<Wave> &waves)
{
    std::vector<MetaOpState> states;
    states.reserve(alloc.metaOps.size());
    for (std::size_t i = 0; i < alloc.metaOps.size(); ++i) {
        MetaOpState st;
        st.metaOp = alloc.metaOps[i];
        std::vector<AslTuple> tuples = alloc.plans[i].tuples;
        std::sort(tuples.begin(), tuples.end(),
                  [](const AslTuple &a, const AslTuple &b) {
                      return a.n > b.n;
                  });
        for (const AslTuple &t : tuples) {
            panicIf(t.n == 0 || t.n > num_devices,
                    "scheduleLevel: tuple allocation out of range");
            st.tuples.push_back(t);
        }
        states.push_back(std::move(st));
    }

    double t_current = t_start;
    std::int32_t level = graph.metaOp(alloc.metaOps.front()).level;

    auto any_remaining = [&] {
        return std::any_of(states.begin(), states.end(),
                           [](const MetaOpState &s) { return !s.done(); });
    };

    while (any_remaining()) {
        std::vector<std::size_t> order;
        for (std::size_t i = 0; i < states.size(); ++i)
            if (!states[i].done())
                order.push_back(i);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (states[a].tuples.front().n !=
                          states[b].tuples.front().n)
                          return states[a].tuples.front().n >
                                 states[b].tuples.front().n;
                      return states[a].metaOp < states[b].metaOp;
                  });
        std::vector<std::size_t> selected;
        std::uint32_t used = 0;
        for (std::size_t idx : order) {
            std::uint32_t n = states[idx].tuples.front().n;
            if (used + n <= num_devices) {
                selected.push_back(idx);
                used += n;
            }
        }
        panicIf(selected.empty(), "scheduleLevel: nothing schedulable");

        if (options.extendResources) {
            while (used < num_devices) {
                std::size_t best = states.size();
                double best_remaining = -1;
                std::uint32_t best_next = 0;
                for (std::size_t idx : selected) {
                    const MetaOpState &st = states[idx];
                    const ScalingCurve &curve = curves[st.metaOp];
                    std::uint32_t n = st.tuples.front().n;
                    std::uint32_t next = 0;
                    for (std::uint32_t cand : curve.validNs()) {
                        if (cand > n && cand - n <= num_devices - used) {
                            next = cand;
                            break;
                        }
                    }
                    if (next == 0)
                        continue;
                    double rem = remainingTime(st, curve);
                    if (rem > best_remaining) {
                        best_remaining = rem;
                        best = idx;
                        best_next = next;
                    }
                }
                if (best == states.size())
                    break; // no extensible tuple
                used += best_next - states[best].tuples.front().n;
                states[best].tuples.front().n = best_next;
            }
        }

        double t_wave = std::numeric_limits<double>::infinity();
        for (std::size_t idx : selected) {
            const AslTuple &t = states[idx].tuples.front();
            double full = curves[states[idx].metaOp].timeAt(t.n) *
                          static_cast<double>(t.l);
            t_wave = std::min(t_wave, full);
        }

        Wave wave;
        wave.index = static_cast<std::int32_t>(waves.size());
        wave.level = level;
        wave.start = t_current;
        for (std::size_t idx : selected) {
            MetaOpState &st = states[idx];
            AslTuple &front = st.tuples.front();
            const double per_op = curves[st.metaOp].timeAt(front.n);
            std::int64_t ops = std::clamp<std::int64_t>(
                roundNearest(t_wave / per_op), 1, front.l);

            WaveEntry entry;
            entry.metaOp = st.metaOp;
            entry.n = front.n;
            entry.opBegin = st.op_cursor;
            entry.numOps = ops;
            entry.duration = per_op * static_cast<double>(ops);
            wave.entries.push_back(std::move(entry));

            st.op_cursor += ops;
            front.l -= ops;
            if (front.l == 0)
                st.tuples.pop_front();
            wave.duration = std::max(wave.duration,
                                     wave.entries.back().duration);
        }
        t_current += wave.duration;
        waves.push_back(std::move(wave));
    }
    return t_current;
}

std::vector<Wave>
scheduleAll(const MetaGraph &graph,
            const std::vector<ScalingCurve> &curves,
            std::uint32_t num_devices, const SchedulerOptions &options,
            const std::vector<LevelAllocation> &allocs)
{
    std::vector<Wave> waves;
    double t = 0;
    for (const LevelAllocation &alloc : allocs)
        t = scheduleLevel(graph, curves, num_devices, options, alloc, t,
                          waves);
    annotateWaveReadiness(graph, waves);
    return waves;
}

/** Mutable state of one placement attempt. */
struct Attempt
{
    std::vector<std::unordered_map<std::int64_t, double>> params;
    std::vector<double> activations;
    std::map<MetaOpId, DeviceSet> lastSlice;

    double
    deviceTotal(DeviceId d) const
    {
        double total = activations[d];
        for (const auto &[key, bytes] : params[d])
            total += bytes;
        return total;
    }
};

bool
tryPlace(const ClusterTopology &topo, const HardwareModel &hw,
         const MemoryModel &mem, const PlacementOptions &options,
         const MetaGraph &graph, ExecutionPlan &plan, bool memory_first,
         PlacementResult &result)
{
    const std::uint32_t num_devices = plan.numDevices;
    const double capacity = topo.device().memoryBytes * options.memorySlack;
    const CollectiveModel &coll = hw.collectives();

    Attempt state;
    state.params.assign(num_devices, {});
    state.activations.assign(num_devices, 0.0);

    auto param_share = [&](const OperatorDesc &op, ParallelConfig cfg) {
        const double shard =
            op.paramBytes / cfg.tp /
            (mem.params().zeroShardParams ? cfg.dp : 1.0);
        const double opt =
            op.paramBytes / cfg.tp * mem.params().optimizerFactor /
            (mem.params().zeroShardOptimizer ? cfg.dp : 1.0);
        return shard + opt;
    };

    std::uint32_t seq_cursor = 0;

    for (Wave &wave : plan.waves) {
        DeviceSet free = topo.allDevices();
        free.resize(std::min<std::size_t>(free.size(), num_devices));

        std::vector<std::size_t> order(wave.entries.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        auto entry_volume = [&](const WaveEntry &e) {
            const MetaOp &m = graph.metaOp(e.metaOp);
            double vol = m.activationBytes;
            if (e.opBegin == 0) {
                for (const MetaEdge &edge : graph.edges())
                    if (edge.dst == e.metaOp)
                        vol += edge.flowBytes;
            }
            return vol;
        };
        auto entry_memory = [&](const WaveEntry &e) {
            const MetaOp &m = graph.metaOp(e.metaOp);
            ParallelConfig cfg = hw.bestConfig(memberDesc(m), e.n);
            return mem.sliceBytesPerDevice(m, e.numOps, cfg);
        };
        if (options.strategy == PlacementStrategy::Spindle) {
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          double va, vb;
                          if (memory_first) {
                              va = entry_memory(wave.entries[a]);
                              vb = entry_memory(wave.entries[b]);
                          } else {
                              va = entry_volume(wave.entries[a]);
                              vb = entry_volume(wave.entries[b]);
                          }
                          if (va != vb)
                              return va > vb;
                          return a < b;
                      });
        }

        for (std::size_t idx : order) {
            WaveEntry &e = wave.entries[idx];
            const MetaOp &m = graph.metaOp(e.metaOp);
            const ParallelConfig cfg = hw.bestConfig(memberDesc(m), e.n);
            const double act_share =
                mem.activationBytesPerDevice(m, e.numOps, cfg);

            panicIf(free.size() < e.n,
                    "tryPlace: scheduler exceeded wave capacity");
            std::vector<DeviceSet> windows;
            if (options.strategy == PlacementStrategy::Sequential) {
                DeviceSet win;
                for (std::uint32_t k = 0; k < e.n; ++k)
                    win.push_back((seq_cursor + k) % num_devices);
                canonicalize(win);
                seq_cursor = (seq_cursor + e.n) % num_devices;
                windows.push_back(std::move(win));
            } else {
                for (std::size_t s = 0; s + e.n <= free.size(); ++s)
                    windows.emplace_back(free.begin() + s,
                                         free.begin() + s + e.n);
            }

            double best_primary = std::numeric_limits<double>::infinity();
            double best_secondary = best_primary;
            std::size_t best_w = windows.size();
            double best_comm = 0;
            for (std::size_t w = 0; w < windows.size(); ++w) {
                const DeviceSet &win = windows[w];

                bool feasible = true;
                double peak_frac = 0;
                for (DeviceId d : win) {
                    double add = act_share;
                    for (std::int64_t i = 0; i < e.numOps; ++i) {
                        const OperatorDesc &op =
                            graph.base().op(m.ops[e.opBegin + i]);
                        const std::int64_t key = paramDedupKey(op);
                        const double share = param_share(op, cfg);
                        auto it = state.params[d].find(key);
                        if (it == state.params[d].end())
                            add += share;
                        else if (share > it->second)
                            add += share - it->second;
                    }
                    const double total = state.deviceTotal(d) + add;
                    if (options.strategy == PlacementStrategy::Spindle &&
                        total > capacity) {
                        feasible = false;
                        break;
                    }
                    peak_frac = std::max(
                        peak_frac, total / topo.device().memoryBytes);
                }
                if (!feasible)
                    continue;

                double comm = 0;
                if (e.opBegin == 0) {
                    for (const MetaEdge &edge : graph.edges()) {
                        if (edge.dst != e.metaOp)
                            continue;
                        auto it = state.lastSlice.find(edge.src);
                        if (it != state.lastSlice.end())
                            comm += coll.flowTime(edge.flowBytes,
                                                  it->second, win);
                    }
                } else {
                    auto it = state.lastSlice.find(e.metaOp);
                    if (it != state.lastSlice.end())
                        comm += coll.flowTime(m.activationBytes,
                                              it->second, win);
                }

                double non_resident_bytes = 0;
                for (std::int64_t i = 0; i < e.numOps; ++i) {
                    const OperatorDesc &op =
                        graph.base().op(m.ops[e.opBegin + i]);
                    if (op.paramBytes <= 0)
                        continue;
                    const std::int64_t key = paramDedupKey(op);
                    bool resident = false;
                    for (DeviceId d : win) {
                        if (state.params[d].count(key)) {
                            resident = true;
                            break;
                        }
                    }
                    if (!resident)
                        non_resident_bytes += op.paramBytes;
                }
                comm += options.paramAffinityWeight * 2.0 *
                        non_resident_bytes /
                        topo.config().interIslandCollective.bandwidth;

                if (cfg.tp > 1 && !topo.withinOneIsland(win)) {
                    const double shard = m.activationBytes / cfg.dp;
                    const double slow = CollectiveModel::ringAllReduce(
                        shard, cfg.tp, topo.config().interIsland);
                    const double fast = CollectiveModel::ringAllReduce(
                        shard, cfg.tp, topo.config().intraIsland);
                    comm += 2.0 * static_cast<double>(e.numOps) *
                            (slow - fast);
                }

                const double mem_score =
                    options.memoryWeight * peak_frac;
                double primary, secondary;
                if (memory_first) {
                    primary = peak_frac;
                    secondary = comm;
                } else {
                    primary = comm + mem_score;
                    secondary = peak_frac;
                }
                if (primary < best_primary ||
                    (primary == best_primary &&
                     secondary < best_secondary)) {
                    best_primary = primary;
                    best_secondary = secondary;
                    best_w = w;
                    best_comm = comm;
                }
            }
            if (best_w == windows.size())
                return false; // nothing fits: trigger fallback

            const DeviceSet &win = windows[best_w];
            for (DeviceId d : win) {
                state.activations[d] += act_share;
                for (std::int64_t i = 0; i < e.numOps; ++i) {
                    const OperatorDesc &op =
                        graph.base().op(m.ops[e.opBegin + i]);
                    const std::int64_t key = paramDedupKey(op);
                    const double share = param_share(op, cfg);
                    auto [it, inserted] =
                        state.params[d].emplace(key, share);
                    if (!inserted && share > it->second)
                        it->second = share;
                }
            }
            e.devices = win;
            state.lastSlice[e.metaOp] = win;
            result.estimatedCommSeconds += best_comm;
            if (options.strategy != PlacementStrategy::Sequential) {
                DeviceSet remaining;
                std::set_difference(free.begin(), free.end(),
                                    win.begin(), win.end(),
                                    std::back_inserter(remaining));
                free = std::move(remaining);
            }
        }
    }

    result.peakBytes.assign(num_devices, 0.0);
    for (std::uint32_t d = 0; d < num_devices; ++d)
        result.peakBytes[d] = state.deviceTotal(d);
    return true;
}

PlacementResult
place(const ClusterTopology &topo, const HardwareModel &hw,
      const MemoryModel &mem, const PlacementOptions &options,
      const MetaGraph &graph, ExecutionPlan &plan)
{
    PlacementResult result;
    if (tryPlace(topo, hw, mem, options, graph, plan,
                 /*memory_first=*/false, result))
        return result;
    result = {};
    result.usedMemoryFallback = true;
    fatalIf(!tryPlace(topo, hw, mem, options, graph, plan,
                      /*memory_first=*/true, result),
            "reference place: workload does not fit device memory even "
            "with memory-first placement");
    return result;
}

/** The full pre-optimization planning pipeline (ExecutionPlanner::
 *  plan() with the frozen scheduler and placement substituted). */
PlannerOutput
plan(const HardwareModel &hw, const PlannerOptions &options,
     const MetaGraph &graph)
{
    const std::uint32_t n = hw.topology().numDevices();

    PlannerOutput out;
    ScalabilityEstimator estimator(hw, options.estimator);
    out.curves = estimator.estimateAll(graph, n);

    ResourceAllocator allocator(graph, out.curves, n, options.allocator);
    std::vector<LevelAllocation> allocations = allocator.allocateAll();

    out.plan.waves = scheduleAll(graph, out.curves, n, options.scheduler,
                                 allocations);
    out.plan.numDevices = n;
    out.plan.allocations = std::move(allocations);
    out.plan.theoreticalOptimum = 0;
    for (const LevelAllocation &a : out.plan.allocations)
        out.plan.theoreticalOptimum += a.continuous.cStar;
    out.plan.estimatedSpan = out.plan.waves.empty()
        ? 0.0
        : out.plan.waves.back().start + out.plan.waves.back().duration;

    MemoryModel mem(options.memory);
    out.placement = place(hw.topology(), hw, mem, options.placement,
                          graph, out.plan);
    out.plan.annotateReadiness(graph);
    out.plan.validate(graph);
    return out;
}

} // namespace reference

// ===================================================================
// Byte comparison helpers
// ===================================================================

/** Exact (bit-pattern) double equality: no tolerance, -0.0 != 0.0. */
::testing::AssertionResult
sameBits(double a, double b)
{
    if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " vs " << b << " (bit patterns differ)";
}

void
expectPlansIdentical(const ExecutionPlan &ref, const ExecutionPlan &opt)
{
    EXPECT_EQ(ref.numDevices, opt.numDevices);
    EXPECT_TRUE(sameBits(ref.estimatedSpan, opt.estimatedSpan));
    EXPECT_TRUE(sameBits(ref.theoreticalOptimum, opt.theoreticalOptimum));

    ASSERT_EQ(ref.waves.size(), opt.waves.size());
    for (std::size_t i = 0; i < ref.waves.size(); ++i) {
        const Wave &rw = ref.waves[i];
        const Wave &ow = opt.waves[i];
        SCOPED_TRACE(strCat("wave ", i));
        EXPECT_EQ(rw.index, ow.index);
        EXPECT_EQ(rw.level, ow.level);
        EXPECT_EQ(rw.stream, ow.stream);
        EXPECT_EQ(rw.predecessors, ow.predecessors);
        EXPECT_TRUE(sameBits(rw.start, ow.start));
        EXPECT_TRUE(sameBits(rw.duration, ow.duration));
        ASSERT_EQ(rw.entries.size(), ow.entries.size());
        for (std::size_t j = 0; j < rw.entries.size(); ++j) {
            const WaveEntry &re = rw.entries[j];
            const WaveEntry &oe = ow.entries[j];
            SCOPED_TRACE(strCat("entry ", j));
            EXPECT_EQ(re.metaOp, oe.metaOp);
            EXPECT_EQ(re.n, oe.n);
            EXPECT_EQ(re.opBegin, oe.opBegin);
            EXPECT_EQ(re.numOps, oe.numOps);
            EXPECT_TRUE(sameBits(re.duration, oe.duration));
            EXPECT_EQ(re.devices, oe.devices);
        }
    }

    ASSERT_EQ(ref.allocations.size(), opt.allocations.size());
    for (std::size_t k = 0; k < ref.allocations.size(); ++k) {
        const LevelAllocation &ra = ref.allocations[k];
        const LevelAllocation &oa = opt.allocations[k];
        SCOPED_TRACE(strCat("level ", k));
        EXPECT_EQ(ra.metaOps, oa.metaOps);
        EXPECT_TRUE(sameBits(ra.continuous.cStar, oa.continuous.cStar));
        ASSERT_EQ(ra.plans.size(), oa.plans.size());
        for (std::size_t p = 0; p < ra.plans.size(); ++p) {
            EXPECT_EQ(ra.plans[p].metaOp, oa.plans[p].metaOp);
            ASSERT_EQ(ra.plans[p].tuples.size(),
                      oa.plans[p].tuples.size());
            for (std::size_t t = 0; t < ra.plans[p].tuples.size(); ++t) {
                EXPECT_EQ(ra.plans[p].tuples[t].n,
                          oa.plans[p].tuples[t].n);
                EXPECT_EQ(ra.plans[p].tuples[t].l,
                          oa.plans[p].tuples[t].l);
            }
        }
    }
}

void
expectPlacementsIdentical(const PlacementResult &ref,
                          const PlacementResult &opt)
{
    EXPECT_EQ(ref.usedMemoryFallback, opt.usedMemoryFallback);
    EXPECT_TRUE(sameBits(ref.estimatedCommSeconds,
                         opt.estimatedCommSeconds));
    ASSERT_EQ(ref.peakBytes.size(), opt.peakBytes.size());
    for (std::size_t d = 0; d < ref.peakBytes.size(); ++d)
        EXPECT_TRUE(sameBits(ref.peakBytes[d], opt.peakBytes[d]))
            << "device " << d;
}

/** Reference vs optimized on an explicit cluster config. */
void
expectEquivalentOn(const ComputationGraph &graph, ClusterConfig cluster,
                   PlannerOptions options = {})
{
    ClusterTopology topo(std::move(cluster));
    HardwareModel hw(topo);
    MetaGraph meta = contractGraph(graph);

    PlannerOutput ref = reference::plan(hw, options, meta);

    // The optimized pipeline must reproduce the frozen reference bit
    // for bit at every thread count: 1 is the serial fast path; 2
    // and 8 exercise the parallel estimation / allocation / sweep
    // and their deterministic merges.
    for (std::uint32_t threads : {1u, 2u, 8u}) {
        SCOPED_TRACE(strCat("threads=", threads));
        PlannerOptions threaded = options;
        threaded.threads = threads;
        ExecutionPlanner planner(hw, threaded);
        PlannerOutput opt = planner.plan(meta);

        expectPlansIdentical(ref.plan, opt.plan);
        expectPlacementsIdentical(ref.placement, opt.placement);
    }
}

void
expectEquivalent(const ComputationGraph &graph, std::uint32_t num_nodes,
                 PlannerOptions options = {},
                 ClusterConfig cluster = {})
{
    cluster.numNodes = num_nodes;
    cluster.gpusPerNode = 8;
    expectEquivalentOn(graph, std::move(cluster), options);
}

// ===================================================================
// Seed workloads, comm-first pass
// ===================================================================

TEST(PlannerEquivalence, Fig3Workload)
{
    expectEquivalent(fig3Workload(), 2);
}

TEST(PlannerEquivalence, Clip4Tasks)
{
    expectEquivalent(buildMultitaskClip({.numTasks = 4}), 2);
}

TEST(PlannerEquivalence, Clip7Tasks)
{
    expectEquivalent(buildMultitaskClip({.numTasks = 7}), 2);
}

TEST(PlannerEquivalence, Clip10Tasks)
{
    expectEquivalent(buildMultitaskClip({.numTasks = 10}), 4);
}

TEST(PlannerEquivalence, Ofasys4Tasks)
{
    expectEquivalent(buildOfasys({.numTasks = 4}), 2);
}

TEST(PlannerEquivalence, Ofasys7Tasks)
{
    expectEquivalent(buildOfasys({.numTasks = 7}), 4);
}

TEST(PlannerEquivalence, QwenVal9B)
{
    expectEquivalent(buildQwenVal({}), 2);
}

TEST(PlannerEquivalence, QwenVal9BLargerCluster)
{
    expectEquivalent(buildQwenVal({}), 8);
}

// ===================================================================
// Alternate planner configurations
// ===================================================================

TEST(PlannerEquivalence, SequentialPlacementStrategy)
{
    PlannerOptions options;
    options.placement.strategy = PlacementStrategy::Sequential;
    expectEquivalent(fig3Workload(), 2, options);
    expectEquivalent(buildMultitaskClip({.numTasks = 4}), 2, options);
}

TEST(PlannerEquivalence, NoResourceExtension)
{
    PlannerOptions options;
    options.scheduler.extendResources = false;
    expectEquivalent(buildMultitaskClip({.numTasks = 7}), 2, options);
}

TEST(PlannerEquivalence, ZeroShardParams)
{
    PlannerOptions options;
    options.memory.zeroShardParams = true;
    expectEquivalent(buildQwenVal({.size = QwenValConfig::Size::B30,
                                   .batch = 128}),
                     8, options);
}

TEST(PlannerEquivalence, InvertedLinkBandwidthOrdering)
{
    // A fabric whose inter-island links out-run the intra-island
    // ones (fat IB across PCIe-only boxes): the placement fast path
    // must still mirror flowTime's max-bandwidth pair selection
    // instead of assuming copy > intra > inter ordering. The 4-node
    // runs matter: only there do source slices span islands, where a
    // device with an intra pair *also* has faster inter pairs.
    ClusterConfig cluster;
    cluster.intraIsland = {40 * kGiga, 3 * kMicro};
    cluster.interIsland = {100 * kGiga, 10 * kMicro};
    expectEquivalent(buildMultitaskClip({.numTasks = 4}), 2, {},
                     cluster);
    expectEquivalent(fig3Workload(), 2, {}, cluster);
    expectEquivalent(buildMultitaskClip({.numTasks = 10}), 4, {},
                     cluster);
    expectEquivalent(buildOfasys({.numTasks = 7}), 4, {}, cluster);
}

TEST(PlannerEquivalence, TiedLinkClassBandwidths)
{
    // Equal bandwidth with different latencies across two classes:
    // the class-level fast path cannot reproduce flowTime's
    // pair-order tie-break, so placement must take its exact
    // flowTime fallback and still match bit for bit.
    ClusterConfig cluster;
    cluster.intraIsland = {50 * kGiga, 3 * kMicro};
    cluster.interIsland = {50 * kGiga, 10 * kMicro};
    expectEquivalent(buildMultitaskClip({.numTasks = 10}), 4, {},
                     cluster);
    expectEquivalent(buildOfasys({.numTasks = 7}), 4, {}, cluster);
}

TEST(PlannerEquivalence, OnDeviceCopySlowestOrdering)
{
    // Degenerate ordering with the on-device copy class slowest of
    // all: overlapping-device pairs must not shadow faster fabric
    // links.
    ClusterConfig cluster;
    cluster.device.copyBandwidth = 10 * kGiga;
    expectEquivalent(buildMultitaskClip({.numTasks = 7}), 4, {},
                     cluster);
}

TEST(PlannerEquivalence, NoisyEstimator)
{
    PlannerOptions options;
    options.estimator.noiseStdFrac = 0.05;
    expectEquivalent(buildMultitaskClip({.numTasks = 4}), 2, options);
}

// ===================================================================
// Island-graph topologies (explicit islands, permuted numbering,
// heterogeneous sizes, per-pair overrides)
// ===================================================================

/** Islands striding the id space: device d belongs to island d % k. */
ClusterConfig
stripedCluster(std::uint32_t num_islands, std::uint32_t island_size)
{
    ClusterConfig cfg;
    cfg.islands.resize(num_islands);
    for (std::uint32_t d = 0; d < num_islands * island_size; ++d)
        cfg.islands[d % num_islands].devices.push_back(d);
    return cfg;
}

/** Contiguous islands of the given (possibly mixed) sizes. */
ClusterConfig
heteroCluster(const std::vector<std::uint32_t> &sizes)
{
    ClusterConfig cfg;
    std::uint32_t next = 0;
    for (std::uint32_t s : sizes) {
        IslandSpec island;
        for (std::uint32_t i = 0; i < s; ++i)
            island.devices.push_back(next++);
        cfg.islands.push_back(std::move(island));
    }
    return cfg;
}

TEST(PlannerEquivalence, ExplicitIslandsMatchShorthand)
{
    // An explicit island graph identical to the 2 x 8 shorthand must
    // plan byte-identically to it (and to the frozen reference).
    ClusterConfig shorthand;
    shorthand.numNodes = 2;
    shorthand.gpusPerNode = 8;
    ClusterConfig explicit_cfg = heteroCluster({8, 8});

    ComputationGraph g = buildMultitaskClip({.numTasks = 4});
    MetaGraph meta_a = contractGraph(g);
    MetaGraph meta_b = contractGraph(g);

    ClusterTopology topo_a(shorthand);
    ClusterTopology topo_b(explicit_cfg);
    HardwareModel hw_a(topo_a), hw_b(topo_b);
    PlannerOutput a = ExecutionPlanner(hw_a).plan(meta_a);
    PlannerOutput b = ExecutionPlanner(hw_b).plan(meta_b);
    expectPlansIdentical(a.plan, b.plan);
    expectPlacementsIdentical(a.placement, b.placement);

    expectEquivalentOn(g, explicit_cfg);
}

TEST(PlannerEquivalence, PermutedDeviceNumbering)
{
    // Interleaved island membership: contiguous free-list runs
    // straddle islands constantly, exercising the island-change
    // prefix and the per-position link classes of the banded sweep
    // against the reference's brute-force rescan.
    expectEquivalentOn(buildMultitaskClip({.numTasks = 4}),
                       stripedCluster(2, 8));
    expectEquivalentOn(buildMultitaskClip({.numTasks = 10}),
                       stripedCluster(4, 8));
    expectEquivalentOn(buildOfasys({.numTasks = 7}),
                       stripedCluster(4, 8));
}

TEST(PlannerEquivalence, HeterogeneousIslandSizes)
{
    expectEquivalentOn(buildMultitaskClip({.numTasks = 4}),
                       heteroCluster({6, 10}));
    expectEquivalentOn(buildMultitaskClip({.numTasks = 10}),
                       heteroCluster({12, 4, 12, 4}));
    expectEquivalentOn(buildQwenVal({}), heteroCluster({6, 10}));
}

TEST(PlannerEquivalence, PerPairLinkOverrides)
{
    // Non-uniform fabric: three classes cannot describe it, so the
    // placer must take its exact flowTime path and still match the
    // reference bit for bit.
    ClusterConfig cfg = heteroCluster({8, 8, 8, 8});
    cfg.islands[1].intra = {400 * kGiga, 1 * kMicro};
    cfg.islandLinks.push_back(
        {0, 3, {25 * kGiga, 20 * kMicro}, {200 * kGiga, 20 * kMicro}});
    cfg.islandLinks.push_back({1, 2, {100 * kGiga, 5 * kMicro}, {}});
    expectEquivalentOn(buildMultitaskClip({.numTasks = 10}), cfg);
    expectEquivalentOn(buildOfasys({.numTasks = 7}), cfg);
}

// ===================================================================
// IslandAware window generation
// ===================================================================

TEST(PlannerEquivalence, IslandAwareLowersInterIslandComm)
{
    // On mixed-size islands the contiguous-runs windows fragment
    // across island boundaries; island-aware generation must
    // strictly lower the estimated inter-island comm seconds (and
    // here also the total estimate) on seed workloads.
    for (const ComputationGraph &g :
         {buildOfasys({.numTasks = 4}), buildQwenVal({})}) {
        ClusterTopology topo(heteroCluster({6, 10}));
        HardwareModel hw(topo);
        MetaGraph meta_runs = contractGraph(g);
        MetaGraph meta_isl = contractGraph(g);

        PlannerOptions runs_opt;
        runs_opt.placement.windows = WindowPolicy::ContiguousRuns;
        PlannerOptions isl_opt;
        isl_opt.placement.windows = WindowPolicy::IslandAware;

        PlannerOutput runs =
            ExecutionPlanner(hw, runs_opt).plan(meta_runs);
        PlannerOutput isl =
            ExecutionPlanner(hw, isl_opt).plan(meta_isl);

        EXPECT_LT(isl.placement.interIslandCommSeconds,
                  runs.placement.interIslandCommSeconds);
        EXPECT_LE(isl.placement.estimatedCommSeconds,
                  runs.placement.estimatedCommSeconds);
    }
}

TEST(PlannerEquivalence, PairingAwarePricingNeverRaisesInterIslandComm)
{
    // Acceptance: pricing placement windows with pairedFlowTime (the
    // per-shard attribution interIslandCommSeconds itself uses)
    // instead of flowTime's best-pair bound must never *raise* the
    // attributed inter-island comm of the chosen plan — on every
    // seed workload x island topology pair. Both runs are scored by
    // the same attribution oracle, so the comparison is apples to
    // apples; only the placement decisions differ.
    struct Case
    {
        const char *name;
        ComputationGraph graph;
        ClusterConfig cluster;
    };
    const Case cases[] = {
        {"fig3/hetero{6,10}", fig3Workload(), heteroCluster({6, 10})},
        {"CLIP-4T/striped2x8", buildMultitaskClip({.numTasks = 4}),
         stripedCluster(2, 8)},
        {"CLIP-7T/hetero{6,10}", buildMultitaskClip({.numTasks = 7}),
         heteroCluster({6, 10})},
        {"CLIP-10T/hetero{12,4,12,4}",
         buildMultitaskClip({.numTasks = 10}),
         heteroCluster({12, 4, 12, 4})},
        {"OFASys-4T/hetero{6,10}", buildOfasys({.numTasks = 4}),
         heteroCluster({6, 10})},
        {"OFASys-7T/striped4x8", buildOfasys({.numTasks = 7}),
         stripedCluster(4, 8)},
        {"QwenVal-9B/hetero{6,10}", buildQwenVal({}),
         heteroCluster({6, 10})},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.name);
        ClusterTopology topo(c.cluster);
        HardwareModel hw(topo);
        MetaGraph meta_legacy = contractGraph(c.graph);
        MetaGraph meta_paired = contractGraph(c.graph);

        PlannerOptions legacy_opt;
        legacy_opt.placement.windows = WindowPolicy::IslandAware;
        PlannerOptions paired_opt = legacy_opt;
        paired_opt.placement.pairingAwareFlowPricing = true;

        PlannerOutput legacy =
            ExecutionPlanner(hw, legacy_opt).plan(meta_legacy);
        PlannerOutput paired =
            ExecutionPlanner(hw, paired_opt).plan(meta_paired);
        paired.plan.validate(meta_paired);

        EXPECT_LE(paired.placement.interIslandCommSeconds,
                  legacy.placement.interIslandCommSeconds);
    }
}

TEST(PlannerEquivalence, IslandAwareFirstWaveStaysIntraIsland)
{
    // With every island able to host every first-wave entry, the
    // island-aware generator emits no cross-island candidates, so
    // wave-0 windows never straddle — independent of numbering.
    for (ClusterConfig cfg :
         {stripedCluster(2, 8), heteroCluster({8, 8})}) {
        ClusterTopology topo(cfg);
        HardwareModel hw(topo);
        ComputationGraph g = buildMultitaskClip({.numTasks = 4});
        MetaGraph meta = contractGraph(g);
        PlannerOptions options;
        options.placement.windows = WindowPolicy::IslandAware;
        PlannerOutput out = ExecutionPlanner(hw, options).plan(meta);
        ASSERT_FALSE(out.plan.waves.empty());
        for (const WaveEntry &e : out.plan.waves.front().entries) {
            if (e.n <= topo.minIslandSize()) {
                EXPECT_TRUE(topo.withinOneIsland(e.devices))
                    << deviceSetStr(e.devices);
            }
        }
    }
}

// ===================================================================
// Memory-first fallback pass
// ===================================================================

TEST(PlannerEquivalence, MemoryFirstFallbackPass)
{
    // Shrink HBM until comm-first placement fails, then byte-compare
    // the memory-first fallback plans of both implementations.
    ComputationGraph g = buildMultitaskClip({.numTasks = 4});
    MetaGraph meta = contractGraph(g);

    ClusterConfig cfg;
    cfg.numNodes = 2;
    cfg.gpusPerNode = 8;
    ClusterTopology roomy(cfg);
    HardwareModel hw_roomy(roomy);
    ExecutionPlanner roomy_planner(hw_roomy);
    PlannerOutput baseline = roomy_planner.plan(meta);
    double peak = 0;
    for (double b : baseline.placement.peakBytes)
        peak = std::max(peak, b);

    // Descend until the fallback fires: comm-first keeps adapting at
    // mild pressure, so march down in steps. The planner fatal()s
    // only if even memory-first cannot fit, which these fractions
    // stay comfortably above.
    bool exercised = false;
    for (double frac : {0.999, 0.95, 0.9, 0.85, 0.8, 0.75}) {
        cfg.device.memoryBytes = peak * frac / PlacementOptions{}.memorySlack;
        ClusterTopology tight(cfg);
        HardwareModel hw(tight);
        MetaGraph fresh = contractGraph(g);

        PlannerOptions options;
        // The frozen reference restarts the fallback from wave 0;
        // pin that semantic here (the partial-restart behaviour has
        // its own equivalence coverage in placement_test).
        options.placement.partialFallbackRestart = false;
        PlannerOutput ref = reference::plan(hw, options, fresh);

        bool fell_back = false;
        for (std::uint32_t threads : {1u, 8u}) {
            SCOPED_TRACE(strCat("threads=", threads));
            PlannerOptions threaded = options;
            threaded.threads = threads;
            ExecutionPlanner planner(hw, threaded);
            PlannerOutput opt = planner.plan(fresh);

            EXPECT_EQ(ref.placement.usedMemoryFallback,
                      opt.placement.usedMemoryFallback);
            expectPlansIdentical(ref.plan, opt.plan);
            expectPlacementsIdentical(ref.placement, opt.placement);
            fell_back = opt.placement.usedMemoryFallback;
        }
        if (fell_back) {
            exercised = true;
            break;
        }
    }
    EXPECT_TRUE(exercised)
        << "memory pressure ladder never triggered the fallback pass; "
           "tighten the fractions";
}

// ===================================================================
// Parallel planner: run-to-run determinism and the threads knob
// ===================================================================

TEST(PlannerEquivalence, ParallelPlannerDeterministicAcrossRuns)
{
    // Run the parallel planner 3x at the same thread count and
    // byte-compare: catches accidental dependence on lane scheduling
    // or sharded-memo iteration order. The mixed-size island cluster
    // with island-aware windows exercises multi-band sweeps plus
    // cross-island extras — the widest parallel surface.
    ClusterTopology topo(heteroCluster({12, 4, 12, 4}));
    HardwareModel hw(topo);
    ComputationGraph g = buildMultitaskClip({.numTasks = 10});
    MetaGraph meta = contractGraph(g);

    PlannerOptions options;
    options.placement.windows = WindowPolicy::IslandAware;
    options.threads = 8;
    ExecutionPlanner planner(hw, options);
    ASSERT_EQ(planner.resolvedThreads(), 8u);

    PlannerOutput first = planner.plan(meta);
    for (int run = 1; run < 3; ++run) {
        SCOPED_TRACE(strCat("run ", run));
        PlannerOutput again = planner.plan(meta);
        expectPlansIdentical(first.plan, again.plan);
        expectPlacementsIdentical(first.placement, again.placement);
    }
}

TEST(PlannerEquivalence, ThreadsKnobResolvesAutoAndClampsAbsurd)
{
    ClusterConfig cfg;
    cfg.numNodes = 1;
    cfg.gpusPerNode = 8;
    ClusterTopology topo(cfg);
    HardwareModel hw(topo);

    PlannerOptions options;
    options.threads = 0; // auto = hardware_concurrency
    EXPECT_GE(ExecutionPlanner(hw, options).resolvedThreads(), 1u);

    options.threads = 3;
    EXPECT_EQ(ExecutionPlanner(hw, options).resolvedThreads(), 3u);

    options.threads = 1u << 24; // absurd: warns and clamps
    EXPECT_EQ(ExecutionPlanner(hw, options).resolvedThreads(),
              kMaxPlannerThreads);
}

TEST(PlannerEquivalence, EngineOptionsPlannerThreadsPlumbing)
{
    // The System-level override (plumbed through setEngineOptions
    // like the collective selector) may only change wall clock,
    // never plan bytes.
    ClusterConfig cfg;
    cfg.numNodes = 2;
    cfg.gpusPerNode = 8;
    ClusterTopology topo(cfg);
    HardwareModel hw(topo);
    ComputationGraph g = buildMultitaskClip({.numTasks = 4});
    MetaGraph meta = contractGraph(g);

    SpindleSystem serial(hw);
    SpindleSystem threaded(hw);
    EngineOptions engine;
    engine.plannerThreads = 8u;
    threaded.setEngineOptions(engine);
    ASSERT_TRUE(threaded.engineOptions().plannerThreads.has_value());
    EXPECT_EQ(*threaded.engineOptions().plannerThreads, 8u);

    ExecutionPlan a = serial.buildPlan(meta);
    ExecutionPlan b = threaded.buildPlan(meta);
    expectPlansIdentical(a, b);
}

// ===================================================================
// Incremental replanning (plan cache)
// ===================================================================

/**
 * plan() vs cold replan() (cache miss: curve/level memos plus the
 * prefix-donor machinery) vs warm replan() (full hit: positional id
 * remap of the cached plan) at every thread count. All three must
 * be byte-identical — plan() never touches the cache, so it stays
 * the from-scratch reference throughout.
 */
void
expectReplanMatchesPlan(const ComputationGraph &graph,
                        ClusterConfig cluster, PlannerOptions options = {})
{
    ClusterTopology topo(std::move(cluster));
    HardwareModel hw(topo);
    MetaGraph meta = contractGraph(graph);

    for (std::uint32_t threads : {1u, 2u, 8u}) {
        SCOPED_TRACE(strCat("threads=", threads));
        PlannerOptions threaded = options;
        threaded.threads = threads;
        ExecutionPlanner planner(hw, threaded);

        PlannerOutput ref = planner.plan(meta);

        PlannerOutput cold = planner.replan(meta);
        EXPECT_TRUE(cold.replan.attempted);
        EXPECT_FALSE(cold.replan.fullHit);
        expectPlansIdentical(ref.plan, cold.plan);
        expectPlacementsIdentical(ref.placement, cold.placement);

        PlannerOutput warm = planner.replan(meta);
        EXPECT_TRUE(warm.replan.attempted);
        EXPECT_TRUE(warm.replan.fullHit);
        EXPECT_EQ(warm.replan.reusedLevels, warm.replan.totalLevels);
        expectPlansIdentical(ref.plan, warm.plan);
        expectPlacementsIdentical(ref.placement, warm.placement);
    }
}

void
expectReplanMatchesPlanOnNodes(const ComputationGraph &graph,
                               std::uint32_t num_nodes,
                               PlannerOptions options = {})
{
    ClusterConfig cluster;
    cluster.numNodes = num_nodes;
    cluster.gpusPerNode = 8;
    expectReplanMatchesPlan(graph, std::move(cluster), options);
}

TEST(PlannerEquivalence, ReplanSeedWorkloads)
{
    expectReplanMatchesPlanOnNodes(fig3Workload(), 2);
    expectReplanMatchesPlanOnNodes(buildMultitaskClip({.numTasks = 4}),
                                   2);
    expectReplanMatchesPlanOnNodes(buildOfasys({.numTasks = 7}), 4);
    expectReplanMatchesPlanOnNodes(buildQwenVal({}), 2);
}

TEST(PlannerEquivalence, ReplanIslandTopologies)
{
    expectReplanMatchesPlan(buildMultitaskClip({.numTasks = 7}),
                            stripedCluster(4, 8));
    expectReplanMatchesPlan(buildOfasys({.numTasks = 4}),
                            heteroCluster({12, 4, 12, 4}));

    PlannerOptions options;
    options.placement.windows = WindowPolicy::IslandAware;
    expectReplanMatchesPlan(buildMultitaskClip({.numTasks = 7}),
                            heteroCluster({12, 4, 12, 4}), options);
}

TEST(PlannerEquivalence, ReplanSequentialPlacementStrategy)
{
    // Sequential placement never donates a prefix (its device cursor
    // is not replayed), but full-hit reuse and the cold recompute
    // must still match plan() bit for bit.
    PlannerOptions options;
    options.placement.strategy = PlacementStrategy::Sequential;
    expectReplanMatchesPlanOnNodes(buildMultitaskClip({.numTasks = 4}),
                                   2, options);
}

TEST(PlannerEquivalence, ReplanWithNoiseFallsBackToPlan)
{
    // Noise draws are invisible to positional signatures, so cached
    // results are not value-transparent; replan() must refuse the
    // incremental path and defer to plan().
    ClusterConfig cfg;
    cfg.numNodes = 2;
    cfg.gpusPerNode = 8;
    ClusterTopology topo(cfg);
    HardwareModel hw(topo);
    ComputationGraph g = buildMultitaskClip({.numTasks = 4});
    MetaGraph meta = contractGraph(g);

    PlannerOptions options;
    options.estimator.noiseStdFrac = 0.05;
    ExecutionPlanner planner(hw, options);
    PlannerOutput ref = planner.plan(meta);
    PlannerOutput out = planner.replan(meta);
    EXPECT_FALSE(out.replan.attempted);
    expectPlansIdentical(ref.plan, out.plan);
    expectPlacementsIdentical(ref.placement, out.placement);
}

/** One task, three chained transformer stacks: A -> B -> tail. */
ComputationGraph
chainWorkload(std::int64_t tail_hidden)
{
    WorkloadBuilder b;
    const std::int32_t t = b.addTask("chain");
    NodeRange a = b.addModule(
        t, transformerStack("enc.audio", OpType::Audio, 32, 229, 768, 3));
    NodeRange mid = b.addModule(
        t, transformerStack("enc.text", OpType::Text, 32, 77, 768, 4));
    NodeRange tail = b.addModule(
        t, transformerStack("lm", OpType::LM, 32, 512, tail_hidden, 6));
    b.addFlow(a, mid);
    b.addFlow(mid, tail);
    return b.build();
}

TEST(PlannerEquivalence, ReplanReusesUntouchedLevelPrefix)
{
    // Perturb only the tail module of a 3-level chain: levels 0-1
    // keep their signatures (inflows are recorded on the target, so
    // the tail's width is invisible to them), and the incremental
    // path must reuse the cached allocations plus the committed
    // placement prefix verbatim — yet still emit the exact bytes of
    // a from-scratch plan.
    ClusterConfig cfg;
    cfg.numNodes = 2;
    cfg.gpusPerNode = 8;
    ClusterTopology topo(cfg);
    HardwareModel hw(topo);

    ComputationGraph g1 = chainWorkload(1024);
    ComputationGraph g2 = chainWorkload(2048);
    MetaGraph m1 = contractGraph(g1);
    MetaGraph m2 = contractGraph(g2);
    ASSERT_EQ(m1.numLevels(), 3u);
    ASSERT_EQ(m2.numLevels(), 3u);

    for (std::uint32_t threads : {1u, 2u, 8u}) {
        SCOPED_TRACE(strCat("threads=", threads));
        PlannerOptions options;
        options.threads = threads;
        ExecutionPlanner planner(hw, options);
        PlannerOutput ref = planner.plan(m2);

        PlannerOutput seed = planner.replan(m1);
        EXPECT_TRUE(seed.replan.attempted);
        EXPECT_FALSE(seed.replan.fullHit);

        PlannerOutput inc = planner.replan(m2);
        EXPECT_TRUE(inc.replan.attempted);
        EXPECT_FALSE(inc.replan.fullHit);
        EXPECT_EQ(inc.replan.totalLevels, 3u);
        EXPECT_EQ(inc.replan.reusedLevels, 2u);
        EXPECT_GT(inc.replan.prefixWaves, 0u);
        expectPlansIdentical(ref.plan, inc.plan);
        expectPlacementsIdentical(ref.placement, inc.placement);

        // The perturbed mix is cached now: replanning it again is a
        // full hit and still byte-identical.
        PlannerOutput warm = planner.replan(m2);
        EXPECT_TRUE(warm.replan.fullHit);
        expectPlansIdentical(ref.plan, warm.plan);
        expectPlacementsIdentical(ref.placement, warm.placement);
    }
}

TEST(PlannerEquivalence, ReplanArrivalOscillation)
{
    // Walk 4 -> 5 -> 4 -> 5 -> 4 tasks: after the first visit to
    // each mix the cache must fully hit, and every replan stays
    // byte-identical to a from-scratch plan. plan() never touches
    // the cache, so interleaving it cannot seed the hits.
    ClusterConfig cfg;
    cfg.numNodes = 2;
    cfg.gpusPerNode = 8;
    ClusterTopology topo(cfg);
    HardwareModel hw(topo);

    ComputationGraph g4 = buildMultitaskClip({.numTasks = 4});
    ComputationGraph g5 = buildMultitaskClip({.numTasks = 5});
    MetaGraph m4 = contractGraph(g4);
    MetaGraph m5 = contractGraph(g5);

    ExecutionPlanner planner(hw);
    const std::vector<const MetaGraph *> sequence{&m4, &m5, &m4, &m5,
                                                  &m4};
    std::uint32_t full_hits = 0;
    for (std::size_t i = 0; i < sequence.size(); ++i) {
        SCOPED_TRACE(strCat("event ", i));
        const MetaGraph &meta = *sequence[i];
        PlannerOutput ref = planner.plan(meta);
        PlannerOutput inc = planner.replan(meta);
        full_hits += inc.replan.fullHit ? 1 : 0;
        expectPlansIdentical(ref.plan, inc.plan);
        expectPlacementsIdentical(ref.placement, inc.placement);
    }
    EXPECT_EQ(full_hits, 3u);
    EXPECT_EQ(planner.planCache().stats().fullHits, 3u);
    EXPECT_EQ(planner.planCache().stats().misses, 2u);
}

TEST(PlannerEquivalence, ReplanMemoryFirstFallback)
{
    // Under memory pressure replan() must track place()'s fallback
    // cascade byte for byte, and a fallback plan (stored with an
    // empty commit log) must still full-hit on repeat arrivals.
    ComputationGraph g = buildMultitaskClip({.numTasks = 4});
    MetaGraph meta = contractGraph(g);

    ClusterConfig cfg;
    cfg.numNodes = 2;
    cfg.gpusPerNode = 8;
    ClusterTopology roomy(cfg);
    HardwareModel hw_roomy(roomy);
    ExecutionPlanner roomy_planner(hw_roomy);
    PlannerOutput baseline = roomy_planner.plan(meta);
    double peak = 0;
    for (double b : baseline.placement.peakBytes)
        peak = std::max(peak, b);

    bool exercised = false;
    for (double frac : {0.999, 0.95, 0.9, 0.85, 0.8, 0.75}) {
        SCOPED_TRACE(strCat("frac=", frac));
        cfg.device.memoryBytes =
            peak * frac / PlacementOptions{}.memorySlack;
        ClusterTopology tight(cfg);
        HardwareModel hw(tight);
        MetaGraph fresh = contractGraph(g);

        ExecutionPlanner planner(hw);
        PlannerOutput ref = planner.plan(fresh);
        PlannerOutput cold = planner.replan(fresh);
        EXPECT_FALSE(cold.replan.fullHit);
        expectPlansIdentical(ref.plan, cold.plan);
        expectPlacementsIdentical(ref.placement, cold.placement);

        PlannerOutput warm = planner.replan(fresh);
        EXPECT_TRUE(warm.replan.fullHit);
        expectPlansIdentical(ref.plan, warm.plan);
        expectPlacementsIdentical(ref.placement, warm.placement);

        if (ref.placement.usedMemoryFallback) {
            exercised = true;
            break;
        }
    }
    EXPECT_TRUE(exercised)
        << "memory pressure ladder never triggered the fallback pass; "
           "tighten the fractions";
}

// ===================================================================
// Incremental sweep state & admissible band pruning
// ===================================================================

/**
 * Worst case for the incremental per-entry candidate state: tasks 2k
 * share one parameter stack, tasks 2k+1 another, and every task adds
 * a private tower, so wavefront interleaving makes consecutive
 * placement entries alternate between overlapping and fully disjoint
 * sig-key sets. An entry whose keys overlap a previously committed
 * one must see exactly the dirtied devices (the holder lists); an
 * entry with disjoint keys must see none. A stale affected set,
 * flat-mirror entry, or epoch stamp surfaces as a byte mismatch
 * against the frozen reference's brute-force rescan.
 */
ComputationGraph
sigAlternationWorkload()
{
    WorkloadBuilder b;
    const std::int64_t batch = 32;
    SharedModule even_text = b.declareShared(
        transformerStack("even.text", OpType::Text, batch, 77, 768, 3));
    SharedModule odd_lm = b.declareShared(
        transformerStack("odd.lm", OpType::LM, batch, 256, 1024, 4));
    for (int t = 0; t < 6; ++t) {
        const std::int32_t task = b.addTask(strCat("task", t));
        NodeRange tower = b.addModule(
            task,
            transformerStack(strCat("t", t, ".tower"), OpType::Vision,
                             batch, 128 + 16 * t, 768,
                             2 + static_cast<std::uint32_t>(t) % 3));
        NodeRange head =
            t % 2 == 0
                ? b.addModule(task,
                              transformerStack(strCat("t", t, ".text"),
                                               OpType::Text, batch, 77,
                                               768, 3),
                              &even_text)
                : b.addModule(task,
                              transformerStack(strCat("t", t, ".lm"),
                                               OpType::LM, batch, 256,
                                               1024, 4),
                              &odd_lm);
        b.addFlow(tower, head);
    }
    return b.build();
}

TEST(PlannerEquivalence, DirtyTrackingSigAlternation)
{
    ComputationGraph g = sigAlternationWorkload();

    // Reference vs optimized (pruning on by default) at {1,2,8}
    // threads, on contiguous islands and on a striped numbering
    // whose free-list runs churn across islands.
    expectEquivalent(g, 2);
    expectEquivalentOn(g, stripedCluster(4, 4));

    // And with the admissible pruning disabled: both sides of the
    // pruning toggle must match the same reference bytes.
    PlannerOptions no_prune;
    no_prune.placement.bandPruning = false;
    expectEquivalent(g, 2, no_prune);
}

TEST(PlannerEquivalence, Sampled1024GpuPruningAndThreadsToggle)
{
    // The scale acceptance of the incremental sweep: at the sampled
    // 1024-GPU point (the bench's scale-envelope record), plans must
    // stay byte-identical with admissible band pruning on or off, at
    // 1 and 8 planner threads. The frozen reference is deliberately
    // not run here — the pairwise comparison pins exactly the claim
    // the pruning bound proves (strict-inequality pruning preserves
    // the ordinal tie-break, so the winner never changes), and the
    // reference already anchors the smaller scales above.
    ComputationGraph g = buildMultitaskClip({.numTasks = 10});
    MetaGraph meta = contractGraph(g);
    ClusterConfig cfg;
    cfg.numNodes = 128;
    cfg.gpusPerNode = 8;
    ClusterTopology topo(cfg);
    HardwareModel hw(topo);

    PlannerOptions anchor_opt;
    anchor_opt.placement.bandPruning = false;
    PlannerOutput anchor = ExecutionPlanner(hw, anchor_opt).plan(meta);
    EXPECT_EQ(anchor.plan.numDevices, 1024u);

    for (bool pruning : {false, true}) {
        for (std::uint32_t threads : {1u, 8u}) {
            if (!pruning && threads == 1)
                continue; // the anchor itself
            SCOPED_TRACE(
                strCat("pruning=", pruning, " threads=", threads));
            PlannerOptions options;
            options.placement.bandPruning = pruning;
            options.threads = threads;
            PlannerOutput out = ExecutionPlanner(hw, options).plan(meta);
            expectPlansIdentical(anchor.plan, out.plan);
            expectPlacementsIdentical(anchor.placement, out.placement);
        }
    }
}

} // namespace
} // namespace spindle
