/**
 * @file
 * Device-renumbering invariance (§3.5 refactor): the island graph —
 * not the device numbering — is what placement behaviour may depend
 * on. Relabeling device ids by an island-structure-preserving
 * permutation must yield plans that are the permutation image of the
 * original plans (island-aware windows), and the Sequential baseline
 * must not notice islands at all.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "planner/planner.h"
#include "test_util.h"

namespace spindle {
namespace {

using testutil::StripeRelabel;

/** Contiguous 2 x 8 cluster and its striped relabeling. */
ClusterConfig
contiguousConfig()
{
    return testutil::contiguousIslandConfig(2, 8);
}

ClusterConfig
stripedConfig()
{
    return testutil::stripedIslandConfig(2, 8);
}

PlannerOutput
planOn(ClusterConfig cfg, const ComputationGraph &g,
       PlannerOptions options)
{
    ClusterTopology topo(std::move(cfg));
    HardwareModel hw(topo);
    MetaGraph meta = contractGraph(g);
    return ExecutionPlanner(hw, options).plan(meta);
}

/** Non-placement plan structure must be unaffected by renumbering. */
void
expectSameStructure(const ExecutionPlan &a, const ExecutionPlan &b)
{
    ASSERT_EQ(a.waves.size(), b.waves.size());
    EXPECT_DOUBLE_EQ(a.estimatedSpan, b.estimatedSpan);
    for (std::size_t i = 0; i < a.waves.size(); ++i) {
        ASSERT_EQ(a.waves[i].entries.size(), b.waves[i].entries.size());
        for (std::size_t j = 0; j < a.waves[i].entries.size(); ++j) {
            const WaveEntry &ea = a.waves[i].entries[j];
            const WaveEntry &eb = b.waves[i].entries[j];
            EXPECT_EQ(ea.metaOp, eb.metaOp);
            EXPECT_EQ(ea.n, eb.n);
            EXPECT_EQ(ea.opBegin, eb.opBegin);
            EXPECT_EQ(ea.numOps, eb.numOps);
            EXPECT_DOUBLE_EQ(ea.duration, eb.duration);
        }
    }
}

/** Device sets of b must be the pi-image of those of a, entry by
 *  entry; per-device peaks must match under pi as well. */
void
expectEquivariant(const PlannerOutput &a, const PlannerOutput &b,
                  const StripeRelabel &pi)
{
    expectSameStructure(a.plan, b.plan);
    for (std::size_t i = 0; i < a.plan.waves.size(); ++i) {
        for (std::size_t j = 0; j < a.plan.waves[i].entries.size();
             ++j) {
            SCOPED_TRACE(strCat("wave ", i, " entry ", j));
            EXPECT_EQ(pi.image(a.plan.waves[i].entries[j].devices),
                      b.plan.waves[i].entries[j].devices);
        }
    }
    EXPECT_DOUBLE_EQ(a.placement.estimatedCommSeconds,
                     b.placement.estimatedCommSeconds);
    EXPECT_DOUBLE_EQ(a.placement.interIslandCommSeconds,
                     b.placement.interIslandCommSeconds);
    EXPECT_EQ(a.placement.usedMemoryFallback,
              b.placement.usedMemoryFallback);
    ASSERT_EQ(a.placement.peakBytes.size(), b.placement.peakBytes.size());
    for (std::size_t d = 0; d < a.placement.peakBytes.size(); ++d)
        EXPECT_DOUBLE_EQ(a.placement.peakBytes[d],
                         b.placement.peakBytes[pi(
                             static_cast<DeviceId>(d))])
            << "device " << d;
}

TEST(Renumbering, IslandAwarePlacementIsEquivariant)
{
    // Comm-first pass on two seed workloads.
    PlannerOptions options;
    options.placement.windows = WindowPolicy::IslandAware;
    StripeRelabel pi{2, 8};
    for (const ComputationGraph &g :
         {buildMultitaskClip({.numTasks = 4}),
          buildOfasys({.numTasks = 4})}) {
        PlannerOutput a = planOn(contiguousConfig(), g, options);
        PlannerOutput b = planOn(stripedConfig(), g, options);
        expectEquivariant(a, b, pi);
    }
}

TEST(Renumbering, IslandAwareMemoryFirstPassIsEquivariant)
{
    // Shrink HBM until the memory-first fallback fires, then check
    // equivariance of the fallback pass too.
    PlannerOptions options;
    options.placement.windows = WindowPolicy::IslandAware;
    StripeRelabel pi{2, 8};
    ComputationGraph g = buildMultitaskClip({.numTasks = 4});

    PlannerOutput roomy = planOn(contiguousConfig(), g, options);
    double peak = 0;
    for (double b : roomy.placement.peakBytes)
        peak = std::max(peak, b);

    bool exercised = false;
    for (double frac : {0.999, 0.95, 0.9, 0.85, 0.8, 0.75}) {
        const double hbm =
            peak * frac / PlacementOptions{}.memorySlack;
        ClusterConfig ca = contiguousConfig();
        ClusterConfig cb = stripedConfig();
        ca.device.memoryBytes = hbm;
        cb.device.memoryBytes = hbm;
        PlannerOutput a = planOn(std::move(ca), g, options);
        PlannerOutput b = planOn(std::move(cb), g, options);
        expectEquivariant(a, b, pi);
        if (a.placement.usedMemoryFallback) {
            exercised = true;
            break;
        }
    }
    EXPECT_TRUE(exercised)
        << "pressure ladder never forced the memory-first pass";
}

TEST(Renumbering, SequentialBaselineIgnoresIslands)
{
    // The Sequential ablation allocates consecutive device *ids* by
    // design; its plans must be bit-identical across any relabeling
    // of the island structure.
    PlannerOptions options;
    options.placement.strategy = PlacementStrategy::Sequential;
    ComputationGraph g = testutil::fig3Workload();
    PlannerOutput a = planOn(contiguousConfig(), g, options);
    PlannerOutput b = planOn(stripedConfig(), g, options);
    expectSameStructure(a.plan, b.plan);
    for (std::size_t i = 0; i < a.plan.waves.size(); ++i)
        for (std::size_t j = 0; j < a.plan.waves[i].entries.size(); ++j)
            EXPECT_EQ(a.plan.waves[i].entries[j].devices,
                      b.plan.waves[i].entries[j].devices);
}

TEST(Renumbering, ContiguousRunsEquivalentUpToPermutationOnBlocks)
{
    // Swapping the order of two equal-size contiguous islands is a
    // topology automorphism composed with a relabel; the historical
    // contiguous-runs placement keeps all structural invariants
    // (spans, comm estimates, the multiset of per-device loads) even
    // though individual windows may land on the mirrored island.
    ComputationGraph g = buildMultitaskClip({.numTasks = 4});
    PlannerOptions options; // ContiguousRuns default

    ClusterConfig swapped;
    swapped.islands.resize(2);
    for (std::uint32_t j = 0; j < 8; ++j)
        swapped.islands[0].devices.push_back(8 + j);
    for (std::uint32_t j = 0; j < 8; ++j)
        swapped.islands[1].devices.push_back(j);

    PlannerOutput a = planOn(contiguousConfig(), g, options);
    PlannerOutput b = planOn(swapped, g, options);
    expectSameStructure(a.plan, b.plan);
    EXPECT_DOUBLE_EQ(a.placement.estimatedCommSeconds,
                     b.placement.estimatedCommSeconds);
    std::vector<double> pa = a.placement.peakBytes;
    std::vector<double> pb = b.placement.peakBytes;
    std::sort(pa.begin(), pa.end());
    std::sort(pb.begin(), pb.end());
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t d = 0; d < pa.size(); ++d)
        EXPECT_DOUBLE_EQ(pa[d], pb[d]);
}

} // namespace
} // namespace spindle
