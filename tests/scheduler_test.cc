/**
 * @file
 * Unit tests for the wavefront scheduler (§3.4, Alg. 1): wave
 * crafting, capacity, resource extension, time-span alignment, and
 * MetaLevel merging.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cost/estimator.h"
#include "planner/resource_allocator.h"
#include "planner/wavefront_scheduler.h"
#include "test_util.h"

namespace spindle {
namespace {

using testutil::fig3Workload;
using testutil::smallCluster;

struct SchedulerFixture : public ::testing::Test
{
    SchedulerFixture()
        : graph(fig3Workload()), meta(contractGraph(graph)),
          topo(smallCluster(2)), hw(topo), estimator(hw),
          curves(estimator.estimateAll(meta, topo.numDevices())),
          alloc(meta, curves, topo.numDevices()),
          sched(meta, curves, topo.numDevices())
    {
    }

    ExecutionPlan
    makePlan()
    {
        ExecutionPlan plan;
        plan.numDevices = topo.numDevices();
        plan.allocations = alloc.allocateAll();
        plan.waves = sched.scheduleAll(plan.allocations);
        return plan;
    }

    ComputationGraph graph;
    MetaGraph meta;
    ClusterTopology topo;
    HardwareModel hw;
    ScalabilityEstimator estimator;
    std::vector<ScalingCurve> curves;
    ResourceAllocator alloc;
    WavefrontScheduler sched;
};

TEST_F(SchedulerFixture, ScheduleSatisfiesAllInvariants)
{
    ExecutionPlan plan = makePlan();
    plan.validate(meta); // panics on violation
    EXPECT_FALSE(plan.waves.empty());
}

TEST_F(SchedulerFixture, CapacityNeverExceeded)
{
    ExecutionPlan plan = makePlan();
    for (const Wave &w : plan.waves)
        EXPECT_LE(w.devicesAllocated(), topo.numDevices());
}

TEST_F(SchedulerFixture, WaveCountBoundedByTuples)
{
    // Each wave fully consumes at least one ASL-tuple, and each
    // MetaOp contributes at most two tuples (paper's complexity
    // note: #waves <= 2 x #MetaOps per level).
    ExecutionPlan plan = makePlan();
    std::size_t tuples = 0;
    for (const LevelAllocation &l : plan.allocations)
        for (const MetaOpAllocation &p : l.plans)
            tuples += p.tuples.size();
    EXPECT_LE(plan.waves.size(), tuples);
}

TEST_F(SchedulerFixture, WaveDurationIsMaxEntryDuration)
{
    ExecutionPlan plan = makePlan();
    for (const Wave &w : plan.waves) {
        double max_entry = 0;
        for (const WaveEntry &e : w.entries)
            max_entry = std::max(max_entry, e.duration);
        EXPECT_DOUBLE_EQ(w.duration, max_entry);
    }
}

TEST_F(SchedulerFixture, EntryDurationsMatchCurves)
{
    ExecutionPlan plan = makePlan();
    for (const Wave &w : plan.waves) {
        for (const WaveEntry &e : w.entries) {
            double expect = curves[e.metaOp].timeAt(e.n) *
                            static_cast<double>(e.numOps);
            EXPECT_NEAR(e.duration, expect, 1e-12);
        }
    }
}

TEST_F(SchedulerFixture, WavesOrderedByLevelWithContiguousStarts)
{
    ExecutionPlan plan = makePlan();
    double t = 0;
    std::int32_t level = 0;
    for (const Wave &w : plan.waves) {
        EXPECT_GE(w.level, level);
        level = w.level;
        EXPECT_NEAR(w.start, t, 1e-9);
        t += w.duration;
    }
}

TEST_F(SchedulerFixture, ResourceExtensionFillsIdleDevices)
{
    // With extension on, the tail waves of a level use more devices
    // than the raw allocation plan would.
    SchedulerOptions no_ext;
    no_ext.extendResources = false;
    WavefrontScheduler plain(meta, curves, topo.numDevices(), no_ext);

    auto allocs = alloc.allocateAll();
    std::vector<Wave> with_ext = sched.scheduleAll(allocs);
    std::vector<Wave> without = plain.scheduleAll(allocs);

    auto span = [](const std::vector<Wave> &waves) {
        return waves.back().start + waves.back().duration;
    };
    EXPECT_LE(span(with_ext), span(without) * (1 + 1e-9));

    std::uint32_t used_ext = 0, used_plain = 0;
    for (const Wave &w : with_ext)
        used_ext += w.devicesAllocated();
    for (const Wave &w : without)
        used_plain += w.devicesAllocated();
    EXPECT_GE(used_ext, used_plain);
}

TEST_F(SchedulerFixture, ExtendedAllocationsStayValid)
{
    ExecutionPlan plan = makePlan();
    for (const Wave &w : plan.waves)
        for (const WaveEntry &e : w.entries)
            EXPECT_TRUE(curves[e.metaOp].isValid(e.n));
}

TEST_F(SchedulerFixture, DeterministicAcrossRuns)
{
    ExecutionPlan a = makePlan();
    ExecutionPlan b = makePlan();
    ASSERT_EQ(a.waves.size(), b.waves.size());
    for (std::size_t i = 0; i < a.waves.size(); ++i) {
        ASSERT_EQ(a.waves[i].entries.size(), b.waves[i].entries.size());
        for (std::size_t j = 0; j < a.waves[i].entries.size(); ++j) {
            EXPECT_EQ(a.waves[i].entries[j].metaOp,
                      b.waves[i].entries[j].metaOp);
            EXPECT_EQ(a.waves[i].entries[j].n, b.waves[i].entries[j].n);
            EXPECT_EQ(a.waves[i].entries[j].numOps,
                      b.waves[i].entries[j].numOps);
        }
    }
}

TEST_F(SchedulerFixture, LevelsDoNotInterleave)
{
    ExecutionPlan plan = makePlan();
    // All level-0 waves precede all level-1 waves (merging
    // MetaLevels reinstates dependencies at wave boundaries).
    bool seen_level1 = false;
    for (const Wave &w : plan.waves) {
        if (w.level == 1)
            seen_level1 = true;
        if (seen_level1) {
            EXPECT_EQ(w.level, 1);
        }
    }
}

TEST_F(SchedulerFixture, EmitsReadinessEdges)
{
    // scheduleAll() annotates the readiness edges the event-driven
    // runtime dispatches on: same-stream program order at minimum
    // (all waves share stream 0 here), plus data producers.
    ExecutionPlan plan = makePlan();
    ASSERT_FALSE(plan.waves.empty());
    for (std::size_t i = 1; i < plan.waves.size(); ++i) {
        const auto &preds = plan.waves[i].predecessors;
        EXPECT_TRUE(std::binary_search(preds.begin(), preds.end(),
                                       static_cast<std::int32_t>(i - 1)))
            << "wave " << i << " misses its program-order edge";
    }
}

TEST_F(SchedulerFixture, EmptyLevelAllocationPanics)
{
    // An empty level used to dereference alloc.metaOps.front() (UB);
    // it must now die with a diagnostic instead.
    LevelAllocation empty;
    std::vector<Wave> waves;
    EXPECT_DEATH(sched.scheduleLevel(empty, 0.0, waves),
                 "empty level allocation");
}

TEST_F(SchedulerFixture, MisalignedPlansPanic)
{
    LevelAllocation bad;
    bad.metaOps = {0, 1};
    bad.plans.resize(1);
    std::vector<Wave> waves;
    EXPECT_DEATH(sched.scheduleLevel(bad, 0.0, waves),
                 "plans misaligned");
}

TEST(Scheduler, NearZeroCurveTimesStayDefined)
{
    // A curve with denormal per-op times drives t_wave / per_op
    // toward infinity; waveSliceOps() must keep slicing defined and
    // every wave covering at least one operator.
    ComputationGraph g;
    OpId prev = -1;
    for (int i = 0; i < 6; ++i) {
        OperatorDesc op;
        op.type = OpType::LM;
        op.input = {48, 128, 1024};
        op.flopsFwd = 5e10;
        op.paramBytes = 1e6;
        op.activationBytes = 1e6;
        OpId id = g.addOperator(std::move(op));
        if (prev >= 0)
            g.addEdge(prev, id);
        prev = id;
    }
    g.finalize();
    MetaGraph meta = contractGraph(g);
    ASSERT_EQ(meta.numMetaOps(), 1u);

    std::vector<ScalingCurve> denormal;
    denormal.emplace_back(std::vector<std::uint32_t>{1, 2, 4},
                          std::vector<double>{4e-320, 2e-320, 1e-320});
    WavefrontScheduler sched(meta, denormal, 4);

    LevelAllocation alloc;
    alloc.metaOps = {0};
    MetaOpAllocation plan;
    plan.metaOp = 0;
    plan.tuples = {{4, -1, 2}, {2, -1, 4}};
    alloc.plans = {plan};

    std::vector<Wave> waves;
    sched.scheduleLevel(alloc, 0.0, waves);
    std::int64_t ops = 0;
    for (const Wave &w : waves) {
        for (const WaveEntry &e : w.entries) {
            EXPECT_GE(e.numOps, 1);
            ops += e.numOps;
        }
    }
    EXPECT_EQ(ops, 6);
}

TEST(Scheduler, SingleMetaOpProducesSequentialWaves)
{
    // One MetaOp with a two-tuple allocation becomes at most two
    // waves, never concurrent with itself (Eq. 6).
    ComputationGraph g;
    OpId prev = -1;
    for (int i = 0; i < 10; ++i) {
        OperatorDesc op;
        op.type = OpType::LM;
        op.input = {48, 128, 1024};
        op.flopsFwd = 5e10;
        op.paramBytes = 1e6;
        op.activationBytes = 1e6;
        OpId id = g.addOperator(std::move(op));
        if (prev >= 0)
            g.addEdge(prev, id);
        prev = id;
    }
    g.finalize();
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = testutil::smallCluster(1);
    HardwareModel hw(topo);
    ScalabilityEstimator est(hw);
    auto curves = est.estimateAll(meta, 8);
    ResourceAllocator alloc(meta, curves, 8);
    WavefrontScheduler sched(meta, curves, 8);
    auto allocs = alloc.allocateAll();
    std::vector<Wave> waves = sched.scheduleAll(allocs);
    EXPECT_LE(waves.size(), 2u);
    std::int64_t ops = 0;
    for (const Wave &w : waves) {
        ASSERT_EQ(w.entries.size(), 1u);
        ops += w.entries[0].numOps;
    }
    EXPECT_EQ(ops, 10);
}

} // namespace
} // namespace spindle
