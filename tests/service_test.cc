/**
 * @file
 * PlanService tests: the multi-tenant front end must keep every
 * response byte-identical to a serial ExecutionPlanner::plan() on the
 * same inputs, account cross-request dedupe exactly, isolate
 * malformed requests as structured PlanErrors, and expose the
 * spider-style job lifecycle (queued/running/terminal, cancel).
 *
 * The concurrency cases double as the TSan pin of the service layer
 * (ci: tsan-planner job).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <thread>
#include <vector>

#include "baselines/spindle_system.h"
#include "planner/window_generator.h"
#include "service/plan_service.h"
#include "test_util.h"

namespace spindle {
namespace {

using testutil::fig3Workload;
using testutil::smallCluster;

PlanServiceOptions
serviceOpts(std::uint32_t workers, std::size_t queue_capacity = 256)
{
    PlanServiceOptions options;
    options.workers = workers;
    options.queueCapacity = queue_capacity;
    return options;
}

/** Exact bit-pattern double equality. */
bool
sameBits(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

/** Full byte comparison of two planner responses (waves, entries,
 *  allocations, placement) — the service equivalence contract. */
void
expectOutputsIdentical(const PlannerOutput &ref, const PlannerOutput &got)
{
    EXPECT_EQ(ref.plan.numDevices, got.plan.numDevices);
    EXPECT_TRUE(sameBits(ref.plan.estimatedSpan, got.plan.estimatedSpan));
    EXPECT_TRUE(sameBits(ref.plan.theoreticalOptimum,
                         got.plan.theoreticalOptimum));

    ASSERT_EQ(ref.plan.waves.size(), got.plan.waves.size());
    for (std::size_t i = 0; i < ref.plan.waves.size(); ++i) {
        const Wave &rw = ref.plan.waves[i];
        const Wave &gw = got.plan.waves[i];
        SCOPED_TRACE(strCat("wave ", i));
        EXPECT_EQ(rw.index, gw.index);
        EXPECT_EQ(rw.level, gw.level);
        EXPECT_EQ(rw.stream, gw.stream);
        EXPECT_EQ(rw.predecessors, gw.predecessors);
        EXPECT_TRUE(sameBits(rw.start, gw.start));
        EXPECT_TRUE(sameBits(rw.duration, gw.duration));
        ASSERT_EQ(rw.entries.size(), gw.entries.size());
        for (std::size_t j = 0; j < rw.entries.size(); ++j) {
            const WaveEntry &re = rw.entries[j];
            const WaveEntry &ge = gw.entries[j];
            SCOPED_TRACE(strCat("entry ", j));
            EXPECT_EQ(re.metaOp, ge.metaOp);
            EXPECT_EQ(re.n, ge.n);
            EXPECT_EQ(re.opBegin, ge.opBegin);
            EXPECT_EQ(re.numOps, ge.numOps);
            EXPECT_TRUE(sameBits(re.duration, ge.duration));
            EXPECT_EQ(re.devices, ge.devices);
        }
    }

    ASSERT_EQ(ref.plan.allocations.size(), got.plan.allocations.size());
    for (std::size_t k = 0; k < ref.plan.allocations.size(); ++k) {
        const LevelAllocation &ra = ref.plan.allocations[k];
        const LevelAllocation &ga = got.plan.allocations[k];
        SCOPED_TRACE(strCat("level ", k));
        EXPECT_EQ(ra.metaOps, ga.metaOps);
        EXPECT_TRUE(sameBits(ra.continuous.cStar, ga.continuous.cStar));
        ASSERT_EQ(ra.plans.size(), ga.plans.size());
        for (std::size_t p = 0; p < ra.plans.size(); ++p) {
            EXPECT_EQ(ra.plans[p].metaOp, ga.plans[p].metaOp);
            ASSERT_EQ(ra.plans[p].tuples.size(),
                      ga.plans[p].tuples.size());
            for (std::size_t t = 0; t < ra.plans[p].tuples.size(); ++t) {
                EXPECT_EQ(ra.plans[p].tuples[t].n,
                          ga.plans[p].tuples[t].n);
                EXPECT_EQ(ra.plans[p].tuples[t].l,
                          ga.plans[p].tuples[t].l);
            }
        }
    }

    EXPECT_EQ(ref.placement.usedMemoryFallback,
              got.placement.usedMemoryFallback);
    EXPECT_TRUE(sameBits(ref.placement.estimatedCommSeconds,
                         got.placement.estimatedCommSeconds));
    ASSERT_EQ(ref.placement.peakBytes.size(),
              got.placement.peakBytes.size());
    for (std::size_t d = 0; d < ref.placement.peakBytes.size(); ++d)
        EXPECT_TRUE(sameBits(ref.placement.peakBytes[d],
                             got.placement.peakBytes[d]))
            << "device " << d;
}

// ===================================================================
// Equivalence: concurrent responses == serial plan()
// ===================================================================

TEST(PlanService, ConcurrentResponsesMatchSerialPlan)
{
    // A mixed multi-tenant load: distinct workloads interleaved and
    // submitted from several client threads at once, against a
    // 4-worker service. Every response must be byte-identical to the
    // serial reference plan of that workload.
    std::vector<ComputationGraph> graphs;
    graphs.push_back(fig3Workload());
    graphs.push_back(buildMultitaskClip({.numTasks = 3}));
    graphs.push_back(buildOfasys({.numTasks = 3}));
    graphs.push_back(fig3Workload(/*batch=*/64));
    std::vector<MetaGraph> metas;
    metas.reserve(graphs.size());
    for (const ComputationGraph &g : graphs)
        metas.push_back(contractGraph(g));

    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);

    // Serial references, planned before the service exists.
    const ExecutionPlanner reference(hw);
    std::vector<PlannerOutput> want;
    want.reserve(metas.size());
    for (const MetaGraph &meta : metas)
        want.push_back(reference.plan(meta));

    PlanService service(hw, serviceOpts(4));
    constexpr std::size_t kClients = 3;
    constexpr std::size_t kRounds = 2;
    std::vector<std::vector<PlanJobHandle>> per_client(kClients);
    {
        std::vector<std::thread> clients;
        clients.reserve(kClients);
        for (std::size_t c = 0; c < kClients; ++c)
            clients.emplace_back([&, c] {
                for (std::size_t r = 0; r < kRounds; ++r)
                    for (const MetaGraph &meta : metas)
                        per_client[c].push_back(service.submit(meta));
            });
        for (std::thread &t : clients)
            t.join();
    }
    service.drain();

    for (std::size_t c = 0; c < kClients; ++c) {
        ASSERT_EQ(per_client[c].size(), kRounds * metas.size());
        for (std::size_t i = 0; i < per_client[c].size(); ++i) {
            SCOPED_TRACE(strCat("client ", c, " request ", i));
            const PlanJobHandle &job = per_client[c][i];
            ASSERT_EQ(job->wait(), PlanJobState::Done);
            expectOutputsIdentical(want[i % metas.size()], job->result());
        }
    }

    const PlanServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, kClients * kRounds * metas.size());
    EXPECT_EQ(stats.completed, stats.submitted);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.cancelled, 0u);
    // Each distinct workload misses at most once; every repeat is a
    // full hit (racing first-misses may compute in parallel, so the
    // floor is what dedupe guarantees, not an exact count).
    EXPECT_GE(stats.dedupedFullHits,
              stats.submitted - metas.size() * service.workers());
    EXPECT_GT(stats.cache.fullHits, 0u);
}

TEST(PlanService, MultiTenantTopologiesKeepContextsApart)
{
    // Two tenants with different cluster shapes submit the same
    // workload: responses must match the serial plan on each tenant's
    // own cluster, and the shared cache must never leak one tenant's
    // plan to the other (distinct contexts).
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);

    ClusterTopology topo_a = smallCluster(2);
    ClusterTopology topo_b = smallCluster(1);
    HardwareModel hw_a(topo_a);
    HardwareModel hw_b(topo_b);

    PlannerOutput want_a = ExecutionPlanner(hw_a).plan(meta);
    PlannerOutput want_b = ExecutionPlanner(hw_b).plan(meta);
    ASSERT_FALSE(sameBits(want_a.plan.estimatedSpan,
                          want_b.plan.estimatedSpan));

    PlanService service(hw_a, serviceOpts(2));
    PlanJobHandle ja = service.submit(meta);            // default tenant
    PlanJobHandle jb = service.submit(meta, hw_b);      // explicit tenant
    ASSERT_EQ(ja->wait(), PlanJobState::Done);
    ASSERT_EQ(jb->wait(), PlanJobState::Done);
    expectOutputsIdentical(want_a, ja->result());
    expectOutputsIdentical(want_b, jb->result());
}

// ===================================================================
// Dedupe accounting
// ===================================================================

TEST(PlanService, DedupeFullHitAccountingIsExact)
{
    // Warm the cache with one request, then submit 7 identical ones
    // concurrently: every one of them must be served as a full hit
    // (dedupe), byte-identical to the serial reference.
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    PlannerOutput want = ExecutionPlanner(hw).plan(meta);

    PlanService service(hw, serviceOpts(4));
    ASSERT_EQ(service.submit(meta)->wait(), PlanJobState::Done);
    EXPECT_EQ(service.stats().dedupedFullHits, 0u);

    std::vector<PlanJobHandle> jobs;
    for (int i = 0; i < 7; ++i)
        jobs.push_back(service.submit(meta));
    service.drain();
    for (const PlanJobHandle &job : jobs) {
        ASSERT_EQ(job->status(), PlanJobState::Done);
        EXPECT_TRUE(job->result().replan.fullHit);
        expectOutputsIdentical(want, job->result());
    }

    const PlanServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 8u);
    EXPECT_EQ(stats.completed, 8u);
    EXPECT_EQ(stats.dedupedFullHits, 7u);
    EXPECT_EQ(stats.cache.fullHits, 7u);
    EXPECT_EQ(stats.cache.misses, 1u);
}

// ===================================================================
// Job lifecycle
// ===================================================================

TEST(PlanService, CancelAndStatusLifecycle)
{
    // One worker, one slow request occupying it: a second queued
    // request can be cancelled before it runs, consumes its slot
    // without planning, and reads back as Cancelled.
    ComputationGraph heavy_g = buildMultitaskClip({.numTasks = 10});
    MetaGraph heavy = contractGraph(heavy_g);
    ComputationGraph light_g = fig3Workload();
    MetaGraph light = contractGraph(light_g);

    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    PlanService service(hw, serviceOpts(1));

    PlanJobHandle busy = service.submit(heavy);
    PlanJobHandle victim = service.submit(light);
    EXPECT_GT(victim->id(), busy->id());

    // The single worker is planning `busy`; `victim` is still queued.
    EXPECT_TRUE(victim->cancel());
    EXPECT_EQ(victim->status(), PlanJobState::Cancelled);
    EXPECT_FALSE(victim->cancel()) << "second cancel must report false";

    EXPECT_EQ(busy->wait(), PlanJobState::Done);
    EXPECT_FALSE(busy->cancel()) << "terminal jobs cannot be cancelled";
    EXPECT_EQ(victim->wait(), PlanJobState::Cancelled);

    service.drain();
    const PlanServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.cancelled, 1u);

    EXPECT_STREQ(toString(PlanJobState::Queued), "Queued");
    EXPECT_STREQ(toString(PlanJobState::Running), "Running");
    EXPECT_STREQ(toString(PlanJobState::Done), "Done");
    EXPECT_STREQ(toString(PlanJobState::Failed), "Failed");
    EXPECT_STREQ(toString(PlanJobState::Cancelled), "Cancelled");
}

TEST(PlanService, TrySubmitRejectsOnFullQueue)
{
    // Capacity-1 queue behind a single busy worker: the blocking
    // submit parks until the worker frees a slot, trySubmit refuses
    // immediately and counts the rejection.
    ComputationGraph heavy_g = buildMultitaskClip({.numTasks = 10});
    MetaGraph heavy = contractGraph(heavy_g);
    ComputationGraph light_g = fig3Workload();
    MetaGraph light = contractGraph(light_g);

    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    PlanService service(hw, serviceOpts(1, 1));

    PlanJobHandle busy = service.submit(heavy);   // popped by the worker
    PlanJobHandle queued = service.submit(light); // fills the queue
    PlanJobHandle refused = service.trySubmit(light);
    EXPECT_EQ(refused, nullptr);

    service.drain();
    EXPECT_EQ(busy->status(), PlanJobState::Done);
    EXPECT_EQ(queued->status(), PlanJobState::Done);
    const PlanServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.rejected, 1u);
}

TEST(PlanService, SubmitBatchReturnsHandlesInOrder)
{
    ComputationGraph g0 = fig3Workload();
    ComputationGraph g1 = buildOfasys({.numTasks = 2});
    MetaGraph m0 = contractGraph(g0);
    MetaGraph m1 = contractGraph(g1);

    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    PlannerOutput want0 = ExecutionPlanner(hw).plan(m0);
    PlannerOutput want1 = ExecutionPlanner(hw).plan(m1);

    PlanService service(hw, serviceOpts(2));
    std::vector<PlanJobHandle> jobs =
        service.submitBatch({&m0, &m1, &m0});
    ASSERT_EQ(jobs.size(), 3u);
    EXPECT_LT(jobs[0]->id(), jobs[1]->id());
    EXPECT_LT(jobs[1]->id(), jobs[2]->id());
    service.drain();
    expectOutputsIdentical(want0, jobs[0]->result());
    expectOutputsIdentical(want1, jobs[1]->result());
    expectOutputsIdentical(want0, jobs[2]->result());
}

// ===================================================================
// Failure isolation
// ===================================================================

TEST(PlanService, MalformedRequestFailsAloneWithStructuredError)
{
    // A tenant cluster spec with an empty island is a user error that
    // used to exit the process inside ClusterTopology's constructor.
    // Through the service it must fail only its own request — with a
    // PlanError naming the request — while concurrent good requests
    // complete normally.
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    PlannerOutput want = ExecutionPlanner(hw).plan(meta);

    PlanService service(hw, serviceOpts(2));

    ClusterConfig malformed;
    malformed.islands.resize(2);
    malformed.islands[0].devices = {0, 1, 2, 3};
    malformed.islands[1].devices = {}; // empty island: user error

    std::vector<PlanJobHandle> good;
    for (int i = 0; i < 3; ++i)
        good.push_back(service.submit(meta));
    PlanJobHandle bad = service.submitWithCluster(meta, malformed);
    for (int i = 0; i < 3; ++i)
        good.push_back(service.submit(meta));
    service.drain();

    ASSERT_EQ(bad->status(), PlanJobState::Failed);
    EXPECT_EQ(bad->error().requestId, bad->id());
    EXPECT_FALSE(bad->error().message.empty());
    for (const PlanJobHandle &job : good) {
        ASSERT_EQ(job->status(), PlanJobState::Done);
        expectOutputsIdentical(want, job->result());
    }

    const PlanServiceStats stats = service.stats();
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.completed, 6u);
}

TEST(PlanService, DuplicateDeviceIdsFailTheRequestOnly)
{
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    PlanService service(hw, serviceOpts(2));

    ClusterConfig dup;
    dup.islands.resize(2);
    dup.islands[0].devices = {0, 1, 2, 3};
    dup.islands[1].devices = {3, 4, 5, 6}; // device 3 in two islands

    PlanJobHandle bad = service.submitWithCluster(meta, dup);
    PlanJobHandle ok = service.submit(meta);
    EXPECT_EQ(bad->wait(), PlanJobState::Failed);
    EXPECT_EQ(ok->wait(), PlanJobState::Done);
}

TEST(PlanService, EmptyGraphFailsWithValidationError)
{
    // A workload that contracted to nothing has no levels to plan;
    // the service reports it instead of tripping the scheduler's
    // internal checks.
    WorkloadBuilder builder;
    ComputationGraph base = builder.build(); // zero tasks, zero ops
    MetaGraph empty = contractGraph(base);
    ASSERT_EQ(empty.numLevels(), 0u);
    ClusterTopology topo = smallCluster(1);
    HardwareModel hw(topo);

    PlanService service(hw, serviceOpts(1));
    PlanJobHandle job = service.submit(empty);
    ASSERT_EQ(job->wait(), PlanJobState::Failed);
    EXPECT_NE(job->error().message.find("empty"), std::string::npos)
        << job->error().message;
    // Counters finalize with drain(), not with wait(): a waiter can
    // observe the terminal job before the service has accounted it.
    service.drain();
    EXPECT_EQ(service.stats().failed, 1u);
}

TEST(PlanService, WellFormedClusterRequestPlansOnTenantCluster)
{
    // The happy path of submitWithCluster: the worker-materialized
    // topology yields the same bytes as planning on a caller-built
    // HardwareModel of the same spec.
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);

    ClusterConfig tenant_cfg;
    tenant_cfg.numNodes = 1;
    tenant_cfg.gpusPerNode = 8;
    ClusterTopology tenant_topo(tenant_cfg);
    HardwareModel tenant_hw(tenant_topo);
    PlannerOutput want = ExecutionPlanner(tenant_hw).plan(meta);

    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    PlanService service(hw, serviceOpts(2));
    PlanJobHandle job = service.submitWithCluster(meta, tenant_cfg);
    ASSERT_EQ(job->wait(), PlanJobState::Done);
    expectOutputsIdentical(want, job->result());
}

// ===================================================================
// Accessor misuse + options normalization
// ===================================================================

TEST(PlanServiceDeathTest, ResultOnNonDoneJobPanics)
{
    // An empty graph deterministically Fails; reading result() off a
    // Failed job is caller error and must panic, not return garbage.
    WorkloadBuilder builder;
    ComputationGraph base = builder.build();
    MetaGraph empty = contractGraph(base);
    ClusterTopology topo = smallCluster(1);
    HardwareModel hw(topo);
    EXPECT_DEATH(
        {
            PlanService service(hw, serviceOpts(1));
            PlanJobHandle job = service.submit(empty);
            job->wait();
            (void)job->result();
        },
        "not Done");
}

TEST(PlanService, PerRequestPlannerThreadsForcedToOne)
{
    ClusterTopology topo = smallCluster(1);
    HardwareModel hw(topo);
    PlanServiceOptions options;
    options.workers = 2;
    options.planner.threads = 8; // service overrides with a warning
    PlanService service(hw, options);
    EXPECT_EQ(service.plannerOptions().threads, 1u);
    EXPECT_EQ(service.plannerOptions().cache, &service.cache());
    EXPECT_EQ(service.workers(), 2u);
}

// ===================================================================
// SpindleSystem::buildPlan re-entrancy tripwire (satellite bugfix)
// ===================================================================

/** A hostile window generator that re-enters buildPlan on the same
 *  SpindleSystem from inside placement — the exact overlapping use
 *  the atomic in-use guard exists to catch. Late-bound because the
 *  system is constructed with options that already reference it. */
class ReentrantGenerator final : public WindowGenerator
{
  public:
    const SpindleSystem *sys = nullptr;
    const MetaGraph *meta = nullptr;

    const char *name() const override { return "Reentrant"; }

    void
    generate(const WindowGenContext &ctx, CandidateWindows &out) const
        override
    {
        (void)sys->buildPlan(*meta); // must panic: overlapping call
        ContiguousRunsGenerator fallback;
        fallback.generate(ctx, out);
    }
};

TEST(PlanServiceDeathTest, BuildPlanReentryPanicsWithActionableMessage)
{
    // Deterministic single-threaded re-entry: placement calls the
    // generator, the generator calls buildPlan on the same system.
    // Before the guard this silently raced on the cached planner.
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = smallCluster(1);
    HardwareModel hw(topo);

    EXPECT_DEATH(
        {
            ReentrantGenerator evil;
            PlannerOptions options;
            options.placement.generator = &evil;
            SpindleSystem sys(hw, options);
            evil.sys = &sys;
            evil.meta = &meta;
            (void)sys.buildPlan(meta);
        },
        "overlapping call");
}

// ===================================================================
// Shared-cache stress (TSan pin for the service layer)
// ===================================================================

TEST(PlanService, ManyClientsManyWorkersStress)
{
    // 8 client threads x 4 requests against 4 workers, two workload
    // shapes: exercises admission, the shared cache, and job
    // completion under real contention. Responses spot-checked for
    // byte identity.
    std::vector<ComputationGraph> graphs;
    graphs.push_back(fig3Workload());
    graphs.push_back(buildOfasys({.numTasks = 2}));
    std::vector<MetaGraph> metas;
    for (const ComputationGraph &g : graphs)
        metas.push_back(contractGraph(g));

    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    const ExecutionPlanner reference(hw);
    std::vector<PlannerOutput> want;
    for (const MetaGraph &meta : metas)
        want.push_back(reference.plan(meta));

    PlanService service(hw, serviceOpts(4, 64));
    constexpr std::size_t kClients = 8;
    constexpr std::size_t kPerClient = 4;
    std::vector<std::vector<PlanJobHandle>> handles(kClients);
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c)
        clients.emplace_back([&, c] {
            for (std::size_t r = 0; r < kPerClient; ++r)
                handles[c].push_back(
                    service.submit(metas[(c + r) % metas.size()]));
        });
    for (std::thread &t : clients)
        t.join();
    service.drain();

    for (std::size_t c = 0; c < kClients; ++c)
        for (std::size_t r = 0; r < kPerClient; ++r) {
            SCOPED_TRACE(strCat("client ", c, " request ", r));
            ASSERT_EQ(handles[c][r]->status(), PlanJobState::Done);
            expectOutputsIdentical(want[(c + r) % metas.size()],
                                   handles[c][r]->result());
        }
    EXPECT_EQ(service.stats().completed, kClients * kPerClient);
}

} // namespace
} // namespace spindle
