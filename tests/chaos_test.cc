/**
 * @file
 * Chaos suite: randomized fault injection and elastic recovery.
 *
 * The load-bearing guarantee is enforced by the substrate itself —
 * Simulator::occupy() aborts the process if any reservation ever
 * touches a failed device — so every schedule that *completes* here
 * proves no dead device was scheduled. On top of that the suite
 * checks, per recovery episode, that the accepted plan validates,
 * targets exactly the surviving topology, maps back to live devices
 * only, and (on a sampled subset) is byte-identical to a
 * from-scratch plan() of the surviving cluster.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>

#include "runtime/recovery.h"
#include "test_util.h"

namespace spindle {
namespace {

using testutil::fig3Workload;
using testutil::smallCluster;

/** Byte-level plan comparison (spans, wave shapes, device sets). */
void
expectSamePlanBytes(const ExecutionPlan &a, const ExecutionPlan &b)
{
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.estimatedSpan),
              std::bit_cast<std::uint64_t>(b.estimatedSpan));
    ASSERT_EQ(a.waves.size(), b.waves.size());
    for (std::size_t w = 0; w < a.waves.size(); ++w) {
        ASSERT_EQ(a.waves[w].entries.size(), b.waves[w].entries.size());
        for (std::size_t i = 0; i < a.waves[w].entries.size(); ++i) {
            const WaveEntry &x = a.waves[w].entries[i];
            const WaveEntry &y = b.waves[w].entries[i];
            EXPECT_EQ(x.metaOp, y.metaOp);
            EXPECT_EQ(x.n, y.n);
            EXPECT_EQ(x.devices, y.devices);
            EXPECT_EQ(std::bit_cast<std::uint64_t>(x.duration),
                      std::bit_cast<std::uint64_t>(y.duration));
        }
    }
}

/** Shared checks on one accepted recovery episode. */
void
checkEpisode(const MetaGraph &meta, const RecoveryOutcome &ep,
             const PlannerOutput &out, const ClusterTopology &surviving,
             const DegradedTopology &deg)
{
    out.plan.validate(meta);
    EXPECT_EQ(out.plan.numDevices, surviving.numDevices());
    ASSERT_EQ(deg.newToOld.size(), surviving.numDevices());
    EXPECT_EQ(ep.survivingDevices, surviving.numDevices());

    // Every placed device maps back to an original id that is alive.
    for (const Wave &w : out.plan.waves) {
        for (const WaveEntry &e : w.entries) {
            for (DeviceId d : e.devices) {
                ASSERT_LT(d, surviving.numDevices());
                const DeviceId orig = deg.newToOld[d];
                EXPECT_FALSE(std::binary_search(ep.cumulativeDead.begin(),
                                                ep.cumulativeDead.end(),
                                                orig))
                    << "plan schedules dead device " << orig;
            }
        }
    }

    // Recovery charged real downtime and recorded the lost work.
    EXPECT_GT(ep.downtimeSeconds, 0);
    EXPECT_GE(ep.downtimeSeconds,
              ep.detectionSeconds + ep.restartSeconds);
    EXPECT_GE(ep.lostWorkSeconds, 0);
    EXPECT_GE(ep.attempts, 1u);
}

TEST(Chaos, HundredSeededFailureSchedulesRecover)
{
    // 64 GPUs (8 islands x 8), 100 seeds, k in {1..8} random device
    // kills folded into one failure batch per seed. One shared plan
    // cache across all seeds: recurring degraded shapes re-hit, the
    // way a long-lived cluster amortizes recovery planning.
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = smallCluster(8);
    HardwareModel hw(topo);

    PlanCache cache;
    PlannerOptions popts;
    popts.cache = &cache;

    std::uint32_t episodes = 0;
    double ratio_sum = 0;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        ChaosOptions copts;
        copts.iterations = 1;
        copts.killsPerIteration =
            1 + static_cast<std::uint32_t>(seed % 8);
        copts.seed = seed;
        const FaultPlan faults = ChaosInjector(copts).generate(topo);
        ASSERT_FALSE(faults.empty());

        RecoveryCoordinator coord(hw, meta, popts);
        coord.setEpisodeObserver([&](const RecoveryOutcome &ep,
                                     const PlannerOutput &out,
                                     const ClusterTopology &surviving,
                                     const DegradedTopology &deg) {
            ++episodes;
            checkEpisode(meta, ep, out, surviving, deg);

            // Graceful degradation: losing at most 16 of 64 devices
            // must not crater throughput.
            EXPECT_GT(ep.iterationSecondsBefore, 0);
            EXPECT_GT(ep.iterationSecondsAfter, 0);
            EXPECT_LE(ep.iterationSecondsAfter,
                      ep.iterationSecondsBefore * 3.0);
            ratio_sum +=
                ep.iterationSecondsAfter / ep.iterationSecondsBefore;

            // The recovery replan — cache-assisted or not — is
            // byte-identical to a from-scratch plan() of the
            // surviving cluster.
            HardwareModel fresh_hw(surviving, hw.params());
            ExecutionPlanner fresh(fresh_hw);
            expectSamePlanBytes(fresh.plan(meta).plan, out.plan);
        });

        const FaultedRunResult r = coord.run(faults, 1);
        EXPECT_EQ(r.iterations.size(), 1u);
        EXPECT_GT(r.totalSeconds, 0);
    }

    // Every seed kills devices mid-iteration, so every seed recovers.
    EXPECT_EQ(episodes, 100u);
    // Mean slowdown across all episodes stays mild.
    EXPECT_LE(ratio_sum / episodes, 1.75);
    // The shared cache actually amortized recurring shapes.
    EXPECT_GT(cache.stats().fullHits, 0u);
}

TEST(Chaos, IslandFailuresRecover)
{
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = smallCluster(4);
    HardwareModel hw(topo);

    std::uint32_t episodes = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        ChaosOptions copts;
        copts.iterations = 2;
        copts.killsPerIteration = 1;
        copts.wholeIslands = true;
        copts.seed = seed;
        const FaultPlan faults = ChaosInjector(copts).generate(topo);

        RecoveryCoordinator coord(hw, meta);
        coord.setEpisodeObserver([&](const RecoveryOutcome &ep,
                                     const PlannerOutput &out,
                                     const ClusterTopology &surviving,
                                     const DegradedTopology &deg) {
            ++episodes;
            checkEpisode(meta, ep, out, surviving, deg);
            // Whole islands died: the surviving graph shrank by
            // whole multiples of 8 and dropped the emptied islands.
            EXPECT_EQ(ep.cumulativeDead.size() % 8, 0u);
            EXPECT_EQ(surviving.numIslands() + deg.droppedIslands.size(),
                      topo.numIslands());
        });
        const FaultedRunResult r = coord.run(faults, 2);
        EXPECT_EQ(r.iterations.size(), 2u);
    }
    EXPECT_GT(episodes, 0u);
}

TEST(Chaos, FlappingShapeIsACacheFullHit)
{
    // Kill device 3, let it rejoin, kill it again: the second
    // episode's degraded shape recurs, so its replan is served from
    // the cache (the recovery-latency win bench_failure_recovery
    // measures at scale).
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);

    FaultPlan faults;
    faults.events.push_back({0, 0.5, FaultKind::DeviceFail, 3});
    faults.events.push_back({1, 0.0, FaultKind::DeviceJoin, 3});
    faults.events.push_back({2, 0.5, FaultKind::DeviceFail, 3});

    RecoveryCoordinator coord(hw, meta);
    const FaultedRunResult r = coord.run(faults, 3);
    ASSERT_EQ(r.recovery.episodes, 2u);
    EXPECT_EQ(r.recovery.rejoinedDevices, 1u);
    EXPECT_FALSE(r.recovery.outcomes[0].replan.fullHit);
    EXPECT_TRUE(r.recovery.outcomes[1].replan.fullHit);
    // Same shape -> same plan, byte for byte.
    EXPECT_EQ(r.recovery.outcomes[0].survivingDevices,
              r.recovery.outcomes[1].survivingDevices);
    EXPECT_EQ(r.iterations.size(), 3u);
}

TEST(Chaos, IdleDeviceDeathDoesNotAbortTheIteration)
{
    // The planner's plan occupies the whole 16-GPU cluster, so kill
    // a device *after* the iteration drained instead: the fault
    // fires on a completed iteration and must not halt or charge
    // lost work.
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    ExecutionPlanner planner(hw);
    const PlannerOutput out = planner.plan(meta);
    Engine engine(hw);

    const double makespan = engine.run(meta, out.plan).iterationSeconds;
    const FaultedIterationResult fr = engine.runWithFaults(
        meta, out.plan, {{makespan * 2, {0}}});
    EXPECT_TRUE(fr.completed);
    EXPECT_EQ(fr.failedDevices, DeviceSet{0});
    EXPECT_EQ(fr.lostWorkSeconds, 0);
    EXPECT_EQ(fr.abortedReservations, 0u);
    EXPECT_DOUBLE_EQ(fr.result.iterationSeconds, makespan);
}

TEST(Chaos, MidIterationFailureAbortsAndAccountsLostWork)
{
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);
    ExecutionPlanner planner(hw);
    const PlannerOutput out = planner.plan(meta);
    Engine engine(hw);

    const double makespan = engine.run(meta, out.plan).iterationSeconds;
    const double t_f = makespan / 2;
    const FaultedIterationResult fr =
        engine.runWithFaults(meta, out.plan, {{t_f, {0, 1}}});
    ASSERT_FALSE(fr.completed);
    EXPECT_DOUBLE_EQ(fr.failureTime, t_f);
    EXPECT_EQ(fr.failedDevices, (DeviceSet{0, 1}));
    EXPECT_GT(fr.lostWorkSeconds, 0);
    EXPECT_GT(fr.abortedReservations, 0u);
    // The truncated timeline never reaches past the failure.
    EXPECT_LE(fr.result.timeline.makespan(), t_f);
    EXPECT_DOUBLE_EQ(fr.result.iterationSeconds, t_f);
    // Lost work is bounded by 16 devices x the failed span.
    EXPECT_LE(fr.lostWorkSeconds, t_f * topo.numDevices());
}

TEST(Chaos, RecoveryStatsAddUp)
{
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);
    ClusterTopology topo = smallCluster(2);
    HardwareModel hw(topo);

    EngineOptions eopts;
    eopts.recovery.detectionSeconds = 0.25;
    eopts.recovery.restartSeconds = 1.0;

    FaultPlan faults;
    faults.events.push_back({0, 0.4, FaultKind::DeviceFail, 5});

    RecoveryCoordinator coord(hw, meta, {}, {}, eopts);
    const FaultedRunResult r = coord.run(faults, 2);
    ASSERT_EQ(r.recovery.episodes, 1u);
    const RecoveryOutcome &ep = r.recovery.outcomes[0];
    EXPECT_EQ(ep.iteration, 0u);
    EXPECT_EQ(ep.failedDevices, DeviceSet{5});
    EXPECT_EQ(ep.cumulativeDead, DeviceSet{5});
    EXPECT_EQ(ep.survivingDevices, 15u);
    EXPECT_DOUBLE_EQ(ep.detectionSeconds, 0.25);
    // First attempt fit: exactly one restart charge, no backoff.
    EXPECT_EQ(ep.attempts, 1u);
    EXPECT_DOUBLE_EQ(ep.restartSeconds, 1.0);
    EXPECT_FALSE(ep.usedColdPlan);
    EXPECT_FALSE(ep.usedMemoryFallback);
    EXPECT_TRUE(ep.fit);
    EXPECT_GT(ep.replanSeconds, 0);
    EXPECT_DOUBLE_EQ(ep.downtimeSeconds, ep.detectionSeconds +
                                             ep.restartSeconds +
                                             ep.replanSeconds);
    EXPECT_DOUBLE_EQ(r.recovery.totalDowntimeSeconds,
                     ep.downtimeSeconds);
    EXPECT_GT(ep.lostWorkSeconds, 0);

    // Wall clock covers: the aborted fraction, the stall, the
    // replanned rerun, and the clean second iteration.
    ASSERT_EQ(r.iterations.size(), 2u);
    const double expected = ep.failureTime + ep.downtimeSeconds +
                            r.iterations[0].iterationSeconds +
                            r.iterations[1].iterationSeconds;
    EXPECT_NEAR(r.totalSeconds, expected, 1e-9);
}

TEST(Chaos, ChaosInjectorIsDeterministicPerSeed)
{
    ClusterTopology topo = smallCluster(8);
    ChaosOptions copts;
    copts.iterations = 3;
    copts.killsPerIteration = 4;
    copts.seed = 42;
    const FaultPlan a = ChaosInjector(copts).generate(topo);
    const FaultPlan b = ChaosInjector(copts).generate(topo);
    ASSERT_EQ(a.events.size(), b.events.size());
    ASSERT_EQ(a.events.size(), 12u);
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].iteration, b.events[i].iteration);
        EXPECT_EQ(a.events[i].id, b.events[i].id);
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_DOUBLE_EQ(a.events[i].fraction, b.events[i].fraction);
    }
    copts.seed = 43;
    const FaultPlan c = ChaosInjector(copts).generate(topo);
    bool differs = false;
    for (std::size_t i = 0; i < c.events.size() && !differs; ++i)
        differs = c.events[i].id != a.events[i].id;
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace spindle
