/**
 * @file
 * Unit tests for graph/: DAG construction, topological ordering,
 * graph contraction (§3.1 criteria) and MetaLevel assignment.
 */

#include <gtest/gtest.h>

#include <set>

#include "graph/contraction.h"
#include "test_util.h"

namespace spindle {
namespace {

using testutil::fig3Workload;

OperatorDesc
opOf(OpType type, TensorShape shape, double flops = 1e9)
{
    OperatorDesc op;
    op.type = type;
    op.input = shape;
    op.flopsFwd = flops;
    op.paramBytes = 1e6;
    op.activationBytes = 1e6;
    return op;
}

TEST(ComputationGraph, AssignsDenseIds)
{
    ComputationGraph g;
    EXPECT_EQ(g.addOperator(opOf(OpType::Text, {1, 2, 3})), 0);
    EXPECT_EQ(g.addOperator(opOf(OpType::Text, {1, 2, 3})), 1);
    EXPECT_EQ(g.numOps(), 2u);
}

TEST(ComputationGraph, TopoOrderRespectsEdges)
{
    ComputationGraph g;
    OpId a = g.addOperator(opOf(OpType::Text, {1, 2, 3}));
    OpId b = g.addOperator(opOf(OpType::Text, {1, 2, 3}));
    OpId c = g.addOperator(opOf(OpType::Text, {1, 2, 3}));
    g.addEdge(a, c);
    g.addEdge(b, c);
    g.finalize();

    const auto &topo = g.topoOrder();
    ASSERT_EQ(topo.size(), 3u);
    auto pos = [&](OpId id) {
        return std::find(topo.begin(), topo.end(), id) - topo.begin();
    };
    EXPECT_LT(pos(a), pos(c));
    EXPECT_LT(pos(b), pos(c));
}

TEST(ComputationGraph, DetectsCycle)
{
    ComputationGraph g;
    OpId a = g.addOperator(opOf(OpType::Text, {1, 2, 3}));
    OpId b = g.addOperator(opOf(OpType::Text, {1, 2, 3}));
    g.addEdge(a, b);
    g.addEdge(b, a);
    EXPECT_EXIT(g.finalize(), ::testing::ExitedWithCode(1), "cycle");
}

TEST(ComputationGraph, RejectsSelfLoop)
{
    ComputationGraph g;
    OpId a = g.addOperator(opOf(OpType::Text, {1, 2, 3}));
    EXPECT_EXIT(g.addEdge(a, a), ::testing::ExitedWithCode(1),
                "self-loop");
}

TEST(ComputationGraph, DegreesMatchEdges)
{
    ComputationGraph g = fig3Workload();
    std::size_t in_total = 0, out_total = 0;
    for (const auto &op : g.ops()) {
        in_total += g.inDegree(op.id);
        out_total += g.outDegree(op.id);
    }
    EXPECT_EQ(in_total, g.numEdges());
    EXPECT_EQ(out_total, g.numEdges());
}

TEST(ComputationGraph, UniqueParamBytesCountsSharedOnce)
{
    ComputationGraph g = fig3Workload();
    double raw = 0;
    for (const auto &op : g.ops())
        raw += op.paramBytes;
    // The shared text encoder and LM appear in both tasks, so the
    // deduplicated total must be strictly smaller than the raw sum.
    EXPECT_LT(g.totalUniqueParamBytes(), raw);
    EXPECT_GT(g.totalUniqueParamBytes(), 0);
}

TEST(Contraction, FusesUniformChain)
{
    ComputationGraph g;
    OpId prev = g.addOperator(opOf(OpType::Text, {4, 8, 16}));
    for (int i = 0; i < 5; ++i) {
        OpId next = g.addOperator(opOf(OpType::Text, {4, 8, 16}));
        g.addEdge(prev, next);
        prev = next;
    }
    g.finalize();
    MetaGraph meta = contractGraph(g);
    ASSERT_EQ(meta.numMetaOps(), 1u);
    EXPECT_EQ(meta.metaOp(0).numOps(), 6);
    EXPECT_EQ(meta.numLevels(), 1u);
}

TEST(Contraction, TypeChangeBreaksChain)
{
    ComputationGraph g;
    OpId a = g.addOperator(opOf(OpType::Text, {4, 8, 16}));
    OpId b = g.addOperator(opOf(OpType::Vision, {4, 8, 16}));
    g.addEdge(a, b);
    g.finalize();
    MetaGraph meta = contractGraph(g);
    EXPECT_EQ(meta.numMetaOps(), 2u);
}

TEST(Contraction, ShapeChangeBreaksChain)
{
    ComputationGraph g;
    OpId a = g.addOperator(opOf(OpType::Text, {4, 8, 16}));
    OpId b = g.addOperator(opOf(OpType::Text, {4, 8, 32}));
    g.addEdge(a, b);
    g.finalize();
    MetaGraph meta = contractGraph(g);
    EXPECT_EQ(meta.numMetaOps(), 2u);
}

TEST(Contraction, BranchBreaksChain)
{
    // a -> b, a -> c: out-degree(a) == 2, so nothing merges with a.
    ComputationGraph g;
    OpId a = g.addOperator(opOf(OpType::Text, {4, 8, 16}));
    OpId b = g.addOperator(opOf(OpType::Text, {4, 8, 16}));
    OpId c = g.addOperator(opOf(OpType::Text, {4, 8, 16}));
    g.addEdge(a, b);
    g.addEdge(a, c);
    g.finalize();
    MetaGraph meta = contractGraph(g);
    EXPECT_EQ(meta.numMetaOps(), 3u);
}

TEST(Contraction, JoinBreaksChain)
{
    // a -> c, b -> c: in-degree(c) == 2 blocks merging into c.
    ComputationGraph g;
    OpId a = g.addOperator(opOf(OpType::Text, {4, 8, 16}));
    OpId b = g.addOperator(opOf(OpType::Text, {4, 8, 16}));
    OpId c = g.addOperator(opOf(OpType::Text, {4, 8, 16}));
    g.addEdge(a, c);
    g.addEdge(b, c);
    g.finalize();
    MetaGraph meta = contractGraph(g);
    EXPECT_EQ(meta.numMetaOps(), 3u);
}

TEST(Contraction, CoversEveryOperatorExactlyOnce)
{
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);
    std::set<OpId> seen;
    for (const MetaOp &m : meta.metaOps())
        for (OpId op : m.ops)
            EXPECT_TRUE(seen.insert(op).second) << "op in two MetaOps";
    EXPECT_EQ(seen.size(), g.numOps());
}

TEST(Contraction, MetaOfIsConsistent)
{
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);
    for (const MetaOp &m : meta.metaOps())
        for (OpId op : m.ops)
            EXPECT_EQ(meta.metaOf(op), m.id);
}

TEST(Contraction, Fig3WorkloadShape)
{
    // 2 tasks x (encoder + text + LM) = 6 MetaOps in 2 levels:
    // encoders at level 0, LMs at level 1.
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);
    EXPECT_EQ(meta.numMetaOps(), 6u);
    ASSERT_EQ(meta.numLevels(), 2u);
    EXPECT_EQ(meta.level(0).size(), 4u);
    EXPECT_EQ(meta.level(1).size(), 2u);
    for (MetaOpId id : meta.level(1))
        EXPECT_EQ(meta.metaOp(id).type, OpType::LM);
}

TEST(MetaLevels, NoIntraLevelDependencies)
{
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);
    for (const MetaEdge &e : meta.edges())
        EXPECT_LT(meta.metaOp(e.src).level, meta.metaOp(e.dst).level);
}

TEST(MetaEdges, AggregateParallelFlows)
{
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);
    for (const MetaEdge &e : meta.edges())
        EXPECT_GT(e.flowBytes, 0);
}

TEST(MemberDesc, MirrorsMetaOpWorkload)
{
    ComputationGraph g = fig3Workload();
    MetaGraph meta = contractGraph(g);
    const MetaOp &m = meta.metaOp(0);
    OperatorDesc d = memberDesc(m);
    EXPECT_EQ(d.type, m.type);
    EXPECT_EQ(d.input, m.input);
    EXPECT_DOUBLE_EQ(d.flopsFwd, m.flopsFwdPerOp);
    EXPECT_DOUBLE_EQ(d.activationBytes, m.activationBytes);
}

TEST(OpTypeName, AllNamesDistinct)
{
    std::set<std::string> names;
    for (OpType t : {OpType::Text, OpType::Vision, OpType::Audio,
                     OpType::Depth, OpType::Thermal, OpType::Motion,
                     OpType::Box, OpType::LM, OpType::Adaptor,
                     OpType::Contrastive, OpType::Custom})
        EXPECT_TRUE(names.insert(opTypeName(t)).second);
}

TEST(TensorShape, NumelAndString)
{
    TensorShape s{8, 229, 768};
    EXPECT_EQ(s.numel(), 8 * 229 * 768);
    EXPECT_EQ(s.str(), "[8, 229, 768]");
}

} // namespace
} // namespace spindle
